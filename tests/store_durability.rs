//! Store durability under injected filesystem faults, driven through
//! the prediction service: a torn write, a failed rename, or a failed
//! fsync surfaces as a classified error (never a silent success, never
//! a torn object on disk), the next attempt recomputes and publishes
//! cleanly, and a store whose index was mangled rebuilds itself from
//! the object files on reopen.

use pas2p::{Pas2p, PredictionService};
use pas2p_faults::{FaultStoreIo, StoreFaultKind, StoreFaultStats};
use pas2p_store::SignatureStore;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The obs registry is process-global; serialize with the other suites.
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn temp_root(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU32, Ordering};
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "pas2p-durability-{}-{}-{}",
        std::process::id(),
        tag,
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn clean_service(root: &Path) -> PredictionService {
    let store = SignatureStore::open(root).expect("open store");
    PredictionService::new(Pas2p::default(), store, Box::new(pas2p_apps::by_name))
}

fn faulty_service(
    root: &Path,
    faults: Vec<StoreFaultKind>,
) -> (PredictionService, Arc<StoreFaultStats>) {
    let io = FaultStoreIo::new(faults);
    let stats = io.stats();
    let store = SignatureStore::open_with_io(root, Box::new(io)).expect("open store");
    let svc = PredictionService::new(Pas2p::default(), store, Box::new(pas2p_apps::by_name));
    (svc, stats)
}

/// Every published (non-temp) object in `root/objects` must be a
/// well-formed store object: JSON with a payload whose embedded
/// checksum verifies. Returns `(published, well_formed)`.
fn scan_objects(root: &Path) -> (usize, usize) {
    let dir = root.join("objects");
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return (0, 0);
    };
    let mut published = 0;
    let mut well_formed = 0;
    for entry in entries {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue; // stale temps are the recovery pass's business
        }
        published += 1;
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let Ok(value) = serde_json::from_str::<serde_json::Value>(&text) else {
            continue;
        };
        let (Some(payload), Some(checksum)) = (value["payload"].as_str(), value["checksum"].as_str())
        else {
            continue;
        };
        if pas2p_store::sha256_hex(payload.as_bytes()) == checksum {
            well_formed += 1;
        }
    }
    (published, well_formed)
}

/// A write torn mid-stream surfaces as a classified error and never
/// publishes a torn object; the retry recomputes and publishes cleanly,
/// and a fresh service then serves the artifact byte-identically.
#[test]
fn torn_write_is_classified_and_the_retry_recovers() {
    let _serial = serial();
    let root = temp_root("torn");
    let (svc, stats) = faulty_service(
        &root,
        vec![StoreFaultKind::TornWrite {
            on_op: 1,
            keep_per_mille: 500,
        }],
    );

    let err = svc.submit("cg", 4, "A").expect_err("torn write must fail the submit");
    assert!(!err.is_empty(), "failure carries a message");
    assert!(stats.faults_fired() >= 1, "the fault actually fired");
    let (published, well_formed) = scan_objects(&root);
    assert_eq!(published, well_formed, "no torn object was ever published");

    // Same service, next attempt: writes 2+ are clean.
    let retry = svc.submit("cg", 4, "A").expect("retry succeeds");
    assert!(!retry.cached, "the failed submit cached nothing");
    let (published, well_formed) = scan_objects(&root);
    assert!(published >= 1, "retry published the signature");
    assert_eq!(published, well_formed);
    let cold = svc.predict("cg", 4, "A", "B").expect("predict");
    drop(svc);

    // A fresh, fault-free service sees a healthy store and identical bytes.
    let svc = clean_service(&root);
    assert_eq!(svc.store_report().evicted_corrupt, 0, "nothing to evict");
    let warm = svc.predict("cg", 4, "A", "B").expect("warm predict");
    assert!(warm.cached, "served from the store");
    assert_eq!(warm.prediction_json, cold.prediction_json);
    let _ = std::fs::remove_dir_all(&root);
}

/// A failed rename (the publish step itself) leaves nothing published:
/// the object either exists completely or not at all.
#[test]
fn rename_failure_never_publishes_a_partial_object() {
    let _serial = serial();
    let root = temp_root("rename");
    let (svc, stats) = faulty_service(&root, vec![StoreFaultKind::RenameFail { on_op: 1 }]);

    let err = svc.submit("ft", 4, "A").expect_err("failed publish must fail the submit");
    assert!(err.contains("publishing"), "classified as a publish failure: {err}");
    assert_eq!(stats.faults_fired(), 1);
    let (published, _) = scan_objects(&root);
    assert_eq!(published, 0, "nothing may appear without its rename");

    let retry = svc.submit("ft", 4, "A").expect("retry succeeds");
    assert!(!retry.cached);
    let (published, well_formed) = scan_objects(&root);
    assert!(published >= 1);
    assert_eq!(published, well_formed);
    let _ = std::fs::remove_dir_all(&root);
}

/// A failed fsync is surfaced, not swallowed: an acknowledged write is
/// durable, so a write whose durability barrier failed must error.
#[test]
fn fsync_failure_is_surfaced_not_swallowed() {
    let _serial = serial();
    let root = temp_root("fsync");
    let (svc, stats) = faulty_service(&root, vec![StoreFaultKind::FsyncFail { on_op: 1 }]);

    let err = svc.submit("cg", 4, "A").expect_err("failed fsync must fail the submit");
    assert!(err.contains("fsync"), "classified as an fsync failure: {err}");
    assert_eq!(stats.faults_fired(), 1);

    let retry = svc.submit("cg", 4, "A").expect("retry succeeds");
    assert!(!retry.cached);
    let _ = std::fs::remove_dir_all(&root);
}

/// A short read of the index on open (a torn page, a filesystem that
/// lied) does not lose the store: the index is rebuilt from the object
/// files, aliases included, and warm predictions still match the cold
/// bytes.
#[test]
fn short_index_read_rebuilds_from_objects() {
    let _serial = serial();
    let root = temp_root("shortread");
    let svc = clean_service(&root);
    let cold = svc.predict("cg", 4, "A", "B").expect("cold predict");
    let entries = svc.store_len();
    assert!(entries >= 2, "signature + prediction stored");
    drop(svc);

    // Reopen through an io whose *first* read (index.json) is truncated.
    let (svc, stats) = faulty_service(
        &root,
        vec![StoreFaultKind::ShortRead {
            on_op: 1,
            keep_per_mille: 300,
        }],
    );
    assert_eq!(stats.faults_fired(), 1, "the truncated read fired on open");
    assert!(
        svc.store_report().index_rebuilt,
        "a mangled index is rebuilt, not trusted: {:?}",
        svc.store_report()
    );
    assert_eq!(svc.store_len(), entries, "no entry was lost in the rebuild");
    let warm = svc.predict("cg", 4, "A", "B").expect("warm predict");
    assert!(warm.cached, "rebuilt aliases still route to the signature");
    assert_eq!(warm.prediction_json, cold.prediction_json);
    let _ = std::fs::remove_dir_all(&root);
}
