//! End-to-end tests of the `pas2p-cli` binary.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pas2p-cli"))
}

#[test]
fn list_shows_catalog() {
    let out = cli().arg("list").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in ["cg", "sweep3d", "moldy"] {
        assert!(stdout.contains(name), "missing {} in:\n{}", name, stdout);
    }
    assert!(stdout.contains("A, B, C, D"));
}

#[test]
fn bad_usage_exits_nonzero() {
    let out = cli().output().unwrap();
    assert!(!out.status.success());
    let out = cli().args(["analyze", "--app", "cg"]).output().unwrap();
    assert!(!out.status.success());
    let out = cli()
        .args([
            "analyze", "--app", "nonesuch", "--nprocs", "4", "--base", "A",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown application"));
}

#[test]
fn analyze_emits_analysis_json() {
    let out = cli()
        .args([
            "analyze",
            "--app",
            "masterworker",
            "--nprocs",
            "4",
            "--base",
            "A",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let analysis: pas2p::Analysis = serde_json::from_str(&stdout).unwrap();
    assert_eq!(analysis.nprocs, 4);
    assert_eq!(analysis.table.nprocs, 4);
    // Observability was not requested: no snapshot in the JSON.
    assert!(analysis.metrics.is_none());
}

#[test]
fn kernel_flag_selects_the_kernel_and_rejects_garbage() {
    // Both kernels must produce the same phase table (the differential
    // suite pins byte-identity; here we pin the flag plumbing).
    let analyze = |kernel: &str| {
        let out = cli()
            .args([
                "analyze",
                "--app",
                "masterworker",
                "--nprocs",
                "4",
                "--base",
                "A",
                "--kernel",
                kernel,
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "--kernel {kernel}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let analysis: pas2p::Analysis =
            serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).unwrap();
        analysis.table
    };
    assert_eq!(analyze("scalar"), analyze("soa"));

    let out = cli()
        .args([
            "analyze", "--app", "cg", "--nprocs", "4", "--base", "A", "--kernel", "simd",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown --kernel 'simd'"), "{stderr}");
}

#[test]
fn help_and_version_exit_zero() {
    let out = cli().arg("--help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage:"));
    let out = cli().args(["analyze", "--help"]).output().unwrap();
    assert!(out.status.success());
    let out = cli().arg("--version").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("pas2p-cli"));
}

#[test]
fn malformed_flags_name_the_culprit() {
    let out = cli().args(["analyze", "--app"]).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("'--app' is missing its value"),
        "{}",
        stderr
    );

    let out = cli().args(["analyze", "app", "cg"]).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("expected a --flag, got 'app'"),
        "{}",
        stderr
    );

    let out = cli()
        .args(["analyze", "--app", "cg", "--app", "lu"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("'--app' given twice"), "{}", stderr);
}

#[test]
fn metrics_flag_writes_snapshot_and_subcommand_renders_it() {
    let dir = std::env::temp_dir().join("pas2p-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let analysis_path = dir.join("mw.analysis.json");
    let metrics_path = dir.join("mw.metrics.json");

    let out = cli()
        .args([
            "analyze",
            "--app",
            "masterworker",
            "--nprocs",
            "4",
            "--base",
            "A",
            "--out",
            analysis_path.to_str().unwrap(),
            "--metrics",
            metrics_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The standalone snapshot file has stage profiles and counters from
    // several crates.
    let snap: pas2p_obs::MetricsSnapshot =
        serde_json::from_str(&std::fs::read_to_string(&metrics_path).unwrap()).unwrap();
    assert!(snap.enabled);
    let stage_names: Vec<&str> = snap.stages.iter().map(|s| s.name.as_str()).collect();
    for required in ["run_traced", "pas2p_order", "extract_phases", "table"] {
        assert!(stage_names.contains(&required), "missing stage {required}");
    }
    assert!(snap.counters["mpisim.messages"] > 0);
    assert!(snap.counters["trace.events"] > 0);
    assert!(snap.counters["model.events_ordered"] > 0);
    assert!(snap.counters["phases.unique"] > 0);
    let distinct = snap.counters.len() + snap.histograms.len();
    assert!(distinct >= 10, "only {distinct} instruments in snapshot");

    // The analysis JSON embeds the same snapshot, and the `metrics`
    // subcommand renders it.
    let analysis: pas2p::Analysis =
        serde_json::from_str(&std::fs::read_to_string(&analysis_path).unwrap()).unwrap();
    assert!(analysis.metrics.is_some());

    let out = cli()
        .args(["metrics", "--analysis", analysis_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("stages:"), "{}", stdout);
    assert!(stdout.contains("mpisim.messages"), "{}", stdout);
}

#[test]
fn signature_then_predict_roundtrip() {
    let dir = std::env::temp_dir().join("pas2p-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let sig_path = dir.join("mw.sig.json");
    let sig_str = sig_path.to_str().unwrap();

    let out = cli()
        .args([
            "signature",
            "--app",
            "masterworker",
            "--nprocs",
            "4",
            "--base",
            "A",
            "--out",
            sig_str,
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = cli()
        .args([
            "predict",
            "--app",
            "masterworker",
            "--nprocs",
            "4",
            "--signature",
            sig_str,
            "--target",
            "B",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("PET"), "{}", stdout);
}

#[test]
fn validate_reports_pete() {
    let out = cli()
        .args([
            "validate",
            "--app",
            "masterworker",
            "--nprocs",
            "4",
            "--base",
            "A",
            "--target",
            "B",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("PETE"), "{}", stdout);
}

#[test]
fn isa_mismatch_is_reported() {
    let dir = std::env::temp_dir().join("pas2p-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let sig_path = dir.join("mw-isa.sig.json");
    let sig_str = sig_path.to_str().unwrap();
    let out = cli()
        .args([
            "signature",
            "--app",
            "masterworker",
            "--nprocs",
            "4",
            "--base",
            "A",
            "--out",
            sig_str,
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = cli()
        .args([
            "predict",
            "--app",
            "masterworker",
            "--nprocs",
            "4",
            "--signature",
            sig_str,
            "--target",
            "D",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot run on"), "{}", stderr);
}

#[test]
fn check_reports_clean_apps_and_json_mode() {
    let out = cli()
        .args(["check", "--app", "cg", "--nprocs", "8", "--base", "A"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 error(s)"), "{}", stdout);

    let out = cli()
        .args([
            "check", "--app", "cg", "--nprocs", "8", "--base", "A", "--json",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report: pas2p_check::CheckReport =
        serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).unwrap();
    assert!(report.is_clean());
}

/// `check --sarif` reproduces the golden SARIF snapshot byte for byte
/// (the simulator, the deterministic wildcard commit, and the SARIF
/// writer are all stable), and the export is the same at any worker
/// count.
#[test]
fn check_sarif_matches_golden_snapshot() {
    let dir = std::env::temp_dir().join("pas2p-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let sarif_path = dir.join("mw.sarif");
    let sarif_str = sarif_path.to_str().unwrap();

    for workers in ["1", "4"] {
        let out = cli()
            .args([
                "check",
                "--app",
                "masterworker",
                "--nprocs",
                "8",
                "--base",
                "A",
                "--workers",
                workers,
                "--sarif",
                sarif_str,
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let got = std::fs::read_to_string(&sarif_path).unwrap();
        let golden = std::fs::read_to_string(
            std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("tests/golden/masterworker_check.sarif"),
        )
        .unwrap();
        assert_eq!(
            got, golden,
            "SARIF output diverged from the golden snapshot at {workers} worker(s); \
             regenerate tests/golden/masterworker_check.sarif if the change is intended"
        );
    }
}

/// `--write-baseline` captures the current findings; a subsequent run
/// with `--baseline` absorbs them and exits clean.
#[test]
fn check_baseline_roundtrip_suppresses_known_findings() {
    let dir = std::env::temp_dir().join("pas2p-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let baseline_path = dir.join("mw.baseline.json");
    let baseline_str = baseline_path.to_str().unwrap();
    let app = [
        "check",
        "--app",
        "masterworker",
        "--nprocs",
        "8",
        "--base",
        "A",
    ];

    let out = cli()
        .args(app)
        .args(["--write-baseline", baseline_str])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let baseline: pas2p_check::Baseline =
        pas2p_check::Baseline::from_json(&std::fs::read_to_string(&baseline_path).unwrap())
            .unwrap();
    assert!(
        !baseline.suppressed.is_empty(),
        "masterworker has wildcard infos to capture"
    );

    let out = cli()
        .args(app)
        .args(["--baseline", baseline_str])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("baseline absorbed"),
        "expected absorption note, got:\n{stderr}"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("0 finding(s) total"),
        "all findings were baselined, got:\n{stdout}"
    );

    // A garbage baseline is an input error: exit 2, one diagnostic line.
    std::fs::write(&baseline_path, "not json").unwrap();
    let out = cli()
        .args(app)
        .args(["--baseline", baseline_str])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}

/// Bad input files (as opposed to bad flags) exit 2 with exactly one
/// diagnostic line and no usage dump.
#[test]
fn unreadable_inputs_exit_two_with_one_line_diagnostic() {
    for args in [
        ["check", "--trace", "/nonexistent/pas2p.trace"].as_slice(),
        ["check", "--logical", "/nonexistent/pas2p.model.json"].as_slice(),
        ["metrics", "--analysis", "/nonexistent/pas2p.analysis.json"].as_slice(),
    ] {
        let out = cli().args(args).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("error: reading"), "{args:?}: {stderr}");
        assert!(
            !stderr.contains("usage:"),
            "{args:?}: input errors must not dump usage:\n{stderr}"
        );
        assert_eq!(stderr.lines().count(), 1, "{args:?}: {stderr}");
    }
}

#[test]
fn empty_and_corrupt_traces_are_diagnosed() {
    let dir = std::env::temp_dir().join("pas2p-cli-test");
    std::fs::create_dir_all(&dir).unwrap();

    // An empty trace file: one line, exit 2, no usage dump.
    let empty = dir.join("empty.trace");
    std::fs::write(&empty, b"").unwrap();
    let out = cli()
        .args(["check", "--trace", empty.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("is empty"), "{stderr}");
    assert!(!stderr.contains("usage:"), "{stderr}");

    // Garbage bytes: the recovering decoder reports a fatal ingest and
    // the INGEST rule family names it.
    let garbage = dir.join("garbage.trace");
    std::fs::write(&garbage, vec![0xA5u8; 256]).unwrap();
    let out = cli()
        .args(["check", "--trace", garbage.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("INGEST-FATAL-001"), "{stdout}");
}

#[test]
fn batch_fault_seed_runs_the_matrix_and_stays_deterministic() {
    let run = |workers: &str| {
        let out = cli()
            .args([
                "batch",
                "--apps",
                "masterworker",
                "--nprocs",
                "4",
                "--base",
                "A",
                "--fault-seed",
                "42",
                "--workers",
                workers,
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stderr).to_string()
    };
    let sequential = run("1");
    // One job per matrix entry, each classified, none at full confidence.
    assert!(sequential.contains("4 job(s)"), "{sequential}");
    assert!(
        !sequential.contains("[ok]"),
        "fault jobs must not report full confidence:\n{sequential}"
    );
    assert!(
        sequential.contains("[degraded]") || sequential.contains("FAILED"),
        "{sequential}"
    );
    let parallel = run("4");
    // The per-job lines are identical for any worker count, modulo the
    // host-clock fields (TFAT/AET and the trailing wall-time summary).
    let body = |s: &str| {
        s.lines()
            // Drop the wall-time summary and the log lines, whose
            // interleaving depends on worker scheduling.
            .filter(|l| !l.contains("worker(s)") && !l.starts_with('['))
            .map(|l| l.split(" TFAT").next().unwrap().to_string())
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(body(&sequential), body(&parallel));
}

/// The timeline acceptance path: export a timeline for a live run, have
/// the CLI validate it, and confirm both domains are present — pipeline
/// stage spans (wall clock) and per-rank application tracks with the
/// phase overlay (virtual time).
#[test]
fn timeline_exports_validate_and_carry_both_domains() {
    let dir = std::env::temp_dir().join("pas2p-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("cg.timeline.json");
    let path_str = path.to_str().unwrap();

    let out = cli()
        .args([
            "timeline", "--app", "cg", "--nprocs", "8", "--base", "A", "--out", path_str,
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let json = std::fs::read_to_string(&path).unwrap();
    let stats = pas2p::validate_chrome_json(&json).expect("exported timeline is valid");
    assert!(stats.slices > 0 && stats.metadata > 0);
    assert_eq!(stats.pids, 2, "host and app process lanes");
    // Pipeline self-profile on the wall clock…
    for stage in ["run_traced", "pas2p_order", "extract_phases", "table"] {
        assert!(json.contains(stage), "missing stage span {stage}");
    }
    // …and the application in virtual time, with the phase overlay.
    assert!(json.contains("\"rank 0\"") && json.contains("\"rank 7\""));
    assert!(json.contains("\"phases\""));
    assert!(json.contains("\"phase "), "phase occurrence slices present");

    // The CLI validator agrees.
    let out = cli()
        .args(["timeline", "--validate", path_str])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("valid Chrome Trace JSON"));

    // A non-timeline file is rejected with a one-line diagnostic.
    let bogus = dir.join("bogus.json");
    std::fs::write(&bogus, "{\"traceEvents\": 3}").unwrap();
    let out = cli()
        .args(["timeline", "--validate", bogus.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(!String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

/// `--trace-out` on an ordinary command records the pipeline
/// self-profile without changing the command's own output.
#[test]
fn trace_out_flag_writes_host_timeline() {
    let dir = std::env::temp_dir().join("pas2p-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("mw.selfprofile.json");

    let out = cli()
        .args([
            "analyze",
            "--app",
            "masterworker",
            "--nprocs",
            "4",
            "--base",
            "A",
            "--out",
            dir.join("mw.tout.analysis.json").to_str().unwrap(),
            "--trace-out",
            path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&path).unwrap();
    let stats = pas2p::validate_chrome_json(&json).expect("self-profile is valid");
    assert!(stats.slices > 0);
    assert!(json.contains("run_traced"), "stage spans recorded");
    assert!(json.contains("\"rank 0\""), "rank threads recorded");
}

#[test]
fn metrics_format_prom_emits_exposition() {
    let dir = std::env::temp_dir().join("pas2p-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let analysis_path = dir.join("mw.prom.analysis.json");
    let out = cli()
        .args([
            "analyze",
            "--app",
            "masterworker",
            "--nprocs",
            "4",
            "--base",
            "A",
            "--out",
            analysis_path.to_str().unwrap(),
            "--metrics",
            dir.join("mw.prom.metrics.json").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = cli()
        .args([
            "metrics",
            "--analysis",
            analysis_path.to_str().unwrap(),
            "--format",
            "prom",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("# TYPE pas2p_mpisim_messages counter"),
        "{stdout}"
    );
    assert!(
        stdout.contains("pas2p_stage_wall_seconds{stage=\"run_traced\"}"),
        "{stdout}"
    );

    let out = cli()
        .args([
            "metrics",
            "--analysis",
            analysis_path.to_str().unwrap(),
            "--format",
            "xml",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success(), "unknown format must fail");
}

#[test]
fn bench_report_prints_and_appends_records() {
    let dir = std::env::temp_dir().join("pas2p-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let record_path = dir.join("BENCH_cli_test.json");
    let _ = std::fs::remove_file(&record_path);

    // Without --record the record prints to stdout.
    let out = cli()
        .args(["bench-report", "--nprocs", "4", "--label", "t1"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let record: pas2p::BenchRecord =
        serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).unwrap();
    assert_eq!(record.schema, pas2p::BENCH_SCHEMA_VERSION);
    assert_eq!(record.jobs, 11, "the full application suite");
    assert_eq!(record.jobs_ok, 11);
    assert!(record.events_per_sec > 0.0);
    assert!(record.jobs_per_sec > 0.0);
    assert_eq!(record.label, "t1");
    let check = record.check.expect("bench-report times the check engine");
    assert_eq!(check.app, "masterworker");
    assert!(check.workers >= 2);
    assert!(check.sequential_seconds > 0.0);
    assert!(check.parallel_seconds > 0.0);

    // With --record the file accumulates a trajectory.
    for _ in 0..2 {
        let out = cli()
            .args([
                "bench-report",
                "--nprocs",
                "4",
                "--record",
                record_path.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let trajectory: Vec<pas2p::BenchRecord> =
        serde_json::from_str(&std::fs::read_to_string(&record_path).unwrap()).unwrap();
    assert_eq!(trajectory.len(), 2);
    let _ = std::fs::remove_file(&record_path);
}

/// The acceptance scenario: export the logical model, corrupt it, and the
/// checker exits non-zero naming the violated rule.
#[test]
fn check_corrupted_logical_trace_exits_nonzero() {
    let dir = std::env::temp_dir().join("pas2p-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let model_path = dir.join("cg.model.json");
    let model_str = model_path.to_str().unwrap();

    let out = cli()
        .args([
            "check",
            "--app",
            "cg",
            "--nprocs",
            "8",
            "--base",
            "A",
            "--logical-out",
            model_str,
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The exported model itself checks clean.
    let out = cli()
        .args(["check", "--logical", model_str])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );

    // Swap two ticks: receives now precede their sends and per-process
    // event numbering is no longer monotone.
    let mut model: pas2p::prelude::LogicalTrace =
        serde_json::from_str(&std::fs::read_to_string(&model_path).unwrap()).unwrap();
    let mid = model.ticks.len() / 2;
    model.ticks.swap(0, mid);
    std::fs::write(&model_path, serde_json::to_string(&model).unwrap()).unwrap();

    let out = cli()
        .args(["check", "--logical", model_str])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("LT-RECV-001") || stdout.contains("MODEL-ORDER-001"),
        "expected a named rule violation, got:\n{}",
        stdout
    );
}

#[test]
fn serve_answers_ndjson_and_hits_the_cache() {
    use std::io::Write;
    use std::process::Stdio;

    let store = std::env::temp_dir().join(format!("pas2p-cli-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);
    let mut child = cli()
        .args(["serve", "--store", store.to_str().unwrap()])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(
            concat!(
                r#"{"op":"submit","app":"cg","nprocs":4}"#,
                "\n",
                r#"{"op":"predict","app":"cg","nprocs":4,"target":"B"}"#,
                "\n",
                r#"{"op":"predict","app":"cg","nprocs":4,"target":"B"}"#,
                "\n",
                r#"{"op":"shutdown"}"#,
                "\n",
            )
            .as_bytes(),
        )
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let lines: Vec<serde_json::Value> = String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(|l| serde_json::from_str(l).unwrap())
        .collect();
    assert_eq!(lines.len(), 4, "one response line per request");
    assert_eq!(lines[0]["op"], serde_json::json!("submit"));
    assert_eq!(lines[0]["ok"], serde_json::json!(true));
    assert_eq!(lines[0]["result"]["cached"], serde_json::json!(false));
    // The submit stored the signature: the first predict skips Stage A.
    assert_eq!(
        lines[1]["result"]["signature_cached"],
        serde_json::json!(true)
    );
    assert_eq!(lines[1]["result"]["cached"], serde_json::json!(false));
    // The second predict is a pure cache hit with identical values.
    assert_eq!(lines[2]["result"]["cached"], serde_json::json!(true));
    assert_eq!(
        lines[1]["result"]["prediction"],
        lines[2]["result"]["prediction"]
    );
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn predict_with_store_caches_across_invocations() {
    let store = std::env::temp_dir().join(format!("pas2p-cli-predict-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);
    let args = [
        "predict",
        "--app",
        "ft",
        "--nprocs",
        "4",
        "--store",
        store.to_str().unwrap(),
        "--target",
        "B",
    ];
    let cold = cli().args(args).output().unwrap();
    assert!(
        cold.status.success(),
        "{}",
        String::from_utf8_lossy(&cold.stderr)
    );
    let cold_stdout = String::from_utf8_lossy(&cold.stdout).into_owned();
    assert!(cold_stdout.contains("[prediction: computed, signature: computed]"));

    let warm = cli().args(args).output().unwrap();
    assert!(warm.status.success());
    let warm_stdout = String::from_utf8_lossy(&warm.stdout).into_owned();
    assert!(
        warm_stdout.contains("[prediction: cache hit, signature: cache hit]"),
        "{warm_stdout}"
    );
    // Same PET down to the printed precision.
    assert_eq!(
        cold_stdout.split(" [").next(),
        warm_stdout.split(" [").next()
    );
    let _ = std::fs::remove_dir_all(&store);
}
