//! End-to-end tests of the `pas2p-cli` binary.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pas2p-cli"))
}

#[test]
fn list_shows_catalog() {
    let out = cli().arg("list").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in ["cg", "sweep3d", "moldy"] {
        assert!(stdout.contains(name), "missing {} in:\n{}", name, stdout);
    }
    assert!(stdout.contains("A, B, C, D"));
}

#[test]
fn bad_usage_exits_nonzero() {
    let out = cli().output().unwrap();
    assert!(!out.status.success());
    let out = cli().args(["analyze", "--app", "cg"]).output().unwrap();
    assert!(!out.status.success());
    let out = cli()
        .args(["analyze", "--app", "nonesuch", "--nprocs", "4", "--base", "A"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown application"));
}

#[test]
fn analyze_emits_phase_table_json() {
    let out = cli()
        .args(["analyze", "--app", "masterworker", "--nprocs", "4", "--base", "A"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let table: pas2p_phases::PhaseTable = serde_json::from_str(&stdout).unwrap();
    assert_eq!(table.nprocs, 4);
}

#[test]
fn signature_then_predict_roundtrip() {
    let dir = std::env::temp_dir().join("pas2p-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let sig_path = dir.join("mw.sig.json");
    let sig_str = sig_path.to_str().unwrap();

    let out = cli()
        .args([
            "signature", "--app", "masterworker", "--nprocs", "4", "--base", "A", "--out",
            sig_str,
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = cli()
        .args([
            "predict", "--app", "masterworker", "--nprocs", "4", "--signature", sig_str,
            "--target", "B",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("PET"), "{}", stdout);
}

#[test]
fn validate_reports_pete() {
    let out = cli()
        .args([
            "validate", "--app", "masterworker", "--nprocs", "4", "--base", "A", "--target",
            "B",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("PETE"), "{}", stdout);
}

#[test]
fn isa_mismatch_is_reported() {
    let dir = std::env::temp_dir().join("pas2p-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let sig_path = dir.join("mw-isa.sig.json");
    let sig_str = sig_path.to_str().unwrap();
    let out = cli()
        .args([
            "signature", "--app", "masterworker", "--nprocs", "4", "--base", "A", "--out",
            sig_str,
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = cli()
        .args([
            "predict", "--app", "masterworker", "--nprocs", "4", "--signature", sig_str,
            "--target", "D",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot run on"), "{}", stderr);
}
