//! Integration tests of the `pas2p-check` diagnostics engine: golden
//! clean runs over the shipped applications, and corruption tests
//! asserting that specific defects trip the expected rule codes.

use pas2p::prelude::*;
use pas2p::Pas2p;
use pas2p_check::{Artifacts, CheckEngine};
use pas2p_phases::extract_phases;
use pas2p_trace::{EventKind, TraceEvent};

/// Run the full analyze pipeline with checking and return the report.
fn checked_report(name: &str, nprocs: u32) -> CheckReport {
    let app = pas2p_apps::by_name(name, nprocs).unwrap_or_else(|| panic!("unknown app {}", name));
    let base = cluster_a();
    let analysis = Pas2p::default().analyze_checked(app.as_ref(), &base, MappingPolicy::Block);
    analysis.check.expect("analyze_checked attaches a report")
}

/// The NPB kernels named in the issue check clean: no errors, no
/// warnings (Info-level findings like wildcard receives are allowed).
#[test]
fn npb_apps_check_clean() {
    for name in ["bt", "cg", "ft", "lu", "sp"] {
        let report = checked_report(name, 8);
        assert!(
            report.is_clean(),
            "{} must check clean, got:\n{}",
            name,
            report.render()
        );
    }
}

/// Every other shipped application also checks clean.
#[test]
fn remaining_apps_check_clean() {
    for name in [
        "sweep3d",
        "smg2000",
        "pop",
        "moldy",
        "gromacs",
        "masterworker",
    ] {
        let report = checked_report(name, 8);
        assert!(
            report.is_clean(),
            "{} must check clean, got:\n{}",
            name,
            report.render()
        );
    }
}

/// The master/worker app posts wildcard receives; the checker must see
/// them (as Info, which keeps the report clean).
#[test]
fn masterworker_wildcards_are_visible() {
    let report = checked_report("masterworker", 4);
    assert!(
        report.has_code("WILD-RECV-001"),
        "expected WILD-RECV-001 info, got:\n{}",
        report.render()
    );
    assert_eq!(report.exit_code(), 0);
}

/// Build the full artifact set for one small app, run the corruption
/// closure over the pieces, and return the resulting report.
fn corrupted_report(
    corrupt: impl FnOnce(&mut Trace, &mut LogicalTrace, &mut PhaseAnalysis, &mut PhaseTable),
) -> CheckReport {
    let app = pas2p_apps::by_name("cg", 8).unwrap();
    let base = cluster_a();
    let policy = MappingPolicy::Block;
    let (mut trace, _) = run_traced(app.as_ref(), &base, policy, InstrumentationModel::default());
    let mut logical = pas2p_order(&trace);
    let cfg = SimilarityConfig::default();
    let mut analysis = extract_phases(&logical, &cfg);
    let mut table = PhaseTable::from_analysis(&analysis, 0.01, 0, 1);
    corrupt(&mut trace, &mut logical, &mut analysis, &mut table);
    let artifacts = Artifacts {
        trace: Some(&trace),
        logical: Some(&logical),
        analysis: Some(&analysis),
        table: Some(&table),
        similarity: cfg,
        ingest: None,
    };
    CheckEngine::with_default_rules().run(&artifacts)
}

/// Dropping a receive from the physical trace leaves its send unmatched.
#[test]
fn dropped_recv_trips_p2p_match() {
    let report = corrupted_report(|trace, _, _, _| {
        // Remove the first receive of rank 0 and renumber the remainder so
        // only the matching invariant (not numbering) is violated.
        let events = &mut trace.procs[0].events;
        let i = events
            .iter()
            .position(|e| e.kind == EventKind::Recv)
            .expect("cg rank 0 receives");
        events.remove(i);
        for (n, e) in events.iter_mut().enumerate() {
            e.number = n as u64;
        }
    });
    assert!(
        report.has_code("P2P-MATCH-001"),
        "expected P2P-MATCH-001, got:\n{}",
        report.render()
    );
    assert!(report.exit_code() > 0);
}

/// Swapping two ticks of the logical trace places receives before their
/// sends and breaks program order.
#[test]
fn swapped_ticks_trip_model_rules() {
    let report = corrupted_report(|_, logical, _, _| {
        let n = logical.ticks.len();
        assert!(n >= 2);
        logical.ticks.swap(0, n / 2);
    });
    assert!(
        report.has_code("LT-RECV-001") || report.has_code("MODEL-ORDER-001"),
        "expected causality or program-order findings, got:\n{}",
        report.render()
    );
    assert_eq!(report.exit_code(), 2);
}

/// Inflating a phase weight breaks the occurrence bookkeeping and the
/// PET reconstruction identity.
#[test]
fn inflated_weight_trips_signature_rules() {
    let report = corrupted_report(|_, _, analysis, _| {
        analysis.phases[0].weight *= 3;
    });
    assert!(
        report.has_code("SIG-W-001"),
        "expected SIG-W-001, got:\n{}",
        report.render()
    );
    assert_eq!(report.exit_code(), 2);
}

/// Tampering with a table row's weight desynchronizes it from the
/// analysis it claims to represent.
#[test]
fn tampered_table_trips_sig_rel() {
    let report = corrupted_report(|_, _, _, table| {
        table.rows[0].weight += 7;
    });
    assert!(
        report.has_code("SIG-REL-001"),
        "expected SIG-REL-001, got:\n{}",
        report.render()
    );
}

/// A synthetic deadlock (crossed blocking receives) is detected from the
/// trace alone.
#[test]
fn crossed_receives_trip_wfg_cycle() {
    let ev =
        |number: u64, process: u32, kind: EventKind, peer: u32, msg_id: u64, t: f64| TraceEvent {
            number,
            process,
            t_post: t,
            t_complete: t + 0.1,
            kind,
            peer: Some(peer),
            tag: 0,
            size: 8,
            involved: 1,
            msg_id,
            comm_id: 0,
            wildcard: false,
        };
    let trace = Trace {
        nprocs: 2,
        machine: "synthetic".into(),
        procs: vec![
            pas2p_trace::ProcessTrace {
                process: 0,
                events: vec![
                    ev(0, 0, EventKind::Recv, 1, 2, 0.0),
                    ev(1, 0, EventKind::Send, 1, 1, 1.0),
                ],
                end_time: 1.1,
            },
            pas2p_trace::ProcessTrace {
                process: 1,
                events: vec![
                    ev(0, 1, EventKind::Recv, 0, 1, 0.0),
                    ev(1, 1, EventKind::Send, 0, 2, 1.0),
                ],
                end_time: 1.1,
            },
        ],
    };
    let artifacts = Artifacts {
        trace: Some(&trace),
        ..Artifacts::empty()
    };
    let report = CheckEngine::with_default_rules().run(&artifacts);
    assert!(
        report.has_code("WFG-CYCLE-001"),
        "expected WFG-CYCLE-001, got:\n{}",
        report.render()
    );
    assert_eq!(report.exit_code(), 2);
}
