//! Integration tests of the `pas2p-check` diagnostics engine: golden
//! clean runs over the shipped applications, and corruption tests
//! asserting that specific defects trip the expected rule codes.

use pas2p::prelude::*;
use pas2p::Pas2p;
use pas2p_check::{Artifacts, CheckEngine};
use pas2p_phases::extract_phases;
use pas2p_trace::{EventKind, TraceEvent};

/// Run the full analyze pipeline with checking and return the report.
fn checked_report(name: &str, nprocs: u32) -> CheckReport {
    let app = pas2p_apps::by_name(name, nprocs).unwrap_or_else(|| panic!("unknown app {}", name));
    let base = cluster_a();
    let analysis = Pas2p::default().analyze_checked(app.as_ref(), &base, MappingPolicy::Block);
    analysis.check.expect("analyze_checked attaches a report")
}

/// Assert `report` carries none of the happens-before warning codes.
fn assert_no_hb_warnings(name: &str, report: &CheckReport) {
    for code in [
        "MSG-RACE-001",
        "MSG-RACE-002",
        "DLK-POT-001",
        "SIG-STAB-001",
    ] {
        assert!(
            !report.has_code(code),
            "{} must not trip {}, got:\n{}",
            name,
            code,
            report.render()
        );
    }
}

/// The NPB kernels named in the issue check clean: no errors, no
/// warnings (Info-level findings like wildcard receives are allowed),
/// and in particular no message-race or potential-deadlock findings.
#[test]
fn npb_apps_check_clean() {
    for name in ["bt", "cg", "ft", "lu", "sp"] {
        let report = checked_report(name, 8);
        assert!(
            report.is_clean(),
            "{} must check clean, got:\n{}",
            name,
            report.render()
        );
        assert_no_hb_warnings(name, &report);
    }
}

/// Every other shipped application also checks clean.
#[test]
fn remaining_apps_check_clean() {
    for name in [
        "sweep3d",
        "smg2000",
        "pop",
        "moldy",
        "gromacs",
        "masterworker",
    ] {
        let report = checked_report(name, 8);
        assert!(
            report.is_clean(),
            "{} must check clean, got:\n{}",
            name,
            report.render()
        );
        assert_no_hb_warnings(name, &report);
    }
}

/// The master/worker app posts wildcard receives; the checker must see
/// them. WILD-RECV-001 is the informational census, WILD-RECV-002 the
/// symmetric (same-size, interchangeable) race at the master — both
/// Info, so the report stays clean: the actionable MSG-RACE/DLK-POT
/// warnings must NOT fire for a symmetric master/worker.
#[test]
fn masterworker_wildcards_are_visible() {
    let report = checked_report("masterworker", 4);
    assert!(
        report.has_code("WILD-RECV-001"),
        "expected WILD-RECV-001 info, got:\n{}",
        report.render()
    );
    assert!(
        report.has_code("WILD-RECV-002"),
        "expected WILD-RECV-002 info (symmetric race), got:\n{}",
        report.render()
    );
    assert_no_hb_warnings("masterworker", &report);
    assert_eq!(report.exit_code(), 0);
}

/// Build the full artifact set for one small app, run the corruption
/// closure over the pieces, and return the resulting report.
fn corrupted_report(
    corrupt: impl FnOnce(&mut Trace, &mut LogicalTrace, &mut PhaseAnalysis, &mut PhaseTable),
) -> CheckReport {
    let app = pas2p_apps::by_name("cg", 8).unwrap();
    let base = cluster_a();
    let policy = MappingPolicy::Block;
    let (mut trace, _) = run_traced(app.as_ref(), &base, policy, InstrumentationModel::default());
    let mut logical = pas2p_order(&trace);
    let cfg = SimilarityConfig::default();
    let mut analysis = extract_phases(&logical, &cfg);
    let mut table = PhaseTable::from_analysis(&analysis, 0.01, 0, 1);
    corrupt(&mut trace, &mut logical, &mut analysis, &mut table);
    let artifacts = Artifacts {
        trace: Some(&trace),
        logical: Some(&logical),
        analysis: Some(&analysis),
        table: Some(&table),
        similarity: cfg,
        ingest: None,
    };
    CheckEngine::with_default_rules().run(&artifacts)
}

/// Dropping a receive from the physical trace leaves its send unmatched.
#[test]
fn dropped_recv_trips_p2p_match() {
    let report = corrupted_report(|trace, _, _, _| {
        // Remove the first receive of rank 0 and renumber the remainder so
        // only the matching invariant (not numbering) is violated.
        let events = &mut trace.procs[0].events;
        let i = events
            .iter()
            .position(|e| e.kind == EventKind::Recv)
            .expect("cg rank 0 receives");
        events.remove(i);
        for (n, e) in events.iter_mut().enumerate() {
            e.number = n as u64;
        }
    });
    assert!(
        report.has_code("P2P-MATCH-001"),
        "expected P2P-MATCH-001, got:\n{}",
        report.render()
    );
    assert!(report.exit_code() > 0);
}

/// Swapping two ticks of the logical trace places receives before their
/// sends and breaks program order.
#[test]
fn swapped_ticks_trip_model_rules() {
    let report = corrupted_report(|_, logical, _, _| {
        let n = logical.ticks.len();
        assert!(n >= 2);
        logical.ticks.swap(0, n / 2);
    });
    assert!(
        report.has_code("LT-RECV-001") || report.has_code("MODEL-ORDER-001"),
        "expected causality or program-order findings, got:\n{}",
        report.render()
    );
    assert_eq!(report.exit_code(), 2);
}

/// Inflating a phase weight breaks the occurrence bookkeeping and the
/// PET reconstruction identity.
#[test]
fn inflated_weight_trips_signature_rules() {
    let report = corrupted_report(|_, _, analysis, _| {
        analysis.phases[0].weight *= 3;
    });
    assert!(
        report.has_code("SIG-W-001"),
        "expected SIG-W-001, got:\n{}",
        report.render()
    );
    assert_eq!(report.exit_code(), 2);
}

/// Tampering with a table row's weight desynchronizes it from the
/// analysis it claims to represent.
#[test]
fn tampered_table_trips_sig_rel() {
    let report = corrupted_report(|_, _, _, table| {
        table.rows[0].weight += 7;
    });
    assert!(
        report.has_code("SIG-REL-001"),
        "expected SIG-REL-001, got:\n{}",
        report.render()
    );
}

/// A synthetic deadlock (crossed blocking receives) is detected from the
/// trace alone.
#[test]
fn crossed_receives_trip_wfg_cycle() {
    let ev =
        |number: u64, process: u32, kind: EventKind, peer: u32, msg_id: u64, t: f64| TraceEvent {
            number,
            process,
            t_post: t,
            t_complete: t + 0.1,
            kind,
            peer: Some(peer),
            tag: 0,
            size: 8,
            involved: 1,
            msg_id,
            comm_id: 0,
            wildcard: false,
        };
    let trace = Trace {
        nprocs: 2,
        machine: "synthetic".into(),
        procs: vec![
            pas2p_trace::ProcessTrace {
                process: 0,
                events: vec![
                    ev(0, 0, EventKind::Recv, 1, 2, 0.0),
                    ev(1, 0, EventKind::Send, 1, 1, 1.0),
                ],
                end_time: 1.1,
            },
            pas2p_trace::ProcessTrace {
                process: 1,
                events: vec![
                    ev(0, 1, EventKind::Recv, 0, 1, 0.0),
                    ev(1, 1, EventKind::Send, 0, 2, 1.0),
                ],
                end_time: 1.1,
            },
        ],
    };
    let artifacts = Artifacts {
        trace: Some(&trace),
        ..Artifacts::empty()
    };
    let report = CheckEngine::with_default_rules().run(&artifacts);
    assert!(
        report.has_code("WFG-CYCLE-001"),
        "expected WFG-CYCLE-001, got:\n{}",
        report.render()
    );
    assert_eq!(report.exit_code(), 2);
}

/// A master/worker variant seeded with a structure-changing race: the
/// workers' result payloads differ in size, so the order the master's
/// wildcard receives commit changes the communication structure.
struct RacyApp {
    nprocs: u32,
    rounds: u64,
}

struct RacyRank {
    rank: u32,
    nprocs: u32,
    rounds: u64,
}

impl MpiApp for RacyApp {
    fn name(&self) -> String {
        "SeededRace".into()
    }
    fn nprocs(&self) -> u32 {
        self.nprocs
    }
    fn make_rank(&self, rank: u32) -> Box<dyn RankProgram> {
        Box::new(RacyRank {
            rank,
            nprocs: self.nprocs,
            rounds: self.rounds,
        })
    }
}

impl RankProgram for RacyRank {
    fn prologue(&mut self, _ctx: &mut dyn Mpi) {}
    fn steps(&self) -> u64 {
        self.rounds
    }
    fn step(&mut self, _s: u64, ctx: &mut dyn Mpi) {
        if self.rank == 0 {
            for w in 1..self.nprocs {
                ctx.send(w, 1, &[0u8; 64]);
            }
            for _ in 1..self.nprocs {
                ctx.recv(None, Some(2));
            }
        } else {
            ctx.recv(Some(0), Some(1));
            // Result payloads differ per worker: whichever send the
            // wildcard commits first changes the received volumes.
            ctx.send(0, 2, &vec![0u8; 256 * self.rank as usize]);
        }
    }
    fn epilogue(&mut self, _ctx: &mut dyn Mpi) {}
    fn snapshot(&self) -> Vec<u8> {
        Vec::new()
    }
    fn restore(&mut self, _bytes: &[u8]) {}
}

/// The seeded race app trips MSG-RACE-001 end to end, SIG-STAB-001
/// marks the affected phases, and the pipeline downgrades the analysis
/// confidence to order-sensitive.
#[test]
fn seeded_race_app_is_order_sensitive() {
    let app = RacyApp {
        nprocs: 4,
        rounds: 5,
    };
    let base = cluster_a();
    let analysis = Pas2p::default().analyze_checked(&app, &base, MappingPolicy::Block);
    let report = analysis.check.as_ref().expect("report");
    assert!(
        report.has_code("MSG-RACE-001"),
        "expected MSG-RACE-001, got:\n{}",
        report.render()
    );
    assert!(
        report.has_code("SIG-STAB-001"),
        "expected SIG-STAB-001 over the racy phases, got:\n{}",
        report.render()
    );
    assert!(!report.is_clean());
    assert_eq!(report.exit_code(), 1, "warnings, not errors");
    assert_eq!(
        analysis.confidence,
        Confidence::OrderSensitive,
        "a structure-changing race inside a phase weakens the signature claim"
    );
}

/// A wildcard receive that can steal the message a named receive
/// depends on: the committed replay completed, but the adversarial
/// match-set replay wedges — MSG-RACE-002 plus DLK-POT-001.
#[test]
fn seeded_steal_trips_potential_deadlock() {
    let ev = |number: u64,
              process: u32,
              kind: EventKind,
              peer: u32,
              msg_id: u64,
              t: f64,
              wildcard: bool| TraceEvent {
        number,
        process,
        t_post: t,
        t_complete: t + 0.1,
        kind,
        peer: Some(peer),
        tag: 0,
        size: 8,
        involved: 1,
        msg_id,
        comm_id: 0,
        wildcard,
    };
    // Ranks 1 and 2 each send one message to rank 0; rank 0 posts a
    // wildcard receive (committed against rank 2's message) and then a
    // named receive from rank 1. If the wildcard instead steals rank
    // 1's only message, the named receive starves.
    let trace = Trace {
        nprocs: 3,
        machine: "synthetic".into(),
        procs: vec![
            pas2p_trace::ProcessTrace {
                process: 0,
                events: vec![
                    ev(0, 0, EventKind::Recv, 2, 2, 0.2, true),
                    ev(1, 0, EventKind::Recv, 1, 1, 0.4, false),
                ],
                end_time: 0.6,
            },
            pas2p_trace::ProcessTrace {
                process: 1,
                events: vec![ev(0, 1, EventKind::Send, 0, 1, 0.0, false)],
                end_time: 0.2,
            },
            pas2p_trace::ProcessTrace {
                process: 2,
                events: vec![ev(0, 2, EventKind::Send, 0, 2, 0.0, false)],
                end_time: 0.2,
            },
        ],
    };
    let artifacts = Artifacts {
        trace: Some(&trace),
        ..Artifacts::empty()
    };
    let report = CheckEngine::with_default_rules().run(&artifacts);
    assert!(
        report.has_code("MSG-RACE-002"),
        "expected MSG-RACE-002 (stolen message), got:\n{}",
        report.render()
    );
    assert!(
        report.has_code("DLK-POT-001"),
        "expected DLK-POT-001 (adversarial replay wedges), got:\n{}",
        report.render()
    );
    assert!(
        !report.has_code("WFG-CYCLE-001"),
        "the committed execution is deadlock-free, got:\n{}",
        report.render()
    );
    assert_eq!(report.exit_code(), 1, "potential, not observed: warning");
}

/// The parallel check engine is an implementation detail: the rendered
/// report and the SARIF export are byte-identical at any worker count,
/// over a real application's full artifact set.
#[test]
fn check_report_is_worker_count_invariant_end_to_end() {
    let app = pas2p_apps::by_name("masterworker", 8).unwrap();
    let base = cluster_a();
    let (trace, _) = run_traced(
        app.as_ref(),
        &base,
        MappingPolicy::Block,
        InstrumentationModel::default(),
    );
    let logical = pas2p_order(&trace);
    let cfg = SimilarityConfig::default();
    let analysis = extract_phases(&logical, &cfg);
    let table = PhaseTable::from_analysis(&analysis, 0.01, 0, 1);
    let artifacts = Artifacts {
        trace: Some(&trace),
        logical: Some(&logical),
        analysis: Some(&analysis),
        table: Some(&table),
        similarity: cfg,
        ingest: None,
    };
    let baseline = CheckEngine::with_default_rules().run(&artifacts);
    let rendered = baseline.render();
    let sarif = pas2p_check::to_sarif(&baseline);
    assert!(!baseline.diagnostics.is_empty(), "wildcard infos expected");
    for workers in [1usize, 4, 8] {
        let report = CheckEngine::with_default_rules()
            .with_workers(workers)
            .run(&artifacts);
        assert_eq!(
            report.render(),
            rendered,
            "rendered report differs at {workers} workers"
        );
        assert_eq!(
            pas2p_check::to_sarif(&report),
            sarif,
            "SARIF export differs at {workers} workers"
        );
    }
}
