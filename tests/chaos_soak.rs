//! The chaos soak: the hardened prediction service under concurrent
//! clients, seeded connection misbehavior, and injected store faults.
//!
//! The acceptance bar, per the hardening issue:
//!
//! * ≥ 8 concurrent clients, half of them misbehaving (mid-request
//!   disconnects, slow-loris drips, garbage frames) per a seeded
//!   [`pas2p_faults::chaos_plan`];
//! * a store fault fired mid-soak surfaces as a classified error and
//!   the retry recovers — the store is never torn;
//! * warm predictions after the soak are byte-identical to the cold
//!   artifacts;
//! * every response is classified — `ok:true` or `ok:false` with a
//!   `code` — never a silent drop of an answered request;
//! * load-shedding and deadline expiry are deterministic for a fixed
//!   seed and gate sequence: exact `shed`/`timeout` counts, not "some".

#![cfg(unix)]

use pas2p::{serve_unix_with, Pas2p, PredictionService, ServeOptions};
use pas2p_faults::{chaos_plan, ChaosBehavior, FaultStoreIo, StoreFaultKind, StoreOp};
use pas2p_store::SignatureStore;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// The obs registry is process-global; serialize with the other suites.
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn temp_root(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU32, Ordering};
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "pas2p-chaos-{}-{}-{}",
        std::process::id(),
        tag,
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn connect(socket: &Path) -> UnixStream {
    let mut attempts = 0;
    loop {
        match UnixStream::connect(socket) {
            Ok(s) => return s,
            Err(_) if attempts < 500 => {
                attempts += 1;
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => panic!("connect {}: {e}", socket.display()),
        }
    }
}

/// Send one line, read one response line (riding out read-timeout
/// ticks), parse it. Panics if the peer closes without answering.
fn roundtrip(stream: &mut UnixStream, request: &str) -> serde_json::Value {
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    writeln!(stream, "{request}").expect("write request");
    read_response(&mut reader)
}

fn read_response(reader: &mut BufReader<UnixStream>) -> serde_json::Value {
    let mut line = String::new();
    let mut ticks = 0;
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => panic!("peer closed before responding"),
            Ok(_) => break,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // One tick per read-timeout period; a service that
                // stays silent this long has violated the contract.
                ticks += 1;
                assert!(ticks < 5, "no response after {ticks} read-timeout periods");
            }
            Err(e) => panic!("read: {e}"),
        }
    }
    serde_json::from_str(&line).unwrap_or_else(|e| panic!("unparseable response {line:?}: {e}"))
}

/// Every response must be classified: `ok:true`, or `ok:false` with a
/// non-empty `code` and `error`.
fn assert_classified(response: &serde_json::Value) {
    if response["ok"] == serde_json::json!(true) {
        return;
    }
    assert_eq!(response["ok"], serde_json::json!(false), "bad frame: {response}");
    let code = response["code"].as_str().unwrap_or_default();
    assert!(!code.is_empty(), "unclassified failure: {response}");
    assert!(
        response["error"].as_str().map(|e| !e.is_empty()).unwrap_or(false),
        "failure without message: {response}"
    );
}

/// The predict request a clean client with slot `i` sends.
fn clean_request(i: usize) -> String {
    let app = ["cg", "ft"][i % 2];
    let target = ["B", "C"][(i / 2) % 2];
    format!("{{\"op\":\"predict\",\"app\":\"{app}\",\"nprocs\":4,\"target\":\"{target}\"}}")
}

/// Send the clean request, retrying classified failures (a mid-soak
/// store fault fails exactly one attempt); returns the final `ok`
/// response. Never retries silently — every attempt must classify.
fn clean_client(socket: &Path, i: usize) -> serde_json::Value {
    let request = clean_request(i);
    for _attempt in 0..6 {
        let mut stream = connect(socket);
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .expect("read timeout");
        let response = roundtrip(&mut stream, &request);
        assert_classified(&response);
        if response["ok"] == serde_json::json!(true) {
            return response;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("clean client {i} never succeeded");
}

/// Interpret one chaos behavior against the live socket.
fn chaos_client(socket: &Path, i: usize, behavior: &ChaosBehavior) -> Option<serde_json::Value> {
    match behavior {
        ChaosBehavior::Clean => Some(clean_client(socket, i)),
        ChaosBehavior::Disconnect { after_bytes } => {
            let mut stream = connect(socket);
            let request = clean_request(i);
            let cut = (*after_bytes).min(request.len());
            let _ = stream.write_all(&request.as_bytes()[..cut]);
            // Dropped here: a client killed mid-request.
            None
        }
        ChaosBehavior::SlowLoris { chunk, delay_ms } => {
            let mut stream = connect(socket);
            stream
                .set_read_timeout(Some(Duration::from_secs(60)))
                .expect("read timeout");
            let mut line = clean_request(i);
            line.push('\n');
            for piece in line.as_bytes().chunks((*chunk).max(1)) {
                stream.write_all(piece).expect("drip");
                stream.flush().expect("flush");
                std::thread::sleep(Duration::from_millis(*delay_ms));
            }
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let response = read_response(&mut reader);
            assert_classified(&response);
            Some(response)
        }
        ChaosBehavior::Garbage { line } => {
            let mut stream = connect(socket);
            stream
                .set_read_timeout(Some(Duration::from_secs(60)))
                .expect("read timeout");
            let response = roundtrip(&mut stream, line);
            assert_eq!(response["ok"], serde_json::json!(false), "garbage must fail");
            assert_eq!(response["code"], serde_json::json!("invalid"));
            Some(response)
        }
    }
}

/// Every published object in the store must verify its checksum.
fn assert_store_untorn(store_root: &Path) {
    let dir = store_root.join("objects");
    let mut published = 0;
    for entry in std::fs::read_dir(&dir).expect("objects dir") {
        let path = entry.expect("entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        published += 1;
        let text = std::fs::read_to_string(&path).expect("object readable");
        let value: serde_json::Value =
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("torn object {path:?}: {e}"));
        let payload = value["payload"].as_str().expect("payload");
        let checksum = value["checksum"].as_str().expect("checksum");
        assert_eq!(
            pas2p_store::sha256_hex(payload.as_bytes()),
            checksum,
            "checksum mismatch in {path:?}"
        );
    }
    assert!(published > 0, "the soak must have published artifacts");
}

/// The full soak: 10 concurrent clients under the seeded chaos plan, a
/// torn store write injected mid-soak, then a warm verification round.
#[test]
fn soak_survives_chaos_clients_and_store_faults() {
    let _serial = serial();
    let root = temp_root("soak");
    let store_root = root.join("store");
    let socket = root.join("pas2p.sock");

    // The store's third write tears mid-stream: one unlucky request
    // gets a classified error and its retry must recover.
    let io = FaultStoreIo::new(vec![StoreFaultKind::TornWrite {
        on_op: 3,
        keep_per_mille: 400,
    }]);
    let fault_stats = io.stats();
    let store = SignatureStore::open_with_io(&store_root, Box::new(io)).expect("open store");
    let svc = PredictionService::new(Pas2p::default(), store, Box::new(pas2p_apps::by_name));

    let server_svc = svc.clone();
    let server_socket = socket.clone();
    let server = std::thread::spawn(move || {
        serve_unix_with(
            &server_svc,
            &server_socket,
            ServeOptions {
                workers: 4,
                queue_capacity: 32,
                max_connections: 32,
                drain: Duration::from_secs(5),
            },
        )
        .expect("serve");
    });

    let plan = chaos_plan(7, 10);
    let (clean, disconnect, loris, garbage) = plan.census();
    assert!(clean >= 5, "at least half the plan is clean: {}", plan.describe());
    assert!(
        disconnect + loris + garbage >= 3,
        "the plan actually misbehaves: {}",
        plan.describe()
    );

    // The soak proper: all 10 clients at once.
    let outcomes: Vec<Option<serde_json::Value>> = std::thread::scope(|scope| {
        let handles: Vec<_> = plan
            .clients
            .iter()
            .enumerate()
            .map(|(i, behavior)| {
                let socket = socket.clone();
                scope.spawn(move || chaos_client(&socket, i, behavior))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client")).collect()
    });

    // The injected store fault fired, and the clean clients all
    // recovered from it (assert_classified ran inside each client).
    assert!(fault_stats.faults_fired() >= 1, "the torn write fired");
    let cold: Vec<(usize, serde_json::Value)> = plan
        .clients
        .iter()
        .enumerate()
        .zip(&outcomes)
        .filter(|((_, b), _)| matches!(b, ChaosBehavior::Clean | ChaosBehavior::SlowLoris { .. }))
        .map(|((i, _), o)| (i, o.clone().expect("request-bearing client answered")))
        .collect();
    for (_, response) in &cold {
        assert_eq!(response["ok"], serde_json::json!(true));
    }

    // Warm verification round: every request-bearing client's artifact
    // is served from the store, byte-identical.
    for (i, cold_response) in &cold {
        let warm = clean_client(&socket, *i);
        assert_eq!(warm["result"]["cached"], serde_json::json!(true), "warm: {warm}");
        assert_eq!(
            warm["result"]["prediction"], cold_response["result"]["prediction"],
            "warm prediction must be byte-identical for client {i}"
        );
    }

    // Control plane after the storm, then a graceful shutdown.
    let mut admin = connect(&socket);
    admin
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let health = roundtrip(&mut admin, r#"{"op":"health"}"#);
    assert_eq!(health["result"]["accepting"], serde_json::json!(true));
    let stats = roundtrip(&mut admin, r#"{"op":"stats"}"#);
    assert!(stats["result"]["entries"].as_u64().unwrap() >= 4);
    let bye = roundtrip(&mut admin, r#"{"op":"shutdown"}"#);
    assert_eq!(bye["result"]["stopping"], serde_json::json!(true));
    server.join().expect("server thread");
    assert!(!socket.exists(), "socket removed on shutdown");

    assert_store_untorn(&store_root);

    // Optional CI artifact: one JSON line describing the soak.
    if let Ok(path) = std::env::var("PAS2P_SOAK_METRICS") {
        let mut summary = serde_json::json!({
            "plan": plan.describe(),
            "clients_clean": clean,
            "clients_disconnect": disconnect,
            "clients_slow_loris": loris,
            "clients_garbage": garbage,
            "store_faults_fired": fault_stats.faults_fired(),
            "shed": svc.serve_stats().shed(),
            "timeouts": svc.serve_stats().timeouts(),
            "entries": svc.store_len(),
        });
        summary["health"] = health["result"].clone();
        std::fs::write(&path, format!("{summary}\n")).expect("write soak metrics");
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// Load-shedding is deterministic, not probabilistic: with one worker
/// wedged behind a gated store write and a one-slot queue already
/// holding a request, the third request is shed with `code:"busy"` —
/// exactly one shed, every run.
#[test]
fn full_queue_sheds_exactly_one_request() {
    let _serial = serial();
    let root = temp_root("shed");
    let store_root = root.join("store");
    let socket = root.join("pas2p.sock");
    let gate = root.join("gate");

    // Every store write blocks until the gate file exists: the
    // deterministic stand-in for a slow disk.
    let io = FaultStoreIo::new(vec![StoreFaultKind::BlockOnGate {
        op: StoreOp::Write,
        on_op: 1,
        gate: gate.to_string_lossy().into_owned(),
    }]);
    let store = SignatureStore::open_with_io(&store_root, Box::new(io)).expect("open store");
    let svc = PredictionService::new(Pas2p::default(), store, Box::new(pas2p_apps::by_name));

    let server_svc = svc.clone();
    let server_socket = socket.clone();
    let server = std::thread::spawn(move || {
        serve_unix_with(
            &server_svc,
            &server_socket,
            ServeOptions {
                workers: 1,
                queue_capacity: 1,
                max_connections: 16,
                drain: Duration::from_secs(10),
            },
        )
        .expect("serve");
    });

    let poll_health = |probe: &mut UnixStream, want: &dyn Fn(&serde_json::Value) -> bool| {
        for _ in 0..1000 {
            let health = roundtrip(probe, r#"{"op":"health"}"#);
            if want(&health["result"]) {
                return health;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("health never reached the wanted state");
    };
    let mut probe = connect(&socket);
    probe
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");

    // Request 1 occupies the only worker (wedged at the gated write)...
    let first = std::thread::spawn({
        let socket = socket.clone();
        move || {
            let mut s = connect(&socket);
            s.set_read_timeout(Some(Duration::from_secs(120))).expect("timeout");
            roundtrip(&mut s, r#"{"op":"submit","app":"cg","nprocs":4}"#)
        }
    });
    poll_health(&mut probe, &|h| h["inflight"] == serde_json::json!(1));

    // ...request 2 fills the one queue slot...
    let second = std::thread::spawn({
        let socket = socket.clone();
        move || {
            let mut s = connect(&socket);
            s.set_read_timeout(Some(Duration::from_secs(120))).expect("timeout");
            roundtrip(&mut s, r#"{"op":"predict","app":"ft","nprocs":4,"target":"B"}"#)
        }
    });
    poll_health(&mut probe, &|h| h["queue_depth"] == serde_json::json!(1));

    // ...and request 3 must be shed, immediately and classified.
    let mut third = connect(&socket);
    third
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let shed = roundtrip(&mut third, r#"{"op":"submit","app":"ft","nprocs":4}"#);
    assert_eq!(shed["ok"], serde_json::json!(false));
    assert_eq!(shed["code"], serde_json::json!("busy"), "shed: {shed}");
    assert_eq!(shed["op"], serde_json::json!("submit"));
    let health = poll_health(&mut probe, &|h| h["shed"] == serde_json::json!(1));
    assert_eq!(health["result"]["shed"], serde_json::json!(1), "exactly one shed");

    // Open the gate: the wedged request and the queued one both finish.
    std::fs::write(&gate, b"open").expect("open gate");
    let first = first.join().expect("first client");
    assert_eq!(first["ok"], serde_json::json!(true), "first: {first}");
    let second = second.join().expect("second client");
    assert_eq!(second["ok"], serde_json::json!(true), "second: {second}");
    assert_eq!(svc.serve_stats().shed(), 1, "still exactly one shed");

    let bye = roundtrip(&mut probe, r#"{"op":"shutdown"}"#);
    assert_eq!(bye["ok"], serde_json::json!(true));
    server.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&root);
}

/// Deadline expiry is deterministic and classified: a request wedged
/// behind a closed gate answers `code:"timeout"` once its deadline
/// expires, the abandoned runner unwinds through the cancel check, and
/// the worker is free for the next request.
#[test]
fn deadline_expiry_answers_timeout_and_frees_the_worker() {
    let _serial = serial();
    let root = temp_root("deadline");
    let store_root = root.join("store");
    let socket = root.join("pas2p.sock");
    let gate = root.join("slow-disk-gate");

    let io = FaultStoreIo::new(vec![StoreFaultKind::BlockOnGate {
        op: StoreOp::Write,
        on_op: 1,
        gate: gate.to_string_lossy().into_owned(),
    }])
    // The gate honors the service's cancel token, so an abandoned
    // runner unwinds instead of blocking forever.
    .with_cancel_check(Box::new(pas2p::cancelled));
    let store = SignatureStore::open_with_io(&store_root, Box::new(io)).expect("open store");
    let svc = PredictionService::new(Pas2p::default(), store, Box::new(pas2p_apps::by_name))
        .with_deadline(Some(Duration::from_millis(400)));

    let server_svc = svc.clone();
    let server_socket = socket.clone();
    let server = std::thread::spawn(move || {
        serve_unix_with(
            &server_svc,
            &server_socket,
            ServeOptions {
                workers: 1,
                queue_capacity: 4,
                max_connections: 16,
                drain: Duration::from_secs(10),
            },
        )
        .expect("serve");
    });

    let mut client = connect(&socket);
    client
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    let answer = roundtrip(&mut client, r#"{"op":"submit","app":"cg","nprocs":4}"#);
    assert_eq!(answer["ok"], serde_json::json!(false));
    assert_eq!(answer["code"], serde_json::json!("timeout"), "answer: {answer}");
    assert_eq!(svc.serve_stats().timeouts(), 1, "exactly one timeout");

    // The worker is free again: the control plane answers, and a
    // health probe reports the timeout.
    let health = roundtrip(&mut client, r#"{"op":"health"}"#);
    assert_eq!(health["result"]["timeouts"], serde_json::json!(1));
    assert_eq!(health["result"]["deadline_ms"], serde_json::json!(400));
    // Open the gate before shutting down: the graceful shutdown's own
    // index flush is a store write and runs with no cancel token.
    std::fs::write(&gate, b"open for shutdown").expect("open gate");
    let bye = roundtrip(&mut client, r#"{"op":"shutdown"}"#);
    assert_eq!(bye["ok"], serde_json::json!(true));
    server.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&root);
}
