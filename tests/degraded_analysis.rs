//! Golden degraded-mode coverage: for every catalog application, losing
//! one rank's trace section must not kill the analysis. The recovering
//! ingest path fills the hole with an empty section, the model falls
//! back to local time for the orphaned communication, and the result is
//! a `Degraded` analysis carrying a populated `IngestReport` that names
//! the missing rank.

use pas2p::prelude::*;
use pas2p::Pas2p;
use pas2p_trace::RankHealth;

const APPS: &[&str] = &[
    "cg",
    "bt",
    "sp",
    "lu",
    "ft",
    "sweep3d",
    "smg2000",
    "pop",
    "moldy",
    "gromacs",
    "masterworker",
];

const DROPPED: u32 = 1;

#[test]
fn dropping_one_rank_degrades_but_never_kills_any_app() {
    let pas2p = Pas2p::default();
    let base = cluster_a();
    for name in APPS {
        let app = pas2p_apps::by_name(name, 8).expect("catalog app");
        let (trace, _) = run_traced(
            app.as_ref(),
            &base,
            MappingPolicy::Block,
            pas2p.instrumentation,
        );
        let plan = FaultPlan::new(0xD0D0).with(FaultKind::DropRank { rank: DROPPED });
        let (bytes, _log) = plan.inject(&trace);

        let analysis = pas2p
            .analyze_bytes(&app.name(), &app.workload(), &bytes)
            .unwrap_or_else(|e| panic!("{name}: degraded analysis failed: {e}"));

        assert_eq!(
            analysis.confidence,
            Confidence::Degraded,
            "{name}: a missing rank must degrade confidence"
        );
        let ingest = analysis
            .ingest
            .as_ref()
            .unwrap_or_else(|| panic!("{name}: degraded analysis must carry an ingest report"));
        assert!(ingest.is_degraded(), "{name}");
        assert_eq!(ingest.missing_ranks(), vec![DROPPED], "{name}");
        assert_eq!(ingest.ranks[DROPPED as usize].health, RankHealth::Missing);
        // The surviving ranks still produce a real analysis.
        assert_eq!(analysis.nprocs, 8, "{name}");
        assert!(analysis.trace_events > 0, "{name}");
        assert!(analysis.total_phases() > 0, "{name}");
    }
}

#[test]
fn degraded_confidence_rides_into_signature_and_prediction() {
    let pas2p = Pas2p::default();
    let base = cluster_a();
    let app = pas2p_apps::by_name("cg", 8).expect("catalog app");
    let (trace, _) = run_traced(
        app.as_ref(),
        &base,
        MappingPolicy::Block,
        pas2p.instrumentation,
    );
    let plan = FaultPlan::new(7).with(FaultKind::DropRank { rank: DROPPED });
    let (bytes, _) = plan.inject(&trace);
    let analysis = pas2p
        .analyze_bytes(&app.name(), &app.workload(), &bytes)
        .expect("cg survives a dropped rank");
    assert_eq!(analysis.confidence, Confidence::Degraded);

    let (signature, _) = pas2p.build_signature(app.as_ref(), &analysis, &base, MappingPolicy::Block);
    assert_eq!(
        signature.confidence,
        Confidence::Degraded,
        "the signature inherits the analysis confidence"
    );
    let prediction = pas2p
        .predict(app.as_ref(), &signature, &cluster_b(), MappingPolicy::Block)
        .expect("degraded signature still executes");
    assert_eq!(
        prediction.confidence,
        Confidence::Degraded,
        "the prediction inherits the signature confidence"
    );
}
