//! The resilience acceptance gate: the seeded fault matrix (truncation,
//! bit corruption, a dropped rank, duplicated events) crossed with three
//! catalog applications must run to completion with zero panics, classify
//! every job as `Degraded`/`Failed`/`TimedOut` with an `IngestReport`
//! attached, and produce a byte-identical batch digest for 1, 4 and 8
//! workers. Every trace the recovering decoder salvages must also
//! survive the full check engine — happens-before rules included — with
//! a worker-count-invariant report.

use pas2p::prelude::*;
use pas2p::{run_batch_with, BatchJob, BatchOptions, BatchStatus, Pas2p};

const APPS: &[&str] = &["cg", "moldy", "masterworker"];
const SEED: u64 = 42;

fn matrix_jobs() -> Vec<BatchJob> {
    let base = cluster_a();
    let mut jobs = Vec::new();
    for name in APPS {
        for (_label, plan) in fault_matrix(SEED) {
            let app = pas2p_apps::by_name(name, 8).expect("catalog app");
            jobs.push(BatchJob::new(app, base.clone()).with_fault(plan));
        }
    }
    jobs
}

#[test]
fn fault_matrix_completes_classified_and_deterministic() {
    let pas2p = Pas2p::default();
    let baseline = run_batch_with(
        &pas2p,
        matrix_jobs(),
        BatchOptions {
            workers: Some(1),
            ..BatchOptions::default()
        },
    );
    assert_eq!(baseline.results.len(), APPS.len() * 4);

    for r in &baseline.results {
        assert!(
            matches!(
                r.status,
                BatchStatus::Degraded | BatchStatus::Failed | BatchStatus::TimedOut
            ),
            "job {} ({}) under an injected fault must not report full \
             confidence, got {:?}",
            r.index,
            r.app_name,
            r.status
        );
        let ingest = r
            .ingest
            .as_ref()
            .unwrap_or_else(|| panic!("job {} ({}) carries no ingest report", r.index, r.app_name));
        assert!(
            ingest.is_degraded(),
            "job {} ({}): the injected fault left no ingest trail",
            r.index,
            r.app_name
        );
    }

    let digest = baseline.digest();
    assert!(!digest.is_empty());
    for workers in [4, 8] {
        let par = run_batch_with(
            &pas2p,
            matrix_jobs(),
            BatchOptions {
                workers: Some(workers),
                ..BatchOptions::default()
            },
        );
        assert_eq!(
            digest,
            par.digest(),
            "the batch digest must be byte-identical at {workers} workers"
        );
    }
}

/// Every faulted trace the recovering decoder can salvage goes through
/// the full check engine: no panics, and the report — including the
/// happens-before rules over a damaged trace — is identical whether the
/// rule families run sequentially or on a worker pool.
#[test]
fn recovered_faulted_traces_survive_the_full_check_engine() {
    let base = cluster_a();
    let pas2p = Pas2p::default();
    let mut salvaged = 0usize;
    for name in APPS {
        let app = pas2p_apps::by_name(name, 8).expect("catalog app");
        let (clean, _) = run_traced(
            app.as_ref(),
            &base,
            MappingPolicy::Block,
            pas2p.instrumentation,
        );
        for (label, plan) in fault_matrix(SEED) {
            let (bytes, _log) = plan.inject(&clean);
            let (trace, ingest) = decode_recovering(&bytes);
            let Some(trace) = trace else {
                continue; // nothing salvaged: nothing for the engine to chew
            };
            salvaged += 1;
            let artifacts = Artifacts {
                trace: Some(&trace),
                ingest: Some(&ingest),
                ..Artifacts::empty()
            };
            let sequential = CheckEngine::with_default_rules().run(&artifacts);
            let parallel = CheckEngine::with_default_rules()
                .with_workers(8)
                .run(&artifacts);
            assert_eq!(
                sequential.render(),
                parallel.render(),
                "{name}/{label}: check report must be worker-count invariant"
            );
            assert_eq!(sequential.diagnostics, parallel.diagnostics);
        }
    }
    assert!(
        salvaged >= APPS.len(),
        "the matrix must salvage at least one trace per app, got {salvaged}"
    );
}
