//! The resilience acceptance gate: the seeded fault matrix (truncation,
//! bit corruption, a dropped rank, duplicated events) crossed with three
//! catalog applications must run to completion with zero panics, classify
//! every job as `Degraded`/`Failed`/`TimedOut` with an `IngestReport`
//! attached, and produce a byte-identical batch digest for 1, 4 and 8
//! workers.

use pas2p::prelude::*;
use pas2p::{run_batch_with, BatchJob, BatchOptions, BatchStatus, Pas2p};

const APPS: &[&str] = &["cg", "moldy", "masterworker"];
const SEED: u64 = 42;

fn matrix_jobs() -> Vec<BatchJob> {
    let base = cluster_a();
    let mut jobs = Vec::new();
    for name in APPS {
        for (_label, plan) in fault_matrix(SEED) {
            let app = pas2p_apps::by_name(name, 8).expect("catalog app");
            jobs.push(BatchJob::new(app, base.clone()).with_fault(plan));
        }
    }
    jobs
}

#[test]
fn fault_matrix_completes_classified_and_deterministic() {
    let pas2p = Pas2p::default();
    let baseline = run_batch_with(
        &pas2p,
        matrix_jobs(),
        BatchOptions {
            workers: Some(1),
            ..BatchOptions::default()
        },
    );
    assert_eq!(baseline.results.len(), APPS.len() * 4);

    for r in &baseline.results {
        assert!(
            matches!(
                r.status,
                BatchStatus::Degraded | BatchStatus::Failed | BatchStatus::TimedOut
            ),
            "job {} ({}) under an injected fault must not report full \
             confidence, got {:?}",
            r.index,
            r.app_name,
            r.status
        );
        let ingest = r
            .ingest
            .as_ref()
            .unwrap_or_else(|| panic!("job {} ({}) carries no ingest report", r.index, r.app_name));
        assert!(
            ingest.is_degraded(),
            "job {} ({}): the injected fault left no ingest trail",
            r.index,
            r.app_name
        );
    }

    let digest = baseline.digest();
    assert!(!digest.is_empty());
    for workers in [4, 8] {
        let par = run_batch_with(
            &pas2p,
            matrix_jobs(),
            BatchOptions {
                workers: Some(workers),
                ..BatchOptions::default()
            },
        );
        assert_eq!(
            digest,
            par.digest(),
            "the batch digest must be byte-identical at {workers} workers"
        );
    }
}
