//! Observation must never perturb the simulation: the `Analysis` for
//! cg/16 on machine A must be byte-identical with observability enabled
//! vs disabled, once the host-wall-clock fields (which legitimately vary
//! run to run) are normalized out. Every virtual-clock quantity — trace
//! shape, phase structure, AET, the phase table — has to match exactly.

use pas2p::prelude::*;
use pas2p::{Analysis, Pas2p};
use pas2p_apps::{CgApp, Class};

/// Zero the host-clock fields and drop the embedded snapshot so the
/// comparison covers only simulation-derived state.
fn normalized_json(mut analysis: Analysis) -> String {
    analysis.tfat_seconds = 0.0;
    analysis.analysis.analysis_seconds = 0.0;
    analysis.metrics = None;
    serde_json::to_string_pretty(&analysis).unwrap()
}

#[test]
fn observability_does_not_perturb_the_analysis() {
    let app = CgApp {
        class: Class::A,
        nprocs: 16,
        iters: 15,
    };
    let pas2p = Pas2p::default();
    let base = cluster_a();

    pas2p_obs::set_enabled(false);
    let disabled = pas2p.analyze(&app, &base, MappingPolicy::Block);
    assert!(disabled.metrics.is_none());

    pas2p_obs::set_enabled(true);
    pas2p_obs::global().reset();
    let enabled = pas2p.analyze(&app, &base, MappingPolicy::Block);
    pas2p_obs::set_enabled(false);

    // With collection on, the snapshot rides along and is populated.
    let snap = enabled.metrics.clone().expect("snapshot missing");
    assert!(snap.counters["mpisim.messages"] > 0);
    assert!(!snap.stages.is_empty());

    assert_eq!(
        normalized_json(disabled),
        normalized_json(enabled),
        "observability changed the simulation outcome"
    );
}
