//! The signature repository's end-to-end contracts, exercised through
//! the prediction service: content addresses are execution-knob
//! invariant, warm predictions do no Stage-A work (pinned via obs
//! counters and stage profiles), corrupted entries recover by
//! recomputation, and the serve loop's cache hits are byte-identical
//! to cold computes.

use pas2p::{Pas2p, PredictionService};
use pas2p_store::SignatureStore;
use std::io::Cursor;
use std::path::{Path, PathBuf};

/// The obs registry is process-global; tests that enable it serialize
/// on this lock so concurrent tests don't pollute each other's
/// counters.
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn temp_root(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU32, Ordering};
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "pas2p-store-it-{}-{}-{}",
        std::process::id(),
        tag,
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn service_with(pas2p: Pas2p, root: &Path) -> PredictionService {
    let store = SignatureStore::open(root).expect("open store");
    PredictionService::new(pas2p, store, Box::new(pas2p_apps::by_name))
}

fn service(root: &Path) -> PredictionService {
    service_with(Pas2p::default(), root)
}

/// The store key is derived from what the signature *is* (trace bytes,
/// machine, config thresholds), never from how it was computed: the
/// extraction worker count must not move the address, and the stored
/// payload + checksum must be byte-identical across worker counts.
#[test]
fn digest_and_payload_are_stable_across_worker_counts() {
    let _serial = serial();
    let roots: Vec<PathBuf> = [1usize, 4]
        .iter()
        .map(|&parallelism| {
            let root = temp_root(&format!("par{parallelism}"));
            let mut pas2p = Pas2p::default();
            pas2p.similarity.parallelism = Some(parallelism);
            let svc = service_with(pas2p, &root);
            let outcome = svc.submit("cg", 4, "A").expect("submit");
            assert!(!outcome.cached);
            root
        })
        .collect();

    let objects: Vec<(String, serde_json::Value)> = roots
        .iter()
        .map(|root| {
            let objects_dir = root.join("objects");
            let mut files: Vec<_> = std::fs::read_dir(&objects_dir)
                .expect("objects dir")
                .map(|e| e.expect("entry").path())
                .collect();
            assert_eq!(files.len(), 1, "exactly one signature object");
            files.sort();
            let name = files[0].file_name().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&files[0]).expect("object file");
            (name, serde_json::from_str(&text).expect("object json"))
        })
        .collect();

    let (name_a, obj_a) = &objects[0];
    let (name_b, obj_b) = &objects[1];
    assert_eq!(name_a, name_b, "same content address at any worker count");
    assert_eq!(
        obj_a["payload"], obj_b["payload"],
        "stored payload must be byte-identical across worker counts"
    );
    assert_eq!(obj_a["checksum"], obj_b["checksum"]);
    for root in roots {
        let _ = std::fs::remove_dir_all(&root);
    }
}

/// The acceptance contract: a second predict for the same
/// (trace, machine, config) is served from the store — `store.hit`
/// grows, phase extraction does not run again (no new `extract_phases`
/// stage profile, no new similarity comparisons), and the prediction
/// JSON is byte-identical to the cold run's.
#[test]
fn warm_predict_does_no_stage_a_work_and_matches_cold_bytes() {
    let _serial = serial();
    let root = temp_root("warm");
    pas2p_obs::global().reset();
    pas2p_obs::set_enabled(true);

    let svc = service(&root);
    let cold = svc.predict("cg", 4, "A", "B").expect("cold predict");
    assert!(!cold.cached);
    let before = pas2p_obs::global().snapshot();

    let warm = svc.predict("cg", 4, "A", "B").expect("warm predict");
    let after = pas2p_obs::global().snapshot();
    pas2p_obs::set_enabled(false);
    pas2p_obs::global().reset();

    assert!(warm.cached, "second predict must be a store hit");
    assert_eq!(
        warm.prediction_json, cold.prediction_json,
        "cache hit must be byte-identical to the cold compute"
    );

    let hits = |s: &pas2p_obs::MetricsSnapshot| s.counters.get("store.hit").copied().unwrap_or(0);
    assert!(
        hits(&after) > hits(&before),
        "store.hit must grow on the warm predict ({} -> {})",
        hits(&before),
        hits(&after)
    );

    let extracts = |s: &pas2p_obs::MetricsSnapshot| {
        s.stages
            .iter()
            .filter(|p| p.name == "extract_phases")
            .count()
    };
    assert_eq!(
        extracts(&after),
        extracts(&before),
        "no phase extraction may run on the warm path"
    );
    let comparisons = |s: &pas2p_obs::MetricsSnapshot| {
        s.counters
            .get("phases.similarity_comparisons")
            .copied()
            .unwrap_or(0)
    };
    assert_eq!(
        comparisons(&after),
        comparisons(&before),
        "no similarity comparisons may run on the warm path"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// Corruption recovery through the service: a tampered object fails its
/// checksum on load, is evicted and reported, and the service
/// transparently recomputes — ending with a healthy cache again.
#[test]
fn corrupted_signature_recovers_by_recomputation() {
    let _serial = serial();
    let root = temp_root("corrupt");
    let svc = service(&root);
    let cold = svc.predict("ft", 4, "A", "B").expect("cold predict");
    drop(svc);

    // Tamper with every stored object: flip payload content behind the
    // store's back.
    let objects_dir = root.join("objects");
    for entry in std::fs::read_dir(&objects_dir).expect("objects dir") {
        let path = entry.expect("entry").path();
        let text = std::fs::read_to_string(&path).expect("object");
        std::fs::write(&path, text.replace("payload\":\"{", "payload\":\"{ ")).expect("tamper");
    }

    let svc = service(&root);
    let recomputed = svc.predict("ft", 4, "A", "B").expect("recomputed predict");
    assert!(
        !recomputed.cached,
        "tampered entries must not serve as cache hits"
    );
    assert_eq!(
        recomputed.prediction_json, cold.prediction_json,
        "recomputation reproduces the original canonical artifact"
    );
    assert!(svc.store_report().evicted_corrupt > 0);
    assert!(svc
        .store_diagnostics()
        .iter()
        .any(|d| d.code == "STORE-CORRUPT-001"));

    let warm = svc.predict("ft", 4, "A", "B").expect("warm predict");
    assert!(warm.cached, "the cache is healthy again after recompute");
    let _ = std::fs::remove_dir_all(&root);
}

/// Serve-loop smoke over 2 apps x 2 machines: cold round computes, warm
/// round hits, and the warm prediction values equal the cold ones.
#[test]
fn serve_loop_two_apps_two_machines_end_to_end() {
    let _serial = serial();
    let root = temp_root("e2e");
    let svc = service(&root);

    let mut input = String::new();
    for _round in 0..2 {
        for app in ["cg", "ft"] {
            for target in ["B", "C"] {
                input.push_str(&format!(
                    "{{\"op\":\"predict\",\"app\":\"{app}\",\"nprocs\":4,\"target\":\"{target}\"}}\n"
                ));
            }
        }
    }
    input.push_str("{\"op\":\"stats\"}\n{\"op\":\"shutdown\"}\n");

    let mut out = Vec::new();
    svc.serve(Cursor::new(input.as_str()), &mut out)
        .expect("serve");
    let lines: Vec<serde_json::Value> = std::str::from_utf8(&out)
        .unwrap()
        .lines()
        .map(|l| serde_json::from_str(l).expect("response json"))
        .collect();
    assert_eq!(lines.len(), 10, "8 predicts + stats + shutdown");

    let (cold, rest) = lines.split_at(4);
    let warm = &rest[..4];
    for (c, w) in cold.iter().zip(warm) {
        assert_eq!(c["ok"], serde_json::json!(true), "cold: {c}");
        assert_eq!(w["ok"], serde_json::json!(true), "warm: {w}");
        assert_eq!(c["result"]["cached"], serde_json::json!(false));
        assert_eq!(w["result"]["cached"], serde_json::json!(true));
        assert_eq!(
            c["result"]["prediction"], w["result"]["prediction"],
            "warm prediction must equal the cold one"
        );
        assert!(c["result"]["prediction"]["pet"].as_f64().unwrap() > 0.0);
    }
    let stats = &lines[8];
    // 2 signatures + 4 predictions.
    assert_eq!(stats["result"]["entries"], serde_json::json!(6));
    assert_eq!(lines[9]["result"]["stopping"], serde_json::json!(true));
    let _ = std::fs::remove_dir_all(&root);
}
