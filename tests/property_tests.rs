//! Property-based tests over the PAS2P core data structures and
//! invariants, driven by randomly generated (but deadlock-free) parallel
//! programs executed on the real runtime.

use proptest::prelude::*;

use pas2p_machine::{cluster_a, JitterModel, MappingPolicy, Work};
use pas2p_model::{lamport_order, pas2p_order};
use pas2p_mpisim::{run_app, Mpi, ReduceOp, SimConfig};
use pas2p_phases::{extract_phases, CellSig, SimilarityConfig};
use pas2p_trace::{format, EventKind, InstrumentationModel, Trace, TraceCollector, Traced};
use std::sync::Arc;

/// A deadlock-free communication round, randomly chosen.
#[derive(Debug, Clone)]
enum Round {
    /// Ring shift by `k`.
    Shift { k: u32, bytes: usize },
    /// Pairwise exchange with the rank XOR `mask`.
    Exchange { mask: u32, bytes: usize },
    /// World allreduce.
    Allreduce { len: usize },
    /// Barrier.
    Barrier,
    /// Gather to a root.
    Gather { root: u32 },
    /// Pure compute.
    Compute { flops: f64 },
}

fn round_strategy(n: u32) -> impl Strategy<Value = Round> {
    prop_oneof![
        (1..n.max(2), 1usize..2048).prop_map(|(k, bytes)| Round::Shift { k, bytes }),
        (0..ilog2(n).max(1), 1usize..2048)
            .prop_map(|(b, bytes)| Round::Exchange { mask: 1 << b, bytes }),
        (1usize..16).prop_map(|len| Round::Allreduce { len }),
        Just(Round::Barrier),
        (0..n).prop_map(|root| Round::Gather { root }),
        (1e5..1e8).prop_map(|flops| Round::Compute { flops }),
    ]
}

fn ilog2(n: u32) -> u32 {
    31 - n.leading_zeros()
}

fn run_rounds(n: u32, rounds: &[Round]) -> Trace {
    let mut machine = cluster_a();
    machine.jitter = JitterModel::none();
    let collector = Arc::new(TraceCollector::new(n, "prop", InstrumentationModel::free()));
    let cfg = SimConfig::new(machine, n, MappingPolicy::Block);
    let col = collector.clone();
    run_app(&cfg, move |ctx| {
        let rank = ctx.rank();
        let size = ctx.size();
        let mut t = Traced::new(ctx, &col);
        for (i, round) in rounds.iter().enumerate() {
            let tag = i as u32;
            match round {
                Round::Shift { k, bytes } => {
                    // The strategy draws shifts for the largest size;
                    // reduce into this run's world (0 = self-shift, fine).
                    let k = k % size;
                    let dest = (rank + k) % size;
                    let src = (rank + size - k) % size;
                    t.send(dest, tag, &vec![1u8; *bytes]);
                    t.recv(Some(src), Some(tag));
                }
                Round::Exchange { mask, bytes } => {
                    let peer = rank ^ mask;
                    if peer < size && peer != rank {
                        t.send(peer, tag, &vec![2u8; *bytes]);
                        t.recv(Some(peer), Some(tag));
                    }
                }
                Round::Allreduce { len } => {
                    t.allreduce_f64(&vec![1.0; *len], ReduceOp::Sum);
                }
                Round::Barrier => t.barrier(),
                Round::Gather { root } => {
                    // The strategy draws roots for the largest size; clamp
                    // into this run's world.
                    t.gather(*root % size, bytes::Bytes::from(vec![rank as u8]));
                }
                Round::Compute { flops } => t.compute(Work::flops(*flops)),
            }
        }
        t.finish();
    });
    Arc::into_inner(collector).unwrap().into_trace()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any trace from a real execution orders into a valid logical trace
    /// under both orderings, preserving every event.
    #[test]
    fn ordering_invariants_hold_for_random_programs(
        n in prop_oneof![Just(2u32), Just(3), Just(4), Just(8)],
        rounds in prop::collection::vec(round_strategy(8), 1..12),
    ) {
        let rounds: Vec<Round> = rounds;
        let trace = run_rounds(n, &rounds);
        prop_assert!(trace.validate().is_ok());

        for logical in [pas2p_order(&trace), lamport_order(&trace)] {
            prop_assert!(logical.validate_against(&trace).is_ok());
            prop_assert_eq!(logical.total_events(), trace.total_events());
            // Receives never precede their sends on the tick axis.
            let mut seen_sends = std::collections::HashSet::new();
            for tick in &logical.ticks {
                for e in &tick.events {
                    if e.kind == EventKind::Recv {
                        prop_assert!(
                            seen_sends.contains(&e.msg_id),
                            "recv of msg {} before its send", e.msg_id
                        );
                    }
                }
                for e in &tick.events {
                    if e.kind == EventKind::Send {
                        seen_sends.insert(e.msg_id);
                    }
                }
            }
        }
    }

    /// Phase occurrences always tile the logical trace contiguously and
    /// reconstruct the AET.
    #[test]
    fn phase_occurrences_tile_random_traces(
        n in prop_oneof![Just(2u32), Just(4)],
        rounds in prop::collection::vec(round_strategy(4), 1..10),
        repeats in 1usize..6,
    ) {
        let rounds: Vec<Round> = rounds;
        // Repeat the program to give the extractor something to merge.
        let repeated: Vec<Round> =
            std::iter::repeat_n(rounds, repeats).flatten().collect();
        let trace = run_rounds(n, &repeated);
        let logical = pas2p_order(&trace);
        let analysis = extract_phases(&logical, &SimilarityConfig::default());

        let mut spans: Vec<(usize, usize)> = analysis
            .phases
            .iter()
            .flat_map(|p| p.occurrences.iter().map(|o| (o.start_tick, o.end_tick)))
            .collect();
        spans.sort_unstable();
        if !logical.is_empty() {
            prop_assert_eq!(spans.first().unwrap().0, 0);
            prop_assert_eq!(spans.last().unwrap().1, logical.len());
            for w in spans.windows(2) {
                prop_assert_eq!(w[0].1, w[1].0);
            }
            let err = (analysis.reconstructed_aet() - analysis.aet).abs();
            prop_assert!(err <= 1e-6 * analysis.aet.max(1.0));
            // Weights sum to the number of occurrences.
            let occs: usize = analysis.phases.iter().map(|p| p.occurrences.len()).sum();
            let weights: u64 = analysis.phases.iter().map(|p| p.weight).sum();
            prop_assert_eq!(occs as u64, weights);
        }
    }

    /// The trace binary codec round-trips arbitrary real traces.
    #[test]
    fn trace_codec_roundtrips_random_traces(
        n in prop_oneof![Just(2u32), Just(4)],
        rounds in prop::collection::vec(round_strategy(4), 1..8),
    ) {
        let rounds: Vec<Round> = rounds;
        let trace = run_rounds(n, &rounds);
        let encoded = format::encode(&trace);
        prop_assert_eq!(encoded.len() as u64, trace.size_bytes());
        let decoded = format::decode(&encoded).unwrap();
        prop_assert_eq!(decoded, trace);
    }

    /// Cell similarity is reflexive and symmetric for arbitrary cells.
    #[test]
    fn similarity_is_reflexive_and_symmetric(
        size_a in 1u64..1_000_000,
        size_b in 1u64..1_000_000,
        ca in 0.0f64..10.0,
        cb in 0.0f64..10.0,
        kind_a in 0u8..2,
        kind_b in 0u8..2,
    ) {
        let cfg = SimilarityConfig::default();
        let mk = |k: u8, size, compute| CellSig {
            kind: if k == 0 { EventKind::Send } else { EventKind::Recv },
            peer_offset: Some(1),
            size,
            compute_before: compute,
        };
        let a = mk(kind_a, size_a, ca);
        let b = mk(kind_b, size_b, cb);
        prop_assert!(cfg.cells_similar(Some(&a), Some(&a)), "reflexive");
        prop_assert_eq!(
            cfg.cells_similar(Some(&a), Some(&b)),
            cfg.cells_similar(Some(&b), Some(&a)),
            "symmetric"
        );
    }

    /// The compressed codec round-trips arbitrary real traces up to
    /// nanosecond time quantization.
    #[test]
    fn compressed_codec_roundtrips_random_traces(
        n in prop_oneof![Just(2u32), Just(4)],
        rounds in prop::collection::vec(round_strategy(4), 1..8),
    ) {
        let rounds: Vec<Round> = rounds;
        let trace = run_rounds(n, &rounds);
        let packed = pas2p_trace::compress(&trace);
        let back = pas2p_trace::decompress(&packed).unwrap();
        prop_assert_eq!(back.nprocs, trace.nprocs);
        prop_assert_eq!(back.total_events(), trace.total_events());
        for (a, b) in trace.procs.iter().zip(&back.procs) {
            for (x, y) in a.events.iter().zip(&b.events) {
                prop_assert_eq!(x.kind, y.kind);
                prop_assert_eq!(x.peer, y.peer);
                prop_assert_eq!(x.size, y.size);
                prop_assert_eq!(x.msg_id, y.msg_id);
                prop_assert!((x.t_post - y.t_post).abs() < 1e-8);
                prop_assert!((x.t_complete - y.t_complete).abs() < 1e-8);
            }
        }
    }

    /// The compressed decoder never panics on garbage either.
    #[test]
    fn compressed_decoder_rejects_garbage(
        bytes in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let _ = pas2p_trace::decompress(&bytes);
    }

    /// The trace decoder never panics on arbitrary byte soup (failure
    /// injection: corrupted tracefiles must produce errors, not crashes).
    #[test]
    fn trace_decoder_rejects_garbage_gracefully(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let _ = format::decode(&bytes); // Ok or Err, never panic
    }

    /// Flipping a single byte of a valid trace either decodes to *some*
    /// trace or errors — never panics.
    #[test]
    fn trace_decoder_survives_single_byte_corruption(
        pos_frac in 0.0f64..1.0,
        val in any::<u8>(),
    ) {
        let trace = run_rounds(2, &[Round::Allreduce { len: 2 }]);
        let mut buf = format::encode(&trace);
        let pos = ((buf.len() - 1) as f64 * pos_frac) as usize;
        buf[pos] = val;
        let _ = format::decode(&buf);
    }

    /// Equation 1 is linear in the weights.
    #[test]
    fn prediction_is_linear_in_weights(
        ets in prop::collection::vec(1e-6f64..10.0, 1..8),
        weights in prop::collection::vec(1u64..100_000, 8),
        k in 2u64..5,
    ) {
        use pas2p_signature::{PhaseMeasurement, Prediction};
        let mk = |scale: u64| -> f64 {
            let ms: Vec<PhaseMeasurement> = ets
                .iter()
                .zip(&weights)
                .map(|(&et, &w)| PhaseMeasurement {
                    phase_id: 0,
                    weight: w * scale,
                    phase_et: et,
                    measured_span: et,
                    restart_cost: 0.0,
                })
                .collect();
            Prediction::from_measurements(
                "p".into(), "a".into(), "b".into(), 1, ms, 0.0,
            )
            .pet
        };
        let p1 = mk(1);
        let pk = mk(k);
        prop_assert!((pk - k as f64 * p1).abs() < 1e-6 * pk.abs().max(1.0));
    }
}
