//! Cross-crate integration tests: real applications through the full
//! PAS2P pipeline across machines.

use pas2p::prelude::*;
use pas2p::Pas2p;
use pas2p_apps::{by_name, CgApp, Class, MoldyApp, PopApp};

#[test]
fn every_catalog_app_completes_the_pipeline() {
    // Every application must run, analyze, construct and predict on a
    // small configuration without errors.
    let pas2p = Pas2p::default();
    let base = cluster_a();
    for name in [
        "cg", "bt", "sp", "lu", "ft", "sweep3d", "smg2000", "pop", "moldy", "gromacs",
    ] {
        let app = by_name(name, 8).unwrap();
        let (analysis, report) = pas2p
            .analyze_and_validate(app.as_ref(), &base, &base, MappingPolicy::Block)
            .unwrap_or_else(|e| panic!("{}: {}", name, e));
        assert!(
            analysis.total_phases() >= 1,
            "{}: no phases found",
            name
        );
        assert!(
            report.pete_or_inf() < 25.0,
            "{}: PETE {:.1}% out of band",
            name,
            report.pete_or_inf()
        );
    }
}

#[test]
fn prediction_differentiates_machines() {
    // The predicted times must track the target machine: CG moved to a
    // faster-network cluster should be predicted (and measured) faster.
    let pas2p = Pas2p::default();
    let base = cluster_a();
    let app = CgApp { class: Class::B, nprocs: 16, iters: 30 };
    let analysis = pas2p.analyze(&app, &base, MappingPolicy::Block);
    let (sig, _) = pas2p.build_signature(&app, &analysis, &base, MappingPolicy::Block);

    let ra = pas2p.validate(&app, &sig, &cluster_a(), MappingPolicy::Block).unwrap();
    let rc = pas2p.validate(&app, &sig, &cluster_c(), MappingPolicy::Block).unwrap();
    // The two machines genuinely differ for this app…
    assert!(
        (rc.aet - ra.aet).abs() / ra.aet > 0.02,
        "machines indistinguishable: {} vs {}",
        rc.aet,
        ra.aet
    );
    // …and the predictions must rank them the same way reality does.
    assert_eq!(
        rc.prediction.pet < ra.prediction.pet,
        rc.aet < ra.aet,
        "prediction must preserve the machines' ranking: PET {} vs {} | AET {} vs {}",
        rc.prediction.pet,
        ra.prediction.pet,
        rc.aet,
        ra.aet
    );
}

#[test]
fn signature_construction_is_cheaper_than_full_run_for_repetitive_apps() {
    let pas2p = Pas2p::default();
    let base = cluster_a();
    let app = MoldyApp { nprocs: 8, steps: 400, rebuild_every: 10, atoms_per_proc: 512 };
    let aet = run_plain(&app, &base, MappingPolicy::Block).makespan;
    let analysis = pas2p.analyze(&app, &base, MappingPolicy::Block);
    let (_, stats) = pas2p.build_signature(&app, &analysis, &base, MappingPolicy::Block);
    // Construction terminates after the last phase's measurement window;
    // for a long repetitive run that is well before the end.
    assert!(
        stats.run_makespan < 0.9 * aet,
        "construction {} !< AET {}",
        stats.run_makespan,
        aet
    );
}

#[test]
fn oversubscribed_prediction_tracks_oversubscribed_reality() {
    // The Table 7 scenario: predict for a target with half the cores.
    let pas2p = Pas2p::default();
    let base = cluster_c();
    let target = cluster_a();
    let app = PopApp { nprocs: 16, iters: 25, inner: 3 };
    let analysis = pas2p.analyze(&app, &base, MappingPolicy::Block);
    let (sig, _) = pas2p.build_signature(&app, &analysis, &base, MappingPolicy::Block);

    let full = pas2p::experiment::prediction_row(&app, &sig, &target, 16);
    let half = pas2p::experiment::prediction_row(&app, &sig, &target, 8);
    assert!(half.aet > full.aet, "halving cores must slow the app");
    assert!(half.pet > full.pet, "prediction must track the slowdown");
    assert!(half.pete < 15.0, "PETE {:.1}%", half.pete);
}

#[test]
fn analysis_is_deterministic_end_to_end() {
    let pas2p = Pas2p::default();
    let base = cluster_b();
    let app = CgApp { class: Class::A, nprocs: 8, iters: 20 };
    let a1 = pas2p.analyze(&app, &base, MappingPolicy::Block);
    let a2 = pas2p.analyze(&app, &base, MappingPolicy::Block);
    assert_eq!(a1.trace_events, a2.trace_events);
    assert_eq!(a1.total_phases(), a2.total_phases());
    assert_eq!(a1.table.rows.len(), a2.table.rows.len());
    for (r1, r2) in a1.table.rows.iter().zip(&a2.table.rows) {
        assert_eq!(r1.weight, r2.weight);
        assert_eq!(r1.start_counts(), r2.start_counts());
    }
}

#[test]
fn phase_table_json_is_portable() {
    // The phase table survives serialization — it is what ports across
    // ISAs (paper Appendix E).
    let pas2p = Pas2p::default();
    let base = cluster_a();
    let app = CgApp { class: Class::A, nprocs: 8, iters: 15 };
    let analysis = pas2p.analyze(&app, &base, MappingPolicy::Block);
    let json = analysis.table.to_json();
    let back = pas2p_phases::PhaseTable::from_json(&json).unwrap();
    assert_eq!(back, analysis.table);
}

#[test]
fn workload_change_requires_reanalysis() {
    // §7: "the prediction … would only be useful for the data set
    // employed in the construction of the signature". A signature built
    // for a small workload must underpredict a larger one.
    let pas2p = Pas2p::default();
    let base = cluster_a();
    let small = CgApp { class: Class::A, nprocs: 8, iters: 20 };
    let large = CgApp { class: Class::A, nprocs: 8, iters: 60 };
    let analysis = pas2p.analyze(&small, &base, MappingPolicy::Block);
    let (sig, _) = pas2p.build_signature(&small, &analysis, &base, MappingPolicy::Block);
    let pet_small = pas2p.predict(&small, &sig, &base, MappingPolicy::Block).unwrap().pet;
    let aet_large = run_plain(&large, &base, MappingPolicy::Block).makespan;
    assert!(
        pet_small < 0.6 * aet_large,
        "a small-workload signature cannot describe a 3x larger run"
    );
}
