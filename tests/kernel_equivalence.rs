//! The differential oracle for the SoA similarity kernel.
//!
//! The scalar cell-by-cell walk (`SimilarityKernel::Scalar`) is retained
//! in `crates/phases` purely as the reference implementation; this suite
//! pins the SoA kernel — columnar layout, band prefilters, LSH
//! bucketing, and its parallel fan-out — to it: over all eleven catalog
//! applications, clean *and* fault-recovered traces, and extraction
//! parallelism {None, 1, 4, 8}, the `PhaseAnalysis` and the rendered
//! `PhaseTable` must be byte-identical to what the sequential scalar
//! oracle produces. The skip counters the SoA kernel maintains must be
//! visible in the metrics snapshot.

use pas2p::prelude::*;
use pas2p::Pas2p;
use pas2p_phases::SimilarityKernel;

const APPS: &[&str] = &[
    "cg",
    "bt",
    "sp",
    "lu",
    "ft",
    "sweep3d",
    "smg2000",
    "pop",
    "moldy",
    "gromacs",
    "masterworker",
];

const PARALLELISM: &[Option<usize>] = &[None, Some(1), Some(4), Some(8)];
const NPROCS: u32 = 8;
const SEED: u64 = 42;

fn strip_timing(mut analysis: PhaseAnalysis) -> PhaseAnalysis {
    analysis.analysis_seconds = 0.0;
    analysis
}

fn cfg(kernel: SimilarityKernel, parallelism: Option<usize>) -> SimilarityConfig {
    SimilarityConfig {
        kernel,
        parallelism,
        ..SimilarityConfig::default()
    }
}

fn table_of(analysis: &PhaseAnalysis) -> PhaseTable {
    let sig = Pas2p::default().signature;
    PhaseTable::from_analysis(
        analysis,
        sig.relevance_threshold,
        sig.warmup_occurrences,
        sig.measure_occurrences,
    )
}

/// The differential check for one logical trace: the sequential scalar
/// walk is the oracle; every kernel × parallelism combination must
/// reproduce its `PhaseAnalysis` and `PhaseTable` byte for byte.
fn assert_kernels_equivalent(label: &str, lt: &LogicalTrace) -> PhaseAnalysis {
    let oracle = strip_timing(extract_phases(lt, &cfg(SimilarityKernel::Scalar, Some(1))));
    let oracle_json = serde_json::to_string(&oracle).expect("serialize oracle analysis");
    let oracle_table = table_of(&oracle).to_json();
    for &parallelism in PARALLELISM {
        for kernel in [SimilarityKernel::Scalar, SimilarityKernel::Soa] {
            let run = strip_timing(extract_phases(lt, &cfg(kernel, parallelism)));
            assert_eq!(
                oracle, run,
                "{label}: {kernel:?} kernel at parallelism {parallelism:?} \
                 diverged from the sequential scalar oracle"
            );
            assert_eq!(
                oracle_json.as_bytes(),
                serde_json::to_string(&run)
                    .expect("serialize analysis")
                    .as_bytes(),
                "{label}: {kernel:?}/{parallelism:?} analysis JSON must be byte-identical"
            );
            assert_eq!(
                oracle_table.as_bytes(),
                table_of(&run).to_json().as_bytes(),
                "{label}: {kernel:?}/{parallelism:?} phase table must be byte-identical"
            );
        }
    }
    oracle
}

/// Clean traces: every catalog application at 8 ranks.
#[test]
fn soa_kernel_is_byte_identical_to_oracle_on_all_apps() {
    let base = cluster_a();
    let pas2p = Pas2p::default();
    for name in APPS {
        let app = pas2p_apps::by_name(name, NPROCS).expect("catalog app");
        let (trace, _) = run_traced(
            app.as_ref(),
            &base,
            MappingPolicy::Block,
            pas2p.instrumentation,
        );
        let lt = pas2p_order(&trace);
        let oracle = assert_kernels_equivalent(name, &lt);
        assert!(
            oracle.total_phases() > 0,
            "{name}: the equivalence run must exercise a non-trivial table"
        );
    }
}

/// Fault-recovered traces: the seeded fault matrix over every catalog
/// application; each salvaged trace that still orders goes through the
/// same differential check.
#[test]
fn soa_kernel_is_byte_identical_to_oracle_on_fault_recovered_traces() {
    let base = cluster_a();
    let pas2p = Pas2p::default();
    let mut salvaged = 0usize;
    for name in APPS {
        let app = pas2p_apps::by_name(name, NPROCS).expect("catalog app");
        let (clean, _) = run_traced(
            app.as_ref(),
            &base,
            MappingPolicy::Block,
            pas2p.instrumentation,
        );
        for (label, plan) in fault_matrix(SEED) {
            let (bytes, _log) = plan.inject(&clean);
            let (trace, _ingest) = decode_recovering(&bytes);
            let Some(trace) = trace else {
                continue; // nothing salvaged: nothing to extract from
            };
            let Ok(lt) = try_pas2p_order(&trace) else {
                continue; // salvage too damaged to order
            };
            salvaged += 1;
            assert_kernels_equivalent(&format!("{name}/{label}"), &lt);
        }
    }
    assert!(
        salvaged >= APPS.len(),
        "the fault matrix must salvage at least one orderable trace per \
         app on average, got {salvaged}"
    );
}

/// The SoA kernel's skip counters must land in the metrics snapshot —
/// `extract.band.rejects` and `extract.lsh.skipped` are the observable
/// evidence the prefilters are wired in, `extract.soa.compares` the
/// count of full comparisons that survived them.
#[test]
fn skip_counters_are_visible_in_metrics() {
    let base = cluster_a();
    let pas2p = Pas2p::default();
    let app = pas2p_apps::by_name("cg", NPROCS).expect("catalog app");
    let (trace, _) = run_traced(
        app.as_ref(),
        &base,
        MappingPolicy::Block,
        pas2p.instrumentation,
    );
    let lt = pas2p_order(&trace);
    pas2p_obs::set_enabled(true);
    let analysis = extract_phases(&lt, &cfg(SimilarityKernel::Soa, Some(1)));
    let snapshot = pas2p_obs::global().snapshot();
    pas2p_obs::set_enabled(false);
    assert!(analysis.total_phases() > 0);
    for key in [
        "extract.band.rejects",
        "extract.lsh.skipped",
        "extract.soa.compares",
    ] {
        assert!(
            snapshot.counters.contains_key(key),
            "counter {key} missing from the metrics snapshot: {:?}",
            snapshot.counters.keys().collect::<Vec<_>>()
        );
    }
    assert!(
        snapshot.counters["extract.soa.compares"] > 0,
        "a non-trivial extraction must execute full comparisons"
    );
}
