//! Property suite for the SoA similarity kernel: over arbitrary
//! rectangular patterns and similarity configurations (including
//! degenerate thresholds), the SoA comparison must agree with the
//! scalar walk cell for cell, the band prefilter must never reject a
//! true match, and the LSH buckets must never split a matchable pair.
//! A final property pins whole-trace extraction: scalar and SoA kernels
//! produce identical `PhaseAnalysis` on randomly generated logical
//! traces, sequentially and on a worker pool.
//!
//! Patterns are generated rectangular (every row the same width) —
//! the only shape extraction produces (`width == nprocs`), and the
//! contract `SoaPattern` documents.

use proptest::prelude::*;

use pas2p_model::{LogicalEvent, LogicalTrace, Tick};
use pas2p_phases::{
    extract_phases, CellSig, PhaseAnalysis, SimilarityConfig, SimilarityKernel, SoaIndex,
    SoaPattern,
};
use pas2p_trace::{CollClass, EventKind};
use std::sync::Arc;

type Pattern = Vec<Vec<Option<CellSig>>>;

fn kind_strategy() -> impl Strategy<Value = EventKind> {
    prop_oneof![
        Just(EventKind::Send),
        Just(EventKind::Recv),
        Just(EventKind::Coll(CollClass::Barrier)),
        Just(EventKind::Coll(CollClass::Allreduce)),
        Just(EventKind::Coll(CollClass::Alltoall)),
    ]
}

/// One pattern cell: absent, or an event drawn from a pool of sizes and
/// compute times dense enough that similar, nearly-similar and wildly
/// dissimilar pairs all occur.
fn cell_strategy() -> impl Strategy<Value = Option<CellSig>> {
    let present = (
        kind_strategy(),
        prop_oneof![Just(None), (0i64..4).prop_map(Some)],
        prop_oneof![
            Just(0u64),
            Just(8u64),
            Just(64u64),
            Just(100u64),
            Just(1u64 << 40),
            1u64..4096,
        ],
        prop_oneof![
            Just(0.0f64),
            Just(1e-9f64),
            Just(0.01f64),
            Just(1.0f64),
            0.0f64..2.0,
        ],
    )
        .prop_map(|(kind, peer_offset, size, compute_before)| {
            Some(CellSig {
                kind,
                peer_offset,
                size,
                compute_before,
            })
        });
    prop_oneof![1 => Just(None), 3 => present]
}

/// A rectangular pattern: 1..=max_ticks rows of exactly `width` cells.
fn pattern_strategy(width: usize, max_ticks: usize) -> impl Strategy<Value = Pattern> {
    prop::collection::vec(
        prop::collection::vec(cell_strategy(), width..=width),
        1..=max_ticks,
    )
}

/// Two patterns sharing one width, so the scalar walk and the SoA
/// comparison see the same cell grid.
fn pattern_pair() -> impl Strategy<Value = (Pattern, Pattern)> {
    (1usize..4).prop_flat_map(|w| (pattern_strategy(w, 4), pattern_strategy(w, 4)))
}

/// Similarity configurations including the paper defaults and the
/// degenerate corners (zero thresholds, exact-match thresholds, an
/// unsatisfiable event fraction, a large noise floor).
fn config_strategy() -> impl Strategy<Value = SimilarityConfig> {
    (
        prop_oneof![Just(0.85f64), Just(1.0f64), Just(0.5f64), 0.0f64..1.0],
        prop_oneof![Just(0.85f64), Just(1.0f64), Just(0.0f64), 0.0f64..1.0],
        prop_oneof![
            Just(0.80f64),
            Just(1.0f64),
            Just(0.0f64),
            Just(1.5f64),
            0.0f64..1.0
        ],
        prop_oneof![Just(1e-7f64), Just(0.0f64), Just(0.5f64)],
    )
        .prop_map(
            |(compute_ratio, size_ratio, event_fraction, compute_floor)| SimilarityConfig {
                compute_ratio,
                size_ratio,
                event_fraction,
                compute_floor,
                ..SimilarityConfig::default()
            },
        )
}

/// Build a logical trace from (tick, process, kind, size, compute)
/// tuples — the same constructor the extraction unit tests use.
fn lt_of(nprocs: u32, cells: &[(usize, u32, EventKind, u64, f64)]) -> LogicalTrace {
    let max_tick = cells.iter().map(|c| c.0).max().unwrap_or(0);
    let mut ticks = vec![Tick::default(); max_tick + 1];
    let mut numbers = vec![0u64; nprocs as usize];
    let mut clock = 0.0;
    for &(t, p, kind, size, compute) in cells {
        clock += compute + 0.001;
        ticks[t].events.push(LogicalEvent {
            process: p,
            number: numbers[p as usize],
            kind,
            peer: Some((p + 1) % nprocs),
            size,
            involved: 1,
            msg_id: 0,
            comm_id: 0,
            compute_before: compute,
            duration: 0.001,
            t_post: clock - 0.001,
            t_complete: clock,
        });
        numbers[p as usize] += 1;
    }
    for t in &mut ticks {
        // Restore the logical-trace invariant: at most one event per
        // (tick, process), sorted by process.
        t.events.sort_by_key(|e| e.process);
        t.events.dedup_by_key(|e| e.process);
    }
    LogicalTrace { nprocs, ticks }
}

fn strip_timing(mut analysis: PhaseAnalysis) -> PhaseAnalysis {
    analysis.analysis_seconds = 0.0;
    analysis
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SoA similarity == scalar similarity: the boolean verdict and the
    /// exact (similar, total) score.
    #[test]
    fn soa_similarity_equals_scalar(
        cfg in config_strategy(),
        (a, b) in pattern_pair(),
    ) {
        let sa = SoaPattern::from_pattern(&a);
        let sb = SoaPattern::from_pattern(&b);
        prop_assert_eq!(
            cfg.phases_similar(&a, &b),
            cfg.soa_phases_similar(&sa, &sb),
            "verdict diverged"
        );
        prop_assert_eq!(
            cfg.phase_similarity_score(&a, &b),
            cfg.soa_similarity_score(&sa, &sb),
            "score diverged"
        );
    }

    /// The band prefilter is a necessary condition: it never rejects a
    /// pair the full comparison would match, in either orientation.
    #[test]
    fn banding_never_rejects_a_true_match(
        cfg in config_strategy(),
        (a, b) in pattern_pair(),
    ) {
        let sa = SoaPattern::from_pattern(&a);
        let sb = SoaPattern::from_pattern(&b);
        if cfg.soa_phases_similar(&sa, &sb) {
            prop_assert!(cfg.band_admits(&sa, &sb), "band rejected a true match");
            prop_assert!(cfg.band_admits(&sb, &sa), "band is orientation-sensitive");
        }
    }

    /// LSH buckets never split a matchable pair: the sketch keys exactly
    /// the tick count (the only similarity-invariant feature), so two
    /// patterns share a bucket iff they have equal length — and in
    /// particular identical patterns always share one.
    #[test]
    fn lsh_buckets_never_split_matchable_patterns(
        cfg in config_strategy(),
        (a, b) in pattern_pair(),
    ) {
        let sa = SoaPattern::from_pattern(&a);
        let sb = SoaPattern::from_pattern(&b);
        prop_assert_eq!(sa.sketch() == sb.sketch(), a.len() == b.len());
        if cfg.soa_phases_similar(&sa, &sb) {
            prop_assert_eq!(sa.sketch(), sb.sketch(), "bucket split a matchable pair");
        }
        prop_assert_eq!(
            sa.sketch(),
            SoaPattern::from_pattern(&a).sketch(),
            "identical patterns must share a bucket"
        );
    }

    /// The bucketed index returns the same first match as the sequential
    /// scalar walk over the known list.
    #[test]
    fn index_first_match_equals_sequential_scan(
        cfg in config_strategy(),
        (known, candidate) in (1usize..3).prop_flat_map(|w| (
            prop::collection::vec(pattern_strategy(w, 3), 0..8),
            pattern_strategy(w, 3),
        )),
    ) {
        let scalar_hit = known.iter().position(|k| cfg.phases_similar(k, &candidate));
        let mut index = SoaIndex::new();
        for k in &known {
            index.push(Arc::new(SoaPattern::from_pattern(k)));
        }
        let (soa_hit, stats) = index.first_match(&cfg, &SoaPattern::from_pattern(&candidate));
        prop_assert_eq!(scalar_hit, soa_hit);
        prop_assert!(
            stats.compares + stats.band_rejects + stats.lsh_skipped <= known.len() as u64,
            "every known phase is compared, band-rejected, or bucket-skipped at most once"
        );
    }

    /// Whole-trace extraction is kernel- and parallelism-invariant on
    /// randomly generated logical traces.
    #[test]
    fn extraction_is_kernel_invariant_on_random_traces(
        nprocs in 1u32..4,
        cells in prop::collection::vec(
            (0usize..12, 0u32..4, kind_strategy(), 1u64..512, 0.0f64..0.05),
            1..40,
        ),
    ) {
        let cells: Vec<(usize, u32, EventKind, u64, f64)> = cells
            .into_iter()
            .map(|(t, p, k, s, c)| (t, p % nprocs, k, s, c))
            .collect();
        let lt = lt_of(nprocs, &cells);
        let run = |kernel: SimilarityKernel, parallelism: Option<usize>| {
            let cfg = SimilarityConfig {
                kernel,
                parallelism,
                ..SimilarityConfig::default()
            };
            strip_timing(extract_phases(&lt, &cfg))
        };
        let oracle = run(SimilarityKernel::Scalar, Some(1));
        prop_assert_eq!(&oracle, &run(SimilarityKernel::Soa, Some(1)));
        prop_assert_eq!(&oracle, &run(SimilarityKernel::Soa, Some(4)));
        prop_assert_eq!(&oracle, &run(SimilarityKernel::Scalar, Some(4)));
    }
}
