//! Parallelism must be an implementation detail: the analysis pipeline
//! and the batch driver have to produce identical results for any worker
//! count. This suite pins that for all eleven catalog applications
//! (extraction parallelism None/1/4/8) and for the batch driver (worker
//! count and submission order).

use pas2p::prelude::*;
use pas2p::{run_batch, BatchJob, Pas2p};
use pas2p_phases::PhaseAnalysis;

/// Event tracing is process-global: while a timeline test has it
/// enabled, *any* concurrently running test would record its stage
/// spans into the shared stream and corrupt the byte-identity
/// comparison. Every test in this binary therefore serializes on this
/// lock.
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

const APPS: &[&str] = &[
    "cg",
    "bt",
    "sp",
    "lu",
    "ft",
    "sweep3d",
    "smg2000",
    "pop",
    "moldy",
    "gromacs",
    "masterworker",
];

/// Zero the host-clock field so the comparison covers only
/// simulation-derived structure.
fn strip_timing(mut analysis: PhaseAnalysis) -> PhaseAnalysis {
    analysis.analysis_seconds = 0.0;
    analysis
}

fn tool_with_parallelism(parallelism: Option<usize>) -> Pas2p {
    let mut pas2p = Pas2p::default();
    pas2p.similarity.parallelism = parallelism;
    pas2p
}

#[test]
fn extraction_is_parallelism_invariant_for_every_app() {
    let _serial = serial();
    let base = cluster_a();
    for name in APPS {
        let app = pas2p_apps::by_name(name, 8).expect("catalog app");
        let sequential = tool_with_parallelism(Some(1));
        let baseline = sequential.analyze(app.as_ref(), &base, MappingPolicy::Block);
        for parallelism in [None, Some(4), Some(8)] {
            let tool = tool_with_parallelism(parallelism);
            let par = tool.analyze(app.as_ref(), &base, MappingPolicy::Block);
            assert_eq!(
                strip_timing(baseline.analysis.clone()),
                strip_timing(par.analysis.clone()),
                "{name}: parallelism {parallelism:?} changed the phase analysis"
            );
            assert_eq!(
                baseline.table, par.table,
                "{name}: parallelism {parallelism:?} changed the phase table"
            );
            assert_eq!(baseline.trace_events, par.trace_events, "{name}");
            assert_eq!(
                baseline.aet_instrumented, par.aet_instrumented,
                "{name}: parallelism {parallelism:?} changed the virtual clock"
            );
        }
    }
}

/// The batch determinism surface: everything but host timing and the
/// metrics snapshot.
fn batch_keys(report: &pas2p::BatchReport) -> Vec<(usize, String, usize, PhaseAnalysis)> {
    report
        .results
        .iter()
        .map(|r| {
            let a = r.analysis.as_ref().expect("catalog jobs complete");
            (
                r.index,
                a.app_name.clone(),
                a.trace_events,
                strip_timing(a.analysis.clone()),
            )
        })
        .collect()
}

#[test]
fn batch_is_worker_count_invariant_over_the_catalog() {
    let _serial = serial();
    let pas2p = Pas2p::default();
    let jobs = || -> Vec<BatchJob> {
        APPS.iter()
            .map(|n| BatchJob::new(pas2p_apps::by_name(n, 8).expect("catalog app"), cluster_a()))
            .collect()
    };
    let baseline = run_batch(&pas2p, jobs(), Some(1));
    assert_eq!(baseline.results.len(), APPS.len());
    for workers in [4, 11] {
        let par = run_batch(&pas2p, jobs(), Some(workers));
        assert_eq!(
            batch_keys(&baseline),
            batch_keys(&par),
            "worker count {workers} changed the batch report"
        );
    }
}

/// Run `f` with event tracing on and return the recorded host events.
/// Callers hold the [`serial`] lock, so the drained stream contains
/// only this closure's events.
fn traced<T>(f: impl FnOnce() -> T) -> (T, Vec<pas2p_obs::events::Event>) {
    pas2p_obs::events::clear();
    pas2p_obs::set_tracing(true);
    let out = f();
    pas2p_obs::set_tracing(false);
    let events = pas2p_obs::events::take();
    (out, events)
}

/// The normalized timeline export must be byte-identical across
/// extraction parallelism: host wall-clock detail is stripped by
/// `normalized()`, and the virtual-time application tracks (including
/// the remapped message-flow ids and phase overlays) are deterministic
/// by construction.
#[test]
fn timeline_export_is_parallelism_invariant() {
    let _serial = serial();
    let base = cluster_a();
    let export = |parallelism: Option<usize>| -> String {
        let tool = tool_with_parallelism(parallelism);
        let app = pas2p_apps::by_name("cg", 8).expect("catalog app");
        let ((analysis, trace, _), events) =
            traced(|| tool.analyze_full(app.as_ref(), &base, MappingPolicy::Block));
        let doc =
            pas2p::compose_timeline(&events, Some(&trace), Some(&analysis.analysis), "cg");
        doc.normalized().to_json()
    };
    let baseline = export(Some(1));
    pas2p::validate_chrome_json(&baseline).expect("normalized export is valid Trace Event JSON");
    assert!(
        baseline.contains("\"rank 0\"") && baseline.contains("\"phases\""),
        "app tracks and phase overlay present"
    );
    assert!(
        baseline.contains("extract_phases"),
        "pipeline stage spans present"
    );
    for parallelism in [None, Some(4), Some(8)] {
        assert_eq!(
            baseline,
            export(parallelism),
            "extraction parallelism {parallelism:?} changed the normalized timeline"
        );
    }
}

/// Same contract for the batch driver: the self-profile timeline of a
/// batch run, normalized, must not depend on the worker count.
#[test]
fn batch_timeline_is_worker_count_invariant() {
    let _serial = serial();
    let pas2p = Pas2p::default();
    let export = |workers: usize| -> String {
        let jobs: Vec<BatchJob> = ["cg", "ft", "moldy"]
            .iter()
            .map(|n| BatchJob::new(pas2p_apps::by_name(n, 8).expect("catalog app"), cluster_a()))
            .collect();
        let (_, events) = traced(|| run_batch(&pas2p, jobs, Some(workers)));
        let doc = pas2p::compose_timeline(&events, None, None, "batch");
        doc.normalized().to_json()
    };
    let baseline = export(1);
    pas2p::validate_chrome_json(&baseline).expect("valid Trace Event JSON");
    assert!(baseline.contains("\"job 0: CG\""), "job spans present");
    for workers in [2, 3] {
        assert_eq!(
            baseline,
            export(workers),
            "worker count {workers} changed the normalized batch timeline"
        );
    }
}

#[test]
fn batch_is_submission_order_invariant() {
    let _serial = serial();
    let pas2p = Pas2p::default();
    let jobs = |names: &[&str]| -> Vec<BatchJob> {
        names
            .iter()
            .map(|n| BatchJob::new(pas2p_apps::by_name(n, 8).expect("catalog app"), cluster_a()))
            .collect()
    };
    let forward = run_batch(&pas2p, jobs(&["cg", "ft", "moldy"]), Some(3));
    let reverse = run_batch(&pas2p, jobs(&["moldy", "ft", "cg"]), Some(3));
    let fwd = batch_keys(&forward);
    let rev = batch_keys(&reverse);
    for (f, r) in fwd.iter().zip(rev.iter().rev()) {
        // Same job, mirrored submission slot: identical analysis.
        assert_eq!(f.1, r.1);
        assert_eq!(f.2, r.2);
        assert_eq!(f.3, r.3);
    }
}
