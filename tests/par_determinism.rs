//! Parallelism must be an implementation detail: the analysis pipeline
//! and the batch driver have to produce identical results for any worker
//! count. This suite pins that for all eleven catalog applications
//! (extraction parallelism None/1/4/8) and for the batch driver (worker
//! count and submission order).

use pas2p::prelude::*;
use pas2p::{run_batch, BatchJob, Pas2p};
use pas2p_phases::PhaseAnalysis;

const APPS: &[&str] = &[
    "cg",
    "bt",
    "sp",
    "lu",
    "ft",
    "sweep3d",
    "smg2000",
    "pop",
    "moldy",
    "gromacs",
    "masterworker",
];

/// Zero the host-clock field so the comparison covers only
/// simulation-derived structure.
fn strip_timing(mut analysis: PhaseAnalysis) -> PhaseAnalysis {
    analysis.analysis_seconds = 0.0;
    analysis
}

fn tool_with_parallelism(parallelism: Option<usize>) -> Pas2p {
    let mut pas2p = Pas2p::default();
    pas2p.similarity.parallelism = parallelism;
    pas2p
}

#[test]
fn extraction_is_parallelism_invariant_for_every_app() {
    let base = cluster_a();
    for name in APPS {
        let app = pas2p_apps::by_name(name, 8).expect("catalog app");
        let sequential = tool_with_parallelism(Some(1));
        let baseline = sequential.analyze(app.as_ref(), &base, MappingPolicy::Block);
        for parallelism in [None, Some(4), Some(8)] {
            let tool = tool_with_parallelism(parallelism);
            let par = tool.analyze(app.as_ref(), &base, MappingPolicy::Block);
            assert_eq!(
                strip_timing(baseline.analysis.clone()),
                strip_timing(par.analysis.clone()),
                "{name}: parallelism {parallelism:?} changed the phase analysis"
            );
            assert_eq!(
                baseline.table, par.table,
                "{name}: parallelism {parallelism:?} changed the phase table"
            );
            assert_eq!(baseline.trace_events, par.trace_events, "{name}");
            assert_eq!(
                baseline.aet_instrumented, par.aet_instrumented,
                "{name}: parallelism {parallelism:?} changed the virtual clock"
            );
        }
    }
}

/// The batch determinism surface: everything but host timing and the
/// metrics snapshot.
fn batch_keys(report: &pas2p::BatchReport) -> Vec<(usize, String, usize, PhaseAnalysis)> {
    report
        .results
        .iter()
        .map(|r| {
            let a = r.analysis.as_ref().expect("catalog jobs complete");
            (
                r.index,
                a.app_name.clone(),
                a.trace_events,
                strip_timing(a.analysis.clone()),
            )
        })
        .collect()
}

#[test]
fn batch_is_worker_count_invariant_over_the_catalog() {
    let pas2p = Pas2p::default();
    let jobs = || -> Vec<BatchJob> {
        APPS.iter()
            .map(|n| BatchJob::new(pas2p_apps::by_name(n, 8).expect("catalog app"), cluster_a()))
            .collect()
    };
    let baseline = run_batch(&pas2p, jobs(), Some(1));
    assert_eq!(baseline.results.len(), APPS.len());
    for workers in [4, 11] {
        let par = run_batch(&pas2p, jobs(), Some(workers));
        assert_eq!(
            batch_keys(&baseline),
            batch_keys(&par),
            "worker count {workers} changed the batch report"
        );
    }
}

#[test]
fn batch_is_submission_order_invariant() {
    let pas2p = Pas2p::default();
    let jobs = |names: &[&str]| -> Vec<BatchJob> {
        names
            .iter()
            .map(|n| BatchJob::new(pas2p_apps::by_name(n, 8).expect("catalog app"), cluster_a()))
            .collect()
    };
    let forward = run_batch(&pas2p, jobs(&["cg", "ft", "moldy"]), Some(3));
    let reverse = run_batch(&pas2p, jobs(&["moldy", "ft", "cg"]), Some(3));
    let fwd = batch_keys(&forward);
    let rev = batch_keys(&reverse);
    for (f, r) in fwd.iter().zip(rev.iter().rev()) {
        // Same job, mirrored submission slot: identical analysis.
        assert_eq!(f.1, r.1);
        assert_eq!(f.2, r.2);
        assert_eq!(f.3, r.3);
    }
}
