//! Quickstart: the whole PAS2P methodology in ~40 lines.
//!
//! Analyze the Moldy MD kernel on cluster A (the base machine), build its
//! signature, then predict its execution time on cluster B and compare
//! with the measured time — the paper's Fig 12 validation loop.
//!
//! Run with: `cargo run --release --example quickstart`

use pas2p::prelude::*;
use pas2p::Pas2p;
use pas2p_apps::MoldyApp;

fn main() {
    let app = MoldyApp {
        nprocs: 16,
        steps: 60,
        rebuild_every: 10,
        atoms_per_proc: 1024,
    };
    let base = cluster_a();
    let target = cluster_b();
    let pas2p = Pas2p::default();

    println!("== Stage A: analysis on {} ==", base.name);
    let analysis = pas2p.analyze(&app, &base, MappingPolicy::Block);
    println!(
        "traced {} events ({}), model+phases in {:.3}s",
        analysis.trace_events,
        pas2p::experiment::human_bytes(analysis.trace_bytes),
        analysis.tfat_seconds
    );
    println!(
        "phases: {} total, {} relevant (>= 1% of AET)",
        analysis.total_phases(),
        analysis.relevant_phases()
    );
    println!("\n{}", analysis.table);

    let (signature, stats) = pas2p.build_signature(&app, &analysis, &base, MappingPolicy::Block);
    println!(
        "signature: {} phases, {} of checkpoints, SCT {:.2}s",
        signature.phase_count(),
        pas2p::experiment::human_bytes(signature.checkpoint_bytes()),
        stats.sct
    );

    println!("\n== Stage B: prediction for {} ==", target.name);
    let report = pas2p
        .validate(&app, &signature, &target, MappingPolicy::Block)
        .expect("same ISA");
    for m in &report.prediction.measurements {
        println!(
            "phase {}: PhaseET {:.6}s x weight {} = {:.2}s",
            m.phase_id,
            m.phase_et,
            m.weight,
            m.contribution()
        );
    }
    println!(
        "\nPET {:.2}s vs AET {:.2}s -> PETE {:.2}% (accuracy {:.2}%)",
        report.prediction.pet,
        report.aet,
        report.pete_or_inf(),
        report.accuracy_percent().unwrap_or(f64::NAN)
    );
    println!(
        "SET {:.2}s = {:.2}% of AET — the signature is a small fraction of the run",
        report.prediction.set, report.set_vs_aet_percent
    );
}
