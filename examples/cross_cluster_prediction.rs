//! Cross-cluster prediction: build one signature per application on a
//! base machine and predict each application's runtime on every other
//! cluster — including the ISA-mismatch path (cluster D is Itanium, so
//! the signature must be reconstructed there, paper Appendix E).
//!
//! Run with: `cargo run --release --example cross_cluster_prediction`

use pas2p::prelude::*;
use pas2p::Pas2p;
use pas2p_apps::{CgApp, Class, Sweep3dApp};
use pas2p_signature::rebuild_signature;

fn main() {
    let pas2p = Pas2p::default();
    let base = cluster_a();
    let targets = [cluster_b(), cluster_c(), cluster_d()];

    let apps: Vec<Box<dyn MpiApp>> = vec![
        Box::new(CgApp { class: Class::B, nprocs: 16, iters: 30 }),
        Box::new(Sweep3dApp { nprocs: 16, grid_n: 60, iters: 6, k_blocks: 2 }),
    ];

    println!(
        "{:<10} {:<12} {:>10} {:>10} {:>8}  note",
        "app", "target", "PET(s)", "AET(s)", "PETE(%)"
    );
    for app in &apps {
        let analysis = pas2p.analyze(app.as_ref(), &base, MappingPolicy::Block);
        let (signature, _) =
            pas2p.build_signature(app.as_ref(), &analysis, &base, MappingPolicy::Block);

        for target in &targets {
            // Try the signature as-is; on an ISA mismatch, rebuild it on
            // the target from the ported phase table (Appendix E).
            let (report, note) =
                match pas2p.validate(app.as_ref(), &signature, target, MappingPolicy::Block) {
                    Ok(r) => (r, ""),
                    Err(_) => {
                        let (rebuilt, _) = rebuild_signature(
                            app.as_ref(),
                            &signature,
                            target,
                            MappingPolicy::Block,
                        );
                        let r = pas2p
                            .validate(app.as_ref(), &rebuilt, target, MappingPolicy::Block)
                            .expect("rebuilt signature matches ISA");
                        (r, "rebuilt for IA-64")
                    }
                };
            println!(
                "{:<10} {:<12} {:>10.2} {:>10.2} {:>8.2}  {}",
                app.name(),
                target.name,
                report.prediction.pet,
                report.aet,
                report.pete_or_inf(),
                note
            );
        }
    }
}
