//! Scheduler advisor: the paper's motivating use case (§1) — "accurate
//! performance estimations are instrumental in helping a system resource
//! scheduler efficiently schedule user jobs".
//!
//! Given one signature per queued job, the advisor predicts each job's
//! runtime on each cluster and at several core counts, then recommends a
//! placement. Predictions cost seconds (the SET), not the hours the full
//! applications would take.
//!
//! Run with: `cargo run --release --example scheduler_advisor`

use pas2p::experiment::{first_cores_mapping, prediction_row};
use pas2p::prelude::*;
use pas2p::Pas2p;
use pas2p_apps::{PopApp, Smg2000App};

struct Job {
    app: Box<dyn MpiApp>,
    label: &'static str,
}

fn main() {
    let pas2p = Pas2p::default();
    let base = cluster_a();
    let jobs = [
        Job { app: Box::new(PopApp { nprocs: 16, iters: 20, inner: 3 }), label: "ocean-16" },
        Job {
            app: Box::new(Smg2000App { nprocs: 16, n: 60, levels: 3, iters: 12 }),
            label: "multigrid-16",
        },
    ];
    let clusters = [cluster_a(), cluster_b(), cluster_c()];

    for job in &jobs {
        println!("== job {} ({} procs) ==", job.label, job.app.nprocs());
        let analysis = pas2p.analyze(job.app.as_ref(), &base, MappingPolicy::Block);
        let (signature, _) =
            pas2p.build_signature(job.app.as_ref(), &analysis, &base, MappingPolicy::Block);

        let mut best: Option<(String, u32, f64)> = None;
        println!("{}", pas2p::experiment::PredictionRow::header());
        for cluster in &clusters {
            for cores in [job.app.nprocs() / 2, job.app.nprocs()] {
                if cores == 0 || cores > cluster.total_cores() {
                    continue;
                }
                // Predict only — no full run needed for scheduling; the
                // row helper also validates so we can show the error the
                // scheduler would have eaten.
                let row = prediction_row(job.app.as_ref(), &signature, cluster, cores);
                println!("{}  on {}", row, cluster.name);
                let key = (cluster.name.clone(), cores, row.pet);
                if best.as_ref().map(|b| row.pet < b.2).unwrap_or(true) {
                    best = Some(key);
                }
            }
        }
        let (name, cores, pet) = best.unwrap();
        println!(
            "-> schedule on {} with {} cores (predicted {:.1}s)\n",
            name, cores, pet
        );
        // Demonstrate the mapping the scheduler would submit.
        let cluster = clusters.iter().find(|c| c.name == name).unwrap();
        let policy = first_cores_mapping(cluster, jobs[0].app.nprocs(), cores);
        let mapping = cluster.map(jobs[0].app.nprocs(), policy);
        println!(
            "   (oversubscribed: {})\n",
            mapping.is_oversubscribed()
        );
    }
}
