//! Phase explorer: the developer-facing use of PAS2P (§1, §7) — let the
//! user "concentrate on the significant portions of the application".
//!
//! Traces an application, shows the logical-trace statistics, dumps every
//! extracted phase with its weight, duration and share of the runtime,
//! and prints the Fig 7-style phase table.
//!
//! Run with: `cargo run --release --example phase_explorer [app] [nprocs]`

use pas2p::prelude::*;
use pas2p_model::pas2p_order;
use pas2p_phases::{extract_phases, PhaseTable, SimilarityConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let app_name = args.next().unwrap_or_else(|| "gromacs".to_string());
    let nprocs: u32 = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);

    let app = pas2p_apps::by_name(&app_name, nprocs)
        .unwrap_or_else(|| panic!("unknown application '{}'", app_name));
    let base = cluster_a();

    println!("tracing {} ({}) on {}…", app.name(), app.workload(), base.name);
    let (trace, report) = run_traced(
        app.as_ref(),
        &base,
        MappingPolicy::Block,
        InstrumentationModel::default(),
    );
    println!(
        "trace: {} events, {}, AET(PAS2P) {:.2}s",
        trace.total_events(),
        pas2p::experiment::human_bytes(trace.size_bytes()),
        report.makespan
    );

    let logical = pas2p_order(&trace);
    println!("logical trace: {} ticks", logical.len());

    let analysis = extract_phases(&logical, &SimilarityConfig::default());
    println!(
        "\n{} unique phases (analysis took {:.3}s):",
        analysis.total_phases(),
        analysis.analysis_seconds
    );
    println!(
        "{:<6} {:>7} {:>8} {:>12} {:>12} {:>9}",
        "phase", "ticks", "weight", "PhaseET(s)", "W*ET(s)", "share(%)"
    );
    for p in &analysis.phases {
        println!(
            "{:<6} {:>7} {:>8} {:>12.6} {:>12.3} {:>9.2}{}",
            p.id,
            p.len_ticks(),
            p.weight,
            p.mean_duration(),
            p.contribution(),
            100.0 * p.contribution() / analysis.aet,
            if p.contribution() >= 0.01 * analysis.aet {
                "  <- relevant"
            } else {
                ""
            }
        );
    }
    println!(
        "\ncoverage of relevant phases: {:.1}% of AET",
        100.0 * analysis.relevant_coverage(0.01)
    );

    let table = PhaseTable::from_analysis(&analysis, 0.01, 1, 24);
    println!("\n{}", table);
}
