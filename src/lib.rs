//! Workspace root of the PAS2P reproduction.
//!
//! This crate hosts the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`); the library surface simply
//! re-exports the stack. See the `pas2p` crate for the pipeline API and
//! `DESIGN.md` for the system inventory.

#![forbid(unsafe_code)]

pub use pas2p;
pub use pas2p_apps as apps;
pub use pas2p_obs as obs;
pub use pas2p_machine as machine;
pub use pas2p_model as model;
pub use pas2p_mpisim as mpisim;
pub use pas2p_phases as phases;
pub use pas2p_signature as signature;
pub use pas2p_trace as trace;
