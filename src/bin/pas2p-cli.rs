//! `pas2p-cli` — the PAS2P tool as a command-line utility.
//!
//! ```text
//! pas2p-cli list
//! pas2p-cli analyze   --app cg --nprocs 16 --base A [--out analysis.json]
//! pas2p-cli signature --app cg --nprocs 16 --base A [--out signature.json]
//! pas2p-cli predict   --app cg --nprocs 16 --signature signature.json --target B
//! pas2p-cli validate  --app cg --nprocs 16 --base A --target B
//! pas2p-cli check     --app cg --nprocs 16 --base A [--json] [--logical-out model.json]
//! pas2p-cli check     --logical model.json [--json]
//! pas2p-cli metrics   --analysis analysis.json
//! ```
//!
//! Applications come from the built-in catalog (`pas2p_apps::by_name`);
//! machines are the paper's clusters A–D. Analyses and signatures are
//! exchanged as JSON.
//!
//! Observability flags (valid on every command):
//!
//! * `--log-level LEVEL` — off|error|warn|info|debug|trace (or `PAS2P_LOG`)
//! * `--log-file FILE`   — append JSON-lines log records to FILE
//! * `--metrics FILE`    — enable metric collection and write the final
//!   `MetricsSnapshot` JSON to FILE (or set `PAS2P_OBS=1`)

use pas2p::prelude::*;
use pas2p::Pas2p;
use std::collections::HashMap;
use std::process::ExitCode;

const USAGE: &str = "usage:
  pas2p-cli list
  pas2p-cli analyze   --app NAME --nprocs N --base M [--out FILE]
  pas2p-cli signature --app NAME --nprocs N --base M [--out FILE]
  pas2p-cli predict   --app NAME --nprocs N --signature FILE --target M
  pas2p-cli predict   --app NAME --nprocs N --store DIR --target M [--base M]
  pas2p-cli serve     --store DIR [--socket PATH] [--evict-stale] [--workers K]
                      [--queue N] [--max-conns N] [--deadline-ms N] [--drain-ms N]
  pas2p-cli validate  --app NAME --nprocs N --base M --target M
  pas2p-cli check     --app NAME --nprocs N --base M [--json] [--logical-out FILE]
  pas2p-cli check     --logical FILE [--json]
  pas2p-cli check     --trace FILE [--json]
                      (any form also takes [--workers K] [--sarif FILE]
                       [--baseline FILE] [--write-baseline FILE])
  pas2p-cli metrics   --analysis FILE [--format text|prom]
  pas2p-cli batch     --apps NAME[,NAME...] --nprocs N --base M [--workers K] [--out FILE]
                      [--fault-seed N | --faults FILE] [--deadline-ms N] [--retries N] [--strict]
  pas2p-cli timeline  --app NAME --nprocs N --base M [--out FILE] [--normalize]
  pas2p-cli timeline  --trace FILE [--out FILE] [--normalize]
  pas2p-cli timeline  --validate FILE
  pas2p-cli bench-report [--nprocs N] [--base M] [--workers K] [--label S] [--record FILE]
machines: A, B, C, D (the paper's clusters)
batch: one Stage-A analysis per listed application over a worker pool
  (--workers defaults to the core count); the report order and content are
  independent of the worker count
  --fault-seed N   run each app under the seeded fault matrix (truncation,
                   corruption, dropped rank, duplicated events) through the
                   recovering ingest path
  --faults FILE    fault plans from a spec file (see pas2p-faults), one
                   batch job per app x plan
  --deadline-ms N  abandon any job still running after N milliseconds
  --retries N      retry a failed job up to N times (exponential backoff)
  --strict         exit 1 if any job failed or timed out (default exit 0)
timeline: export a Chrome Trace / Perfetto JSON timeline (open at
  ui.perfetto.dev). With --app, runs Stage A under event tracing and emits
  both the pipeline self-profile (wall clock) and the simulated
  application's per-rank virtual-time tracks with phase overlays; with
  --trace, rebuilds the application tracks from a binary trace file;
  --validate checks a previously exported file against the Trace Event
  schema; --normalize emits the worker-count-invariant normalized form
predict --store DIR: serve the prediction through the signature
  repository — the signature is analyzed at most once per (trace, base
  machine, config) and the canonical prediction JSON is cached, so a
  repeat invocation does no Stage-A work and returns identical bytes
  (--base defaults to A)
serve: long-running prediction service over newline-delimited JSON on
  stdin/stdout (one request per line, one response line each) or, with
  --socket PATH, a unix socket; ops: submit, predict, batch, stats,
  shutdown — e.g. {\"op\":\"predict\",\"app\":\"cg\",\"target\":\"B\"}
  --store DIR      the signature repository backing the service
  --socket PATH    listen on a unix socket instead of stdin
  --evict-stale    drop entries whose config fingerprint no longer
                   matches the current configuration before serving
  --workers K      socket mode: compute worker pool size (default 4)
  --queue N        socket mode: bounded request queue; a full queue sheds
                   new requests with a retryable \"busy\" error (default 64)
  --max-conns N    socket mode: concurrent connection cap (default 64)
  --deadline-ms N  per-request compute deadline; an overrunning request is
                   abandoned and answered with a \"timeout\" error
  --drain-ms N     socket mode: graceful-shutdown drain budget (default 5000)
  socket-mode extras: ops ping and health answer inline (never queued), so
  liveness probes work even when the compute pool is saturated
bench-report: run the full application suite through the batch driver and
  derive a schema-versioned performance record (TFAT, events/sec,
  jobs/sec, check-engine diagnostics/sec sequential vs parallel, and
  similarity-kernel timing: scalar oracle vs SoA extraction with the
  band/LSH skip counters);
  --record FILE appends it to a BENCH_*.json trajectory file, otherwise
  the record prints to stdout (--nprocs defaults to 8, --base to A)
check: runs the pas2p-check invariant rules over every pipeline artifact;
  exits 0 when clean, 1 on warnings, 2 on errors (--json for machine output);
  --logical-out dumps the logical trace JSON so it can be re-checked with
  --logical FILE (model rules only); --trace FILE decodes a binary trace
  with the recovering ingest path and checks the salvaged trace (INGEST-*
  rules report what was lost)
  --workers K         fan the rule families over K threads (the report is
                      byte-identical at any K)
  --sarif FILE        also write the report as a byte-stable SARIF 2.1.0 log
  --baseline FILE     suppress findings listed in FILE (exit code reflects
                      the remaining findings only)
  --write-baseline F  capture every current finding into F and exit 0
analysis (any command):
  --kernel K          similarity kernel: soa (default: columnar layout with
                      band prefilters and LSH bucketing) or scalar (the
                      reference walk); both produce byte-identical output
observability (any command):
  --log-level LEVEL   off|error|warn|info|debug|trace (default warn; env PAS2P_LOG)
  --log-file FILE     append JSON-lines log records to FILE (env PAS2P_LOG_FILE)
  --metrics FILE      collect metrics and write the snapshot JSON to FILE (env PAS2P_OBS=1)
  --trace-out FILE    record timeline events during the command and write the
                      pipeline self-profile as Chrome Trace JSON (env PAS2P_TRACE=1)
  --help, --version   print this help / the version and exit";

fn usage() -> ExitCode {
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

/// The two failure shapes of the CLI. Both exit 2, but only misuse of
/// the command line earns the usage dump; a bad *input* (unreadable,
/// empty or corrupt file) gets exactly one diagnostic line so scripts
/// and humans can see the actual problem.
enum CliError {
    /// Malformed invocation: unknown command, bad or missing flag.
    Usage(String),
    /// The invocation was fine but an input file was not.
    Input(String),
}

impl From<String> for CliError {
    fn from(msg: String) -> CliError {
        CliError::Usage(msg)
    }
}

impl From<&str> for CliError {
    fn from(msg: &str) -> CliError {
        CliError::Usage(msg.to_string())
    }
}

/// Shorthand for input-file failures inside `run`.
fn input(msg: String) -> CliError {
    CliError::Input(msg)
}

/// Flags that take no value; their presence maps to "true".
const BOOL_FLAGS: &[&str] = &["json", "strict", "normalize", "evict-stale"];

/// Parse `--flag value` pairs (and bare boolean flags), reporting exactly
/// which flag is malformed.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let key = arg
            .strip_prefix("--")
            .ok_or_else(|| format!("expected a --flag, got '{arg}'"))?;
        if key.is_empty() {
            return Err("bare '--' is not a flag".into());
        }
        if BOOL_FLAGS.contains(&key) {
            if flags.insert(key.to_string(), "true".into()).is_some() {
                return Err(format!("flag '--{key}' given twice"));
            }
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("flag '--{key}' is missing its value"))?;
        if flags.insert(key.to_string(), value.clone()).is_some() {
            return Err(format!("flag '--{key}' given twice"));
        }
        i += 2;
    }
    Ok(flags)
}

/// Apply `--log-level`/`--log-file`/`--metrics`; returns the metrics
/// output path when metric collection was requested.
fn apply_obs_flags(flags: &HashMap<String, String>) -> Result<Option<String>, String> {
    if let Some(level) = flags.get("log-level") {
        let level = pas2p_obs::Level::parse(level).ok_or_else(|| {
            format!("bad --log-level '{level}' (off|error|warn|info|debug|trace)")
        })?;
        pas2p_obs::logger().set_level(level);
    }
    if let Some(path) = flags.get("log-file") {
        pas2p_obs::logger()
            .set_file(path)
            .map_err(|e| format!("opening log file {path}: {e}"))?;
    }
    let metrics = flags.get("metrics").cloned();
    if metrics.is_some() {
        pas2p_obs::set_enabled(true);
    }
    Ok(metrics)
}

fn write_metrics(path: &str) -> Result<(), String> {
    let snapshot = pas2p_obs::global().snapshot();
    let json = serde_json::to_string_pretty(&snapshot).map_err(|e| e.to_string())?;
    std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!("wrote metrics snapshot to {path}");
    Ok(())
}

/// `--trace-out`: drain the event stream recorded during the command
/// and write the pipeline self-profile as Chrome Trace JSON.
fn write_trace_out(path: &str, label: &str) -> Result<(), String> {
    pas2p_obs::set_tracing(false);
    let events = pas2p_obs::events::take();
    let doc = pas2p::compose_timeline(&events, None, None, label);
    std::fs::write(path, doc.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
    eprintln!("wrote timeline ({} events) to {path}", doc.events.len());
    Ok(())
}

fn machine(flags: &HashMap<String, String>, key: &str) -> Result<MachineModel, String> {
    let name = flags.get(key).ok_or_else(|| format!("missing --{}", key))?;
    preset_by_name(name).ok_or_else(|| format!("unknown machine '{}'", name))
}

fn app(flags: &HashMap<String, String>) -> Result<Box<dyn MpiApp>, String> {
    let name = flags.get("app").ok_or("missing --app")?;
    let nprocs: u32 = flags
        .get("nprocs")
        .ok_or("missing --nprocs")?
        .parse()
        .map_err(|_| format!("bad --nprocs '{}'", flags["nprocs"]))?;
    pas2p_apps::by_name(name, nprocs).ok_or_else(|| format!("unknown application '{}'", name))
}

fn write_or_print(flags: &HashMap<String, String>, json: &str) -> Result<(), String> {
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, json).map_err(|e| format!("writing {}: {}", path, e))?;
            println!("wrote {}", path);
            Ok(())
        }
        None => {
            println!("{}", json);
            Ok(())
        }
    }
}

fn run(argv: &[String]) -> Result<ExitCode, CliError> {
    let Some((cmd, rest)) = argv.split_first() else {
        return Err("no command".into());
    };
    let flags = parse_flags(rest)?;
    let metrics_out = apply_obs_flags(&flags)?;
    let trace_out = flags.get("trace-out").cloned();
    if trace_out.is_some() {
        pas2p_obs::set_tracing(true);
    }
    let mut pas2p = Pas2p::default();
    if let Some(kernel) = flags.get("kernel") {
        pas2p.similarity.kernel = match kernel.as_str() {
            "soa" => SimilarityKernel::Soa,
            "scalar" => SimilarityKernel::Scalar,
            other => return Err(format!("unknown --kernel '{other}' (soa|scalar)").into()),
        };
    }
    let pas2p = pas2p;

    let result: Result<ExitCode, CliError> = match cmd.as_str() {
        "list" => {
            println!("applications (--app):");
            for name in [
                "cg",
                "bt",
                "sp",
                "lu",
                "ft",
                "sweep3d",
                "smg2000",
                "pop",
                "moldy",
                "gromacs",
                "masterworker",
            ] {
                let a = pas2p_apps::by_name(name, 16).unwrap();
                println!("  {:<12} {}", name, a.workload());
            }
            println!("machines (--base/--target): A, B, C, D");
            Ok(ExitCode::SUCCESS)
        }
        "analyze" => {
            let app = app(&flags)?;
            let base = machine(&flags, "base")?;
            let analysis = pas2p.analyze(app.as_ref(), &base, MappingPolicy::Block);
            eprintln!(
                "{}: {} events, {} phases ({} relevant), AET(PAS2P) {:.2}s",
                analysis.app_name,
                analysis.trace_events,
                analysis.total_phases(),
                analysis.relevant_phases(),
                analysis.aet_instrumented
            );
            let json = serde_json::to_string_pretty(&analysis).map_err(|e| e.to_string())?;
            write_or_print(&flags, &json)?;
            Ok(ExitCode::SUCCESS)
        }
        "signature" => {
            let app = app(&flags)?;
            let base = machine(&flags, "base")?;
            let analysis = pas2p.analyze(app.as_ref(), &base, MappingPolicy::Block);
            let (signature, stats) =
                pas2p.build_signature(app.as_ref(), &analysis, &base, MappingPolicy::Block);
            eprintln!(
                "constructed {} phases, {} checkpoint bytes, SCT {:.2}s",
                signature.phase_count(),
                signature.checkpoint_bytes(),
                stats.sct
            );
            let json = serde_json::to_string(&signature).map_err(|e| e.to_string())?;
            write_or_print(&flags, &json)?;
            Ok(ExitCode::SUCCESS)
        }
        "predict" if flags.contains_key("store") => {
            // Repository-backed path: the store analyzes at most once
            // per (trace, base, config) and serves repeat predictions
            // as canonical cached JSON.
            let name = flags.get("app").ok_or("missing --app")?.clone();
            let nprocs: u32 = flags
                .get("nprocs")
                .ok_or("missing --nprocs")?
                .parse()
                .map_err(|_| format!("bad --nprocs '{}'", flags["nprocs"]))?;
            let base = flags.get("base").map(String::as_str).unwrap_or("A");
            let target = flags.get("target").ok_or("missing --target")?.clone();
            let dir = flags.get("store").expect("guarded by match arm");
            let store = pas2p_store::SignatureStore::open(std::path::Path::new(dir))
                .map_err(|e| input(format!("opening store {dir}: {e}")))?;
            if !store.report().is_clean() {
                eprint!("{}", store.report().render());
            }
            let svc =
                pas2p::PredictionService::new(pas2p, store, Box::new(pas2p_apps::by_name));
            let outcome = svc.predict(&name, nprocs, base, &target).map_err(input)?;
            let value: serde_json::Value =
                serde_json::from_str(&outcome.prediction_json).map_err(|e| e.to_string())?;
            println!(
                "PET {:.3} s on {} (SET {:.3} s) [prediction: {}, signature: {}]",
                value["pet"].as_f64().unwrap_or(f64::NAN),
                outcome.target,
                value["set"].as_f64().unwrap_or(f64::NAN),
                if outcome.cached {
                    "cache hit"
                } else {
                    "computed"
                },
                if outcome.signature_cached {
                    "cache hit"
                } else {
                    "computed"
                },
            );
            Ok(ExitCode::SUCCESS)
        }
        "predict" => {
            let app = app(&flags)?;
            let target = machine(&flags, "target")?;
            let path = flags.get("signature").ok_or("missing --signature")?;
            let data = std::fs::read_to_string(path)
                .map_err(|e| input(format!("reading {}: {}", path, e)))?;
            let signature: Signature = serde_json::from_str(&data)
                .map_err(|e| input(format!("parsing {}: {}", path, e)))?;
            let prediction = pas2p
                .predict(app.as_ref(), &signature, &target, MappingPolicy::Block)
                .map_err(|e| e.to_string())?;
            println!(
                "PET {:.3} s on {} (SET {:.3} s, {} phases)",
                prediction.pet,
                target.name,
                prediction.set,
                prediction.measurements.len()
            );
            Ok(ExitCode::SUCCESS)
        }
        "validate" => {
            let app = app(&flags)?;
            let base = machine(&flags, "base")?;
            let target = machine(&flags, "target")?;
            let (_, report) = pas2p
                .analyze_and_validate(app.as_ref(), &base, &target, MappingPolicy::Block)
                .map_err(|e| e.to_string())?;
            println!(
                "PET {:.3} s | AET {:.3} s | PETE {:.2}% | SET/AET {:.2}%",
                report.prediction.pet,
                report.aet,
                report.pete_or_inf(),
                report.set_vs_aet_percent
            );
            Ok(ExitCode::SUCCESS)
        }
        "check" => {
            let engine = {
                let workers = match flags.get("workers") {
                    Some(w) => w
                        .parse::<usize>()
                        .ok()
                        .filter(|&w| w > 0)
                        .ok_or_else(|| format!("bad --workers '{w}'"))?,
                    None => 1,
                };
                CheckEngine::with_default_rules().with_workers(workers)
            };
            let report = if let Some(path) = flags.get("trace") {
                // Recovery mode: decode a binary trace with the
                // resync-capable ingest path and check whatever
                // survived; the INGEST-* rules report what was lost.
                let data =
                    std::fs::read(path).map_err(|e| input(format!("reading {}: {}", path, e)))?;
                if data.is_empty() {
                    return Err(input(format!("{path} is empty")));
                }
                let (trace, ingest) = decode_recovering(&data);
                if !flags.contains_key("json") {
                    eprint!("{}", ingest.render());
                }
                let artifacts = Artifacts {
                    trace: trace.as_ref(),
                    ingest: Some(&ingest),
                    ..Artifacts::empty()
                };
                engine.run(&artifacts)
            } else if let Some(path) = flags.get("logical") {
                // Artifact mode: check a previously exported logical
                // trace (model rules only — there is no physical trace
                // or phase analysis to cross-check against).
                let data = std::fs::read_to_string(path)
                    .map_err(|e| input(format!("reading {}: {}", path, e)))?;
                let logical: LogicalTrace = serde_json::from_str(&data)
                    .map_err(|e| input(format!("parsing {}: {}", path, e)))?;
                if !flags.contains_key("json") {
                    eprintln!(
                        "{}: checked {} ticks, {} events",
                        path,
                        logical.len(),
                        logical.total_events()
                    );
                }
                let artifacts = Artifacts {
                    logical: Some(&logical),
                    ..Artifacts::empty()
                };
                engine.run(&artifacts)
            } else {
                let app = app(&flags)?;
                let base = machine(&flags, "base")?;
                if let Some(out) = flags.get("logical-out") {
                    let (_, logical) = pas2p.model(app.as_ref(), &base, MappingPolicy::Block);
                    let json = serde_json::to_string(&logical).map_err(|e| e.to_string())?;
                    std::fs::write(out, json).map_err(|e| format!("writing {}: {}", out, e))?;
                    eprintln!("wrote logical trace to {}", out);
                }
                let analysis =
                    pas2p.analyze_checked_with(app.as_ref(), &base, MappingPolicy::Block, &engine);
                if !flags.contains_key("json") {
                    eprintln!(
                        "{}: checked {} events, {} phases (confidence: {})",
                        analysis.app_name,
                        analysis.trace_events,
                        analysis.total_phases(),
                        analysis.confidence
                    );
                }
                analysis.check.expect("analyze_checked attaches a report")
            };
            // Baseline handling: --write-baseline captures the current
            // findings and exits clean; --baseline filters them out of
            // the report (and the exit code) before rendering.
            if let Some(path) = flags.get("write-baseline") {
                let baseline = pas2p_check::Baseline::from_report(&report);
                std::fs::write(path, baseline.to_json())
                    .map_err(|e| format!("writing {}: {}", path, e))?;
                eprintln!(
                    "wrote baseline ({} finding(s)) to {}",
                    baseline.suppressed.len(),
                    path
                );
                return Ok(ExitCode::SUCCESS);
            }
            let report = match flags.get("baseline") {
                Some(path) => {
                    let text = std::fs::read_to_string(path)
                        .map_err(|e| input(format!("reading {}: {}", path, e)))?;
                    let baseline = pas2p_check::Baseline::from_json(&text)
                        .map_err(|e| input(format!("{}: {}", path, e)))?;
                    let (filtered, absorbed) = pas2p_check::apply_baseline(report, &baseline);
                    if absorbed > 0 {
                        eprintln!("baseline absorbed {} finding(s)", absorbed);
                    }
                    filtered
                }
                None => report,
            };
            if let Some(path) = flags.get("sarif") {
                std::fs::write(path, pas2p_check::to_sarif(&report))
                    .map_err(|e| format!("writing {}: {}", path, e))?;
                eprintln!("wrote SARIF report to {}", path);
            }
            if flags.contains_key("json") {
                let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
                println!("{}", json);
            } else {
                print!("{}", report.render());
            }
            Ok(ExitCode::from(report.exit_code()))
        }
        "batch" => {
            let names = flags.get("apps").ok_or("missing --apps")?;
            let nprocs: u32 = flags
                .get("nprocs")
                .ok_or("missing --nprocs")?
                .parse()
                .map_err(|_| format!("bad --nprocs '{}'", flags["nprocs"]))?;
            let base = machine(&flags, "base")?;
            let workers = match flags.get("workers") {
                Some(w) => Some(
                    w.parse::<usize>()
                        .ok()
                        .filter(|&w| w > 0)
                        .ok_or_else(|| format!("bad --workers '{w}'"))?,
                ),
                None => None,
            };
            // Fault injection: --fault-seed runs the built-in matrix,
            // --faults loads plans from a spec file. Mutually exclusive.
            let plans: Vec<(String, FaultPlan)> =
                match (flags.get("fault-seed"), flags.get("faults")) {
                    (Some(_), Some(_)) => {
                        return Err("--fault-seed and --faults are mutually exclusive".into());
                    }
                    (Some(seed), None) => {
                        let seed: u64 = seed
                            .parse()
                            .map_err(|_| format!("bad --fault-seed '{seed}'"))?;
                        fault_matrix(seed)
                            .into_iter()
                            .map(|(label, plan)| (label.to_string(), plan))
                            .collect()
                    }
                    (None, Some(path)) => {
                        let text = std::fs::read_to_string(path)
                            .map_err(|e| input(format!("reading {}: {}", path, e)))?;
                        pas2p_faults::parse_spec(&text)
                            .map_err(|e| input(format!("parsing {}: {}", path, e)))?
                            .into_iter()
                            .enumerate()
                            .map(|(i, plan)| (format!("plan{i}"), plan))
                            .collect()
                    }
                    (None, None) => Vec::new(),
                };
            let mut opts = pas2p::BatchOptions {
                workers,
                ..pas2p::BatchOptions::default()
            };
            if let Some(ms) = flags.get("deadline-ms") {
                let ms: u64 = ms
                    .parse()
                    .map_err(|_| format!("bad --deadline-ms '{ms}'"))?;
                opts.deadline = Some(std::time::Duration::from_millis(ms));
            }
            if let Some(n) = flags.get("retries") {
                opts.max_retries = n.parse().map_err(|_| format!("bad --retries '{n}'"))?;
            }
            let apps: Vec<(&str, Box<dyn MpiApp>)> = names
                .split(',')
                .map(|name| {
                    let name = name.trim();
                    pas2p_apps::by_name(name, nprocs)
                        .map(|app| (name, app))
                        .ok_or_else(|| format!("unknown application '{name}'"))
                })
                .collect::<Result<_, _>>()?;
            let mut jobs: Vec<pas2p::BatchJob> = Vec::new();
            for (name, app) in apps {
                if plans.is_empty() {
                    jobs.push(pas2p::BatchJob::new(app, base.clone()));
                } else {
                    // One job per app × plan; rebuild the app per plan so
                    // each job owns its own copy.
                    for (label, plan) in &plans {
                        let app = pas2p_apps::by_name(name, nprocs).expect("name validated above");
                        eprintln!("fault job: {name} × {label} ({})", plan.describe());
                        jobs.push(pas2p::BatchJob::new(app, base.clone()).with_fault(plan.clone()));
                    }
                }
            }
            let report = pas2p::run_batch_with(&pas2p, jobs, opts);
            eprint!("{}", report.render());
            if flags.contains_key("out") {
                let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
                write_or_print(&flags, &json)?;
            }
            if flags.contains_key("strict") && !report.all_completed() {
                return Ok(ExitCode::from(1));
            }
            Ok(ExitCode::SUCCESS)
        }
        "serve" => {
            let dir = flags.get("store").ok_or("missing --store")?;
            let mut store = pas2p_store::SignatureStore::open(std::path::Path::new(dir))
                .map_err(|e| input(format!("opening store {dir}: {e}")))?;
            if !store.report().is_clean() {
                eprint!("{}", store.report().render());
            }
            if flags.contains_key("evict-stale") {
                let fingerprint = pas2p_store::config_fingerprint(
                    &pas2p.similarity,
                    &pas2p.signature,
                    pas2p.instrumentation.per_event_seconds,
                );
                let evicted = store.evict_stale_configs(&fingerprint);
                if evicted > 0 {
                    eprintln!("evicted {evicted} entr(ies) with stale config fingerprints");
                }
            }
            eprintln!(
                "pas2p serve: store {dir} ({} entr(ies)), one JSON request per line",
                store.len()
            );
            let mut svc =
                pas2p::PredictionService::new(pas2p, store, Box::new(pas2p_apps::by_name));
            if let Some(ms) = flags.get("deadline-ms") {
                let ms: u64 = ms
                    .parse()
                    .map_err(|_| format!("bad --deadline-ms '{ms}'"))?;
                svc = svc.with_deadline(Some(std::time::Duration::from_millis(ms)));
            }
            let svc = svc;
            match flags.get("socket") {
                #[cfg(unix)]
                Some(path) => {
                    let mut opts = pas2p::ServeOptions::default();
                    if let Some(n) = flags.get("workers") {
                        opts.workers = n.parse().map_err(|_| format!("bad --workers '{n}'"))?;
                    }
                    if let Some(n) = flags.get("queue") {
                        opts.queue_capacity =
                            n.parse().map_err(|_| format!("bad --queue '{n}'"))?;
                    }
                    if let Some(n) = flags.get("max-conns") {
                        opts.max_connections =
                            n.parse().map_err(|_| format!("bad --max-conns '{n}'"))?;
                    }
                    if let Some(ms) = flags.get("drain-ms") {
                        let ms: u64 =
                            ms.parse().map_err(|_| format!("bad --drain-ms '{ms}'"))?;
                        opts.drain = std::time::Duration::from_millis(ms);
                    }
                    eprintln!(
                        "listening on unix socket {path} ({} workers, queue {})",
                        opts.workers, opts.queue_capacity
                    );
                    pas2p::serve_unix_with(&svc, std::path::Path::new(path), opts)
                        .map_err(|e| input(format!("serving on {path}: {e}")))?;
                }
                #[cfg(not(unix))]
                Some(_) => {
                    return Err("--socket requires a unix platform".into());
                }
                None => {
                    let stdin = std::io::stdin();
                    svc.serve(stdin.lock(), std::io::stdout())
                        .map_err(|e| input(format!("serving on stdin: {e}")))?;
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        "metrics" => {
            let path = flags.get("analysis").ok_or("missing --analysis")?;
            let data = std::fs::read_to_string(path)
                .map_err(|e| input(format!("reading {}: {}", path, e)))?;
            let analysis: pas2p::Analysis = serde_json::from_str(&data)
                .map_err(|e| input(format!("parsing {}: {}", path, e)))?;
            let snapshot = analysis.metrics.ok_or_else(|| {
                input(format!(
                    "{path} carries no metrics snapshot — rerun analyze with --metrics FILE \
                     or PAS2P_OBS=1"
                ))
            })?;
            match flags.get("format").map(String::as_str).unwrap_or("text") {
                "text" => print!("{}", snapshot.render()),
                "prom" | "prometheus" => print!("{}", snapshot.render_prometheus()),
                other => {
                    return Err(format!("bad --format '{other}' (text|prom)").into());
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        "timeline" => {
            if let Some(path) = flags.get("validate") {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| input(format!("reading {}: {}", path, e)))?;
                let stats = pas2p::validate_chrome_json(&text)
                    .map_err(|e| input(format!("{path}: {e}")))?;
                println!(
                    "{path}: valid Chrome Trace JSON — {} events ({} slices, {} instants, \
                     {} flows, {} metadata) across {} process lanes",
                    stats.events,
                    stats.slices,
                    stats.instants,
                    stats.flows,
                    stats.metadata,
                    stats.pids
                );
                Ok(ExitCode::SUCCESS)
            } else if let Some(path) = flags.get("trace") {
                // Rebuild the application timeline from a binary trace:
                // order it, extract phases for the overlay track, and
                // export the virtual-time domain (no host self-profile —
                // the run that produced the trace is long gone).
                let data =
                    std::fs::read(path).map_err(|e| input(format!("reading {}: {}", path, e)))?;
                let (trace, ingest) = decode_recovering(&data);
                let trace = trace.ok_or_else(|| {
                    input(format!(
                        "{path}: {}",
                        ingest
                            .fatal
                            .clone()
                            .unwrap_or_else(|| "trace unusable".into())
                    ))
                })?;
                let logical = try_pas2p_order(&trace)
                    .map_err(|e| input(format!("{path}: ordering failed: {e}")))?;
                let analysis = extract_phases(&logical, &pas2p.similarity);
                let mut doc = pas2p::compose_timeline(&[], Some(&trace), Some(&analysis), path);
                if flags.contains_key("normalize") {
                    doc = doc.normalized();
                }
                eprintln!(
                    "timeline: {} ranks, {} events, {} phases",
                    trace.nprocs,
                    trace.total_events(),
                    analysis.total_phases()
                );
                write_or_print(&flags, &doc.to_json())?;
                Ok(ExitCode::SUCCESS)
            } else {
                // Live mode: run Stage A under event tracing and compose
                // both domains — the pipeline self-profile on the wall
                // clock and the simulated application in virtual time.
                let app = app(&flags)?;
                let base = machine(&flags, "base")?;
                pas2p_obs::events::clear();
                pas2p_obs::set_tracing(true);
                let (analysis, trace, _logical) =
                    pas2p.analyze_full(app.as_ref(), &base, MappingPolicy::Block);
                pas2p_obs::set_tracing(false);
                let events = pas2p_obs::events::take();
                let mut doc = pas2p::compose_timeline(
                    &events,
                    Some(&trace),
                    Some(&analysis.analysis),
                    &analysis.app_name,
                );
                if flags.contains_key("normalize") {
                    doc = doc.normalized();
                }
                eprintln!(
                    "timeline: {} host events, {} ranks, {} app events, {} phases",
                    events.len(),
                    trace.nprocs,
                    trace.total_events(),
                    analysis.total_phases()
                );
                write_or_print(&flags, &doc.to_json())?;
                Ok(ExitCode::SUCCESS)
            }
        }
        "bench-report" => {
            let nprocs: u32 = match flags.get("nprocs") {
                Some(s) => s.parse().map_err(|_| format!("bad --nprocs '{s}'"))?,
                None => 8,
            };
            let base = match flags.get("base") {
                Some(_) => machine(&flags, "base")?,
                None => cluster_a(),
            };
            let workers = match flags.get("workers") {
                Some(w) => Some(
                    w.parse::<usize>()
                        .ok()
                        .filter(|&w| w > 0)
                        .ok_or_else(|| format!("bad --workers '{w}'"))?,
                ),
                None => None,
            };
            let label = flags
                .get("label")
                .cloned()
                .unwrap_or_else(|| "local".into());
            const SUITE: &[&str] = &[
                "cg",
                "bt",
                "sp",
                "lu",
                "ft",
                "sweep3d",
                "smg2000",
                "pop",
                "moldy",
                "gromacs",
                "masterworker",
            ];
            let jobs: Vec<pas2p::BatchJob> = SUITE
                .iter()
                .map(|n| {
                    pas2p::BatchJob::new(
                        pas2p_apps::by_name(n, nprocs).expect("catalog app"),
                        base.clone(),
                    )
                })
                .collect();
            let opts = pas2p::BatchOptions {
                workers,
                ..pas2p::BatchOptions::default()
            };
            let report = pas2p::run_batch_with(&pas2p, jobs, opts);
            let mut record = pas2p::bench_record(&report, &label, nprocs, &base.name);
            eprintln!(
                "bench-report: {}/{} jobs ok in {:.2}s ({} workers) — \
                 {:.0} events/s analysis, {:.2} jobs/s",
                record.jobs_ok,
                record.jobs,
                record.batch_wall_seconds,
                record.batch_workers,
                record.events_per_sec,
                record.jobs_per_sec
            );
            // Check-engine throughput: run the full rule set over one
            // analyzed suite member, sequentially and with a worker
            // pool, so the trajectory tracks diagnostics/sec alongside
            // the analysis numbers.
            {
                const CHECK_APP: &str = "masterworker";
                let app = pas2p_apps::by_name(CHECK_APP, nprocs).expect("catalog app");
                let (analysis, trace, logical) =
                    pas2p.analyze_full(app.as_ref(), &base, MappingPolicy::Block);
                let artifacts = Artifacts {
                    trace: Some(&trace),
                    logical: Some(&logical),
                    analysis: Some(&analysis.analysis),
                    table: Some(&analysis.table),
                    similarity: pas2p.similarity,
                    ingest: None,
                };
                let check_workers = record.batch_workers.max(2);
                let sequential = CheckEngine::with_default_rules();
                let parallel = CheckEngine::with_default_rules().with_workers(check_workers);
                let t = std::time::Instant::now();
                let seq_report = sequential.run(&artifacts);
                let sequential_seconds = t.elapsed().as_secs_f64();
                let t = std::time::Instant::now();
                let par_report = parallel.run(&artifacts);
                let parallel_seconds = t.elapsed().as_secs_f64();
                debug_assert_eq!(
                    seq_report.diagnostics, par_report.diagnostics,
                    "check engine must be worker-count invariant"
                );
                let diagnostics = seq_report.diagnostics.len() as u64;
                let stat = pas2p::CheckBenchStat {
                    app: CHECK_APP.to_string(),
                    workers: check_workers,
                    diagnostics,
                    sequential_seconds,
                    parallel_seconds,
                    diagnostics_per_sec: if sequential_seconds > 0.0 {
                        diagnostics as f64 / sequential_seconds
                    } else {
                        0.0
                    },
                    speedup: if parallel_seconds > 0.0 {
                        sequential_seconds / parallel_seconds
                    } else {
                        0.0
                    },
                };
                eprintln!(
                    "check-engine: {} diagnostics over {} in {:.4}s sequential, \
                     {:.4}s at {} workers (speedup {:.2}x)",
                    stat.diagnostics,
                    stat.app,
                    stat.sequential_seconds,
                    stat.parallel_seconds,
                    stat.workers,
                    stat.speedup
                );
                record.check = Some(stat);
            }
            // Similarity-kernel timing: the same logical trace extracted
            // with the scalar reference walk and with the SoA kernel,
            // sequentially and over a worker pool. The outputs are
            // byte-identical by construction (tests/kernel_equivalence.rs);
            // the record tracks the wall clock and the prefilter skip
            // counters.
            {
                // Catalog apps at suite scale stay under ~12 known
                // phases — far below the regime where the candidate-vs-
                // known comparisons dominate TFAT — so the kernel is
                // timed over a phase-diverse ring workload where the
                // known-phase list actually grows. Every variant has the
                // same communication *structure* (the scalar walk's O(1)
                // length check never helps) but different sizes and
                // compute, so the scalar path must score the full grid
                // against known phases while the band prefilter rejects
                // them from the precomputed stats.
                const KERNEL_APP: &str = "varied-ring";
                const VARIANTS: usize = 144;
                const REPS: usize = 720;
                let logical = {
                    let mut machine = base.clone();
                    machine.jitter = pas2p_machine::JitterModel::none();
                    let collector = std::sync::Arc::new(TraceCollector::new(
                        nprocs,
                        KERNEL_APP,
                        InstrumentationModel::free(),
                    ));
                    let sim = SimConfig::new(machine, nprocs, MappingPolicy::Block);
                    let col = collector.clone();
                    run_app(&sim, move |ctx| {
                        let size = ctx.size();
                        let rank = ctx.rank();
                        let mut t = Traced::new(ctx, &col);
                        let next = (rank + 1) % size;
                        let prev = (rank + size - 1) % size;
                        let payload = vec![0u8; (16 << 12) + 16 * 16];
                        for rep in 0..REPS {
                            let v = rep % VARIANTS;
                            let bytes = 16usize << (v % 12);
                            // Distinct per-send sizes keep the repetition
                            // scan from cutting the window mid-rep (one
                            // window per variant body); the per-send
                            // compute block carries the variant identity
                            // on every cell, so distinct variants stay
                            // distinct phases under the event fraction.
                            for s in 0..16u32 {
                                t.compute(Work::flops(1e4 * 1.2f64.powi(v as i32)));
                                t.send(next, s, &payload[..bytes + 16 * s as usize]);
                                t.recv(Some(prev), Some(s));
                            }
                            t.allreduce_f64(&[1.0], ReduceOp::Sum);
                        }
                        t.finish();
                    });
                    let trace = std::sync::Arc::into_inner(collector)
                        .expect("sim ranks joined")
                        .into_trace();
                    pas2p_order(&trace)
                };
                let kernel_workers = record.batch_workers.max(2);
                let cfg_of = |kernel, parallelism| SimilarityConfig {
                    kernel,
                    parallelism,
                    ..pas2p.similarity
                };
                let timed = |cfg: &SimilarityConfig| {
                    let t = std::time::Instant::now();
                    let analysis = extract_phases(&logical, cfg);
                    (t.elapsed().as_secs_f64(), analysis)
                };
                let (scalar_seconds, scalar) = timed(&cfg_of(SimilarityKernel::Scalar, Some(1)));
                // The skip counters come from the metrics registry:
                // enable it around the sequential SoA run and diff the
                // counter snapshots, restoring the prior state after.
                let was_enabled = pas2p_obs::enabled();
                pas2p_obs::set_enabled(true);
                let before = pas2p_obs::global().snapshot().counters;
                let (soa_seconds, soa) = timed(&cfg_of(SimilarityKernel::Soa, Some(1)));
                let after = pas2p_obs::global().snapshot().counters;
                pas2p_obs::set_enabled(was_enabled);
                let delta = |key: &str| {
                    after.get(key).copied().unwrap_or(0) - before.get(key).copied().unwrap_or(0)
                };
                let (soa_parallel_seconds, soa_par) =
                    timed(&cfg_of(SimilarityKernel::Soa, Some(kernel_workers)));
                debug_assert_eq!(
                    scalar.phases, soa.phases,
                    "kernels must produce identical phases"
                );
                debug_assert_eq!(
                    scalar.phases, soa_par.phases,
                    "the parallel SoA merge must produce identical phases"
                );
                let speedup = |den: f64| if den > 0.0 { scalar_seconds / den } else { 0.0 };
                let stat = pas2p::KernelBenchStat {
                    app: KERNEL_APP.to_string(),
                    workers: kernel_workers,
                    phases: scalar.total_phases() as u64,
                    scalar_seconds,
                    soa_seconds,
                    soa_parallel_seconds,
                    soa_speedup: speedup(soa_seconds),
                    total_speedup: speedup(soa_parallel_seconds),
                    band_rejects: delta("extract.band.rejects"),
                    lsh_skipped: delta("extract.lsh.skipped"),
                    soa_compares: delta("extract.soa.compares"),
                };
                eprintln!(
                    "kernel: {} phases over {} in {:.4}s scalar, {:.4}s soa \
                     ({:.2}x), {:.4}s soa at {} workers ({:.2}x); \
                     prefilters skipped {} (band {}, lsh {}), {} full compares",
                    stat.phases,
                    stat.app,
                    stat.scalar_seconds,
                    stat.soa_seconds,
                    stat.soa_speedup,
                    stat.soa_parallel_seconds,
                    stat.workers,
                    stat.total_speedup,
                    stat.band_rejects + stat.lsh_skipped,
                    stat.band_rejects,
                    stat.lsh_skipped,
                    stat.soa_compares
                );
                record.kernel = Some(stat);
            }
            match flags.get("record") {
                Some(path) => {
                    let len = pas2p::append_record(std::path::Path::new(path), &record)
                        .map_err(|e| input(e.to_string()))?;
                    println!("appended record #{len} to {path}");
                }
                None => {
                    let json = serde_json::to_string_pretty(&record).map_err(|e| e.to_string())?;
                    println!("{json}");
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command '{}'", other).into()),
    };

    if result.is_ok() {
        if let Some(path) = metrics_out {
            write_metrics(&path)?;
        }
        if let Some(path) = trace_out {
            write_trace_out(&path, cmd)?;
        }
    }
    result
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if argv.iter().any(|a| a == "--version" || a == "-V") {
        println!("pas2p-cli {}", env!("CARGO_PKG_VERSION"));
        return ExitCode::SUCCESS;
    }
    match run(&argv) {
        Ok(code) => code,
        Err(CliError::Usage(e)) => {
            eprintln!("error: {}", e);
            usage()
        }
        Err(CliError::Input(e)) => {
            // Bad input file: one diagnostic line, no usage dump.
            eprintln!("error: {}", e);
            ExitCode::from(2)
        }
    }
}
