//! `pas2p-cli` — the PAS2P tool as a command-line utility.
//!
//! ```text
//! pas2p-cli list
//! pas2p-cli analyze   --app cg --nprocs 16 --base A [--out analysis.json]
//! pas2p-cli signature --app cg --nprocs 16 --base A [--out signature.json]
//! pas2p-cli predict   --app cg --nprocs 16 --signature signature.json --target B
//! pas2p-cli validate  --app cg --nprocs 16 --base A --target B
//! ```
//!
//! Applications come from the built-in catalog (`pas2p_apps::by_name`);
//! machines are the paper's clusters A–D. Analyses and signatures are
//! exchanged as JSON.

use pas2p::prelude::*;
use pas2p::Pas2p;
use std::collections::HashMap;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  pas2p-cli list\n  pas2p-cli analyze   --app NAME --nprocs N --base M [--out FILE]\n  pas2p-cli signature --app NAME --nprocs N --base M [--out FILE]\n  pas2p-cli predict   --app NAME --nprocs N --signature FILE --target M\n  pas2p-cli validate  --app NAME --nprocs N --base M --target M\nmachines: A, B, C, D (the paper's clusters)"
    );
    ExitCode::from(2)
}

fn parse_flags(args: &[String]) -> Option<HashMap<String, String>> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i].strip_prefix("--")?;
        let value = args.get(i + 1)?;
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    Some(flags)
}

fn machine(flags: &HashMap<String, String>, key: &str) -> Result<MachineModel, String> {
    let name = flags
        .get(key)
        .ok_or_else(|| format!("missing --{}", key))?;
    preset_by_name(name).ok_or_else(|| format!("unknown machine '{}'", name))
}

fn app(flags: &HashMap<String, String>) -> Result<Box<dyn MpiApp>, String> {
    let name = flags.get("app").ok_or("missing --app")?;
    let nprocs: u32 = flags
        .get("nprocs")
        .ok_or("missing --nprocs")?
        .parse()
        .map_err(|_| "bad --nprocs")?;
    pas2p_apps::by_name(name, nprocs).ok_or_else(|| format!("unknown application '{}'", name))
}

fn write_or_print(flags: &HashMap<String, String>, json: &str) -> Result<(), String> {
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, json).map_err(|e| format!("writing {}: {}", path, e))?;
            println!("wrote {}", path);
            Ok(())
        }
        None => {
            println!("{}", json);
            Ok(())
        }
    }
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        return Err("no command".into());
    };
    let flags = parse_flags(rest).ok_or("malformed flags")?;
    let pas2p = Pas2p::default();

    match cmd.as_str() {
        "list" => {
            println!("applications (--app):");
            for name in [
                "cg", "bt", "sp", "lu", "ft", "sweep3d", "smg2000", "pop", "moldy", "gromacs",
                "masterworker",
            ] {
                let a = pas2p_apps::by_name(name, 16).unwrap();
                println!("  {:<12} {}", name, a.workload());
            }
            println!("machines (--base/--target): A, B, C, D");
            Ok(())
        }
        "analyze" => {
            let app = app(&flags)?;
            let base = machine(&flags, "base")?;
            let analysis = pas2p.analyze(app.as_ref(), &base, MappingPolicy::Block);
            eprintln!(
                "{}: {} events, {} phases ({} relevant), AET(PAS2P) {:.2}s",
                analysis.app_name,
                analysis.trace_events,
                analysis.total_phases(),
                analysis.relevant_phases(),
                analysis.aet_instrumented
            );
            let json = serde_json::to_string_pretty(&analysis.table)
                .map_err(|e| e.to_string())?;
            write_or_print(&flags, &json)
        }
        "signature" => {
            let app = app(&flags)?;
            let base = machine(&flags, "base")?;
            let analysis = pas2p.analyze(app.as_ref(), &base, MappingPolicy::Block);
            let (signature, stats) =
                pas2p.build_signature(app.as_ref(), &analysis, &base, MappingPolicy::Block);
            eprintln!(
                "constructed {} phases, {} checkpoint bytes, SCT {:.2}s",
                signature.phase_count(),
                signature.checkpoint_bytes(),
                stats.sct
            );
            let json = serde_json::to_string(&signature).map_err(|e| e.to_string())?;
            write_or_print(&flags, &json)
        }
        "predict" => {
            let app = app(&flags)?;
            let target = machine(&flags, "target")?;
            let path = flags.get("signature").ok_or("missing --signature")?;
            let data =
                std::fs::read_to_string(path).map_err(|e| format!("reading {}: {}", path, e))?;
            let signature: Signature =
                serde_json::from_str(&data).map_err(|e| e.to_string())?;
            let prediction = pas2p
                .predict(app.as_ref(), &signature, &target, MappingPolicy::Block)
                .map_err(|e| e.to_string())?;
            println!(
                "PET {:.3} s on {} (SET {:.3} s, {} phases)",
                prediction.pet,
                target.name,
                prediction.set,
                prediction.measurements.len()
            );
            Ok(())
        }
        "validate" => {
            let app = app(&flags)?;
            let base = machine(&flags, "base")?;
            let target = machine(&flags, "target")?;
            let (_, report) = pas2p
                .analyze_and_validate(app.as_ref(), &base, &target, MappingPolicy::Block)
                .map_err(|e| e.to_string())?;
            println!(
                "PET {:.3} s | AET {:.3} s | PETE {:.2}% | SET/AET {:.2}%",
                report.prediction.pet,
                report.aet,
                report.pete_percent,
                report.set_vs_aet_percent
            );
            Ok(())
        }
        other => Err(format!("unknown command '{}'", other)),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e);
            usage()
        }
    }
}
