//! `pas2p-check`: a static invariant checker and MPI communication
//! analyzer for the PAS2P pipeline.
//!
//! Every stage of the reproduction produces an artifact with hard
//! invariants behind it: the physical trace must pair sends with
//! receives (§3.1's event relation), the logical trace must respect the
//! ordering rules of §3.2 (causality, tick exclusivity, collective
//! alignment), and the phase analysis and table must keep the
//! bookkeeping that makes `PET = Σ PhaseETᵢ × Wᵢ` (§4) an identity
//! rather than an estimate. This crate checks all of them after the
//! fact, as a linter: artifacts in, a [`CheckReport`] of
//! [`Diagnostic`]s out.
//!
//! # Rule families
//!
//! * **Ingest** ([`ingest_rules`]) — `INGEST-FATAL-001` (unusable trace
//!   buffer), `INGEST-RANK-001` (a rank never appeared),
//!   `INGEST-TRUNC-001` (section truncated), `INGEST-REC-001` (records
//!   quarantined), `INGEST-DUP-001` (records renumbered) — what the
//!   recovering decoder had to do to the input.
//! * **Trace** ([`trace_rules`]) — `P2P-MATCH-001..005` (unmatched and
//!   mismatched point-to-point pairs), `WILD-RECV-001` (wildcard-source
//!   receives posted: where to look when a race is reported),
//!   `WFG-CYCLE-001` (the traced order deadlocks under deterministic
//!   replay).
//! * **Happens-before** ([`race_rules`], on the vector clocks of
//!   [`hb`]) — `MSG-RACE-001` (a wildcard receive's race changes the
//!   recorded event structure), `MSG-RACE-002` (a wildcard can steal a
//!   deterministic receive's message), `WILD-RECV-002` (symmetric race:
//!   order-dependent match, stable structure), `DLK-POT-001` (an
//!   alternative wildcard matching wedges — a deadlock the committed
//!   replay cannot see), `SIG-STAB-001` (phase occurrences overlap a
//!   race window; the signature is order-sensitive).
//! * **Model** ([`model_rules`]) — `LT-RECV-001` (a receive placed
//!   before its send), `MODEL-TICK-001` (two events of one process in a
//!   tick), `LT-COLL-001` (a collective split across ticks),
//!   `MODEL-ORDER-001` (program order broken on the tick axis),
//!   `MODEL-CONS-001` (events lost or invented by the relayout),
//!   `MODEL-SPAN-001` (phase occurrences with negative global spans —
//!   clock trouble in the input).
//! * **Signature** ([`signature_rules`]) — `SIG-W-001` (weight ≠
//!   occurrence count), `SIG-OCC-001` (occurrences do not tile the
//!   trace), `SIG-SIM-001`/`SIG-SIM-002` (similarity bookkeeping),
//!   `SIG-REL-001` (table rows disagree with the analysis),
//!   `SIG-COV-001` (low relevant coverage), `PET-EQ-001` (the PET
//!   reconstruction identity fails).
//!
//! # Use
//!
//! ```
//! use pas2p_check::{Artifacts, CheckEngine};
//!
//! let engine = CheckEngine::with_default_rules();
//! let report = engine.run(&Artifacts::empty());
//! assert!(report.is_clean());
//! assert_eq!(report.exit_code(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod engine;
pub mod hb;
pub mod ingest_rules;
pub mod model_rules;
pub mod race_rules;
pub mod sarif;
pub mod signature_rules;
pub mod trace_rules;

pub use diag::{Diagnostic, Location, Severity};
pub use engine::{hit_metric, Artifacts, CheckEngine, CheckReport, Checker};
pub use hb::{HbAnalysis, VectorClock};
pub use ingest_rules::IngestRules;
pub use model_rules::ModelRules;
pub use race_rules::HbRules;
pub use sarif::{apply_baseline, to_sarif, Baseline, BASELINE_VERSION, SARIF_VERSION};
pub use signature_rules::{SignatureRuleConfig, SignatureRules};
pub use trace_rules::TraceRules;
