//! The rule engine: artifacts in, report out.

use crate::diag::{Diagnostic, Severity};
use pas2p_model::LogicalTrace;
use pas2p_phases::{PhaseAnalysis, PhaseTable, SimilarityConfig};
use pas2p_trace::{IngestReport, Trace};
use serde::{Deserialize, Serialize};

/// Everything a rule may look at. Each stage is optional so the engine
/// can check whatever subset of the pipeline the caller has — rules skip
/// silently when their inputs are absent.
#[derive(Clone, Copy)]
pub struct Artifacts<'a> {
    /// The physical trace (stage 1 output).
    pub trace: Option<&'a Trace>,
    /// The logically ordered trace (stage 2 output).
    pub logical: Option<&'a LogicalTrace>,
    /// The phase analysis (stage 3 output).
    pub analysis: Option<&'a PhaseAnalysis>,
    /// The phase table / signature contents (stage 4 output).
    pub table: Option<&'a PhaseTable>,
    /// Similarity thresholds the analysis was produced with — signature
    /// rules re-apply them.
    pub similarity: SimilarityConfig,
    /// What the recovering decoder did to the input (stage 0 output);
    /// present only when the trace came through `decode_recovering`.
    pub ingest: Option<&'a IngestReport>,
}

impl<'a> Artifacts<'a> {
    /// No artifacts at all (rules all skip; the report is clean).
    pub fn empty() -> Artifacts<'a> {
        Artifacts {
            trace: None,
            logical: None,
            analysis: None,
            table: None,
            similarity: SimilarityConfig::default(),
            ingest: None,
        }
    }
}

/// One family of related rules, run as a unit over the artifacts.
pub trait Checker {
    /// Stable name of the rule family (shows up in metrics).
    fn name(&self) -> &'static str;
    /// Inspect the artifacts, pushing one diagnostic per finding.
    fn check(&self, artifacts: &Artifacts<'_>, out: &mut Vec<Diagnostic>);
}

/// The result of one engine run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CheckReport {
    /// All findings, most severe first.
    pub diagnostics: Vec<Diagnostic>,
}

impl CheckReport {
    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    fn count(&self, s: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == s).count()
    }

    /// True when nothing rose above Info.
    pub fn is_clean(&self) -> bool {
        self.errors() == 0 && self.warnings() == 0
    }

    /// Whether any finding carries the given code.
    pub fn has_code(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Process exit code semantics: 0 clean, 1 warnings only, 2 errors.
    pub fn exit_code(&self) -> u8 {
        if self.errors() > 0 {
            2
        } else if self.warnings() > 0 {
            1
        } else {
            0
        }
    }

    /// Render the human-readable table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} finding(s) total\n",
            self.errors(),
            self.warnings(),
            self.diagnostics.len()
        ));
        out
    }
}

/// Metric name for a rule code's hit counter. `pas2p-obs` counters take
/// `&'static str`, so the mapping is a closed table; unknown codes fall
/// into a shared bucket.
pub fn hit_metric(code: &str) -> &'static str {
    match code {
        "P2P-MATCH-001" => "check.hit.p2p_match_001",
        "P2P-MATCH-002" => "check.hit.p2p_match_002",
        "P2P-MATCH-003" => "check.hit.p2p_match_003",
        "P2P-MATCH-004" => "check.hit.p2p_match_004",
        "P2P-MATCH-005" => "check.hit.p2p_match_005",
        "WILD-RECV-001" => "check.hit.wild_recv_001",
        "WFG-CYCLE-001" => "check.hit.wfg_cycle_001",
        "LT-RECV-001" => "check.hit.lt_recv_001",
        "LT-COLL-001" => "check.hit.lt_coll_001",
        "MODEL-TICK-001" => "check.hit.model_tick_001",
        "MODEL-ORDER-001" => "check.hit.model_order_001",
        "MODEL-CONS-001" => "check.hit.model_cons_001",
        "SIG-W-001" => "check.hit.sig_w_001",
        "SIG-OCC-001" => "check.hit.sig_occ_001",
        "SIG-SIM-001" => "check.hit.sig_sim_001",
        "SIG-SIM-002" => "check.hit.sig_sim_002",
        "SIG-REL-001" => "check.hit.sig_rel_001",
        "SIG-COV-001" => "check.hit.sig_cov_001",
        "SIG-ROW-001" => "check.hit.sig_row_001",
        "PET-EQ-001" => "check.hit.pet_eq_001",
        "PET-EQ-002" => "check.hit.pet_eq_002",
        "MODEL-SPAN-001" => "check.hit.model_span_001",
        "INGEST-FATAL-001" => "check.hit.ingest_fatal_001",
        "INGEST-RANK-001" => "check.hit.ingest_rank_001",
        "INGEST-REC-001" => "check.hit.ingest_rec_001",
        "INGEST-TRUNC-001" => "check.hit.ingest_trunc_001",
        "INGEST-DUP-001" => "check.hit.ingest_dup_001",
        _ => "check.hit.other",
    }
}

/// The diagnostics engine: an ordered list of rule families.
pub struct CheckEngine {
    checkers: Vec<Box<dyn Checker>>,
}

impl CheckEngine {
    /// An engine with no rules (add with [`CheckEngine::push`]).
    pub fn new() -> CheckEngine {
        CheckEngine {
            checkers: Vec::new(),
        }
    }

    /// The full shipped rule set: ingest, trace, model, and signature
    /// families.
    pub fn with_default_rules() -> CheckEngine {
        let mut e = CheckEngine::new();
        e.push(Box::new(crate::ingest_rules::IngestRules));
        e.push(Box::new(crate::trace_rules::TraceRules));
        e.push(Box::new(crate::model_rules::ModelRules));
        e.push(Box::new(crate::signature_rules::SignatureRules));
        e
    }

    /// Append a rule family; families run in insertion order.
    pub fn push(&mut self, c: Box<dyn Checker>) {
        self.checkers.push(c);
    }

    /// Run every rule family over the artifacts.
    ///
    /// When `pas2p-obs` is enabled, bumps a `check.hit.*` counter per
    /// finding and `check.runs` once.
    pub fn run(&self, artifacts: &Artifacts<'_>) -> CheckReport {
        let mut diagnostics = Vec::new();
        for c in &self.checkers {
            let before = diagnostics.len();
            c.check(artifacts, &mut diagnostics);
            if pas2p_obs::enabled() {
                for d in &diagnostics[before..] {
                    pas2p_obs::counter(hit_metric(&d.code)).add(1);
                }
            }
        }
        // Most severe first; ties keep rule order (stable sort).
        diagnostics.sort_by_key(|d| std::cmp::Reverse(d.severity));
        if pas2p_obs::enabled() {
            pas2p_obs::counter("check.runs").add(1);
            pas2p_obs::counter("check.findings").add(diagnostics.len() as u64);
        }
        CheckReport { diagnostics }
    }
}

impl Default for CheckEngine {
    fn default() -> Self {
        CheckEngine::with_default_rules()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Location;

    struct Fixed(Severity);
    impl Checker for Fixed {
        fn name(&self) -> &'static str {
            "fixed"
        }
        fn check(&self, _a: &Artifacts<'_>, out: &mut Vec<Diagnostic>) {
            out.push(Diagnostic::new("X-001", self.0, Location::none(), "x"));
        }
    }

    #[test]
    fn empty_artifacts_check_clean() {
        let report = CheckEngine::with_default_rules().run(&Artifacts::empty());
        assert!(report.is_clean());
        assert_eq!(report.exit_code(), 0);
    }

    #[test]
    fn report_sorts_and_counts_by_severity() {
        let mut e = CheckEngine::new();
        e.push(Box::new(Fixed(Severity::Info)));
        e.push(Box::new(Fixed(Severity::Error)));
        e.push(Box::new(Fixed(Severity::Warning)));
        let r = e.run(&Artifacts::empty());
        assert_eq!(r.diagnostics[0].severity, Severity::Error);
        assert_eq!(r.errors(), 1);
        assert_eq!(r.warnings(), 1);
        assert_eq!(r.exit_code(), 2);
        assert!(!r.is_clean());
        assert!(r.has_code("X-001"));
    }

    #[test]
    fn warning_only_exit_code_is_one() {
        let mut e = CheckEngine::new();
        e.push(Box::new(Fixed(Severity::Warning)));
        let r = e.run(&Artifacts::empty());
        assert_eq!(r.exit_code(), 1);
        assert!(r.render().contains("1 warning(s)"));
    }

    #[test]
    fn hit_metric_is_total() {
        assert_eq!(hit_metric("LT-RECV-001"), "check.hit.lt_recv_001");
        assert_eq!(hit_metric("NO-SUCH-999"), "check.hit.other");
    }
}
