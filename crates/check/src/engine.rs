//! The rule engine: artifacts in, report out.
//!
//! Rule families are independent — none reads another's findings — so
//! the engine fans them out over a small worker pool
//! ([`CheckEngine::with_workers`]). Determinism is non-negotiable for a
//! linter (CI diffs reports byte-for-byte), and it is guaranteed
//! structurally rather than by scheduling luck:
//!
//! 1. every family writes into its own slot, claimed off an atomic
//!    cursor, so no interleaving of worker progress mixes outputs;
//! 2. slots merge in family-insertion order;
//! 3. the merged list gets a **canonical total sort** — severity
//!    (descending), then code, location, message, suggestion — under
//!    which any merge order yields the same bytes;
//! 4. duplicate findings (same code, same location) collapse to the
//!    canonically first one.
//!
//! The same report comes out at 1 worker or 8; `tests/checker_tests.rs`
//! locks that in.

use crate::diag::{Diagnostic, Severity};
use pas2p_model::LogicalTrace;
use pas2p_phases::{PhaseAnalysis, PhaseTable, SimilarityConfig};
use pas2p_trace::{IngestReport, Trace};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Everything a rule may look at. Each stage is optional so the engine
/// can check whatever subset of the pipeline the caller has — rules skip
/// silently when their inputs are absent.
#[derive(Clone, Copy)]
pub struct Artifacts<'a> {
    /// The physical trace (stage 1 output).
    pub trace: Option<&'a Trace>,
    /// The logically ordered trace (stage 2 output).
    pub logical: Option<&'a LogicalTrace>,
    /// The phase analysis (stage 3 output).
    pub analysis: Option<&'a PhaseAnalysis>,
    /// The phase table / signature contents (stage 4 output).
    pub table: Option<&'a PhaseTable>,
    /// Similarity thresholds the analysis was produced with — signature
    /// rules re-apply them.
    pub similarity: SimilarityConfig,
    /// What the recovering decoder did to the input (stage 0 output);
    /// present only when the trace came through `decode_recovering`.
    pub ingest: Option<&'a IngestReport>,
}

impl<'a> Artifacts<'a> {
    /// No artifacts at all (rules all skip; the report is clean).
    pub fn empty() -> Artifacts<'a> {
        Artifacts {
            trace: None,
            logical: None,
            analysis: None,
            table: None,
            similarity: SimilarityConfig::default(),
            ingest: None,
        }
    }
}

/// One family of related rules, run as a unit over the artifacts.
///
/// `Send + Sync` because families run concurrently on borrowed
/// artifacts; rules are pure functions of their inputs, so this costs
/// nothing in practice.
pub trait Checker: Send + Sync {
    /// Stable name of the rule family (shows up in metrics).
    fn name(&self) -> &'static str;
    /// Inspect the artifacts, pushing one diagnostic per finding.
    fn check(&self, artifacts: &Artifacts<'_>, out: &mut Vec<Diagnostic>);
}

/// The result of one engine run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CheckReport {
    /// All findings, most severe first.
    pub diagnostics: Vec<Diagnostic>,
}

impl CheckReport {
    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    fn count(&self, s: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == s).count()
    }

    /// True when nothing rose above Info.
    pub fn is_clean(&self) -> bool {
        self.errors() == 0 && self.warnings() == 0
    }

    /// Whether any finding carries the given code.
    pub fn has_code(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Process exit code semantics: 0 clean, 1 warnings only, 2 errors.
    pub fn exit_code(&self) -> u8 {
        if self.errors() > 0 {
            2
        } else if self.warnings() > 0 {
            1
        } else {
            0
        }
    }

    /// Render the human-readable table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} finding(s) total\n",
            self.errors(),
            self.warnings(),
            self.diagnostics.len()
        ));
        out
    }
}

/// Metric name for a rule code's hit counter. `pas2p-obs` counters take
/// `&'static str`, so the mapping is a closed table; unknown codes fall
/// into a shared bucket.
pub fn hit_metric(code: &str) -> &'static str {
    match code {
        "P2P-MATCH-001" => "check.hit.p2p_match_001",
        "P2P-MATCH-002" => "check.hit.p2p_match_002",
        "P2P-MATCH-003" => "check.hit.p2p_match_003",
        "P2P-MATCH-004" => "check.hit.p2p_match_004",
        "P2P-MATCH-005" => "check.hit.p2p_match_005",
        "WILD-RECV-001" => "check.hit.wild_recv_001",
        "WILD-RECV-002" => "check.hit.wild_recv_002",
        "WFG-CYCLE-001" => "check.hit.wfg_cycle_001",
        "MSG-RACE-001" => "check.hit.msg_race_001",
        "MSG-RACE-002" => "check.hit.msg_race_002",
        "DLK-POT-001" => "check.hit.dlk_pot_001",
        "SIG-STAB-001" => "check.hit.sig_stab_001",
        "LT-RECV-001" => "check.hit.lt_recv_001",
        "LT-COLL-001" => "check.hit.lt_coll_001",
        "MODEL-TICK-001" => "check.hit.model_tick_001",
        "MODEL-ORDER-001" => "check.hit.model_order_001",
        "MODEL-CONS-001" => "check.hit.model_cons_001",
        "SIG-W-001" => "check.hit.sig_w_001",
        "SIG-OCC-001" => "check.hit.sig_occ_001",
        "SIG-SIM-001" => "check.hit.sig_sim_001",
        "SIG-SIM-002" => "check.hit.sig_sim_002",
        "SIG-REL-001" => "check.hit.sig_rel_001",
        "SIG-COV-001" => "check.hit.sig_cov_001",
        "SIG-ROW-001" => "check.hit.sig_row_001",
        "PET-EQ-001" => "check.hit.pet_eq_001",
        "PET-EQ-002" => "check.hit.pet_eq_002",
        "MODEL-SPAN-001" => "check.hit.model_span_001",
        "INGEST-FATAL-001" => "check.hit.ingest_fatal_001",
        "INGEST-RANK-001" => "check.hit.ingest_rank_001",
        "INGEST-REC-001" => "check.hit.ingest_rec_001",
        "INGEST-TRUNC-001" => "check.hit.ingest_trunc_001",
        "INGEST-DUP-001" => "check.hit.ingest_dup_001",
        _ => "check.hit.other",
    }
}

/// The canonical total order of a report: severity descending, then
/// code, location, message, suggestion. Total (no ties between distinct
/// diagnostics), so the sorted report is independent of production
/// order — the keystone of worker-count invariance.
fn canonical_key(d: &Diagnostic) -> impl Ord + '_ {
    (
        std::cmp::Reverse(d.severity),
        &d.code,
        d.location.rank,
        d.location.event,
        d.location.tick,
        d.location.phase,
        &d.message,
        &d.suggestion,
    )
}

/// The diagnostics engine: an ordered list of rule families and a
/// worker count.
pub struct CheckEngine {
    checkers: Vec<Box<dyn Checker>>,
    workers: usize,
}

impl CheckEngine {
    /// An engine with no rules (add with [`CheckEngine::push`]) running
    /// single-threaded.
    pub fn new() -> CheckEngine {
        CheckEngine {
            checkers: Vec::new(),
            workers: 1,
        }
    }

    /// The full shipped rule set: ingest, trace, happens-before, model,
    /// and signature families.
    pub fn with_default_rules() -> CheckEngine {
        let mut e = CheckEngine::new();
        e.push(Box::new(crate::ingest_rules::IngestRules));
        e.push(Box::new(crate::trace_rules::TraceRules));
        e.push(Box::new(crate::race_rules::HbRules));
        e.push(Box::new(crate::model_rules::ModelRules));
        e.push(Box::new(crate::signature_rules::SignatureRules));
        e
    }

    /// Set the number of worker threads (clamped to at least 1). The
    /// report is byte-identical at any setting; workers only change
    /// wall-clock time.
    pub fn with_workers(mut self, workers: usize) -> CheckEngine {
        self.workers = workers.max(1);
        self
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Append a rule family; families run in insertion order.
    pub fn push(&mut self, c: Box<dyn Checker>) {
        self.checkers.push(c);
    }

    /// Run every rule family over the artifacts.
    ///
    /// When `pas2p-obs` is enabled, bumps a `check.hit.*` counter per
    /// finding, `check.runs` once, and the `check.par.workers` gauge.
    pub fn run(&self, artifacts: &Artifacts<'_>) -> CheckReport {
        let nfam = self.checkers.len();
        let mut slots: Vec<Vec<Diagnostic>> = Vec::with_capacity(nfam);
        if self.workers <= 1 || nfam <= 1 {
            for c in &self.checkers {
                let mut out = Vec::new();
                c.check(artifacts, &mut out);
                slots.push(out);
            }
        } else {
            // Fan-out: workers claim family indices off an atomic cursor
            // and park results in per-family slots. The slot vector —
            // not worker identity or finish order — carries the merge
            // order, so scheduling cannot leak into the report.
            let cursor = AtomicUsize::new(0);
            let results: Vec<Mutex<Vec<Diagnostic>>> =
                (0..nfam).map(|_| Mutex::new(Vec::new())).collect();
            std::thread::scope(|scope| {
                for _ in 0..self.workers.min(nfam) {
                    scope.spawn(|| loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= nfam {
                            break;
                        }
                        let mut out = Vec::new();
                        self.checkers[i].check(artifacts, &mut out);
                        *results[i].lock().expect("slot lock poisoned") = out;
                    });
                }
            });
            for slot in results {
                slots.push(slot.into_inner().expect("slot lock poisoned"));
            }
        }

        let mut diagnostics: Vec<Diagnostic> = slots.into_iter().flatten().collect();
        if pas2p_obs::enabled() {
            for d in &diagnostics {
                pas2p_obs::counter(hit_metric(&d.code)).add(1);
            }
        }
        diagnostics.sort_by(|a, b| canonical_key(a).cmp(&canonical_key(b)));
        // Identical (code, severity, location) triples are one finding
        // reported twice — e.g. two rule paths seeing the same broken
        // event; the canonical sort makes "first" deterministic.
        let mut seen: HashSet<(String, Severity, crate::diag::Location)> = HashSet::new();
        diagnostics.retain(|d| seen.insert((d.code.clone(), d.severity, d.location.clone())));
        if pas2p_obs::enabled() {
            pas2p_obs::counter("check.runs").add(1);
            pas2p_obs::counter("check.findings").add(diagnostics.len() as u64);
            pas2p_obs::gauge("check.par.workers").set(self.workers as f64);
        }
        CheckReport { diagnostics }
    }
}

impl Default for CheckEngine {
    fn default() -> Self {
        CheckEngine::with_default_rules()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Location;

    struct Fixed(Severity);
    impl Checker for Fixed {
        fn name(&self) -> &'static str {
            "fixed"
        }
        fn check(&self, _a: &Artifacts<'_>, out: &mut Vec<Diagnostic>) {
            out.push(Diagnostic::new("X-001", self.0, Location::none(), "x"));
        }
    }

    #[test]
    fn empty_artifacts_check_clean() {
        let report = CheckEngine::with_default_rules().run(&Artifacts::empty());
        assert!(report.is_clean());
        assert_eq!(report.exit_code(), 0);
    }

    #[test]
    fn report_sorts_and_counts_by_severity() {
        let mut e = CheckEngine::new();
        e.push(Box::new(Fixed(Severity::Info)));
        e.push(Box::new(Fixed(Severity::Error)));
        e.push(Box::new(Fixed(Severity::Warning)));
        let r = e.run(&Artifacts::empty());
        assert_eq!(r.diagnostics[0].severity, Severity::Error);
        assert_eq!(r.errors(), 1);
        assert_eq!(r.warnings(), 1);
        assert_eq!(r.exit_code(), 2);
        assert!(!r.is_clean());
        assert!(r.has_code("X-001"));
    }

    #[test]
    fn warning_only_exit_code_is_one() {
        let mut e = CheckEngine::new();
        e.push(Box::new(Fixed(Severity::Warning)));
        let r = e.run(&Artifacts::empty());
        assert_eq!(r.exit_code(), 1);
        assert!(r.render().contains("1 warning(s)"));
    }

    #[test]
    fn hit_metric_is_total() {
        assert_eq!(hit_metric("LT-RECV-001"), "check.hit.lt_recv_001");
        assert_eq!(hit_metric("MSG-RACE-001"), "check.hit.msg_race_001");
        assert_eq!(hit_metric("NO-SUCH-999"), "check.hit.other");
    }

    /// Distinct messages at the same (code, location) collapse to the
    /// canonically first; distinct locations survive.
    #[test]
    fn dedup_collapses_same_code_and_location() {
        struct Dup;
        impl Checker for Dup {
            fn name(&self) -> &'static str {
                "dup"
            }
            fn check(&self, _a: &Artifacts<'_>, out: &mut Vec<Diagnostic>) {
                out.push(Diagnostic::new(
                    "D-001",
                    Severity::Warning,
                    Location::rank(1),
                    "b",
                ));
                out.push(Diagnostic::new(
                    "D-001",
                    Severity::Warning,
                    Location::rank(1),
                    "a",
                ));
                out.push(Diagnostic::new(
                    "D-001",
                    Severity::Warning,
                    Location::rank(2),
                    "c",
                ));
            }
        }
        let mut e = CheckEngine::new();
        e.push(Box::new(Dup));
        let r = e.run(&Artifacts::empty());
        assert_eq!(r.diagnostics.len(), 2);
        assert_eq!(r.diagnostics[0].message, "a");
        assert_eq!(r.diagnostics[1].message, "c");
    }

    /// The fan-out path produces the same report as sequential for any
    /// worker count, including more workers than families.
    #[test]
    fn worker_count_does_not_change_report() {
        fn build() -> CheckEngine {
            let mut e = CheckEngine::new();
            e.push(Box::new(Fixed(Severity::Info)));
            e.push(Box::new(Fixed(Severity::Error)));
            e.push(Box::new(Fixed(Severity::Warning)));
            e
        }
        let base = build().run(&Artifacts::empty());
        for w in [2, 3, 8] {
            let r = build().with_workers(w).run(&Artifacts::empty());
            assert_eq!(base, r, "report changed at {} workers", w);
        }
    }
}
