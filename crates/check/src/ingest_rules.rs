//! Ingest rules: findings over an [`IngestReport`] from the recovering
//! decoder (`pas2p_trace::decode_recovering`).
//!
//! These rules inspect what ingest *did* rather than what the artifacts
//! *are*: a quarantined record or a missing rank is already repaired by
//! the time the trace reaches the pipeline, but the repair itself is a
//! finding — downstream numbers describe a subset of the run and the
//! operator must know.
//!
//! * `INGEST-FATAL-001` (error) — the buffer's header was unusable;
//!   nothing was recovered.
//! * `INGEST-RANK-001` (error) — a rank's section never appeared; the
//!   analysis proceeds without it.
//! * `INGEST-TRUNC-001` (warning) — a rank's section ended early; its
//!   tail records are gone.
//! * `INGEST-REC-001` (warning) — records were quarantined as
//!   undecodable or implausible.
//! * `INGEST-DUP-001` (warning) — recovered records carried duplicate or
//!   out-of-sequence numbers and were renumbered.

use crate::diag::{Diagnostic, Location, Severity};
use crate::engine::{Artifacts, Checker};
use pas2p_trace::RankHealth;

/// The ingest rule family. Skips silently when no [`Artifacts::ingest`]
/// report is present (the trace came through the strict decoder).
pub struct IngestRules;

impl Checker for IngestRules {
    fn name(&self) -> &'static str {
        "ingest"
    }

    fn check(&self, artifacts: &Artifacts<'_>, out: &mut Vec<Diagnostic>) {
        let Some(report) = artifacts.ingest else {
            return;
        };
        if let Some(why) = &report.fatal {
            out.push(Diagnostic::new(
                "INGEST-FATAL-001",
                Severity::Error,
                Location::none(),
                format!("trace buffer unusable: {}", why),
            ));
            return;
        }
        for r in &report.ranks {
            match r.health {
                RankHealth::Intact => {}
                RankHealth::Missing => {
                    out.push(
                        Diagnostic::new(
                            "INGEST-RANK-001",
                            Severity::Error,
                            Location::rank(r.rank),
                            format!(
                                "rank {} never appeared in the trace; analysis proceeds \
                                 with the surviving ranks",
                                r.rank
                            ),
                        )
                        .with_suggestion(
                            "results are degraded-confidence; re-collect the trace to \
                             restore the full run",
                        ),
                    );
                }
                RankHealth::Truncated => {
                    out.push(Diagnostic::new(
                        "INGEST-TRUNC-001",
                        Severity::Warning,
                        Location::rank(r.rank),
                        format!(
                            "rank {} section truncated: {}/{} records recovered",
                            r.rank, r.records_recovered, r.records_expected
                        ),
                    ));
                }
                RankHealth::Recovered => {}
            }
            if r.records_quarantined > 0 {
                out.push(Diagnostic::new(
                    "INGEST-REC-001",
                    Severity::Warning,
                    Location::rank(r.rank),
                    format!(
                        "rank {}: {} record(s) quarantined as undecodable",
                        r.rank, r.records_quarantined
                    ),
                ));
            }
            if r.records_renumbered > 0 {
                out.push(Diagnostic::new(
                    "INGEST-DUP-001",
                    Severity::Warning,
                    Location::rank(r.rank),
                    format!(
                        "rank {}: {} record(s) renumbered (duplicate or out-of-sequence \
                         event numbers)",
                        r.rank, r.records_renumbered
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CheckEngine;
    use pas2p_trace::{IngestReport, RankIngest};

    fn rank(rank: u32, health: RankHealth) -> RankIngest {
        RankIngest {
            rank,
            health,
            records_expected: 10,
            records_recovered: if health == RankHealth::Missing { 0 } else { 8 },
            records_quarantined: 0,
            records_renumbered: 0,
        }
    }

    fn run(report: &IngestReport) -> crate::engine::CheckReport {
        let artifacts = Artifacts {
            ingest: Some(report),
            ..Artifacts::empty()
        };
        CheckEngine::with_default_rules().run(&artifacts)
    }

    #[test]
    fn clean_ingest_raises_nothing() {
        let report = IngestReport {
            nprocs: 2,
            ranks: vec![rank(0, RankHealth::Intact), rank(1, RankHealth::Intact)],
            bytes_total: 100,
            ..IngestReport::default()
        };
        assert!(run(&report).is_clean());
    }

    #[test]
    fn fatal_ingest_is_an_error() {
        let report = IngestReport {
            fatal: Some("not a PAS2P trace (bad magic)".into()),
            ..IngestReport::default()
        };
        let r = run(&report);
        assert!(r.has_code("INGEST-FATAL-001"));
        assert_eq!(r.exit_code(), 2);
    }

    #[test]
    fn missing_rank_is_an_error() {
        let report = IngestReport {
            nprocs: 2,
            ranks: vec![rank(0, RankHealth::Intact), rank(1, RankHealth::Missing)],
            ..IngestReport::default()
        };
        let r = run(&report);
        assert!(r.has_code("INGEST-RANK-001"));
        assert_eq!(r.exit_code(), 2);
    }

    #[test]
    fn truncation_and_quarantine_are_warnings() {
        let mut quarantined = rank(0, RankHealth::Recovered);
        quarantined.records_quarantined = 3;
        let mut renumbered = rank(1, RankHealth::Recovered);
        renumbered.records_renumbered = 2;
        let report = IngestReport {
            nprocs: 3,
            ranks: vec![quarantined, renumbered, rank(2, RankHealth::Truncated)],
            ..IngestReport::default()
        };
        let r = run(&report);
        assert!(r.has_code("INGEST-REC-001"));
        assert!(r.has_code("INGEST-DUP-001"));
        assert!(r.has_code("INGEST-TRUNC-001"));
        assert_eq!(r.errors(), 0);
        assert_eq!(r.exit_code(), 1);
    }

    #[test]
    fn absent_report_skips_the_family() {
        assert!(CheckEngine::with_default_rules()
            .run(&Artifacts::empty())
            .is_clean());
    }
}
