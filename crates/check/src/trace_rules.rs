//! Rules over the physical trace: point-to-point matching, wildcard
//! receives, and communication deadlock (wait-for-graph) analysis.
//!
//! These are the checks a PMPI-level linter can make before any modeling:
//! every receive needs a send, matched pairs must agree on endpoints, tag
//! and volume, and the message-passing order must admit at least one
//! deadlock-free execution.

use crate::diag::{Diagnostic, Location, Severity};
use crate::engine::{Artifacts, Checker};
use pas2p_trace::{EventKind, Trace, TraceEvent};
use std::collections::{HashMap, HashSet};

/// The trace-level rule family (`P2P-MATCH-*`, `WILD-RECV-001`,
/// `WFG-CYCLE-001`).
pub struct TraceRules;

impl Checker for TraceRules {
    fn name(&self) -> &'static str {
        "trace"
    }

    fn check(&self, artifacts: &Artifacts<'_>, out: &mut Vec<Diagnostic>) {
        let Some(trace) = artifacts.trace else {
            return;
        };
        check_p2p_matching(trace, out);
        check_wildcards(trace, out);
        check_deadlock(trace, out);
    }
}

/// A p2p event's matching-relevant fields.
struct End<'a> {
    e: &'a TraceEvent,
}

fn p2p_events(trace: &Trace, kind: EventKind) -> HashMap<u64, Vec<End<'_>>> {
    let mut map: HashMap<u64, Vec<End<'_>>> = HashMap::new();
    for p in &trace.procs {
        for e in &p.events {
            // msg_id 0 means "no relation recorded" (the model skips these
            // too); such events cannot be matched and are not flagged.
            if e.kind == kind && e.msg_id != 0 {
                map.entry(e.msg_id).or_default().push(End { e });
            }
        }
    }
    map
}

fn check_p2p_matching(trace: &Trace, out: &mut Vec<Diagnostic>) {
    let sends = p2p_events(trace, EventKind::Send);
    let mut recvs = p2p_events(trace, EventKind::Recv);

    let mut msg_ids: Vec<u64> = sends.keys().copied().collect();
    msg_ids.sort_unstable();
    for msg_id in msg_ids {
        let ss = &sends[&msg_id];
        let rs = recvs.remove(&msg_id).unwrap_or_default();
        // Pair in order; extras on either side are unmatched.
        for (s, r) in ss.iter().zip(&rs) {
            check_pair(msg_id, s.e, r.e, out);
        }
        for s in ss.iter().skip(rs.len()) {
            out.push(
                Diagnostic::new(
                    "P2P-MATCH-001",
                    Severity::Warning,
                    Location::event(s.e.process, s.e.number),
                    format!(
                        "send of message {} to rank {} has no matching receive",
                        msg_id,
                        s.e.peer.map_or(-1i64, |p| p as i64)
                    ),
                )
                .with_suggestion("the message is still in flight at exit or the receive was lost"),
            );
        }
        for r in rs.iter().skip(ss.len()) {
            unmatched_recv(msg_id, r.e, out);
        }
    }
    let mut rest: Vec<u64> = recvs.keys().copied().collect();
    rest.sort_unstable();
    for msg_id in rest {
        for r in &recvs[&msg_id] {
            unmatched_recv(msg_id, r.e, out);
        }
    }
}

fn unmatched_recv(msg_id: u64, r: &TraceEvent, out: &mut Vec<Diagnostic>) {
    out.push(
        Diagnostic::new(
            "P2P-MATCH-002",
            Severity::Error,
            Location::event(r.process, r.number),
            format!("receive of message {} has no matching send", msg_id),
        )
        .with_suggestion("a send event is missing from the trace; the relation field is broken"),
    );
}

fn check_pair(msg_id: u64, s: &TraceEvent, r: &TraceEvent, out: &mut Vec<Diagnostic>) {
    if s.size != r.size {
        out.push(Diagnostic::new(
            "P2P-MATCH-003",
            Severity::Error,
            Location::event(r.process, r.number),
            format!(
                "message {}: send carries {} bytes but receive records {}",
                msg_id, s.size, r.size
            ),
        ));
    }
    let endpoints_ok = s.peer == Some(r.process) && r.peer == Some(s.process);
    if !endpoints_ok {
        out.push(Diagnostic::new(
            "P2P-MATCH-004",
            Severity::Error,
            Location::event(r.process, r.number),
            format!(
                "message {}: send {}→{:?} does not line up with receive on rank {} from {:?}",
                msg_id, s.process, s.peer, r.process, r.peer
            ),
        ));
    }
    if s.tag != r.tag {
        out.push(Diagnostic::new(
            "P2P-MATCH-005",
            Severity::Error,
            Location::event(r.process, r.number),
            format!(
                "message {}: send tagged {} but receive tagged {}",
                msg_id, s.tag, r.tag
            ),
        ));
    }
}

fn check_wildcards(trace: &Trace, out: &mut Vec<Diagnostic>) {
    for p in &trace.procs {
        let n = p
            .events
            .iter()
            .filter(|e| e.wildcard && e.kind == EventKind::Recv)
            .count();
        if n > 0 {
            out.push(
                Diagnostic::new(
                    "WILD-RECV-001",
                    Severity::Info,
                    Location::rank(p.process),
                    format!(
                        "{} receive(s) posted with a wildcard source (MPI_ANY_SOURCE)",
                        n
                    ),
                )
                .with_suggestion(
                    "informational census of wildcard receives; the \
                     happens-before rules (MSG-RACE-*, DLK-POT-*) report \
                     the actionable subset whose match set actually admits \
                     more than one concurrent sender",
                ),
            );
        }
    }
}

/// Deterministic replay of the traced communication: sends are buffered
/// (always complete), a receive completes once its message was sent, a
/// collective completes once all `involved` processes sit at it. If the
/// replay wedges, the traced order admits no deadlock-free execution.
fn check_deadlock(trace: &Trace, out: &mut Vec<Diagnostic>) {
    let n = trace.procs.len();
    // Where each message's send lives, for wait-for edges.
    let mut sender_of: HashMap<u64, u32> = HashMap::new();
    for p in &trace.procs {
        for e in &p.events {
            if e.kind == EventKind::Send && e.msg_id != 0 {
                sender_of.insert(e.msg_id, e.process);
            }
        }
    }

    let mut idx = vec![0usize; n];
    let mut sent: HashSet<u64> = HashSet::new();
    loop {
        let mut progress = false;
        // Point-to-point progress: run each process forward while it can.
        for (p, i) in idx.iter_mut().enumerate() {
            while *i < trace.procs[p].events.len() {
                let e = &trace.procs[p].events[*i];
                match e.kind {
                    EventKind::Send => {
                        sent.insert(e.msg_id);
                        *i += 1;
                        progress = true;
                    }
                    EventKind::Recv => {
                        // A receive whose send exists nowhere is already
                        // reported by P2P-MATCH-002; treating it as
                        // executable avoids a spurious deadlock on top.
                        let executable = e.msg_id == 0
                            || sent.contains(&e.msg_id)
                            || !sender_of.contains_key(&e.msg_id);
                        if !executable {
                            break;
                        }
                        *i += 1;
                        progress = true;
                    }
                    EventKind::Coll(_) => break,
                }
            }
        }
        // Collective progress: a communicator fires when all involved
        // processes sit at it.
        let mut at_coll: HashMap<u64, Vec<usize>> = HashMap::new();
        for (p, &i) in idx.iter().enumerate() {
            if let Some(e) = trace.procs[p].events.get(i) {
                if e.kind.is_collective() {
                    at_coll.entry(e.comm_id).or_default().push(p);
                }
            }
        }
        for (_, procs) in at_coll {
            let involved = trace.procs[procs[0]].events[idx[procs[0]]].involved as usize;
            if procs.len() >= involved {
                for p in procs {
                    idx[p] += 1;
                }
                progress = true;
            }
        }
        if !progress {
            break;
        }
    }

    let stuck: Vec<usize> = (0..n)
        .filter(|&p| idx[p] < trace.procs[p].events.len())
        .collect();
    if stuck.is_empty() {
        return;
    }

    // Wait-for edges among stuck processes.
    let mut waits: HashMap<usize, Vec<usize>> = HashMap::new();
    for &p in &stuck {
        let e = &trace.procs[p].events[idx[p]];
        match e.kind {
            EventKind::Recv => {
                if let Some(&q) = sender_of.get(&e.msg_id) {
                    waits.entry(p).or_default().push(q as usize);
                }
            }
            EventKind::Coll(_) => {
                // Waits on every stuck process that still has this
                // collective ahead of it but is not at it yet.
                for &q in &stuck {
                    if q == p {
                        continue;
                    }
                    let has_it_later = trace.procs[q].events[idx[q]..]
                        .iter()
                        .any(|x| x.kind.is_collective() && x.comm_id == e.comm_id);
                    let at_it = trace.procs[q].events[idx[q]].kind.is_collective()
                        && trace.procs[q].events[idx[q]].comm_id == e.comm_id;
                    if has_it_later && !at_it {
                        waits.entry(p).or_default().push(q);
                    }
                }
            }
            EventKind::Send => {}
        }
    }

    let cycle = find_cycle(&stuck, &waits);
    let (loc, message) = match cycle {
        Some(c) => (
            Location::rank(c[0] as u32),
            format!(
                "communication deadlock: ranks {} wait on each other in a cycle",
                c.iter()
                    .map(|p| p.to_string())
                    .collect::<Vec<_>>()
                    .join(" → ")
            ),
        ),
        None => (
            Location::rank(stuck[0] as u32),
            format!(
                "replay wedged: rank(s) {} block forever (peer exited or collective \
                 never completes)",
                stuck
                    .iter()
                    .map(|p| p.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        ),
    };
    out.push(
        Diagnostic::new("WFG-CYCLE-001", Severity::Error, loc, message)
            .with_suggestion("the traced order admits no deadlock-free execution"),
    );
}

/// DFS for a cycle in the wait-for graph; returns the cycle's nodes.
fn find_cycle(stuck: &[usize], waits: &HashMap<usize, Vec<usize>>) -> Option<Vec<usize>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let mut mark: HashMap<usize, Mark> = stuck.iter().map(|&p| (p, Mark::White)).collect();
    let mut stack: Vec<usize> = Vec::new();

    fn dfs(
        u: usize,
        waits: &HashMap<usize, Vec<usize>>,
        mark: &mut HashMap<usize, Mark>,
        stack: &mut Vec<usize>,
    ) -> Option<Vec<usize>> {
        mark.insert(u, Mark::Grey);
        stack.push(u);
        if let Some(vs) = waits.get(&u).cloned() {
            for v in vs {
                match mark.get(&v).copied() {
                    Some(Mark::Grey) => {
                        let pos = stack.iter().position(|&x| x == v).unwrap_or(0);
                        return Some(stack[pos..].to_vec());
                    }
                    Some(Mark::White) => {
                        if let Some(c) = dfs(v, waits, mark, stack) {
                            return Some(c);
                        }
                    }
                    _ => {}
                }
            }
        }
        mark.insert(u, Mark::Black);
        stack.pop();
        None
    }

    for &p in stuck {
        if matches!(mark.get(&p), Some(Mark::White)) {
            if let Some(c) = dfs(p, waits, &mut mark, &mut stack) {
                return Some(c);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CheckEngine;
    use pas2p_trace::ProcessTrace;

    fn ev(
        number: u64,
        process: u32,
        kind: EventKind,
        peer: Option<u32>,
        msg_id: u64,
        t: f64,
    ) -> TraceEvent {
        TraceEvent {
            number,
            process,
            t_post: t,
            t_complete: t + 0.1,
            kind,
            peer,
            tag: 0,
            size: 8,
            involved: 1,
            msg_id,
            comm_id: 0,
            wildcard: false,
        }
    }

    fn trace_of(procs: Vec<Vec<TraceEvent>>) -> Trace {
        Trace {
            nprocs: procs.len() as u32,
            machine: "test".into(),
            procs: procs
                .into_iter()
                .enumerate()
                .map(|(r, events)| ProcessTrace {
                    process: r as u32,
                    end_time: events.last().map(|e| e.t_complete).unwrap_or(0.0),
                    events,
                })
                .collect(),
        }
    }

    fn run(trace: &Trace) -> Vec<Diagnostic> {
        let artifacts = Artifacts {
            trace: Some(trace),
            ..Artifacts::empty()
        };
        CheckEngine::with_default_rules()
            .run(&artifacts)
            .diagnostics
    }

    #[test]
    fn matched_exchange_is_clean() {
        let t = trace_of(vec![
            vec![ev(0, 0, EventKind::Send, Some(1), 1, 0.0)],
            vec![ev(0, 1, EventKind::Recv, Some(0), 1, 1.0)],
        ]);
        assert!(run(&t).is_empty());
    }

    #[test]
    fn dropped_recv_flags_unmatched_send() {
        let t = trace_of(vec![
            vec![ev(0, 0, EventKind::Send, Some(1), 1, 0.0)],
            vec![],
        ]);
        let ds = run(&t);
        assert!(ds.iter().any(|d| d.code == "P2P-MATCH-001"));
    }

    #[test]
    fn recv_without_send_is_an_error() {
        let t = trace_of(vec![
            vec![],
            vec![ev(0, 1, EventKind::Recv, Some(0), 1, 1.0)],
        ]);
        let ds = run(&t);
        assert!(ds
            .iter()
            .any(|d| d.code == "P2P-MATCH-002" && d.severity == Severity::Error));
    }

    #[test]
    fn size_and_tag_mismatches_are_flagged() {
        let mut s = ev(0, 0, EventKind::Send, Some(1), 1, 0.0);
        s.size = 100;
        s.tag = 7;
        let t = trace_of(vec![
            vec![s],
            vec![ev(0, 1, EventKind::Recv, Some(0), 1, 1.0)],
        ]);
        let ds = run(&t);
        assert!(ds.iter().any(|d| d.code == "P2P-MATCH-003"));
        assert!(ds.iter().any(|d| d.code == "P2P-MATCH-005"));
    }

    #[test]
    fn endpoint_swap_is_flagged() {
        // Send claims dest 1 but the receive happens on rank 2 (corrupted
        // relation).
        let t = trace_of(vec![
            vec![ev(0, 0, EventKind::Send, Some(1), 1, 0.0)],
            vec![],
            vec![ev(0, 2, EventKind::Recv, Some(0), 1, 1.0)],
        ]);
        let ds = run(&t);
        assert!(ds.iter().any(|d| d.code == "P2P-MATCH-004"));
    }

    #[test]
    fn wildcard_recvs_are_reported_as_info() {
        let mut r = ev(0, 1, EventKind::Recv, Some(0), 1, 1.0);
        r.wildcard = true;
        let t = trace_of(vec![
            vec![ev(0, 0, EventKind::Send, Some(1), 1, 0.0)],
            vec![r],
        ]);
        let ds = run(&t);
        let w: Vec<_> = ds.iter().filter(|d| d.code == "WILD-RECV-001").collect();
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].severity, Severity::Info);
    }

    #[test]
    fn crossed_recv_order_deadlocks() {
        // P0 receives m2 before sending m1; P1 receives m1 before sending
        // m2 — the classic head-to-head deadlock.
        let t = trace_of(vec![
            vec![
                ev(0, 0, EventKind::Recv, Some(1), 2, 0.0),
                ev(1, 0, EventKind::Send, Some(1), 1, 1.0),
            ],
            vec![
                ev(0, 1, EventKind::Recv, Some(0), 1, 0.0),
                ev(1, 1, EventKind::Send, Some(0), 2, 1.0),
            ],
        ]);
        let ds = run(&t);
        assert!(ds
            .iter()
            .any(|d| d.code == "WFG-CYCLE-001" && d.message.contains("cycle")));
    }

    #[test]
    fn collectives_and_p2p_interleave_without_deadlock() {
        let coll = |p: u32, n: u64, t: f64| TraceEvent {
            involved: 2,
            comm_id: 42,
            ..ev(
                n,
                p,
                EventKind::Coll(pas2p_trace::CollClass::Barrier),
                None,
                0,
                t,
            )
        };
        let t = trace_of(vec![
            vec![ev(0, 0, EventKind::Send, Some(1), 1, 0.0), coll(0, 1, 1.0)],
            vec![ev(0, 1, EventKind::Recv, Some(0), 1, 0.5), coll(1, 1, 1.0)],
        ]);
        assert!(run(&t).is_empty());
    }

    #[test]
    fn missing_collective_member_wedges_replay() {
        let coll = |p: u32, n: u64, t: f64| TraceEvent {
            involved: 2,
            comm_id: 42,
            ..ev(
                n,
                p,
                EventKind::Coll(pas2p_trace::CollClass::Barrier),
                None,
                0,
                t,
            )
        };
        // Rank 1 never reaches the barrier.
        let t = trace_of(vec![vec![coll(0, 0, 1.0)], vec![]]);
        let ds = run(&t);
        assert!(ds.iter().any(|d| d.code == "WFG-CYCLE-001"));
    }
}
