//! Rules over the logical trace: the invariants of the PAS2P ordering
//! (paper §3.2).
//!
//! The logical trace is only useful if it is a faithful relayout of the
//! physical one: each (process, tick) holds at most one event, program
//! order survives on the tick axis, causality is respected (no receive in
//! a tick before its send), collectives occupy a single tick, and no
//! event was lost or invented.

use crate::diag::{Diagnostic, Location, Severity};
use crate::engine::{Artifacts, Checker};
use pas2p_model::LogicalTrace;
use pas2p_trace::EventKind;
use std::collections::HashMap;

/// The model-level rule family (`MODEL-*`, `LT-RECV-001`, `LT-COLL-001`).
pub struct ModelRules;

impl Checker for ModelRules {
    fn name(&self) -> &'static str {
        "model"
    }

    fn check(&self, artifacts: &Artifacts<'_>, out: &mut Vec<Diagnostic>) {
        if let Some(analysis) = artifacts.analysis {
            check_negative_spans(analysis, out);
        }
        let Some(logical) = artifacts.logical else {
            return;
        };
        check_tick_exclusivity(logical, out);
        check_program_order(logical, out);
        check_causality(logical, out);
        check_collective_alignment(logical, out);
        if let Some(trace) = artifacts.trace {
            check_conservation(logical, trace, out);
        }
    }
}

/// MODEL-SPAN-001: phase occurrences whose global span came out negative
/// (end boundary before start boundary). Extraction clamps them to zero
/// duration, so PET stays finite — but the clamp means the input clocks
/// disagree with the logical order and timings are suspect.
fn check_negative_spans(analysis: &pas2p_phases::PhaseAnalysis, out: &mut Vec<Diagnostic>) {
    if analysis.negative_spans > 0 {
        out.push(
            Diagnostic::new(
                "MODEL-SPAN-001",
                Severity::Warning,
                Location::none(),
                format!(
                    "{} phase occurrence(s) had negative global spans clamped to zero",
                    analysis.negative_spans
                ),
            )
            .with_suggestion(
                "input timestamps regress against the logical order; check for clock \
                 skew or corrupted times in the trace",
            ),
        );
    }
}

/// MODEL-TICK-001: "there can only be one event for each process at a
/// particular LT".
fn check_tick_exclusivity(logical: &LogicalTrace, out: &mut Vec<Diagnostic>) {
    for (t, tick) in logical.ticks.iter().enumerate() {
        let mut seen: HashMap<u32, u64> = HashMap::new();
        for e in &tick.events {
            if let Some(&first) = seen.get(&e.process) {
                out.push(Diagnostic::new(
                    "MODEL-TICK-001",
                    Severity::Error,
                    Location {
                        rank: Some(e.process),
                        tick: Some(t),
                        ..Location::default()
                    },
                    format!(
                        "tick holds two events of process {} (numbers {} and {})",
                        e.process, first, e.number
                    ),
                ));
            } else {
                seen.insert(e.process, e.number);
            }
        }
    }
}

/// MODEL-ORDER-001: per process, event numbers strictly increase along
/// the tick axis (program order survives the relayout).
fn check_program_order(logical: &LogicalTrace, out: &mut Vec<Diagnostic>) {
    let mut last: HashMap<u32, (u64, usize)> = HashMap::new();
    for (t, tick) in logical.ticks.iter().enumerate() {
        for e in &tick.events {
            if let Some(&(n, prev_t)) = last.get(&e.process) {
                if e.number <= n {
                    out.push(Diagnostic::new(
                        "MODEL-ORDER-001",
                        Severity::Error,
                        Location {
                            rank: Some(e.process),
                            event: Some(e.number),
                            tick: Some(t),
                            ..Location::default()
                        },
                        format!(
                            "process {} event {} at tick {} breaks program order \
                             (event {} already placed at tick {})",
                            e.process, e.number, t, n, prev_t
                        ),
                    ));
                }
            }
            last.insert(e.process, (e.number, t));
        }
    }
}

/// LT-RECV-001: a receive may not be placed in an earlier tick than its
/// send. (The PAS2P rule fixes a reception at send LT + 1; permutation
/// and program-order clamping may legally move it to the *same* tick or
/// later, but never before the send.)
fn check_causality(logical: &LogicalTrace, out: &mut Vec<Diagnostic>) {
    let mut send_tick: HashMap<u64, usize> = HashMap::new();
    for (t, tick) in logical.ticks.iter().enumerate() {
        for e in &tick.events {
            if e.kind == EventKind::Send && e.msg_id != 0 {
                send_tick.entry(e.msg_id).or_insert(t);
            }
        }
    }
    for (t, tick) in logical.ticks.iter().enumerate() {
        for e in &tick.events {
            if e.kind != EventKind::Recv || e.msg_id == 0 {
                continue;
            }
            if let Some(&s) = send_tick.get(&e.msg_id) {
                if t < s {
                    out.push(
                        Diagnostic::new(
                            "LT-RECV-001",
                            Severity::Error,
                            Location {
                                rank: Some(e.process),
                                event: Some(e.number),
                                tick: Some(t),
                                ..Location::default()
                            },
                            format!(
                                "receive of message {} at tick {} precedes its send at tick {}",
                                e.msg_id, t, s
                            ),
                        )
                        .with_suggestion("causality violated: the logical ordering is corrupt"),
                    );
                }
            }
        }
    }
}

/// LT-COLL-001: a collective synchronizes its members onto one tick
/// (`max(LT) + 1` for all); members of one occurrence scattered across
/// ticks mean the ordering mis-grouped them.
///
/// Occurrences repeat on the same communicator, so grouping is per tick:
/// within a tick, the members present for a `comm_id` must be the full
/// `involved` count.
fn check_collective_alignment(logical: &LogicalTrace, out: &mut Vec<Diagnostic>) {
    for (t, tick) in logical.ticks.iter().enumerate() {
        let mut groups: HashMap<u64, (u32, u32)> = HashMap::new(); // comm → (count, involved)
        for e in &tick.events {
            if e.kind.is_collective() {
                let g = groups.entry(e.comm_id).or_insert((0, e.involved));
                g.0 += 1;
            }
        }
        for (comm_id, (count, involved)) in groups {
            if count != involved {
                out.push(Diagnostic::new(
                    "LT-COLL-001",
                    Severity::Error,
                    Location::tick(t),
                    format!(
                        "collective on communicator {} has {} of {} members at tick {}",
                        comm_id, count, involved, t
                    ),
                ));
            }
        }
    }
}

/// MODEL-CONS-001: conservation — every physical event appears in the
/// logical trace exactly once, per process.
fn check_conservation(
    logical: &LogicalTrace,
    trace: &pas2p_trace::Trace,
    out: &mut Vec<Diagnostic>,
) {
    let mut counts = vec![0usize; trace.procs.len()];
    for tick in &logical.ticks {
        for e in &tick.events {
            if let Some(c) = counts.get_mut(e.process as usize) {
                *c += 1;
            }
        }
    }
    for (rank, p) in trace.procs.iter().enumerate() {
        if counts[rank] != p.events.len() {
            out.push(Diagnostic::new(
                "MODEL-CONS-001",
                Severity::Error,
                Location::rank(rank as u32),
                format!(
                    "process {} has {} events in the logical trace but {} in the source",
                    rank,
                    counts[rank],
                    p.events.len()
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CheckEngine;
    use pas2p_model::{pas2p_order, LogicalEvent, Tick};
    use pas2p_trace::{ProcessTrace, Trace, TraceEvent};

    fn ev(
        number: u64,
        process: u32,
        kind: EventKind,
        peer: Option<u32>,
        msg_id: u64,
        t: f64,
    ) -> TraceEvent {
        TraceEvent {
            number,
            process,
            t_post: t,
            t_complete: t + 0.1,
            kind,
            peer,
            tag: 0,
            size: 8,
            involved: 1,
            msg_id,
            comm_id: 0,
            wildcard: false,
        }
    }

    fn trace_of(procs: Vec<Vec<TraceEvent>>) -> Trace {
        Trace {
            nprocs: procs.len() as u32,
            machine: "test".into(),
            procs: procs
                .into_iter()
                .enumerate()
                .map(|(r, events)| ProcessTrace {
                    process: r as u32,
                    end_time: events.last().map(|e| e.t_complete).unwrap_or(0.0),
                    events,
                })
                .collect(),
        }
    }

    fn le(process: u32, number: u64, kind: EventKind, msg_id: u64) -> LogicalEvent {
        LogicalEvent {
            process,
            number,
            kind,
            peer: None,
            size: 8,
            involved: 1,
            msg_id,
            comm_id: 0,
            compute_before: 0.0,
            duration: 0.1,
            t_post: 0.0,
            t_complete: 0.1,
        }
    }

    fn run(trace: Option<&Trace>, logical: &LogicalTrace) -> Vec<Diagnostic> {
        let artifacts = Artifacts {
            trace,
            logical: Some(logical),
            ..Artifacts::empty()
        };
        CheckEngine::with_default_rules()
            .run(&artifacts)
            .diagnostics
    }

    #[test]
    fn ordered_exchange_checks_clean() {
        let t = trace_of(vec![
            vec![ev(0, 0, EventKind::Send, Some(1), 1, 0.0)],
            vec![ev(0, 1, EventKind::Recv, Some(0), 1, 1.0)],
        ]);
        let l = pas2p_order(&t);
        assert!(run(Some(&t), &l).is_empty());
    }

    #[test]
    fn swapped_ticks_violate_causality() {
        // Hand-built logical trace with the recv BEFORE the send.
        let l = LogicalTrace {
            nprocs: 2,
            ticks: vec![
                Tick {
                    events: vec![le(1, 0, EventKind::Recv, 1)],
                },
                Tick {
                    events: vec![le(0, 0, EventKind::Send, 1)],
                },
            ],
        };
        let ds = run(None, &l);
        assert!(ds.iter().any(|d| d.code == "LT-RECV-001"));
    }

    #[test]
    fn duplicate_process_in_tick_is_flagged() {
        let l = LogicalTrace {
            nprocs: 1,
            ticks: vec![Tick {
                events: vec![le(0, 0, EventKind::Send, 1), le(0, 1, EventKind::Send, 2)],
            }],
        };
        let ds = run(None, &l);
        assert!(ds.iter().any(|d| d.code == "MODEL-TICK-001"));
    }

    #[test]
    fn reversed_numbers_break_program_order() {
        let l = LogicalTrace {
            nprocs: 1,
            ticks: vec![
                Tick {
                    events: vec![le(0, 1, EventKind::Send, 1)],
                },
                Tick {
                    events: vec![le(0, 0, EventKind::Send, 2)],
                },
            ],
        };
        let ds = run(None, &l);
        assert!(ds.iter().any(|d| d.code == "MODEL-ORDER-001"));
    }

    #[test]
    fn split_collective_is_flagged() {
        let coll = |p: u32| LogicalEvent {
            involved: 2,
            comm_id: 9,
            ..le(p, 0, EventKind::Coll(pas2p_trace::CollClass::Barrier), 0)
        };
        let l = LogicalTrace {
            nprocs: 2,
            ticks: vec![
                Tick {
                    events: vec![coll(0)],
                },
                Tick {
                    events: vec![coll(1)],
                },
            ],
        };
        let ds = run(None, &l);
        assert_eq!(
            ds.iter().filter(|d| d.code == "LT-COLL-001").count(),
            2,
            "each half-tick is misaligned"
        );
    }

    #[test]
    fn dropped_event_breaks_conservation() {
        let t = trace_of(vec![
            vec![ev(0, 0, EventKind::Send, Some(1), 1, 0.0)],
            vec![ev(0, 1, EventKind::Recv, Some(0), 1, 1.0)],
        ]);
        let mut l = pas2p_order(&t);
        l.ticks.pop(); // lose the receive
        let ds = run(Some(&t), &l);
        assert!(ds.iter().any(|d| d.code == "MODEL-CONS-001"));
    }

    #[test]
    fn negative_spans_raise_a_warning() {
        let analysis = pas2p_phases::PhaseAnalysis {
            nprocs: 1,
            phases: vec![],
            aet: 1.0,
            analysis_seconds: 0.0,
            negative_spans: 2,
        };
        let artifacts = Artifacts {
            analysis: Some(&analysis),
            ..Artifacts::empty()
        };
        let r = crate::engine::CheckEngine::with_default_rules().run(&artifacts);
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == "MODEL-SPAN-001")
            .expect("MODEL-SPAN-001 raised");
        assert_eq!(d.severity, Severity::Warning);
        // Zero spans stay silent.
        let clean = pas2p_phases::PhaseAnalysis {
            negative_spans: 0,
            ..analysis
        };
        let artifacts = Artifacts {
            analysis: Some(&clean),
            ..Artifacts::empty()
        };
        let r = crate::engine::CheckEngine::with_default_rules().run(&artifacts);
        assert!(!r.has_code("MODEL-SPAN-001"));
    }
}
