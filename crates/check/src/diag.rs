//! Diagnostics: the stable vocabulary checker rules speak in.

use serde::{Deserialize, Serialize};

/// How bad a finding is.
///
/// Ordered so that `Error > Warning > Info`; reports sort descending.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Worth knowing, never affects the exit code.
    Info,
    /// Suspicious but possibly legitimate; exit code 1.
    Warning,
    /// A violated invariant; the artifact is unsound. Exit code 2.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Where in the artifact a diagnostic points.
///
/// All fields are optional: a trace-level finding has a rank and maybe an
/// event number but no tick; a model finding has a tick; a signature
/// finding has a phase.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Location {
    /// Process rank, when the finding is attributable to one.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub rank: Option<u32>,
    /// Per-process event number in the physical trace.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub event: Option<u64>,
    /// Tick index in the logical trace.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub tick: Option<usize>,
    /// Phase id in the analysis / signature.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub phase: Option<u32>,
}

impl Location {
    /// An empty location (artifact-wide finding).
    pub fn none() -> Location {
        Location::default()
    }

    /// Locate at a rank.
    pub fn rank(rank: u32) -> Location {
        Location {
            rank: Some(rank),
            ..Location::default()
        }
    }

    /// Locate at a (rank, event number) pair in the physical trace.
    pub fn event(rank: u32, event: u64) -> Location {
        Location {
            rank: Some(rank),
            event: Some(event),
            ..Location::default()
        }
    }

    /// Locate at a logical tick.
    pub fn tick(tick: usize) -> Location {
        Location {
            tick: Some(tick),
            ..Location::default()
        }
    }

    /// Locate at a phase.
    pub fn phase(phase: u32) -> Location {
        Location {
            phase: Some(phase),
            ..Location::default()
        }
    }

    fn is_none(&self) -> bool {
        self.rank.is_none() && self.event.is_none() && self.tick.is_none() && self.phase.is_none()
    }
}

impl std::fmt::Display for Location {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_none() {
            return write!(f, "-");
        }
        let mut parts: Vec<String> = Vec::new();
        if let Some(r) = self.rank {
            parts.push(format!("rank {}", r));
        }
        if let Some(e) = self.event {
            parts.push(format!("event {}", e));
        }
        if let Some(t) = self.tick {
            parts.push(format!("tick {}", t));
        }
        if let Some(p) = self.phase {
            parts.push(format!("phase {}", p));
        }
        write!(f, "{}", parts.join(", "))
    }
}

/// One finding of one rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable rule code, e.g. `LT-RECV-001`. Codes never change meaning;
    /// tooling may match on them.
    pub code: String,
    /// Severity of this particular finding.
    pub severity: Severity,
    /// Where the finding points.
    #[serde(default)]
    pub location: Location,
    /// Human-readable description of what was found.
    pub message: String,
    /// What to do about it, when the rule has advice to give.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// Build a diagnostic with no suggestion.
    pub fn new(
        code: &str,
        severity: Severity,
        location: Location,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            code: code.to_string(),
            severity,
            location,
            message: message.into(),
            suggestion: None,
        }
    }

    /// Attach a suggestion.
    pub fn with_suggestion(mut self, s: impl Into<String>) -> Diagnostic {
        self.suggestion = Some(s.into());
        self
    }

    /// A stable identity for baselining: rule code, location, and a hash
    /// of the message. Survives re-runs and engine-internal reordering;
    /// changes when the finding itself changes (different counts,
    /// different peers), which is what a suppression should key on.
    pub fn fingerprint(&self) -> String {
        // FNV-1a, 64-bit: tiny, dependency-free, stable across platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.message.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("{}@{}#{:016x}", self.code, self.location, h)
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:7} {} [{}] {}",
            self.severity.to_string(),
            self.code,
            self.location,
            self.message
        )?;
        if let Some(s) = &self.suggestion {
            write!(f, " (hint: {})", s)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_for_sorting() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn location_renders_compactly() {
        assert_eq!(Location::none().to_string(), "-");
        assert_eq!(Location::event(3, 14).to_string(), "rank 3, event 14");
        assert_eq!(Location::tick(9).to_string(), "tick 9");
    }

    #[test]
    fn diagnostic_display_includes_code_and_hint() {
        let d = Diagnostic::new(
            "LT-RECV-001",
            Severity::Error,
            Location::tick(4),
            "receive precedes its send",
        )
        .with_suggestion("re-run the ordering");
        let s = d.to_string();
        assert!(s.contains("LT-RECV-001"));
        assert!(s.contains("tick 4"));
        assert!(s.contains("hint"));
    }
}
