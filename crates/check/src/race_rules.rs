//! Happens-before rules: message races, potential deadlocks, and
//! signature order-stability.
//!
//! These rules attack the paper's central assumption — that the traced
//! logical order *is* the application's order. A wildcard receive admits
//! any compatible concurrent send; the run commits one. The rules here
//! classify how much that commitment matters:
//!
//! * `MSG-RACE-001` — a wildcard receive has an alternative concurrent
//!   send of a **different size** than the committed one: another
//!   interleaving records a different event structure, so the phase
//!   analysis and signature built from this trace are order-dependent.
//! * `MSG-RACE-002` — a send consumed by a **deterministic** (named
//!   source) receive is a feasible alternative for a wildcard receive:
//!   the wildcard can steal it, changing the deterministic receive's
//!   message — the matching is order-dependent across receives.
//! * `WILD-RECV-002` (Info) — the match set is order-dependent but
//!   *structurally symmetric*: every concurrent alternative carries the
//!   same size and no deterministic receive competes, so any commit
//!   yields the same event structure and the signature is stable.
//! * `DLK-POT-001` — match-set exploration found an interleaving in
//!   which a blocking operation's every candidate match is transitively
//!   blocked: the committed run completed, but an adversarial wildcard
//!   matching wedges. `WFG-CYCLE-001` replays only the committed
//!   interleaving and cannot see these.
//! * `SIG-STAB-001` — a phase's occurrences overlap a message-race
//!   window, so its PhaseET/weight — and every prediction using them —
//!   are order-sensitive. The pipeline downgrades the analysis
//!   [`Confidence`](pas2p_trace::Confidence) to `OrderSensitive` when
//!   this fires.

use crate::diag::{Diagnostic, Location, Severity};
use crate::engine::{Artifacts, Checker};
use crate::hb::HbAnalysis;
use pas2p_trace::{match_sets, CandidateSend, EventKind, MatchSets, Trace, WildcardMatch};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// The happens-before rule family (`MSG-RACE-00x`, `DLK-POT-001`,
/// `WILD-RECV-002`, `SIG-STAB-001`).
pub struct HbRules;

impl Checker for HbRules {
    fn name(&self) -> &'static str {
        "hb"
    }

    fn check(&self, artifacts: &Artifacts<'_>, out: &mut Vec<Diagnostic>) {
        let Some(trace) = artifacts.trace else {
            return;
        };
        let sets = match_sets(trace);
        if sets.is_deterministic() {
            // No wildcard receives: the committed order is the only
            // order; nothing here can fire and the (quadratic in
            // match-set size) clock analysis is skipped entirely.
            return;
        }
        if pas2p_obs::enabled() {
            pas2p_obs::counter("check.hb.wildcards").add(sets.wildcards.len() as u64);
            pas2p_obs::counter("check.hb.candidates").add(sets.total_candidates() as u64);
        }
        let hb = HbAnalysis::compute(trace);
        let race_events = check_races(trace, &sets, &hb, out);
        if hb.complete {
            check_potential_deadlock(trace, &sets, out);
        }
        check_sig_stability(artifacts, &race_events, out);
    }
}

/// A structure-changing race at one wildcard receive: the receive plus
/// the concurrent alternatives, in trace coordinates — the raw material
/// for `SIG-STAB-001` windows.
struct RaceWindow {
    recv: (u32, usize),
    alts: Vec<(u32, usize)>,
}

/// Feasibility of an alternative candidate `s` for wildcard receive `w`:
/// the run could have delivered `s` to `w` instead of the committed
/// message.
fn feasible(w: &WildcardMatch, s: &CandidateSend, sets: &MatchSets, hb: &HbAnalysis) -> bool {
    if s.msg_id == w.committed_msg {
        return false;
    }
    // Same-channel alternatives are serialized by MPI's non-overtaking
    // rule: swapping them permutes nothing observable at this receive.
    if Some(s.src) == w.committed_src {
        return false;
    }
    // A send causally after the receive can never have matched it.
    if hb.happens_before((w.rank, w.index), (s.src, s.index)) {
        return false;
    }
    // A send the committed run delivered to a deterministic receive that
    // happens-before `w` was already consumed when `w` matched; only
    // wildcard consumers (whose own match was a free choice) or
    // not-yet-ordered consumers leave the message up for grabs.
    !matches!(
        sets.committed.get(&s.msg_id),
        Some(r) if !r.wildcard && hb.happens_before((r.rank, r.index), (w.rank, w.index))
    )
}

/// MSG-RACE-001/002 and WILD-RECV-002 over every wildcard receive.
/// Returns the structure-changing race windows for `SIG-STAB-001`.
fn check_races(
    trace: &Trace,
    sets: &MatchSets,
    hb: &HbAnalysis,
    out: &mut Vec<Diagnostic>,
) -> Vec<RaceWindow> {
    let mut windows = Vec::new();
    // Symmetric (Info-level) races aggregate per rank to keep reports
    // readable: rank → (symmetric receives, max candidate count).
    let mut symmetric: BTreeMap<u32, (usize, usize)> = BTreeMap::new();

    for w in &sets.wildcards {
        let committed = w.candidates.iter().find(|c| c.msg_id == w.committed_msg);
        let alts: Vec<&CandidateSend> = w
            .candidates
            .iter()
            .filter(|c| feasible(w, c, sets, hb))
            .collect();
        // The race condition proper: an alternative concurrent with the
        // committed send (or, with no committed send recorded — a
        // damaged relation — two mutually concurrent alternatives).
        let racy: Vec<&CandidateSend> = match committed {
            Some(c) => alts
                .iter()
                .copied()
                .filter(|a| hb.concurrent((c.src, c.index), (a.src, a.index)))
                .collect(),
            None => {
                let mut mutual = Vec::new();
                for (i, a) in alts.iter().enumerate() {
                    if alts
                        .iter()
                        .skip(i + 1)
                        .any(|b| hb.concurrent((a.src, a.index), (b.src, b.index)))
                        || mutual.iter().any(|m: &&CandidateSend| {
                            hb.concurrent((m.src, m.index), (a.src, a.index))
                        })
                    {
                        mutual.push(*a);
                    }
                }
                mutual
            }
        };
        if racy.is_empty() {
            continue;
        }
        let committed_size = committed.map_or_else(
            || trace.procs[w.rank as usize].events[w.index].size,
            |c| c.size,
        );
        let size_changing: Vec<&&CandidateSend> =
            racy.iter().filter(|a| a.size != committed_size).collect();
        let stolen: Vec<&&CandidateSend> = racy
            .iter()
            .filter(|a| sets.committed.get(&a.msg_id).is_some_and(|r| !r.wildcard))
            .collect();

        if !size_changing.is_empty() {
            let a = size_changing[0];
            out.push(
                Diagnostic::new(
                    "MSG-RACE-001",
                    Severity::Warning,
                    Location::event(w.rank, w.number),
                    format!(
                        "wildcard receive committed to rank {} ({} bytes) but {} concurrent \
                         send(s) could have matched instead, e.g. rank {} event {} ({} bytes): \
                         the recorded event structure is one of several the program admits",
                        w.committed_src.map_or(-1i64, |s| s as i64),
                        committed_size,
                        racy.len(),
                        a.src,
                        a.number,
                        a.size
                    ),
                )
                .with_suggestion(
                    "phases and signatures built from this trace are order-dependent; \
                     name the source or make the payloads symmetric",
                ),
            );
            windows.push(RaceWindow {
                recv: (w.rank, w.index),
                alts: racy.iter().map(|a| (a.src, a.index)).collect(),
            });
        } else if !stolen.is_empty() {
            let a = stolen[0];
            out.push(
                Diagnostic::new(
                    "MSG-RACE-002",
                    Severity::Warning,
                    Location::event(w.rank, w.number),
                    format!(
                        "wildcard receive can steal the message of rank {} event {}, which the \
                         committed run delivered to a deterministic receive: the matching is \
                         order-dependent across receives",
                        a.src, a.number
                    ),
                )
                .with_suggestion(
                    "a named-source receive competes with this wildcard for the same \
                     message; see DLK-POT-001 for the deadlock this can cause",
                ),
            );
            windows.push(RaceWindow {
                recv: (w.rank, w.index),
                alts: racy.iter().map(|a| (a.src, a.index)).collect(),
            });
        } else {
            let entry = symmetric.entry(w.rank).or_insert((0, 0));
            entry.0 += 1;
            entry.1 = entry.1.max(racy.len() + 1);
        }
    }

    for (rank, (recvs, set)) in symmetric {
        out.push(
            Diagnostic::new(
                "WILD-RECV-002",
                Severity::Info,
                Location::rank(rank),
                format!(
                    "{} wildcard receive(s) have concurrent match sets (up to {} candidate \
                     senders) that are structurally symmetric: any commit records the same \
                     event sizes, so the signature is order-stable",
                    recvs, set
                ),
            )
            .with_suggestion(
                "benign nondeterminism: only the source permutation varies between runs",
            ),
        );
    }

    if pas2p_obs::enabled() && !windows.is_empty() {
        pas2p_obs::counter("check.hb.races").add(windows.len() as u64);
    }
    windows
}

/// `DLK-POT-001`: adversarial match-set replay.
///
/// Replays the traced communication with wildcard receives matched
/// *adversarially*: when a wildcard can fire, it consumes from the
/// compatible channel with the least surplus (remaining sends minus
/// remaining deterministic demand), i.e. it steals the messages named
/// receives depend on. Channel FIFO and collective completion are
/// respected, so any wedge found corresponds to a legal interleaving the
/// committed replay never explored. A greedy single pass — complete
/// match-set enumeration is exponential — so a clean result is not a
/// proof of deadlock freedom; a wedge is a real hazard.
fn check_potential_deadlock(trace: &Trace, sets: &MatchSets, out: &mut Vec<Diagnostic>) {
    let n = trace.procs.len();
    // Live channel state: queued msg_ids, produced-so-far, remaining
    // deterministic demand. Totals come from the match-set accounting.
    struct Chan {
        queue: VecDeque<u64>,
        produced: u64,
        total: u64,
        det_left: u64,
    }
    let mut chans: HashMap<(u32, u32, u32), Chan> = sets
        .channels
        .iter()
        .map(|(&k, s)| {
            (
                k,
                Chan {
                    queue: VecDeque::new(),
                    produced: 0,
                    total: s.sends,
                    det_left: s.det_recvs,
                },
            )
        })
        .collect();

    let mut idx = vec![0usize; n];
    let mut steals = 0u64;
    let mut first_steal: Option<(u32, u64, u32)> = None; // (wild rank, number, victim src)
    loop {
        let mut progress = false;
        #[allow(clippy::needless_range_loop)] // `idx[r]` advances inside the loop body
        for r in 0..n {
            while idx[r] < trace.procs[r].events.len() {
                let e = &trace.procs[r].events[idx[r]];
                match e.kind {
                    EventKind::Send => {
                        if let Some(dst) = e.peer {
                            if let Some(c) = chans.get_mut(&(e.process, dst, e.tag)) {
                                c.queue.push_back(e.msg_id);
                                c.produced += 1;
                            }
                        }
                    }
                    EventKind::Recv if !e.wildcard => {
                        let Some(src) = e.peer else {
                            idx[r] += 1;
                            progress = true;
                            continue;
                        };
                        let Some(c) = chans.get_mut(&(src, e.process, e.tag)) else {
                            // No send ever targets this channel; the
                            // unmatched receive is P2P-MATCH-002's
                            // finding, not a new deadlock.
                            idx[r] += 1;
                            progress = true;
                            continue;
                        };
                        if let Some(_msg) = c.queue.pop_front() {
                            c.det_left = c.det_left.saturating_sub(1);
                        } else if c.total == 0 {
                            // No send ever targets this channel: the
                            // unmatched receive is P2P-MATCH-002's
                            // finding, not a deadlock of this replay.
                            c.det_left = c.det_left.saturating_sub(1);
                            idx[r] += 1;
                            progress = true;
                            continue;
                        } else {
                            // Sends still coming, or already consumed
                            // (stolen): wait — a permanent wait is the
                            // wedge this replay exists to find.
                            break;
                        }
                    }
                    EventKind::Recv => {
                        // Wildcard: adversary picks among non-empty
                        // compatible channels the one with the least
                        // surplus, stealing contested messages first.
                        type BestPick = ((i64, u32), (u32, u32, u32));
                        let mut best: Option<BestPick> = None;
                        let mut any_possible = false;
                        for (&key, c) in chans.iter() {
                            let (src, dst, tag) = key;
                            if dst != e.process || tag != e.tag {
                                continue;
                            }
                            let remaining = c.queue.len() as i64 + (c.total - c.produced) as i64;
                            if remaining > 0 {
                                any_possible = true;
                            }
                            if c.queue.is_empty() {
                                continue;
                            }
                            let surplus = remaining - c.det_left as i64;
                            let rank_key = (surplus, src);
                            if best.is_none_or(|(b, _)| rank_key < b) {
                                best = Some((rank_key, key));
                            }
                        }
                        match best {
                            Some(((surplus, _), key)) => {
                                let c = chans.get_mut(&key).expect("selected channel exists");
                                c.queue.pop_front();
                                if surplus <= 0 && c.det_left > 0 {
                                    steals += 1;
                                    if first_steal.is_none() {
                                        first_steal = Some((e.process, e.number, key.0));
                                    }
                                }
                            }
                            None if !any_possible => {
                                // No compatible message will ever exist;
                                // mirror the committed replay's
                                // missing-send bypass.
                            }
                            None => break, // messages still coming — wait
                        }
                    }
                    EventKind::Coll(_) => break,
                }
                idx[r] += 1;
                progress = true;
            }
        }
        let mut at_coll: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        for (r, &i) in idx.iter().enumerate() {
            if let Some(e) = trace.procs[r].events.get(i) {
                if e.kind.is_collective() {
                    at_coll.entry(e.comm_id).or_default().push(r);
                }
            }
        }
        for (_, ranks) in at_coll {
            let involved = trace.procs[ranks[0]].events[idx[ranks[0]]].involved as usize;
            if ranks.len() >= involved {
                for r in ranks {
                    idx[r] += 1;
                }
                progress = true;
            }
        }
        if !progress {
            break;
        }
    }

    let stuck: Vec<usize> = (0..n)
        .filter(|&r| idx[r] < trace.procs[r].events.len())
        .collect();
    if stuck.is_empty() {
        return;
    }
    let steal_note = match first_steal {
        Some((wr, wn, victim)) => format!(
            " (the wildcard receive at rank {} event {} can take the message rank {} was \
             counted on to provide)",
            wr, wn, victim
        ),
        None => String::new(),
    };
    let ops: Vec<String> = stuck
        .iter()
        .map(|&r| {
            let e = &trace.procs[r].events[idx[r]];
            format!("rank {} event {}", r, e.number)
        })
        .collect();
    out.push(
        Diagnostic::new(
            "DLK-POT-001",
            Severity::Warning,
            Location::event(
                stuck[0] as u32,
                trace.procs[stuck[0]].events[idx[stuck[0]]].number,
            ),
            format!(
                "potential deadlock: under an alternative wildcard matching, {} block(s) \
                 forever with every candidate match transitively blocked ({}){}",
                stuck.len(),
                ops.join(", "),
                steal_note
            ),
        )
        .with_suggestion(
            "the committed run completed, but the match set admits a wedging \
             interleaving; order the receives or name their sources",
        ),
    );
    if pas2p_obs::enabled() {
        pas2p_obs::counter("check.hb.potential_deadlocks").add(1);
        pas2p_obs::counter("check.hb.steals").add(steals);
    }
}

/// `SIG-STAB-001`: phases whose occurrences overlap a race window.
fn check_sig_stability(artifacts: &Artifacts<'_>, races: &[RaceWindow], out: &mut Vec<Diagnostic>) {
    if races.is_empty() {
        return;
    }
    let (Some(trace), Some(logical), Some(analysis)) =
        (artifacts.trace, artifacts.logical, artifacts.analysis)
    else {
        return;
    };
    let positions = logical.tick_positions();
    let tick_of = |(rank, index): (u32, usize)| -> Option<usize> {
        let number = trace.procs.get(rank as usize)?.events.get(index)?.number;
        positions.get(&(rank, number)).copied()
    };
    // A race window spans the ticks of the receive and every racy send.
    let mut windows: Vec<(usize, usize)> = Vec::new();
    for r in races {
        let mut ticks: Vec<usize> = r.alts.iter().copied().filter_map(tick_of).collect();
        if let Some(t) = tick_of(r.recv) {
            ticks.push(t);
        }
        if let (Some(&lo), Some(&hi)) = (ticks.iter().min(), ticks.iter().max()) {
            windows.push((lo, hi));
        }
    }
    if windows.is_empty() {
        return;
    }
    for phase in &analysis.phases {
        let affected = phase
            .occurrences
            .iter()
            .filter(|o| {
                windows
                    .iter()
                    .any(|&(lo, hi)| o.start_tick <= hi && lo < o.end_tick)
            })
            .count();
        if affected > 0 {
            out.push(
                Diagnostic::new(
                    "SIG-STAB-001",
                    Severity::Warning,
                    Location::phase(phase.id),
                    format!(
                        "{} of {} occurrence(s) of this phase overlap a message-race window: \
                         its PhaseET and weight — and any prediction using them — are \
                         order-sensitive",
                        affected,
                        phase.occurrences.len()
                    ),
                )
                .with_suggestion(
                    "the analysis confidence is downgraded to order-sensitive; re-run \
                     with deterministic matching or average across interleavings",
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CheckEngine;
    use pas2p_trace::{ProcessTrace, TraceEvent};

    fn ev(
        number: u64,
        process: u32,
        kind: EventKind,
        peer: Option<u32>,
        tag: u32,
        msg_id: u64,
        size: u64,
        wildcard: bool,
    ) -> TraceEvent {
        TraceEvent {
            number,
            process,
            t_post: number as f64,
            t_complete: number as f64 + 0.1,
            kind,
            peer,
            tag,
            size,
            involved: 1,
            msg_id,
            comm_id: 0,
            wildcard,
        }
    }

    fn trace_of(procs: Vec<Vec<TraceEvent>>) -> Trace {
        Trace {
            nprocs: procs.len() as u32,
            machine: "test".into(),
            procs: procs
                .into_iter()
                .enumerate()
                .map(|(r, events)| ProcessTrace {
                    process: r as u32,
                    end_time: events.last().map(|e| e.t_complete).unwrap_or(0.0),
                    events,
                })
                .collect(),
        }
    }

    fn run(trace: &Trace) -> Vec<Diagnostic> {
        let artifacts = Artifacts {
            trace: Some(trace),
            ..Artifacts::empty()
        };
        CheckEngine::with_default_rules()
            .run(&artifacts)
            .diagnostics
    }

    /// Two concurrent senders with different payloads racing for two
    /// wildcard receives: the committed structure is one of two.
    fn racy_trace() -> Trace {
        trace_of(vec![
            vec![
                ev(0, 0, EventKind::Recv, Some(1), 9, 1, 512, true),
                ev(1, 0, EventKind::Recv, Some(2), 9, 2, 2048, true),
            ],
            vec![ev(0, 1, EventKind::Send, Some(0), 9, 1, 512, false)],
            vec![ev(0, 2, EventKind::Send, Some(0), 9, 2, 2048, false)],
        ])
    }

    #[test]
    fn size_changing_race_is_msg_race_001() {
        let ds = run(&racy_trace());
        assert!(
            ds.iter()
                .any(|d| d.code == "MSG-RACE-001" && d.severity == Severity::Warning),
            "got: {:?}",
            ds
        );
        assert!(!ds.iter().any(|d| d.code == "WILD-RECV-002"));
    }

    #[test]
    fn symmetric_race_is_info_only() {
        // Same payloads: order-dependent match, stable structure.
        let t = trace_of(vec![
            vec![
                ev(0, 0, EventKind::Recv, Some(1), 9, 1, 64, true),
                ev(1, 0, EventKind::Recv, Some(2), 9, 2, 64, true),
            ],
            vec![ev(0, 1, EventKind::Send, Some(0), 9, 1, 64, false)],
            vec![ev(0, 2, EventKind::Send, Some(0), 9, 2, 64, false)],
        ]);
        let ds = run(&t);
        assert!(ds
            .iter()
            .any(|d| d.code == "WILD-RECV-002" && d.severity == Severity::Info));
        assert!(!ds.iter().any(|d| d.code.starts_with("MSG-RACE")));
        assert!(!ds.iter().any(|d| d.code == "DLK-POT-001"));
    }

    #[test]
    fn wildcard_steal_starves_named_receive() {
        // Rank 0: wildcard recv (committed to rank 2's message), then a
        // named recv from rank 1. If the wildcard takes rank 1's
        // message instead, the named receive blocks forever.
        let t = trace_of(vec![
            vec![
                ev(0, 0, EventKind::Recv, Some(2), 5, 2, 64, true),
                ev(1, 0, EventKind::Recv, Some(1), 5, 1, 64, false),
            ],
            vec![ev(0, 1, EventKind::Send, Some(0), 5, 1, 64, false)],
            vec![ev(0, 2, EventKind::Send, Some(0), 5, 2, 64, false)],
        ]);
        let ds = run(&t);
        assert!(ds.iter().any(|d| d.code == "DLK-POT-001"), "got: {:?}", ds);
        assert!(ds.iter().any(|d| d.code == "MSG-RACE-002"));
        // The committed interleaving completes, so no WFG cycle.
        assert!(!ds.iter().any(|d| d.code == "WFG-CYCLE-001"));
    }

    #[test]
    fn ordered_senders_do_not_race() {
        // Rank 1 sends, rank 2 receives a token from rank 1 before its
        // own send: the two candidate sends are HB-ordered, not racy.
        let t = trace_of(vec![
            vec![
                ev(0, 0, EventKind::Recv, Some(1), 9, 1, 64, true),
                ev(1, 0, EventKind::Recv, Some(2), 9, 3, 128, true),
            ],
            vec![
                ev(0, 1, EventKind::Send, Some(0), 9, 1, 64, false),
                ev(1, 1, EventKind::Send, Some(2), 7, 2, 8, false),
            ],
            vec![
                ev(0, 2, EventKind::Recv, Some(1), 7, 2, 8, false),
                ev(1, 2, EventKind::Send, Some(0), 9, 3, 128, false),
            ],
        ]);
        let ds = run(&t);
        assert!(
            !ds.iter().any(|d| d.code.starts_with("MSG-RACE")),
            "HB-ordered senders must not race, got: {:?}",
            ds
        );
    }

    #[test]
    fn deterministic_trace_emits_nothing() {
        let t = trace_of(vec![
            vec![ev(0, 0, EventKind::Send, Some(1), 0, 1, 8, false)],
            vec![ev(0, 1, EventKind::Recv, Some(0), 0, 1, 8, false)],
        ]);
        assert!(run(&t).is_empty());
    }
}
