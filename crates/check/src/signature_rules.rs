//! Rules over the phase analysis and phase table: the bookkeeping that
//! makes the signature's prediction equation sound (paper §3.3–§4).
//!
//! PET = Σ PhaseETᵢ × Wᵢ only predicts the application when the weights
//! count real occurrences, the occurrences tile the logical trace, the
//! similarity dedup actually merged what it claims to have merged, and
//! the table rows agree with the analysis they were derived from.

use crate::diag::{Diagnostic, Location, Severity};
use crate::engine::{Artifacts, Checker};
use pas2p_model::LogicalTrace;
use pas2p_phases::{CellSig, Phase, PhaseAnalysis, SimilarityConfig};
use serde::{Deserialize, Serialize};

/// Coverage below this fraction of the AET is worth a note: the signature
/// will represent too little of the application for the prediction to be
/// trusted (the paper's relevant phases cover well above this).
const COVERAGE_FLOOR: f64 = 0.9;

/// Relative tolerance of the PET reconstruction identity. Occurrences
/// tile the trace, so Σ weight × mean duration must reproduce the AET up
/// to float summation error.
const PET_TOLERANCE: f64 = 1e-6;

/// Marker so the constants are part of the documented API surface.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SignatureRuleConfig {
    /// See [`COVERAGE_FLOOR`].
    pub coverage_floor: f64,
    /// See [`PET_TOLERANCE`].
    pub pet_tolerance: f64,
}

impl Default for SignatureRuleConfig {
    fn default() -> Self {
        SignatureRuleConfig {
            coverage_floor: COVERAGE_FLOOR,
            pet_tolerance: PET_TOLERANCE,
        }
    }
}

/// The signature-level rule family (`SIG-*`, `PET-EQ-001`).
pub struct SignatureRules;

impl Checker for SignatureRules {
    fn name(&self) -> &'static str {
        "signature"
    }

    fn check(&self, artifacts: &Artifacts<'_>, out: &mut Vec<Diagnostic>) {
        let Some(analysis) = artifacts.analysis else {
            return;
        };
        check_weights(analysis, out);
        check_tiling(analysis, artifacts.logical, out);
        check_mutual_similarity(analysis, &artifacts.similarity, out);
        if let Some(logical) = artifacts.logical {
            check_patterns_match_trace(analysis, logical, &artifacts.similarity, out);
        }
        check_coverage(analysis, artifacts, out);
        check_pet_identity(analysis, out);
        if let Some(table) = artifacts.table {
            check_table_consistency(analysis, table, out);
            check_table_rows(table, out);
        }
    }
}

/// SIG-ROW-001: a table row must carry at least one measure window — the
/// signature constructor has no endpoint to detect otherwise and skips
/// the row. `from_analysis` never builds such a row, so one can only come
/// from a deserialized or hand-edited table.
fn check_table_rows(table: &pas2p_phases::PhaseTable, out: &mut Vec<Diagnostic>) {
    for row in &table.rows {
        if row.windows.is_empty() {
            out.push(
                Diagnostic::new(
                    "SIG-ROW-001",
                    Severity::Error,
                    Location::phase(row.phase_id),
                    format!(
                        "table row for phase {} has no measure windows",
                        row.phase_id
                    ),
                )
                .with_suggestion(
                    "the constructor will skip this row; rebuild the table from the analysis",
                ),
            );
        }
    }
}

/// SIG-W-001: a phase's weight is its repetition count — exactly the
/// number of recorded occurrences.
fn check_weights(analysis: &PhaseAnalysis, out: &mut Vec<Diagnostic>) {
    for p in &analysis.phases {
        if p.weight as usize != p.occurrences.len() {
            out.push(Diagnostic::new(
                "SIG-W-001",
                Severity::Error,
                Location::phase(p.id),
                format!(
                    "phase {} claims weight {} but records {} occurrence(s)",
                    p.id,
                    p.weight,
                    p.occurrences.len()
                ),
            ));
        }
    }
}

/// SIG-OCC-001: occurrences of all phases together tile the logical
/// trace — contiguous, non-overlapping, starting at tick 0 and (when the
/// logical trace is at hand) ending at its last tick.
fn check_tiling(
    analysis: &PhaseAnalysis,
    logical: Option<&LogicalTrace>,
    out: &mut Vec<Diagnostic>,
) {
    let mut spans: Vec<(usize, usize, u32)> = analysis
        .phases
        .iter()
        .flat_map(|p| {
            p.occurrences
                .iter()
                .map(move |o| (o.start_tick, o.end_tick, p.id))
        })
        .collect();
    if spans.is_empty() {
        return;
    }
    spans.sort_unstable();
    if spans[0].0 != 0 {
        out.push(Diagnostic::new(
            "SIG-OCC-001",
            Severity::Error,
            Location::phase(spans[0].2),
            format!("first occurrence starts at tick {}, not 0", spans[0].0),
        ));
    }
    for w in spans.windows(2) {
        let (a, b) = (w[0], w[1]);
        if a.1 != b.0 {
            out.push(Diagnostic::new(
                "SIG-OCC-001",
                Severity::Error,
                Location::phase(b.2),
                format!(
                    "occurrences do not tile: one ends at tick {} and the next \
                     (phase {}) starts at tick {}",
                    a.1, b.2, b.0
                ),
            ));
        }
    }
    if let Some(l) = logical {
        let last = spans.last().unwrap();
        if last.1 != l.len() {
            out.push(Diagnostic::new(
                "SIG-OCC-001",
                Severity::Error,
                Location::phase(last.2),
                format!(
                    "last occurrence ends at tick {} but the logical trace has {} tick(s)",
                    last.1,
                    l.len()
                ),
            ));
        }
    }
}

/// SIG-SIM-001: two *distinct* phases that are mutually similar should
/// have been merged by the dedup — their coexistence splits one weight
/// across two table rows.
fn check_mutual_similarity(
    analysis: &PhaseAnalysis,
    cfg: &SimilarityConfig,
    out: &mut Vec<Diagnostic>,
) {
    for (i, a) in analysis.phases.iter().enumerate() {
        for b in &analysis.phases[i + 1..] {
            if cfg.phases_similar(&a.pattern, &b.pattern) {
                out.push(
                    Diagnostic::new(
                        "SIG-SIM-001",
                        Severity::Warning,
                        Location::phase(a.id),
                        format!(
                            "phases {} and {} are mutually similar but were not merged",
                            a.id, b.id
                        ),
                    )
                    .with_suggestion(
                        "first-match dedup can leave similar representatives; \
                         weights are split between them",
                    ),
                );
            }
        }
    }
}

/// Rebuild the `[tick][process]` cell pattern of a tick span from the
/// logical trace — the same construction the extractor uses.
fn pattern_of(
    logical: &LogicalTrace,
    start: usize,
    end: usize,
    nprocs: u32,
) -> Vec<Vec<Option<CellSig>>> {
    logical.ticks[start..end.min(logical.ticks.len())]
        .iter()
        .map(|tick| {
            (0..nprocs)
                .map(|p| tick.event_of(p).map(|e| CellSig::of(e, nprocs)))
                .collect()
        })
        .collect()
}

/// SIG-SIM-002: each recorded occurrence, re-read from the logical trace,
/// must still be similar to its phase's representative pattern — the
/// weight is otherwise counting ticks that do not repeat the phase.
fn check_patterns_match_trace(
    analysis: &PhaseAnalysis,
    logical: &LogicalTrace,
    cfg: &SimilarityConfig,
    out: &mut Vec<Diagnostic>,
) {
    for p in &analysis.phases {
        for o in &p.occurrences {
            if o.end_tick > logical.len() {
                out.push(Diagnostic::new(
                    "SIG-SIM-002",
                    Severity::Error,
                    Location::phase(p.id),
                    format!(
                        "phase {} records an occurrence at ticks {}..{} beyond the \
                         logical trace ({} ticks)",
                        p.id,
                        o.start_tick,
                        o.end_tick,
                        logical.len()
                    ),
                ));
                continue;
            }
            let pat = pattern_of(logical, o.start_tick, o.end_tick, analysis.nprocs);
            if !cfg.phases_similar(&p.pattern, &pat) {
                out.push(Diagnostic::new(
                    "SIG-SIM-002",
                    Severity::Error,
                    Location::phase(p.id),
                    format!(
                        "occurrence of phase {} at ticks {}..{} is not similar to \
                         the phase's representative pattern",
                        p.id, o.start_tick, o.end_tick
                    ),
                ));
            }
        }
    }
}

/// SIG-COV-001: how much of the AET the relevant phases represent.
fn check_coverage(analysis: &PhaseAnalysis, artifacts: &Artifacts<'_>, out: &mut Vec<Diagnostic>) {
    let threshold = artifacts
        .table
        .map(|t| t.relevance_threshold)
        .unwrap_or(0.01);
    let cov = analysis.relevant_coverage(threshold);
    if analysis.aet > 0.0 && cov < COVERAGE_FLOOR {
        out.push(
            Diagnostic::new(
                "SIG-COV-001",
                Severity::Info,
                Location::none(),
                format!(
                    "relevant phases cover {:.1}% of the execution time \
                     (floor {:.0}%)",
                    cov * 100.0,
                    COVERAGE_FLOOR * 100.0
                ),
            )
            .with_suggestion("a prediction from this signature misses much of the application"),
        );
    }
}

/// PET-EQ-001: the reconstruction identity. Occurrences tile the trace,
/// so Σ weight × mean duration over *all* phases equals the AET.
///
/// PET-EQ-002: a degenerate AET (≤ 0) with a non-trivial phase analysis.
/// The identity cannot be checked and any prediction-error percentage
/// (PETE) over this run is undefined — `report_from` yields
/// `pete_percent = None` rather than a fake 0 %.
fn check_pet_identity(analysis: &PhaseAnalysis, out: &mut Vec<Diagnostic>) {
    if analysis.aet <= 0.0 {
        if !analysis.phases.is_empty() {
            out.push(
                Diagnostic::new(
                    "PET-EQ-002",
                    Severity::Warning,
                    Location::none(),
                    format!(
                        "AET is {:.6}s but the analysis has {} phase(s); the Eq-1 \
                         identity and PETE are undefined over this run",
                        analysis.aet,
                        analysis.phases.len()
                    ),
                )
                .with_suggestion("a zero-duration run cannot anchor a prediction error"),
            );
        }
        return;
    }
    let reconstructed = analysis.reconstructed_aet();
    let rel = (reconstructed - analysis.aet).abs() / analysis.aet;
    if rel > PET_TOLERANCE {
        out.push(Diagnostic::new(
            "PET-EQ-001",
            Severity::Error,
            Location::none(),
            format!(
                "Σ weight × PhaseET = {:.6}s but AET = {:.6}s (relative error {:.2e})",
                reconstructed, analysis.aet, rel
            ),
        ));
    }
}

/// SIG-REL-001: the table's rows are exactly the analysis's relevant
/// phases — same ids, same weights, same order.
fn check_table_consistency(
    analysis: &PhaseAnalysis,
    table: &pas2p_phases::PhaseTable,
    out: &mut Vec<Diagnostic>,
) {
    let relevant: Vec<&Phase> = analysis.relevant(table.relevance_threshold);
    if relevant.len() != table.rows.len() {
        out.push(Diagnostic::new(
            "SIG-REL-001",
            Severity::Error,
            Location::none(),
            format!(
                "table has {} row(s) but the analysis finds {} relevant phase(s) \
                 at threshold {}",
                table.rows.len(),
                relevant.len(),
                table.relevance_threshold
            ),
        ));
        return;
    }
    for (row, phase) in table.rows.iter().zip(&relevant) {
        if row.phase_id != phase.id || row.weight != phase.weight {
            out.push(Diagnostic::new(
                "SIG-REL-001",
                Severity::Error,
                Location::phase(row.phase_id),
                format!(
                    "table row (phase {}, weight {}) disagrees with the analysis \
                     (phase {}, weight {})",
                    row.phase_id, row.weight, phase.id, phase.weight
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CheckEngine;
    use pas2p_phases::{extract_phases, Occurrence, PhaseTable};

    /// A tiny hand-built analysis: one phase, two occurrences, weights
    /// consistent, spanning ticks 0..4.
    fn tiny_analysis() -> PhaseAnalysis {
        let occ = |s: usize, e: usize, t0: f64, t1: f64| Occurrence {
            start_tick: s,
            end_tick: e,
            t_start: t0,
            t_end: t1,
            start_counts: vec![0],
            end_counts: vec![1],
        };
        PhaseAnalysis {
            nprocs: 1,
            phases: vec![Phase {
                id: 0,
                pattern: vec![vec![None], vec![None]],
                weight: 2,
                occurrences: vec![occ(0, 2, 0.0, 1.0), occ(2, 4, 1.0, 2.0)],
            }],
            aet: 2.0,
            analysis_seconds: 0.0,
            negative_spans: 0,
        }
    }

    fn run(analysis: &PhaseAnalysis, table: Option<&PhaseTable>) -> Vec<Diagnostic> {
        let artifacts = Artifacts {
            analysis: Some(analysis),
            table,
            ..Artifacts::empty()
        };
        CheckEngine::with_default_rules()
            .run(&artifacts)
            .diagnostics
    }

    #[test]
    fn consistent_analysis_has_no_errors() {
        let a = tiny_analysis();
        let ds = run(&a, None);
        assert!(
            ds.iter().all(|d| d.severity != Severity::Error),
            "unexpected: {:?}",
            ds
        );
    }

    #[test]
    fn inflated_weight_is_flagged() {
        let mut a = tiny_analysis();
        a.phases[0].weight = 99;
        let ds = run(&a, None);
        assert!(ds.iter().any(|d| d.code == "SIG-W-001"));
        // The PET identity breaks with it.
        assert!(ds.iter().any(|d| d.code == "PET-EQ-001"));
    }

    #[test]
    fn gap_in_tiling_is_flagged() {
        let mut a = tiny_analysis();
        a.phases[0].occurrences[1].start_tick = 3; // 2..3 uncovered
        let ds = run(&a, None);
        assert!(ds.iter().any(|d| d.code == "SIG-OCC-001"));
    }

    #[test]
    fn pet_identity_detects_inflated_duration() {
        let mut a = tiny_analysis();
        a.phases[0].occurrences[0].t_end = 5.0; // mean duration now wrong
        let ds = run(&a, None);
        assert!(ds.iter().any(|d| d.code == "PET-EQ-001"));
    }

    #[test]
    fn table_row_mismatch_is_flagged() {
        let a = tiny_analysis();
        let mut table = PhaseTable::from_analysis(&a, 0.01, 0, 1);
        table.rows[0].weight += 1;
        let ds = run(&a, Some(&table));
        assert!(ds.iter().any(|d| d.code == "SIG-REL-001"));
    }

    #[test]
    fn dropped_table_row_is_flagged() {
        let a = tiny_analysis();
        let mut table = PhaseTable::from_analysis(&a, 0.01, 0, 1);
        table.rows.clear();
        let ds = run(&a, Some(&table));
        assert!(ds.iter().any(|d| d.code == "SIG-REL-001"));
    }

    #[test]
    fn empty_windows_row_is_flagged() {
        let a = tiny_analysis();
        let mut table = PhaseTable::from_analysis(&a, 0.01, 0, 1);
        table.rows[0].windows.clear();
        let ds = run(&a, Some(&table));
        assert!(ds.iter().any(|d| d.code == "SIG-ROW-001"), "{ds:?}");
    }

    #[test]
    fn degenerate_aet_with_phases_is_flagged() {
        let mut a = tiny_analysis();
        a.aet = 0.0;
        let ds = run(&a, None);
        assert!(ds.iter().any(|d| d.code == "PET-EQ-002"), "{ds:?}");
        // ...but an empty analysis with aet 0 stays clean.
        let empty = PhaseAnalysis {
            nprocs: 1,
            phases: vec![],
            aet: 0.0,
            analysis_seconds: 0.0,
            negative_spans: 0,
        };
        let ds = run(&empty, None);
        assert!(ds.iter().all(|d| d.code != "PET-EQ-002"), "{ds:?}");
    }

    #[test]
    fn extractor_output_checks_clean_end_to_end() {
        // A real extraction over a synthetic logical trace must satisfy
        // every signature rule including SIG-SIM-002 against the trace.
        use pas2p_model::pas2p_order;
        use pas2p_trace::{EventKind, ProcessTrace, Trace, TraceEvent};
        let ev = |number: u64, process: u32, kind: EventKind, peer: u32, msg_id: u64, t: f64| {
            TraceEvent {
                number,
                process,
                t_post: t,
                t_complete: t + 0.01,
                kind,
                peer: Some(peer),
                tag: 0,
                size: 64,
                involved: 1,
                msg_id,
                comm_id: 0,
                wildcard: false,
            }
        };
        // 8 identical rounds of a 2-rank ping.
        let mut p0 = Vec::new();
        let mut p1 = Vec::new();
        for r in 0..8u64 {
            let t = r as f64 * 0.1;
            p0.push(ev(r, 0, EventKind::Send, 1, r + 1, t));
            p1.push(ev(r, 1, EventKind::Recv, 0, r + 1, t + 0.02));
        }
        let trace = Trace {
            nprocs: 2,
            machine: "t".into(),
            procs: vec![
                ProcessTrace {
                    process: 0,
                    end_time: 1.0,
                    events: p0,
                },
                ProcessTrace {
                    process: 1,
                    end_time: 1.0,
                    events: p1,
                },
            ],
        };
        let logical = pas2p_order(&trace);
        let cfg = SimilarityConfig::default();
        let analysis = extract_phases(&logical, &cfg);
        let table = PhaseTable::from_analysis(&analysis, 0.01, 0, 1);
        let artifacts = Artifacts {
            trace: Some(&trace),
            logical: Some(&logical),
            analysis: Some(&analysis),
            table: Some(&table),
            similarity: cfg,
            ingest: None,
        };
        let report = CheckEngine::with_default_rules().run(&artifacts);
        assert_eq!(
            report.errors(),
            0,
            "real pipeline output must be error-free: {}",
            report.render()
        );
    }
}
