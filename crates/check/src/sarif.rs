//! SARIF 2.1.0 export and baseline suppression.
//!
//! [`to_sarif`] renders a [`CheckReport`] as a SARIF 2.1.0 log so the
//! checker plugs into anything that speaks the format (GitHub code
//! scanning, IDE problem matchers, result diffing tools). The output is
//! **byte-stable**: the JSON is emitted by hand in a fixed field order
//! (the same discipline as the Chrome Trace exporter in `pas2p-obs`),
//! rules come from a closed sorted table, results keep the report's
//! canonical order, and nothing nondeterministic (timestamps, absolute
//! paths, machine names) appears. The same report always renders the
//! same bytes — CI snapshots it.
//!
//! [`Baseline`] is the suppression side: a sorted list of
//! [`Diagnostic::fingerprint`]s. [`apply_baseline`] drops findings whose
//! fingerprint is listed, so the checker can be adopted on a codebase
//! with pre-existing findings and fail CI only on *new* ones.

use crate::diag::{Diagnostic, Severity};
use crate::engine::CheckReport;

/// The SARIF schema version this module emits.
pub const SARIF_VERSION: &str = "2.1.0";
const SARIF_SCHEMA: &str =
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json";

/// Every rule the engine can emit, with the short description SARIF
/// viewers surface. Closed table, sorted by id; `to_sarif` indexes into
/// it. Unknown codes (user-supplied rule families) get a synthesized
/// entry after the table.
pub const RULE_TABLE: &[(&str, &str)] = &[
    (
        "DLK-POT-001",
        "An alternative wildcard matching wedges: potential deadlock",
    ),
    (
        "INGEST-DUP-001",
        "Recovering decoder renumbered duplicate records",
    ),
    ("INGEST-FATAL-001", "Trace buffer unusable"),
    ("INGEST-RANK-001", "A rank never appeared in the trace"),
    ("INGEST-REC-001", "Records quarantined during ingest"),
    ("INGEST-TRUNC-001", "A trace section was truncated"),
    ("LT-COLL-001", "A collective is split across logical ticks"),
    ("LT-RECV-001", "A receive is placed before its send"),
    ("MODEL-CONS-001", "Events lost or invented by the relayout"),
    ("MODEL-ORDER-001", "Program order broken on the tick axis"),
    (
        "MODEL-SPAN-001",
        "Phase occurrence with negative global span",
    ),
    ("MODEL-TICK-001", "Two events of one process share a tick"),
    (
        "MSG-RACE-001",
        "Wildcard receive race changes the recorded event structure",
    ),
    (
        "MSG-RACE-002",
        "Wildcard receive can steal a deterministic receive's message",
    ),
    ("P2P-MATCH-001", "Send without a matching receive"),
    ("P2P-MATCH-002", "Receive without a matching send"),
    ("P2P-MATCH-003", "Matched pair disagrees on peers"),
    ("P2P-MATCH-004", "Matched pair disagrees on size"),
    ("P2P-MATCH-005", "Relation id reused"),
    ("PET-EQ-001", "PET reconstruction identity fails"),
    ("PET-EQ-002", "PET reconstruction differs beyond tolerance"),
    ("SIG-COV-001", "Low relevant coverage"),
    ("SIG-OCC-001", "Occurrences do not tile the trace"),
    ("SIG-REL-001", "Table rows disagree with the analysis"),
    ("SIG-ROW-001", "Signature row bookkeeping broken"),
    ("SIG-SIM-001", "Similarity bookkeeping broken (merge)"),
    ("SIG-SIM-002", "Similarity bookkeeping broken (split)"),
    (
        "SIG-STAB-001",
        "Phase occurrences overlap a message-race window",
    ),
    ("SIG-W-001", "Phase weight disagrees with occurrence count"),
    (
        "WFG-CYCLE-001",
        "The traced order deadlocks under deterministic replay",
    ),
    ("WILD-RECV-001", "Wildcard-source receives posted"),
    (
        "WILD-RECV-002",
        "Symmetric wildcard race: order-dependent match, stable structure",
    ),
];

/// JSON string escape (the SARIF output is hand-emitted; see module
/// docs for why).
fn esc(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn level_of(s: Severity) -> &'static str {
    match s {
        Severity::Error => "error",
        Severity::Warning => "warning",
        Severity::Info => "note",
    }
}

/// Render a report as a SARIF 2.1.0 log (two-space-indented JSON with a
/// trailing newline). Byte-stable: the same report always produces the
/// same bytes.
pub fn to_sarif(report: &CheckReport) -> String {
    // Rule list: the closed table, then any codes the report carries
    // that the table does not (user rule families), in first-appearance
    // order — result ruleIndex entries index the emitted list.
    let mut rules: Vec<(String, String)> = RULE_TABLE
        .iter()
        .map(|(id, d)| ((*id).to_string(), (*d).to_string()))
        .collect();
    for d in &report.diagnostics {
        if !rules.iter().any(|(id, _)| *id == d.code) {
            rules.push((d.code.clone(), "(rule outside the shipped set)".to_string()));
        }
    }
    let index_of = |code: &str| {
        rules
            .iter()
            .position(|(id, _)| id == code)
            .expect("every code was indexed")
    };

    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"$schema\": ");
    esc(SARIF_SCHEMA, &mut s);
    s.push_str(",\n  \"version\": ");
    esc(SARIF_VERSION, &mut s);
    s.push_str(",\n  \"runs\": [\n    {\n");
    s.push_str("      \"tool\": {\n        \"driver\": {\n");
    s.push_str("          \"name\": \"pas2p-check\",\n");
    s.push_str("          \"informationUri\": \"https://example.org/pas2p-rs\",\n");
    s.push_str("          \"rules\": [\n");
    for (i, (id, desc)) in rules.iter().enumerate() {
        s.push_str("            { \"id\": ");
        esc(id, &mut s);
        s.push_str(", \"shortDescription\": { \"text\": ");
        esc(desc, &mut s);
        s.push_str(" } }");
        if i + 1 < rules.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("          ]\n        }\n      },\n");
    s.push_str("      \"results\": [\n");
    for (i, d) in report.diagnostics.iter().enumerate() {
        let mut message = d.message.clone();
        if let Some(hint) = &d.suggestion {
            message.push_str(" (hint: ");
            message.push_str(hint);
            message.push(')');
        }
        s.push_str("        {\n          \"ruleId\": ");
        esc(&d.code, &mut s);
        s.push_str(&format!(
            ",\n          \"ruleIndex\": {}",
            index_of(&d.code)
        ));
        s.push_str(",\n          \"level\": ");
        esc(level_of(d.severity), &mut s);
        s.push_str(",\n          \"message\": { \"text\": ");
        esc(&message, &mut s);
        s.push_str(" },\n          \"locations\": [\n");
        s.push_str("            { \"logicalLocations\": [ { \"fullyQualifiedName\": ");
        esc(&d.location.to_string(), &mut s);
        s.push_str(", \"kind\": \"element\" } ] }\n          ],\n");
        s.push_str("          \"fingerprints\": { \"pas2p/v1\": ");
        esc(&d.fingerprint(), &mut s);
        s.push_str(" }\n        }");
        if i + 1 < report.diagnostics.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("      ]\n    }\n  ]\n}\n");
    s
}

/// A suppression baseline: the fingerprints of findings to ignore.
///
/// Stored sorted and deduplicated so the file diffs cleanly under
/// version control.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Format version of the baseline file.
    pub version: u32,
    /// Suppressed finding fingerprints ([`Diagnostic::fingerprint`]).
    pub suppressed: Vec<String>,
}

/// Current baseline file format version.
pub const BASELINE_VERSION: u32 = 1;

impl Baseline {
    /// Capture every finding of `report` as suppressed.
    pub fn from_report(report: &CheckReport) -> Baseline {
        let mut suppressed: Vec<String> = report
            .diagnostics
            .iter()
            .map(Diagnostic::fingerprint)
            .collect();
        suppressed.sort();
        suppressed.dedup();
        Baseline {
            version: BASELINE_VERSION,
            suppressed,
        }
    }

    /// Serialize to the on-disk JSON form (sorted, trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"version\": ");
        s.push_str(&self.version.to_string());
        s.push_str(",\n  \"suppressed\": [\n");
        for (i, f) in self.suppressed.iter().enumerate() {
            s.push_str("    ");
            esc(f, &mut s);
            if i + 1 < self.suppressed.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parse the on-disk JSON form.
    pub fn from_json(s: &str) -> Result<Baseline, String> {
        let v: serde_json::Value =
            serde_json::from_str(s).map_err(|e| format!("baseline parse error: {}", e))?;
        let version =
            v.get("version")
                .and_then(|x| x.as_u64())
                .ok_or_else(|| "baseline missing \"version\"".to_string())? as u32;
        if version != BASELINE_VERSION {
            return Err(format!(
                "baseline version {} unsupported (expected {})",
                version, BASELINE_VERSION
            ));
        }
        let mut suppressed: Vec<String> = v
            .get("suppressed")
            .and_then(|x| x.as_array())
            .ok_or_else(|| "baseline missing \"suppressed\" list".to_string())?
            .iter()
            .map(|x| {
                x.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| "non-string fingerprint in baseline".to_string())
            })
            .collect::<Result<_, _>>()?;
        suppressed.sort();
        suppressed.dedup();
        Ok(Baseline {
            version,
            suppressed,
        })
    }

    /// True when the finding is suppressed.
    pub fn contains(&self, d: &Diagnostic) -> bool {
        self.suppressed.binary_search(&d.fingerprint()).is_ok()
    }
}

/// Drop baselined findings from a report. Returns the filtered report
/// and how many findings the baseline absorbed.
pub fn apply_baseline(report: CheckReport, baseline: &Baseline) -> (CheckReport, usize) {
    let before = report.diagnostics.len();
    let diagnostics: Vec<Diagnostic> = report
        .diagnostics
        .into_iter()
        .filter(|d| !baseline.contains(d))
        .collect();
    let absorbed = before - diagnostics.len();
    (CheckReport { diagnostics }, absorbed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Location, Severity};

    fn report() -> CheckReport {
        CheckReport {
            diagnostics: vec![
                Diagnostic::new(
                    "MSG-RACE-001",
                    Severity::Warning,
                    Location::event(0, 3),
                    "racy receive",
                )
                .with_suggestion("name the source"),
                Diagnostic::new(
                    "WILD-RECV-001",
                    Severity::Info,
                    Location::rank(0),
                    "wildcards",
                ),
            ],
        }
    }

    #[test]
    fn sarif_is_byte_stable_and_well_formed() {
        let a = to_sarif(&report());
        let b = to_sarif(&report());
        assert_eq!(a, b);
        let v: serde_json::Value = serde_json::from_str(&a).unwrap();
        assert_eq!(v["version"].as_str(), Some("2.1.0"));
        let run = &v["runs"].as_array().unwrap()[0];
        let results = run["results"].as_array().unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0]["ruleId"].as_str(), Some("MSG-RACE-001"));
        assert_eq!(results[0]["level"].as_str(), Some("warning"));
        assert_eq!(results[1]["level"].as_str(), Some("note"));
        // ruleIndex points into the emitted rule list.
        let idx = results[0]["ruleIndex"].as_u64().unwrap() as usize;
        let rules = run["tool"]["driver"]["rules"].as_array().unwrap();
        assert_eq!(rules[idx]["id"].as_str(), Some("MSG-RACE-001"));
        assert!(a.contains("hint: name the source"));
    }

    #[test]
    fn unknown_codes_get_a_synthesized_rule() {
        let r = CheckReport {
            diagnostics: vec![Diagnostic::new(
                "CUSTOM-999",
                Severity::Error,
                Location::none(),
                "user rule",
            )],
        };
        let s = to_sarif(&r);
        let v: serde_json::Value = serde_json::from_str(&s).unwrap();
        let run = &v["runs"].as_array().unwrap()[0];
        let idx = run["results"].as_array().unwrap()[0]["ruleIndex"]
            .as_u64()
            .unwrap() as usize;
        assert_eq!(
            run["tool"]["driver"]["rules"].as_array().unwrap()[idx]["id"].as_str(),
            Some("CUSTOM-999")
        );
    }

    #[test]
    fn rule_table_is_sorted_and_covers_hit_metrics() {
        for pair in RULE_TABLE.windows(2) {
            assert!(pair[0].0 < pair[1].0, "{} out of order", pair[1].0);
        }
        // Every tabled rule has a dedicated hit metric (no silent
        // `other` bucket for shipped codes).
        for (id, _) in RULE_TABLE {
            assert_ne!(
                crate::engine::hit_metric(id),
                "check.hit.other",
                "{} missing from hit_metric",
                id
            );
        }
    }

    #[test]
    fn baseline_roundtrip_suppresses() {
        let r = report();
        let b = Baseline::from_report(&r);
        let b2 = Baseline::from_json(&b.to_json()).unwrap();
        assert_eq!(b, b2);
        let (filtered, absorbed) = apply_baseline(r, &b2);
        assert_eq!(absorbed, 2);
        assert!(filtered.diagnostics.is_empty());
    }

    #[test]
    fn baseline_rejects_future_versions() {
        assert!(Baseline::from_json("{\"version\": 99, \"suppressed\": []}").is_err());
    }

    #[test]
    fn escapes_control_and_quote_characters() {
        let r = CheckReport {
            diagnostics: vec![Diagnostic::new(
                "X-001",
                Severity::Info,
                Location::none(),
                "a \"quoted\"\nline\twith\\slashes",
            )],
        };
        let s = to_sarif(&r);
        let v: serde_json::Value = serde_json::from_str(&s).unwrap();
        let run = &v["runs"].as_array().unwrap()[0];
        assert_eq!(
            run["results"].as_array().unwrap()[0]["message"]["text"].as_str(),
            Some("a \"quoted\"\nline\twith\\slashes")
        );
    }
}
