//! Timeline composition: one Chrome Trace / Perfetto document holding
//! both the pipeline's self-profile and the simulated application.
//!
//! The document has two process lanes (see [`pas2p_obs::export`]):
//!
//! * **host** ([`PID_HOST`]) — what the *tool* did, in wall-clock
//!   microseconds: pipeline stages ([`pas2p_obs::stage`] spans), phase
//!   extraction workers, batch jobs, retries, deadline handoffs. Built
//!   from the live [`pas2p_obs::events`] stream.
//! * **app** ([`PID_APP`]) — what the *simulated application* did, in
//!   virtual microseconds: per-rank compute/send/recv/collective
//!   slices reconstructed from the recorded [`Trace`], message flow
//!   arrows from each send to its matching receive, and a phase track
//!   overlaying the extracted [`PhaseAnalysis`] occurrences on the
//!   same virtual axis. Virtual clocks are never sampled live — the
//!   recorded trace *is* the timeline.
//!
//! Determinism: the virtual domain is deterministic by construction
//! (the simulator's clocks are worker-count invariant) once message
//! ids are remapped to a rank-major dense numbering — the simulator
//! allocates `msg_id`s from a racing atomic counter, so the raw values
//! depend on thread interleaving even though the *pairing* does not.
//! [`ChromeTrace::normalized`] then strips the legitimately varying
//! host-scheduling detail, and `tests/par_determinism.rs` pins the
//! normalized serialization byte-for-byte across worker counts.

use std::collections::HashMap;

use pas2p_obs::events::Event;
use pas2p_obs::{ChromeTrace, PID_APP, PID_HOST};
use pas2p_phases::PhaseAnalysis;
use pas2p_trace::{CollClass, EventKind, Trace};

/// Compose a timeline document from any subset of sources: recorded
/// host events (`pas2p_obs::events::take()`), a recorded application
/// trace, and its phase analysis for the overlay track. `label` lands
/// in the document's `otherData` so exported files identify their run.
///
/// The result is sorted into the canonical order and ready for
/// [`ChromeTrace::to_json`].
pub fn compose_timeline(
    host_events: &[Event],
    trace: Option<&Trace>,
    phases: Option<&PhaseAnalysis>,
    label: &str,
) -> ChromeTrace {
    let mut doc = ChromeTrace::new();
    doc.other_data("tool", "pas2p");
    doc.other_data("label", label);
    if !host_events.is_empty() {
        doc.process_name(PID_HOST, "pas2p pipeline (wall clock)");
        doc.push_host_events(host_events, PID_HOST);
    }
    if let Some(trace) = trace {
        push_app_timeline(&mut doc, trace, phases);
    }
    doc.sort();
    doc
}

fn coll_name(c: CollClass) -> &'static str {
    match c {
        CollClass::Barrier => "barrier",
        CollClass::Bcast => "bcast",
        CollClass::Reduce => "reduce",
        CollClass::Allreduce => "allreduce",
        CollClass::Allgather => "allgather",
        CollClass::Alltoall => "alltoall",
        CollClass::Gather => "gather",
        CollClass::Scatter => "scatter",
    }
}

/// Seconds of virtual time → microsecond timeline coordinate.
fn us(t: f64) -> f64 {
    t * 1e6
}

/// Rebuild the simulated application's timeline from a recorded trace:
/// one thread lane per rank with compute gaps and communication slices,
/// send→recv flow arrows, and (when available) the phase-occurrence
/// overlay track at `tid = nprocs`.
fn push_app_timeline(doc: &mut ChromeTrace, trace: &Trace, phases: Option<&PhaseAnalysis>) {
    doc.process_name(PID_APP, "simulated application (virtual time)");
    for rank in 0..trace.nprocs {
        doc.thread_name(PID_APP, rank as u64, &format!("rank {rank}"));
    }

    // Simulator msg_ids are deterministic but sparse (sender rank in the
    // high bits); renumber them in rank-major first-appearance order so
    // Perfetto flow ids stay small and sequential.
    let mut msg_ids: HashMap<u64, u64> = HashMap::new();
    let mut next_msg = 1u64;
    for p in &trace.procs {
        for e in &p.events {
            if e.msg_id != 0 {
                msg_ids.entry(e.msg_id).or_insert_with(|| {
                    let id = next_msg;
                    next_msg += 1;
                    id
                });
            }
        }
    }

    for p in &trace.procs {
        let tid = p.process as u64;
        let mut prev_complete = 0.0f64;
        for (i, e) in p.events.iter().enumerate() {
            let gap = p.compute_before(i);
            if gap > 0.0 {
                doc.complete(
                    PID_APP,
                    tid,
                    "app.compute",
                    "compute",
                    us(prev_complete),
                    us(gap),
                    Vec::new(),
                );
            }
            let (cat, name) = match e.kind {
                EventKind::Send => ("app.send", "send"),
                EventKind::Recv => ("app.recv", "recv"),
                EventKind::Coll(c) => ("app.coll", coll_name(c)),
            };
            let mut args: Vec<(String, String)> = vec![
                ("size".to_string(), e.size.to_string()),
                ("tag".to_string(), e.tag.to_string()),
            ];
            if let Some(peer) = e.peer {
                args.push(("peer".to_string(), peer.to_string()));
            }
            if e.kind.is_collective() {
                args.push(("involved".to_string(), e.involved.to_string()));
                args.push(("comm_id".to_string(), format!("{:#x}", e.comm_id)));
            }
            if e.wildcard {
                args.push(("wildcard".to_string(), "true".to_string()));
            }
            doc.complete(
                PID_APP,
                tid,
                cat,
                name,
                us(e.t_post),
                us(e.t_complete - e.t_post),
                args,
            );
            if let Some(&id) = msg_ids.get(&e.msg_id) {
                match e.kind {
                    EventKind::Send => {
                        doc.flow_start(PID_APP, tid, "app.msg", "msg", us(e.t_post), id);
                    }
                    EventKind::Recv => {
                        doc.flow_end(PID_APP, tid, "app.msg", "msg", us(e.t_complete), id);
                    }
                    EventKind::Coll(_) => {}
                }
            }
            prev_complete = prev_complete.max(e.t_complete);
        }
    }

    if let Some(analysis) = phases {
        let tid = trace.nprocs as u64;
        doc.thread_name(PID_APP, tid, "phases");
        for phase in &analysis.phases {
            for occ in &phase.occurrences {
                doc.complete(
                    PID_APP,
                    tid,
                    "app.phase",
                    &format!("phase {}", phase.id),
                    us(occ.t_start),
                    us(occ.duration()),
                    vec![
                        ("weight".to_string(), phase.weight.to_string()),
                        (
                            "ticks".to_string(),
                            (occ.end_tick - occ.start_tick).to_string(),
                        ),
                    ],
                );
            }
        }
    }
}

/// Summary counts from a validated timeline document.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize)]
pub struct TimelineStats {
    /// Total entries in `traceEvents`.
    pub events: usize,
    /// Complete (`X`) slices.
    pub slices: usize,
    /// Instant (`i`) markers.
    pub instants: usize,
    /// Flow (`s`/`f`) arrows.
    pub flows: usize,
    /// Metadata (`M`) records.
    pub metadata: usize,
    /// Distinct process lanes.
    pub pids: usize,
}

/// Parse `json` and check it against the Chrome Trace Event Format
/// contract: a `traceEvents` array of objects, each with `name`, a
/// known one-letter `ph`, numeric `ts`/`pid`/`tid`, a non-negative
/// numeric `dur` on `X` slices and an `id` on flow events. Returns
/// summary counts, or a description of the first violation.
pub fn validate_chrome_json(json: &str) -> Result<TimelineStats, String> {
    let doc: serde_json::Value =
        serde_json::from_str(json).map_err(|e| format!("not valid JSON: {e}"))?;
    let obj = doc.as_object().ok_or("root is not a JSON object")?;
    let events = obj
        .get("traceEvents")
        .ok_or("missing \"traceEvents\"")?
        .as_array()
        .ok_or("\"traceEvents\" is not an array")?;

    let mut stats = TimelineStats::default();
    let mut pids = std::collections::BTreeSet::new();
    for (i, ev) in events.iter().enumerate() {
        let ev = ev
            .as_object()
            .ok_or_else(|| format!("traceEvents[{i}] is not an object"))?;
        let ph = ev
            .get("ph")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("traceEvents[{i}] missing string \"ph\""))?;
        if ev.get("name").and_then(|v| v.as_str()).is_none() {
            return Err(format!("traceEvents[{i}] missing string \"name\""));
        }
        for key in ["ts", "pid", "tid"] {
            if ev.get(key).and_then(|v| v.as_f64()).is_none() {
                return Err(format!("traceEvents[{i}] missing numeric \"{key}\""));
            }
        }
        pids.insert(ev["pid"].as_f64().unwrap_or(0.0) as i64);
        match ph {
            "X" => {
                let dur = ev
                    .get("dur")
                    .and_then(|v| v.as_f64())
                    .ok_or_else(|| format!("traceEvents[{i}]: X slice missing numeric \"dur\""))?;
                if dur < 0.0 {
                    return Err(format!("traceEvents[{i}]: negative dur {dur}"));
                }
                stats.slices += 1;
            }
            "i" => stats.instants += 1,
            "s" | "f" => {
                if ev.get("id").is_none() {
                    return Err(format!("traceEvents[{i}]: flow event missing \"id\""));
                }
                stats.flows += 1;
            }
            "M" => stats.metadata += 1,
            other => return Err(format!("traceEvents[{i}]: unknown ph {other:?}")),
        }
    }
    stats.events = events.len();
    stats.pids = pids.len();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas2p_trace::{ProcessTrace, TraceEvent};

    fn two_rank_trace() -> Trace {
        let send = TraceEvent {
            number: 0,
            process: 0,
            t_post: 1.0,
            t_complete: 1.5,
            kind: EventKind::Send,
            peer: Some(1),
            tag: 7,
            size: 64,
            involved: 1,
            msg_id: 99, // raw simulator id; remapped to 1 at export
            comm_id: 0,
            wildcard: false,
        };
        let recv = TraceEvent {
            number: 0,
            process: 1,
            t_post: 0.5,
            t_complete: 1.6,
            kind: EventKind::Recv,
            peer: Some(0),
            tag: 7,
            size: 64,
            involved: 1,
            msg_id: 99,
            comm_id: 0,
            wildcard: false,
        };
        Trace {
            nprocs: 2,
            machine: "test".into(),
            procs: vec![
                ProcessTrace {
                    process: 0,
                    events: vec![send],
                    end_time: 1.5,
                },
                ProcessTrace {
                    process: 1,
                    events: vec![recv],
                    end_time: 1.6,
                },
            ],
        }
    }

    #[test]
    fn app_timeline_has_ranks_flows_and_compute() {
        let trace = two_rank_trace();
        let doc = compose_timeline(&[], Some(&trace), None, "t");
        let json = doc.to_json();
        let stats = validate_chrome_json(&json).expect("valid document");
        // rank 0: compute + send; rank 1: compute + recv.
        assert_eq!(stats.slices, 4);
        assert_eq!(stats.flows, 2, "send/recv flow pair");
        assert!(json.contains("\"rank 0\""));
        assert!(json.contains("\"rank 1\""));
        // The raw msg_id 99 was renumbered to the dense id 1.
        assert!(json.contains("\"id\":\"0x1\""));
    }

    #[test]
    fn msg_id_remap_is_interleaving_invariant() {
        let trace = two_rank_trace();
        let mut renamed = trace.clone();
        // Same pairing, different raw counter values.
        renamed.procs[0].events[0].msg_id = 1234;
        renamed.procs[1].events[0].msg_id = 1234;
        let a = compose_timeline(&[], Some(&trace), None, "t").to_json();
        let b = compose_timeline(&[], Some(&renamed), None, "t").to_json();
        assert_eq!(a, b);
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        assert!(validate_chrome_json("not json").is_err());
        assert!(validate_chrome_json("{}").is_err());
        assert!(validate_chrome_json("{\"traceEvents\":[{}]}").is_err());
        let bad_ph =
            "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"Z\",\"ts\":0,\"pid\":1,\"tid\":0}]}";
        assert!(validate_chrome_json(bad_ph).is_err());
        let no_dur =
            "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"X\",\"ts\":0,\"pid\":1,\"tid\":0}]}";
        assert!(validate_chrome_json(no_dur).is_err());
        let ok = "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"X\",\"ts\":0,\"dur\":1,\"pid\":1,\"tid\":0}]}";
        let stats = validate_chrome_json(ok).unwrap();
        assert_eq!((stats.events, stats.slices, stats.pids), (1, 1, 1));
    }
}
