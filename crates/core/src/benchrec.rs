//! Bench-trajectory recording: schema-versioned performance snapshots
//! of the pipeline itself, appended to a `BENCH_*.json` file so the
//! repository accumulates a benchmark trajectory across commits.
//!
//! A [`BenchRecord`] is derived from a [`BatchReport`] over the
//! standard application suite (`pas2p-cli bench-report`): per-app
//! trace-file analysis time (the paper's TFAT, Table 8), events/sec
//! through the analysis pipeline, and batch throughput. Records carry
//! [`BENCH_SCHEMA_VERSION`] so future readers can migrate old files.

use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::batch::BatchReport;

/// Version stamp written into every record.
///
/// v2 added the optional `check` block (check-engine throughput); v3
/// added the optional `kernel` block (similarity-kernel timing). Records
/// from older schemas deserialize with the newer blocks as `None`.
pub const BENCH_SCHEMA_VERSION: u32 = 3;

/// Similarity-kernel timing inside a [`BenchRecord`]: the same logical
/// trace extracted with the scalar reference walk and with the SoA
/// kernel (banded prefilters + LSH bucketing), sequentially and over a
/// worker pool. The outputs are byte-identical by construction
/// (`tests/kernel_equivalence.rs`); only the time and the skip counters
/// differ.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct KernelBenchStat {
    /// Application the extraction was timed over.
    pub app: String,
    /// Worker threads in the parallel SoA configuration.
    pub workers: usize,
    /// Unique phases extracted (identical in every configuration).
    pub phases: u64,
    /// Sequential scalar extraction, wall-clock seconds.
    pub scalar_seconds: f64,
    /// Sequential SoA extraction, wall-clock seconds.
    pub soa_seconds: f64,
    /// Parallel SoA extraction, wall-clock seconds.
    pub soa_parallel_seconds: f64,
    /// `scalar_seconds / soa_seconds` (0 when not measurable).
    pub soa_speedup: f64,
    /// `scalar_seconds / soa_parallel_seconds` (0 when not measurable).
    pub total_speedup: f64,
    /// Candidates rejected by the band prefilter (sequential SoA run).
    pub band_rejects: u64,
    /// Known phases skipped by LSH bucketing (sequential SoA run).
    pub lsh_skipped: u64,
    /// Full comparisons that survived the prefilters (sequential SoA run).
    pub soa_compares: u64,
}

/// Check-engine throughput measurements inside a [`BenchRecord`]
/// (`pas2p-cli bench-report` runs the full rule set over one analyzed
/// app sequentially and with a worker pool).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CheckBenchStat {
    /// Application the engine was timed over.
    pub app: String,
    /// Worker threads in the parallel configuration.
    pub workers: usize,
    /// Diagnostics the engine produced (identical in both configurations
    /// by construction).
    pub diagnostics: u64,
    /// Wall-clock seconds for the sequential run.
    pub sequential_seconds: f64,
    /// Wall-clock seconds for the parallel run.
    pub parallel_seconds: f64,
    /// Sequential diagnostics/sec (0 when the run produced none).
    pub diagnostics_per_sec: f64,
    /// `sequential_seconds / parallel_seconds` (0 when not measurable).
    pub speedup: f64,
}

/// Per-application measurements inside a [`BenchRecord`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchAppStat {
    /// Application name (catalog name).
    pub app: String,
    /// Batch outcome (`ok`, `failed`, ...).
    pub status: String,
    /// Events in the recorded trace.
    pub trace_events: u64,
    /// Trace-file analysis time in seconds (ordering + extraction).
    pub tfat_seconds: f64,
    /// Analysis throughput: `trace_events / tfat_seconds`.
    pub events_per_sec: f64,
    /// Unique phases extracted.
    pub phases: u64,
    /// Wall-clock seconds the whole job took (including the traced run).
    pub job_seconds: f64,
}

/// One entry of the bench trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchRecord {
    /// Record layout version ([`BENCH_SCHEMA_VERSION`]).
    pub schema: u32,
    /// Seconds since the Unix epoch when the record was taken.
    pub unix_time: u64,
    /// Free-form run label (e.g. a git revision).
    pub label: String,
    /// Process count every suite member ran at.
    pub nprocs: u32,
    /// Base machine preset name.
    pub base_machine: String,
    /// Worker threads the batch pool used.
    pub batch_workers: usize,
    /// Wall-clock seconds for the whole batch.
    pub batch_wall_seconds: f64,
    /// Jobs in the suite.
    pub jobs: usize,
    /// Jobs that completed with an analysis.
    pub jobs_ok: usize,
    /// Batch throughput: `jobs / batch_wall_seconds`.
    pub jobs_per_sec: f64,
    /// Total trace events across completed jobs.
    pub total_events: u64,
    /// Total TFAT seconds across completed jobs.
    pub total_tfat_seconds: f64,
    /// Aggregate analysis throughput: `total_events / total_tfat_seconds`.
    pub events_per_sec: f64,
    /// Per-application breakdown, in submission order.
    pub apps: Vec<BenchAppStat>,
    /// Check-engine throughput, when the run measured it (absent in
    /// schema-v1 records and when `bench-report` skips the check pass).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub check: Option<CheckBenchStat>,
    /// Similarity-kernel timing, when the run measured it (absent in
    /// pre-v3 records).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub kernel: Option<KernelBenchStat>,
}

fn rate(num: f64, den: f64) -> f64 {
    if den > 0.0 {
        num / den
    } else {
        0.0
    }
}

/// Derive a bench record from a finished batch over the suite.
pub fn bench_record(
    report: &BatchReport,
    label: &str,
    nprocs: u32,
    base_machine: &str,
) -> BenchRecord {
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut apps = Vec::with_capacity(report.results.len());
    let mut total_events = 0u64;
    let mut total_tfat = 0.0f64;
    let mut jobs_ok = 0usize;
    for r in &report.results {
        let (events, tfat, phases) = match &r.analysis {
            Some(a) => {
                jobs_ok += 1;
                (
                    a.trace_events as u64,
                    a.tfat_seconds,
                    a.analysis.total_phases() as u64,
                )
            }
            None => (0, 0.0, 0),
        };
        total_events += events;
        total_tfat += tfat;
        apps.push(BenchAppStat {
            app: r.app_name.clone(),
            status: r.status.to_string(),
            trace_events: events,
            tfat_seconds: tfat,
            events_per_sec: rate(events as f64, tfat),
            phases,
            job_seconds: r.job_seconds,
        });
    }
    BenchRecord {
        schema: BENCH_SCHEMA_VERSION,
        unix_time,
        label: label.to_string(),
        nprocs,
        base_machine: base_machine.to_string(),
        batch_workers: report.workers,
        batch_wall_seconds: report.wall_seconds,
        jobs: report.results.len(),
        jobs_ok,
        jobs_per_sec: rate(report.results.len() as f64, report.wall_seconds),
        total_events,
        total_tfat_seconds: total_tfat,
        events_per_sec: rate(total_events as f64, total_tfat),
        apps,
        check: None,
        kernel: None,
    }
}

/// Append `record` to the JSON array in `path`, creating the file if it
/// does not exist. An existing file that is not a `BenchRecord` array
/// is left untouched and reported as an error — the trajectory is
/// history, never to be clobbered by a malformed write.
pub fn append_record(path: &Path, record: &BenchRecord) -> io::Result<usize> {
    let mut records: Vec<BenchRecord> = match std::fs::read_to_string(path) {
        Ok(text) => serde_json::from_str(&text).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{} is not a bench-record array: {e}", path.display()),
            )
        })?,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    records.push(record.clone());
    let json = serde_json::to_string_pretty(&records).map_err(io::Error::other)?;
    std::fs::write(path, json + "\n")?;
    Ok(records.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{BatchResult, BatchStatus};

    fn report_with_one_failure() -> BatchReport {
        BatchReport {
            results: vec![BatchResult {
                index: 0,
                app_name: "cg".into(),
                status: BatchStatus::Failed,
                analysis: None,
                ingest: None,
                error: Some("boom".into()),
                attempts: 1,
                job_seconds: 0.25,
            }],
            workers: 3,
            wall_seconds: 0.5,
        }
    }

    #[test]
    fn record_handles_failed_jobs_and_zero_denominators() {
        let rec = bench_record(&report_with_one_failure(), "test", 8, "ClusterA");
        assert_eq!(rec.schema, BENCH_SCHEMA_VERSION);
        assert_eq!(rec.jobs, 1);
        assert_eq!(rec.jobs_ok, 0);
        assert_eq!(rec.events_per_sec, 0.0, "no completed analyses");
        assert_eq!(rec.apps[0].status, "failed");
        assert_eq!(rec.jobs_per_sec, 2.0);
    }

    #[test]
    fn pre_v3_records_deserialize_without_kernel_block() {
        // A v2-era record has no `kernel` (and a v1-era one no `check`);
        // both must load as None so old trajectory files keep reading.
        let mut rec = bench_record(&report_with_one_failure(), "old", 8, "ClusterA");
        rec.schema = 2;
        rec.check = None;
        rec.kernel = None;
        let json = serde_json::to_string(&rec).unwrap();
        assert!(!json.contains("\"kernel\""), "None must not serialize");
        assert!(!json.contains("\"check\""));
        let back: BenchRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn kernel_block_round_trips() {
        let mut rec = bench_record(&report_with_one_failure(), "k", 8, "ClusterA");
        rec.kernel = Some(KernelBenchStat {
            app: "cg".into(),
            workers: 4,
            phases: 12,
            scalar_seconds: 0.9,
            soa_seconds: 0.2,
            soa_parallel_seconds: 0.1,
            soa_speedup: 4.5,
            total_speedup: 9.0,
            band_rejects: 100,
            lsh_skipped: 400,
            soa_compares: 20,
        });
        let json = serde_json::to_string(&rec).unwrap();
        let back: BenchRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn append_creates_then_grows_and_rejects_garbage() {
        let dir = std::env::temp_dir().join(format!(
            "pas2p-benchrec-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_trajectory.json");
        let _ = std::fs::remove_file(&path);

        let rec = bench_record(&report_with_one_failure(), "r1", 8, "ClusterA");
        assert_eq!(append_record(&path, &rec).unwrap(), 1);
        assert_eq!(append_record(&path, &rec).unwrap(), 2);
        let loaded: Vec<BenchRecord> =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[1].label, "r1");

        std::fs::write(&path, "not json").unwrap();
        assert!(append_record(&path, &rec).is_err());
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            "not json",
            "malformed trajectory must not be clobbered"
        );
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }
}
