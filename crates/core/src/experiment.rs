//! Experiment harness helpers: reproduce the paper's table rows.
//!
//! These produce the exact row shapes of the evaluation tables so the
//! bench targets (and examples) only orchestrate which applications and
//! machines to run.

use crate::pipeline::{Analysis, Pas2p};
use pas2p_machine::{CoreLoc, MachineModel, MappingPolicy};
use pas2p_signature::{predict, run_plain, ConstructionStats, MpiApp, Signature};
use serde::{Deserialize, Serialize};

/// A mapping that uses only the first `cores` cores of a machine
/// (block-filled, wrapping when processes exceed cores) — how the paper
/// runs a 64-process signature "at 32 cores" (Table 5) or a 256-process
/// signature on 128 cores (Table 7).
pub fn first_cores_mapping(machine: &MachineModel, nprocs: u32, cores: u32) -> MappingPolicy {
    assert!(cores >= 1 && cores <= machine.total_cores());
    let cps = machine.cores_per_socket;
    let cpn = machine.cores_per_node();
    let locs = (0..nprocs)
        .map(|r| {
            let flat = r % cores;
            CoreLoc {
                node: flat / cpn,
                socket: (flat % cpn) / cps,
                core: flat % cps,
            }
        })
        .collect();
    MappingPolicy::Explicit(locs)
}

/// One row of a prediction table (Tables 5 and 7): SET, SET/AET, PET,
/// PETE and AET for one application at one core count on the target.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PredictionRow {
    /// Application label, e.g. `"CG-64"`.
    pub app: String,
    /// Target cores used.
    pub cores: u32,
    /// Signature execution time on the target, seconds.
    pub set: f64,
    /// 100·SET/AET.
    pub set_vs_aet: f64,
    /// Predicted execution time, seconds.
    pub pet: f64,
    /// 100·|PET−AET|/AET.
    pub pete: f64,
    /// Measured application execution time on the target, seconds.
    pub aet: f64,
}

impl PredictionRow {
    /// Header matching the paper's table layout.
    pub fn header() -> String {
        format!(
            "{:<14} {:>6} {:>10} {:>12} {:>12} {:>9} {:>12}",
            "Appl.", "Cores", "SET(s)", "SETvsAET(%)", "PET(s)", "PETE(%)", "AET(s)"
        )
    }
}

impl std::fmt::Display for PredictionRow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<14} {:>6} {:>10.2} {:>12.2} {:>12.2} {:>9.2} {:>12.2}",
            self.app, self.cores, self.set, self.set_vs_aet, self.pet, self.pete, self.aet
        )
    }
}

/// Run the Fig 12 validation for one prepared signature on a target at a
/// restricted core count and produce the table row.
pub fn prediction_row(
    app: &dyn MpiApp,
    signature: &Signature,
    target: &MachineModel,
    cores: u32,
) -> PredictionRow {
    let policy = first_cores_mapping(target, app.nprocs(), cores);
    let report = predict::validate(app, signature, target, policy).expect("same-ISA target");
    PredictionRow {
        app: format!("{}-{}", app.name(), app.nprocs()),
        cores,
        set: report.prediction.set,
        set_vs_aet: report.set_vs_aet_percent,
        pet: report.prediction.pet,
        pete: report.pete_or_inf(),
        aet: report.aet,
    }
}

/// One row of the tool-performance table (Table 8): tracefile size,
/// analysis time, phase counts and signature construction time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ToolPerfRow {
    /// Application name.
    pub app: String,
    /// Tracefile size in bytes.
    pub tf_bytes: u64,
    /// Tracefile analysis time, host seconds.
    pub tfat: f64,
    /// Total unique phases.
    pub total_phases: usize,
    /// Relevant phases.
    pub relevant_phases: usize,
    /// Signature construction time, seconds.
    pub sct: f64,
}

impl ToolPerfRow {
    /// Header matching Table 8.
    pub fn header() -> String {
        format!(
            "{:<10} {:>12} {:>10} {:>8} {:>9} {:>10}",
            "Appl.", "TFSize", "TFAT(s)", "Phases", "Relevant", "SCT(s)"
        )
    }

    /// Human-readable tracefile size.
    pub fn tf_size_human(&self) -> String {
        human_bytes(self.tf_bytes)
    }
}

impl std::fmt::Display for ToolPerfRow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<10} {:>12} {:>10.3} {:>8} {:>9} {:>10.2}",
            self.app,
            self.tf_size_human(),
            self.tfat,
            self.total_phases,
            self.relevant_phases,
            self.sct
        )
    }
}

/// Produce a Table 8 row from an analysis + construction stats.
pub fn tool_perf_row(analysis: &Analysis, stats: &ConstructionStats) -> ToolPerfRow {
    ToolPerfRow {
        app: analysis.app_name.clone(),
        tf_bytes: analysis.trace_bytes,
        tfat: analysis.tfat_seconds,
        total_phases: analysis.total_phases(),
        relevant_phases: analysis.relevant_phases(),
        sct: stats.sct,
    }
}

/// One row of the overhead table (Table 9): AET, AET under
/// instrumentation, SET and the paper's total-overhead factor
/// `(AET_PAS2P + TFAT + SCT + SET) / AET`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverheadRow {
    /// Application name.
    pub app: String,
    /// Uninstrumented application execution time, seconds.
    pub aet: f64,
    /// Instrumented application execution time, seconds.
    pub aet_pas2p: f64,
    /// Signature execution time, seconds.
    pub set: f64,
    /// Tracefile analysis time, seconds.
    pub tfat: f64,
    /// Signature construction time, seconds.
    pub sct: f64,
}

impl OverheadRow {
    /// The paper's overhead factor.
    pub fn overhead(&self) -> f64 {
        (self.aet_pas2p + self.tfat + self.sct + self.set) / self.aet
    }

    /// Header matching Table 9.
    pub fn header() -> String {
        format!(
            "{:<10} {:>11} {:>14} {:>9} {:>10}",
            "Appl.", "AET(s)", "AETPAS2P(s)", "SET(s)", "Overhead"
        )
    }
}

impl std::fmt::Display for OverheadRow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<10} {:>11.2} {:>14.2} {:>9.2} {:>9.2}X",
            self.app,
            self.aet,
            self.aet_pas2p,
            self.set,
            self.overhead()
        )
    }
}

/// Everything the Table 8/9 experiments need for one application on one
/// machine: analysis, construction and a same-machine signature run.
pub fn tool_experiment(
    pas2p: &Pas2p,
    app: &dyn MpiApp,
    machine: &MachineModel,
) -> (Analysis, ConstructionStats, OverheadRow) {
    let policy = MappingPolicy::Block;
    let aet = run_plain(app, machine, policy.clone()).makespan;
    let analysis = pas2p.analyze(app, machine, policy.clone());
    let (signature, stats) = pas2p.build_signature(app, &analysis, machine, policy.clone());
    let prediction = pas2p
        .predict(app, &signature, machine, policy)
        .expect("same machine");
    let row = OverheadRow {
        app: analysis.app_name.clone(),
        aet,
        aet_pas2p: analysis.aet_instrumented,
        set: prediction.set,
        tfat: analysis.tfat_seconds,
        sct: stats.sct,
    };
    (analysis, stats, row)
}

/// Format bytes the way the paper's tables do (KB/MB/GB).
pub fn human_bytes(b: u64) -> String {
    const KB: f64 = 1024.0;
    let b = b as f64;
    if b >= KB * KB * KB {
        format!("{:.1} GB", b / (KB * KB * KB))
    } else if b >= KB * KB {
        format!("{:.1} MB", b / (KB * KB))
    } else if b >= KB {
        format!("{:.1} KB", b / KB)
    } else {
        format!("{} B", b as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas2p_machine::cluster_a;

    #[test]
    fn first_cores_mapping_wraps() {
        let m = cluster_a();
        let policy = first_cores_mapping(&m, 64, 32);
        let map = m.map(64, policy);
        assert!(map.is_oversubscribed());
        for r in 0..64 {
            assert_eq!(map.core_share(r), 2);
        }
        // Only 8 nodes (32 cores / 4 per node) are used.
        let nodes: std::collections::HashSet<u32> = (0..64).map(|r| map.loc(r).node).collect();
        assert_eq!(nodes.len(), 8);
    }

    #[test]
    fn full_core_mapping_is_dedicated() {
        let m = cluster_a();
        let policy = first_cores_mapping(&m, 64, 64);
        let map = m.map(64, policy);
        assert!(!map.is_oversubscribed());
    }

    #[test]
    fn human_bytes_formats_like_the_paper() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(512 * 1024), "512.0 KB");
        assert_eq!(human_bytes(32 * 1024 * 1024), "32.0 MB");
        assert_eq!(human_bytes(5583457484), "5.2 GB");
    }

    #[test]
    fn overhead_factor_matches_formula() {
        let row = OverheadRow {
            app: "CG".into(),
            aet: 100.0,
            aet_pas2p: 102.0,
            set: 3.0,
            tfat: 1.0,
            sct: 24.0,
        };
        assert!((row.overhead() - 1.30).abs() < 1e-12);
    }

    #[test]
    fn row_display_is_aligned() {
        let r = PredictionRow {
            app: "CG-64".into(),
            cores: 32,
            set: 8.42,
            set_vs_aet: 0.29,
            pet: 2793.42,
            pete: 1.90,
            aet: 2847.42,
        };
        let line = r.to_string();
        assert!(line.contains("CG-64"));
        assert!(line.contains("2793.42"));
        assert_eq!(PredictionRow::header().split_whitespace().count(), 7);
    }
}
