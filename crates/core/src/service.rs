//! The long-running prediction service: PAS2P's characterize-once /
//! query-many split as a process.
//!
//! The paper separates signature *construction* (expensive: trace,
//! order, extract, checkpoint — Stage A) from signature *execution*
//! (cheap: run the relevant phases on a target — Stage B). The service
//! makes that split operational: every submitted trace is analyzed at
//! most once per (trace, base machine, config) thanks to the
//! content-addressed [`SignatureStore`], and predictions for any
//! (app, target machine) pair are canonical JSON artifacts served
//! byte-identically from cache on repeat queries.
//!
//! # Protocol
//!
//! Newline-delimited JSON over stdin/stdout or a unix socket; one
//! request per line, one response line per request:
//!
//! ```text
//! {"op":"submit","app":"cg","nprocs":8,"base":"A"}
//! {"op":"predict","app":"cg","nprocs":8,"base":"A","target":"B"}
//! {"op":"batch","apps":["cg","lu"],"base":"A","targets":["B","C"],"workers":2}
//! {"op":"ping"}
//! {"op":"health"}
//! {"op":"stats"}
//! {"op":"shutdown"}
//! ```
//!
//! Responses carry `ok`, the echoed `op`, and either `result` or
//! `error` plus a machine-readable `code` (`invalid`, `busy`,
//! `timeout`, `panic`, `error`) — every failure is classified, never
//! silent. The batch endpoint fans missing analyses out through the
//! hardened [`run_batch_with`] driver (panic isolation, deadlines,
//! retries), then serves every (app, target) prediction through the
//! same cache path as single requests.
//!
//! # Hardening
//!
//! The service is safe to share across server workers: all methods
//! take `&self`, the store sits behind a mutex that is held only for
//! lookups and publishes (never during Stage-A/Stage-B compute), and a
//! single-flight set collapses concurrent Stage-A work for the same
//! signature into one computation. `submit`/`predict` honor an
//! optional per-request deadline through the same
//! [`crate::cancel::run_abandonable`] machinery batch jobs use —
//! an expired request answers `code:"timeout"` while the abandoned
//! runner unwinds at its next stage boundary. `ping` answers without
//! touching any lock; `health` reports queue/in-flight/shed state from
//! atomics so it stays responsive even while every worker is wedged on
//! a slow disk. The concurrent unix-socket front end lives in
//! [`crate::server`].
//!
//! Observability: a `serve.requests` counter, per-request stage
//! profiles (`serve.submit` / `serve.predict` / `serve.batch` /
//! `serve.stats`), `serve.shed` / `serve.timeout` counters with
//! `serve.inflight` / `serve.queue` gauges from the server front end,
//! and the store's `store.hit` / `store.miss` / `store.evict` counters.

use crate::batch::{run_batch_with, BatchJob, BatchOptions};
use crate::pipeline::{Analysis, Pas2p};
use parking_lot::{Condvar, Mutex};
use pas2p_machine::{preset_by_name, MachineModel, MappingPolicy};
use pas2p_signature::{run_traced, MpiApp, Prediction};
use pas2p_store::{
    config_fingerprint, prediction_key, signature_alias, signature_key, ArtifactKind, IndexEntry,
    Sidecar, SignatureStore, StoreKey, StoreReport, StoredSignature, STORE_FORMAT_VERSION,
};
use serde::Serialize;
use serde_json::json;
use std::collections::HashSet;
use std::io::{BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Resolves an application name + process count to a runnable app. The
/// catalog lives in `pas2p-apps`, which sits above this crate in the
/// dependency graph, so the caller injects the lookup (the CLI passes
/// `pas2p_apps::by_name`). `Sync` because server workers resolve
/// concurrently through a shared service.
pub type AppResolver = Box<dyn Fn(&str, u32) -> Option<Box<dyn MpiApp>> + Send + Sync>;

/// One service request, as decoded from a protocol line.
#[derive(Debug)]
pub enum Request {
    /// Analyze an app on a base machine and store its signature.
    Submit {
        /// Catalog application name.
        app: String,
        /// Process count (default 8).
        nprocs: u32,
        /// Base machine preset (default "A").
        base: String,
    },
    /// Predict an app's execution time on a target machine, serving
    /// from the store whenever possible.
    Predict {
        /// Catalog application name.
        app: String,
        /// Process count (default 8).
        nprocs: u32,
        /// Base machine preset (default "A").
        base: String,
        /// Target machine preset.
        target: String,
    },
    /// Analyze many apps (via the hardened batch driver) and predict
    /// each on every target.
    Batch {
        /// Catalog application names.
        apps: Vec<String>,
        /// Process count (default 8).
        nprocs: u32,
        /// Base machine preset (default "A").
        base: String,
        /// Target machine presets to predict on (may be empty:
        /// analyze/persist only).
        targets: Vec<String>,
        /// Batch worker threads.
        workers: Option<usize>,
        /// Per-job deadline in milliseconds.
        deadline_ms: Option<u64>,
        /// Retries per failing job.
        retries: Option<u32>,
    },
    /// Liveness probe: answers immediately, touching no lock.
    Ping,
    /// Serving-state probe: queue, in-flight, shed/timeout counters and
    /// store entry count, all read from atomics (lock-free, so health
    /// stays answerable while workers are wedged).
    Health,
    /// Service and store statistics.
    Stats,
    /// Stop the serve loop after responding.
    Shutdown,
}

impl Request {
    /// Decode one NDJSON protocol line. The wire format is spelled out
    /// explicitly — it is a public contract, and the parser doubles as
    /// its documentation: `op` selects the variant, `nprocs` defaults
    /// to 8, `base` to `"A"`.
    pub fn from_line(line: &str) -> Result<Request, String> {
        let v: serde_json::Value = serde_json::from_str(line).map_err(|e| e.to_string())?;
        let op = v
            .get("op")
            .and_then(serde_json::Value::as_str)
            .ok_or_else(|| "missing string field \"op\"".to_string())?;
        let string_field = |name: &str| -> Result<String, String> {
            v.get(name)
                .and_then(serde_json::Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("\"{op}\" requires a string field \"{name}\""))
        };
        let string_list = |name: &str| -> Result<Vec<String>, String> {
            let bad = || format!("\"{name}\" must be an array of strings");
            match v.get(name) {
                None => Ok(Vec::new()),
                Some(items) => items
                    .as_array()
                    .ok_or_else(bad)?
                    .iter()
                    .map(|item| item.as_str().map(str::to_string).ok_or_else(bad))
                    .collect(),
            }
        };
        let uint_field = |name: &str| -> Result<Option<u64>, String> {
            match v.get(name) {
                None => Ok(None),
                Some(n) => n
                    .as_u64()
                    .map(Some)
                    .ok_or_else(|| format!("\"{name}\" must be a non-negative integer")),
            }
        };
        let nprocs = match uint_field("nprocs")? {
            None => 8,
            Some(n) if n >= 1 && n <= u64::from(u32::MAX) => n as u32,
            Some(_) => return Err("\"nprocs\" must be a positive integer".to_string()),
        };
        let base = match v.get("base") {
            None => "A".to_string(),
            Some(_) => string_field("base")?,
        };
        match op {
            "submit" => Ok(Request::Submit {
                app: string_field("app")?,
                nprocs,
                base,
            }),
            "predict" => Ok(Request::Predict {
                app: string_field("app")?,
                nprocs,
                base,
                target: string_field("target")?,
            }),
            "batch" => {
                let apps = string_list("apps")?;
                if apps.is_empty() {
                    return Err("\"batch\" requires a non-empty \"apps\" array".to_string());
                }
                Ok(Request::Batch {
                    apps,
                    nprocs,
                    base,
                    targets: string_list("targets")?,
                    workers: uint_field("workers")?.map(|n| n as usize),
                    deadline_ms: uint_field("deadline_ms")?,
                    retries: uint_field("retries")?.map(|n| n.min(u64::from(u32::MAX)) as u32),
                })
            }
            "ping" => Ok(Request::Ping),
            "health" => Ok(Request::Health),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op '{other}'")),
        }
    }
}

/// One protocol response line.
#[derive(Debug)]
pub struct Response {
    /// Whether the request succeeded.
    pub ok: bool,
    /// The request's operation (or `"invalid"`).
    pub op: &'static str,
    /// Machine-readable failure class when `ok` is false: `invalid`
    /// (malformed request), `busy` (load shed), `timeout` (deadline
    /// expired), `panic` (isolated worker panic) or `error` (everything
    /// else). Clients dispatch on this; `error` is for humans.
    pub code: Option<&'static str>,
    /// Failure description when `ok` is false.
    pub error: Option<String>,
    /// Operation result when `ok` is true.
    pub result: Option<serde_json::Value>,
}

impl Response {
    fn success(op: &'static str, result: serde_json::Value) -> Response {
        Response {
            ok: true,
            op,
            code: None,
            error: None,
            result: Some(result),
        }
    }

    fn failure(op: &'static str, error: String) -> Response {
        Response::failure_code(op, "error", error)
    }

    pub(crate) fn failure_code(op: &'static str, code: &'static str, error: String) -> Response {
        Response {
            ok: false,
            op,
            code: Some(code),
            error: Some(error),
            result: None,
        }
    }

    /// The response as a JSON value; `code`/`error`/`result` are
    /// omitted when absent, not emitted as `null`.
    pub fn to_value(&self) -> serde_json::Value {
        let mut v = json!({
            "ok": self.ok,
            "op": self.op,
        });
        if let Some(code) = self.code {
            v["code"] = json!(code);
        }
        if let Some(error) = &self.error {
            v["error"] = json!(error.as_str());
        }
        if let Some(result) = &self.result {
            v["result"] = result.clone();
        }
        v
    }

    /// The response as one NDJSON line (no trailing newline).
    pub fn render(&self) -> String {
        serde_json::to_string(&self.to_value())
            .unwrap_or_else(|e| format!(r#"{{"ok":false,"op":"invalid","error":"encode: {e}"}}"#))
    }
}

/// What a submit produced (or found).
#[derive(Debug, Clone, Serialize)]
pub struct SubmitOutcome {
    /// The signature's content address.
    pub digest: String,
    /// True when the signature was already in the store.
    pub cached: bool,
    /// Resolved application name.
    pub app: String,
    /// Total phases in the analysis.
    pub phases: usize,
    /// Relevant phases in the signature.
    pub relevant: usize,
    /// Analysis confidence flag.
    pub confidence: String,
}

/// What a predict produced (or found).
#[derive(Debug, Clone)]
pub struct PredictOutcome {
    /// Resolved application name.
    pub app: String,
    /// Target machine name.
    pub target: String,
    /// The canonical prediction JSON — byte-identical between a cold
    /// compute and every later cache hit.
    pub prediction_json: String,
    /// True when the prediction itself came from the store.
    pub cached: bool,
    /// True when the signature was served from the store (no Stage-A
    /// work ran for this request).
    pub signature_cached: bool,
}

/// Strip host-volatile fields so the serialized prediction is a stable
/// artifact: wall-clock and the metrics snapshot vary run to run and
/// would break the byte-identical cache-hit contract.
pub fn canonicalize_prediction(prediction: &mut Prediction) {
    prediction.wall_seconds = 0.0;
    prediction.metrics = None;
}

/// Live serving counters, all atomic: `health` reads them without
/// taking any lock, so it stays answerable while every worker is wedged
/// behind a slow store. The server front end maintains the queue,
/// connection and capacity fields; the request path maintains the rest.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Requests decoded (including invalid ones).
    pub(crate) requests: AtomicU64,
    /// Requests refused with `code:"busy"` because the queue was full.
    pub(crate) shed: AtomicU64,
    /// Requests refused with `code:"timeout"` past their deadline.
    pub(crate) timeouts: AtomicU64,
    /// Requests currently executing on a worker.
    pub(crate) inflight: AtomicU64,
    /// Requests queued, waiting for a worker.
    pub(crate) queue_depth: AtomicU64,
    /// Connections currently open.
    pub(crate) connections: AtomicU64,
    /// Store entries (mirrored after every publish so health never
    /// takes the store lock).
    pub(crate) entries: AtomicU64,
    /// Whether new connections/requests are being accepted.
    pub(crate) accepting: AtomicBool,
    /// Worker threads serving the queue (0 for the inline stdin loop).
    pub(crate) workers: AtomicU64,
    /// Bound of the in-flight request queue (0 for the stdin loop).
    pub(crate) queue_capacity: AtomicU64,
}

impl ServeStats {
    /// Requests shed with `code:"busy"` so far.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::SeqCst)
    }

    /// Requests expired with `code:"timeout"` so far.
    pub fn timeouts(&self) -> u64 {
        self.timeouts.load(Ordering::SeqCst)
    }
}

/// The shared interior of a [`PredictionService`]: everything server
/// workers touch concurrently. The store mutex is held for lookups and
/// publishes only — Stage-A analysis and Stage-B execution run outside
/// it — and `pending` + its condvar collapse concurrent Stage-A work on
/// the same signature into a single computation (the paper's
/// characterize-*once* promise, kept under concurrency).
pub(crate) struct ServiceCore {
    pas2p: Pas2p,
    pub(crate) store: Mutex<SignatureStore>,
    resolve: AppResolver,
    policy: MappingPolicy,
    pub(crate) deadline: Option<Duration>,
    pub(crate) stats: ServeStats,
    pending: Mutex<HashSet<String>>,
    pending_cv: Condvar,
}

/// Removes its alias from the single-flight set on drop — including the
/// unwind of a deadline-cancelled run — so waiters never starve behind
/// a computation that is no longer happening.
struct PendingGuard<'a> {
    core: &'a ServiceCore,
    alias: String,
}

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        let mut pending = self.core.pending.lock();
        pending.remove(&self.alias);
        self.core.pending_cv.notify_all();
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        format!("panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked".to_string()
    }
}

/// The prediction service: a [`Pas2p`] pipeline in front of a
/// [`SignatureStore`]. Cheap to clone; clones share the same store,
/// stats and single-flight state, which is how the concurrent server
/// hands one service to many workers.
pub struct PredictionService {
    core: Arc<ServiceCore>,
}

impl Clone for PredictionService {
    fn clone(&self) -> PredictionService {
        PredictionService {
            core: Arc::clone(&self.core),
        }
    }
}

impl PredictionService {
    /// A service over `store`, resolving app names through `resolve`.
    pub fn new(pas2p: Pas2p, store: SignatureStore, resolve: AppResolver) -> PredictionService {
        let stats = ServeStats::default();
        stats.entries.store(store.len() as u64, Ordering::SeqCst);
        stats.accepting.store(true, Ordering::SeqCst);
        PredictionService {
            core: Arc::new(ServiceCore {
                pas2p,
                store: Mutex::new(store),
                resolve,
                policy: MappingPolicy::Block,
                deadline: None,
                stats,
                pending: Mutex::new(HashSet::new()),
                pending_cv: Condvar::new(),
            }),
        }
    }

    /// Set the per-request deadline for `submit`/`predict` (builder
    /// style; `None` disables). Must be called before the service is
    /// shared with a server.
    pub fn with_deadline(mut self, deadline: Option<Duration>) -> PredictionService {
        Arc::get_mut(&mut self.core)
            .expect("deadline is configured before the service is shared")
            .deadline = deadline;
        self
    }

    /// The service's configuration fingerprint (see
    /// [`config_fingerprint`]).
    pub fn fingerprint(&self) -> String {
        self.core.fingerprint()
    }

    /// Snapshot of the store's open-time repair report.
    pub fn store_report(&self) -> StoreReport {
        self.core.store.lock().report().clone()
    }

    /// The store report as `STORE-*` diagnostics.
    pub fn store_diagnostics(&self) -> Vec<pas2p_check::Diagnostic> {
        self.core.store.lock().diagnostics()
    }

    /// Entries currently in the store.
    pub fn store_len(&self) -> usize {
        self.core.store.lock().len()
    }

    /// The shared interior, for the server front end.
    pub(crate) fn core(&self) -> &Arc<ServiceCore> {
        &self.core
    }
}

impl ServiceCore {
    pub(crate) fn fingerprint(&self) -> String {
        config_fingerprint(
            &self.pas2p.similarity,
            &self.pas2p.signature,
            self.pas2p.instrumentation.per_event_seconds,
        )
    }

    fn policy_label(&self) -> String {
        serde_json::to_string(&self.policy).expect("policies serialize")
    }

    fn resolve_app(&self, name: &str, nprocs: u32) -> Result<Box<dyn MpiApp>, String> {
        (self.resolve)(name, nprocs)
            .ok_or_else(|| format!("unknown application '{name}' (nprocs {nprocs})"))
    }

    fn resolve_machine(name: &str) -> Result<MachineModel, String> {
        preset_by_name(name).ok_or_else(|| format!("unknown machine preset '{name}'"))
    }

    /// Mirror the store's entry count into the lock-free stats while
    /// already holding the store lock.
    fn sync_entries(&self, store: &SignatureStore) {
        self.stats
            .entries
            .store(store.len() as u64, Ordering::SeqCst);
    }

    /// Analyze `app` on `base`, construct the signature, and persist
    /// both under the trace's content address. Returns the key and the
    /// stored payload. Runs without the store lock; only the final
    /// publish takes it.
    fn compute_and_store(
        &self,
        app: &dyn MpiApp,
        base: &MachineModel,
        fingerprint: &str,
    ) -> Result<(StoreKey, StoredSignature), String> {
        let (analysis, trace, _logical) = self.pas2p.analyze_full(app, base, self.policy.clone());
        let trace_bytes = pas2p_trace::format::encode(&trace);
        let key = signature_key(&trace_bytes, base, fingerprint);
        drop(trace);
        self.persist(app, analysis, base, key)
    }

    /// Persist an already-produced analysis (the batch path): re-run
    /// the deterministic trace collection for the content address, then
    /// construct and store. The expensive part — phase extraction —
    /// already happened inside the batch driver and is not repeated.
    fn persist_from_analysis(
        &self,
        app: &dyn MpiApp,
        analysis: Analysis,
        base: &MachineModel,
        fingerprint: &str,
    ) -> Result<(StoreKey, StoredSignature), String> {
        let (trace, _) = run_traced(app, base, self.policy.clone(), self.pas2p.instrumentation);
        let trace_bytes = pas2p_trace::format::encode(&trace);
        let key = signature_key(&trace_bytes, base, fingerprint);
        drop(trace);
        self.persist(app, analysis, base, key)
    }

    fn persist(
        &self,
        app: &dyn MpiApp,
        analysis: Analysis,
        base: &MachineModel,
        key: StoreKey,
    ) -> Result<(StoreKey, StoredSignature), String> {
        let (signature, _stats) =
            self.pas2p
                .build_signature(app, &analysis, base, self.policy.clone());
        // Zero the one host-volatile field inside the payload; the real
        // value rides in the sidecar. Everything else in the payload is
        // deterministic for the key's inputs.
        let mut stored_analysis = analysis.analysis;
        stored_analysis.analysis_seconds = 0.0;
        let payload = StoredSignature {
            app_name: analysis.app_name,
            workload: analysis.workload,
            nprocs: analysis.nprocs,
            base_machine: analysis.base_machine,
            trace_bytes: analysis.trace_bytes,
            trace_events: analysis.trace_events,
            aet_instrumented: analysis.aet_instrumented,
            confidence: analysis.confidence,
            analysis: stored_analysis,
            table: analysis.table,
            signature,
        };
        let sidecar = Sidecar {
            tfat_seconds: analysis.tfat_seconds,
            metrics: analysis.metrics,
        };
        let mut store = self.store.lock();
        store
            .put_signature(&key, &payload, sidecar)
            .map_err(|e| e.to_string())?;
        self.sync_entries(&store);
        Ok((key, payload))
    }

    /// Ensure a signature for (app, nprocs, base) exists in the store;
    /// returns the key, the payload, and whether it was served from
    /// cache. Concurrent callers for the same alias are single-flighted:
    /// one computes Stage A, the rest wait on the condvar and then read
    /// the published artifact.
    fn ensure_signature(
        &self,
        app_name: &str,
        nprocs: u32,
        base_name: &str,
    ) -> Result<(StoreKey, StoredSignature, bool), String> {
        let app = self.resolve_app(app_name, nprocs)?;
        let base = Self::resolve_machine(base_name)?;
        let fingerprint = self.fingerprint();
        let alias = signature_alias(
            &app.name(),
            &app.workload(),
            app.nprocs(),
            &base.name,
            &fingerprint,
        );
        loop {
            {
                let mut store = self.store.lock();
                if let Some(key) = store.lookup_alias(&alias) {
                    if let Some((payload, _sidecar)) = store.get_signature(&key) {
                        return Ok((key, payload, true));
                    }
                    // The entry was just evicted as corrupt/missing —
                    // fall through and recompute; the store already
                    // reported it.
                }
            }
            let mut pending = self.pending.lock();
            if !pending.contains(&alias) {
                pending.insert(alias.clone());
                break;
            }
            // Another request is computing exactly this signature.
            // Wait for it to finish (or fail), then re-check the store
            // instead of duplicating the expensive Stage-A run.
            self.pending_cv.wait(&mut pending);
        }
        let _guard = PendingGuard {
            core: self,
            alias: alias.clone(),
        };
        let (key, payload) = self.compute_and_store(app.as_ref(), &base, &fingerprint)?;
        Ok((key, payload, false))
    }

    /// `submit`: analyze + store (or confirm presence).
    pub(crate) fn submit(
        &self,
        app_name: &str,
        nprocs: u32,
        base_name: &str,
    ) -> Result<SubmitOutcome, String> {
        let (key, payload, cached) = self.ensure_signature(app_name, nprocs, base_name)?;
        Ok(SubmitOutcome {
            digest: key.digest,
            cached,
            app: payload.app_name.clone(),
            phases: payload.analysis.total_phases(),
            relevant: payload.table.relevant_phases(),
            confidence: payload.confidence.to_string(),
        })
    }

    /// `predict`: serve the (app, target) prediction, from the store
    /// when present, computing and persisting on the way otherwise.
    pub(crate) fn predict(
        &self,
        app_name: &str,
        nprocs: u32,
        base_name: &str,
        target_name: &str,
    ) -> Result<PredictOutcome, String> {
        let target = Self::resolve_machine(target_name)?;
        let policy_label = self.policy_label();

        // Fast path: alias → signature key → prediction key, without
        // loading (or recomputing) the signature at all.
        {
            let app = self.resolve_app(app_name, nprocs)?;
            let base = Self::resolve_machine(base_name)?;
            let fingerprint = self.fingerprint();
            let alias = signature_alias(
                &app.name(),
                &app.workload(),
                app.nprocs(),
                &base.name,
                &fingerprint,
            );
            let mut store = self.store.lock();
            if let Some(sig_key) = store.lookup_alias(&alias) {
                let pkey = prediction_key(&sig_key, &target, &policy_label);
                if let Some(json) = store.get_prediction_json(&pkey) {
                    return Ok(PredictOutcome {
                        app: app.name(),
                        target: target.name.clone(),
                        prediction_json: json,
                        cached: true,
                        signature_cached: true,
                    });
                }
            }
        }

        // Slow path: make sure the signature exists (cached Stage A or
        // a fresh analysis), execute it on the target, canonicalize and
        // persist the prediction.
        let (sig_key, stored, signature_cached) =
            self.ensure_signature(app_name, nprocs, base_name)?;
        let pkey = prediction_key(&sig_key, &target, &policy_label);
        let app = self.resolve_app(app_name, nprocs)?;
        let mut prediction = self
            .pas2p
            .predict(
                app.as_ref(),
                &stored.signature,
                &target,
                self.policy.clone(),
            )
            .map_err(|e| format!("signature execution failed: {e}"))?;
        canonicalize_prediction(&mut prediction);
        let json = serde_json::to_string(&prediction).map_err(|e| e.to_string())?;
        let entry = IndexEntry {
            kind: ArtifactKind::Prediction,
            format_version: STORE_FORMAT_VERSION,
            fingerprint: pkey.fingerprint.clone(),
            app: stored.app_name.clone(),
            workload: stored.workload.clone(),
            nprocs: stored.nprocs,
            base: stored.base_machine.clone(),
            target: Some(target.name.clone()),
        };
        {
            let mut store = self.store.lock();
            store
                .put_prediction_json(&pkey, entry, &json)
                .map_err(|e| e.to_string())?;
            self.sync_entries(&store);
        }
        Ok(PredictOutcome {
            app: stored.app_name,
            target: target.name,
            prediction_json: json,
            cached: false,
            signature_cached,
        })
    }

    /// `batch`: analyze every app not yet in the store through
    /// [`run_batch_with`] (panic isolation, deadlines, retries),
    /// persist the completed analyses, then serve the apps × targets
    /// prediction matrix through the cache path.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn batch(
        &self,
        apps: &[String],
        nprocs: u32,
        base_name: &str,
        targets: &[String],
        workers: Option<usize>,
        deadline_ms: Option<u64>,
        retries: Option<u32>,
    ) -> Result<serde_json::Value, String> {
        let base = Self::resolve_machine(base_name)?;
        let fingerprint = self.fingerprint();

        // Which apps still need Stage A? One short lock for the whole
        // census — no compute happens under it.
        let mut missing: Vec<String> = Vec::new();
        let mut statuses = serde_json::Map::new();
        {
            let store = self.store.lock();
            for name in apps {
                let app = self.resolve_app(name, nprocs)?;
                let alias = signature_alias(
                    &app.name(),
                    &app.workload(),
                    app.nprocs(),
                    &base.name,
                    &fingerprint,
                );
                if store.lookup_alias(&alias).is_some() {
                    statuses.insert(name.clone(), json!("cached"));
                } else {
                    missing.push(name.clone());
                }
            }
        }

        if !missing.is_empty() {
            let jobs: Result<Vec<BatchJob>, String> = missing
                .iter()
                .map(|name| Ok(BatchJob::new(self.resolve_app(name, nprocs)?, base.clone())))
                .collect();
            let opts = BatchOptions {
                workers,
                deadline: deadline_ms.map(std::time::Duration::from_millis),
                max_retries: retries.unwrap_or(0),
                ..BatchOptions::default()
            };
            let report = run_batch_with(&self.pas2p, jobs?, opts);
            for (name, result) in missing.iter().zip(report.results) {
                statuses.insert(name.clone(), json!(result.status.to_string()));
                if let Some(analysis) = result.analysis {
                    let app = self.resolve_app(name, nprocs)?;
                    self.persist_from_analysis(app.as_ref(), analysis, &base, &fingerprint)?;
                }
            }
        }

        let mut predictions = Vec::new();
        for name in apps {
            for target in targets {
                match self.predict(name, nprocs, base_name, target) {
                    Ok(outcome) => {
                        let value: serde_json::Value =
                            serde_json::from_str(&outcome.prediction_json)
                                .map_err(|e| e.to_string())?;
                        predictions.push(json!({
                            "app": outcome.app,
                            "target": outcome.target,
                            "cached": outcome.cached,
                            "prediction": value,
                        }));
                    }
                    Err(error) => {
                        predictions.push(json!({
                            "app": name,
                            "target": target,
                            "error": error,
                        }));
                    }
                }
            }
        }
        Ok(json!({
            "jobs": serde_json::Value::Object(statuses),
            "predictions": predictions,
        }))
    }

    /// `stats`: request counters, store shape, and the store report.
    /// Takes the store lock (unlike `health`).
    pub(crate) fn stats_value(&self) -> serde_json::Value {
        let store = self.store.lock();
        let report = store.report();
        let diagnostics: Vec<String> = store
            .diagnostics()
            .iter()
            .map(|d| format!("{}: {}", d.code, d.message))
            .collect();
        json!({
            "requests": self.stats.requests.load(Ordering::SeqCst),
            "shed": self.stats.shed.load(Ordering::SeqCst),
            "timeouts": self.stats.timeouts.load(Ordering::SeqCst),
            "entries": store.len(),
            "format_version": STORE_FORMAT_VERSION,
            "fingerprint": self.fingerprint(),
            "store_report": report.to_value(),
            "store_diagnostics": diagnostics,
        })
    }

    /// `health`: serving state from atomics only — no lock anywhere on
    /// this path, so it answers even while every worker is wedged
    /// behind a gated store or a long Stage-A run.
    pub(crate) fn health_value(&self) -> serde_json::Value {
        json!({
            "accepting": self.stats.accepting.load(Ordering::SeqCst),
            "workers": self.stats.workers.load(Ordering::SeqCst),
            "queue_capacity": self.stats.queue_capacity.load(Ordering::SeqCst),
            "queue_depth": self.stats.queue_depth.load(Ordering::SeqCst),
            "inflight": self.stats.inflight.load(Ordering::SeqCst),
            "connections": self.stats.connections.load(Ordering::SeqCst),
            "requests": self.stats.requests.load(Ordering::SeqCst),
            "shed": self.stats.shed.load(Ordering::SeqCst),
            "timeouts": self.stats.timeouts.load(Ordering::SeqCst),
            "entries": self.stats.entries.load(Ordering::SeqCst),
            "deadline_ms": self.deadline.map(|d| d.as_millis() as u64),
        })
    }

    /// Flush the store index to disk (graceful-shutdown step).
    pub(crate) fn flush_store(&self) {
        let mut store = self.store.lock();
        if let Err(e) = store.flush_index() {
            eprintln!("pas2p serve: flushing store index on shutdown: {e}");
        }
    }
}

impl PredictionService {
    /// `submit`: analyze + store (or confirm presence).
    pub fn submit(
        &self,
        app_name: &str,
        nprocs: u32,
        base_name: &str,
    ) -> Result<SubmitOutcome, String> {
        self.core.submit(app_name, nprocs, base_name)
    }

    /// `predict`: serve the (app, target) prediction, from the store
    /// when present, computing and persisting on the way otherwise.
    pub fn predict(
        &self,
        app_name: &str,
        nprocs: u32,
        base_name: &str,
        target_name: &str,
    ) -> Result<PredictOutcome, String> {
        self.core.predict(app_name, nprocs, base_name, target_name)
    }

    /// `batch`: analyze every missing app through the batch driver,
    /// then serve the apps × targets prediction matrix.
    #[allow(clippy::too_many_arguments)]
    pub fn batch(
        &self,
        apps: &[String],
        nprocs: u32,
        base_name: &str,
        targets: &[String],
        workers: Option<usize>,
        deadline_ms: Option<u64>,
        retries: Option<u32>,
    ) -> Result<serde_json::Value, String> {
        self.core
            .batch(apps, nprocs, base_name, targets, workers, deadline_ms, retries)
    }

    /// `stats`: request counters, store shape, and the store report.
    pub fn stats(&self) -> serde_json::Value {
        self.core.stats_value()
    }

    /// Live serving counters (shed, timeouts, …).
    pub fn serve_stats(&self) -> &ServeStats {
        &self.core.stats
    }

    /// Run `f` under the panic boundary and (for deadline-bearing
    /// services) the abandonable deadline runner. A panicking request
    /// answers `code:"panic"`; an expired one answers `code:"timeout"`
    /// while the runner unwinds at its next stage boundary.
    fn run_guarded(
        &self,
        op: &'static str,
        f: impl FnOnce() -> Response + Send + 'static,
    ) -> Response {
        let wrapped = move || match catch_unwind(AssertUnwindSafe(f)) {
            Ok(response) => response,
            Err(payload) => Response::failure_code(op, "panic", panic_message(payload)),
        };
        match self.core.deadline {
            None => wrapped(),
            Some(deadline) => {
                match crate::cancel::run_abandonable("host.serve", deadline, wrapped) {
                    Some(response) => response,
                    None => {
                        self.core.stats.timeouts.fetch_add(1, Ordering::SeqCst);
                        if pas2p_obs::enabled() {
                            pas2p_obs::counter("serve.timeout").add(1);
                        }
                        Response::failure_code(
                            op,
                            "timeout",
                            format!("deadline of {:.3}s expired", deadline.as_secs_f64()),
                        )
                    }
                }
            }
        }
    }

    /// Decode and execute one protocol line. Returns the response and
    /// whether the serve loop should stop.
    pub fn handle_line(&self, line: &str) -> (Response, bool) {
        self.core.stats.requests.fetch_add(1, Ordering::SeqCst);
        if pas2p_obs::enabled() {
            pas2p_obs::counter("serve.requests").add(1);
        }
        let request = match Request::from_line(line) {
            Ok(r) => r,
            Err(e) => {
                return (
                    Response::failure_code("invalid", "invalid", format!("malformed request: {e}")),
                    false,
                )
            }
        };
        match request {
            Request::Submit { app, nprocs, base } => {
                let mut st = pas2p_obs::stage("serve.submit");
                st.items(1);
                let core = Arc::clone(&self.core);
                let response = self.run_guarded("submit", move || {
                    match core.submit(&app, nprocs, &base) {
                        Ok(outcome) => Response::success(
                            "submit",
                            json!({
                                "digest": outcome.digest.as_str(),
                                "cached": outcome.cached,
                                "app": outcome.app.as_str(),
                                "phases": outcome.phases,
                                "relevant": outcome.relevant,
                                "confidence": outcome.confidence.as_str(),
                            }),
                        ),
                        Err(e) => Response::failure("submit", e),
                    }
                });
                st.finish();
                (response, false)
            }
            Request::Predict {
                app,
                nprocs,
                base,
                target,
            } => {
                let mut st = pas2p_obs::stage("serve.predict");
                st.items(1);
                let core = Arc::clone(&self.core);
                let response = self.run_guarded("predict", move || {
                    match core.predict(&app, nprocs, &base, &target) {
                        Ok(outcome) => {
                            let prediction: serde_json::Value =
                                serde_json::from_str(&outcome.prediction_json).unwrap_or_default();
                            Response::success(
                                "predict",
                                json!({
                                    "app": outcome.app,
                                    "target": outcome.target,
                                    "cached": outcome.cached,
                                    "signature_cached": outcome.signature_cached,
                                    "prediction": prediction,
                                }),
                            )
                        }
                        Err(e) => Response::failure("predict", e),
                    }
                });
                st.finish();
                (response, false)
            }
            Request::Batch {
                apps,
                nprocs,
                base,
                targets,
                workers,
                deadline_ms,
                retries,
            } => {
                // Batch carries its own per-job deadline; the service
                // deadline does not wrap it — only the panic boundary.
                let mut st = pas2p_obs::stage("serve.batch");
                st.items(apps.len() as u64);
                let core = Arc::clone(&self.core);
                let run = move || match core.batch(
                    &apps,
                    nprocs,
                    &base,
                    &targets,
                    workers,
                    deadline_ms,
                    retries,
                ) {
                    Ok(result) => Response::success("batch", result),
                    Err(e) => Response::failure("batch", e),
                };
                let response = match catch_unwind(AssertUnwindSafe(run)) {
                    Ok(response) => response,
                    Err(payload) => {
                        Response::failure_code("batch", "panic", panic_message(payload))
                    }
                };
                st.finish();
                (response, false)
            }
            Request::Ping => (Response::success("ping", json!({"pong": true})), false),
            Request::Health => (
                Response::success("health", self.core.health_value()),
                false,
            ),
            Request::Stats => {
                let mut st = pas2p_obs::stage("serve.stats");
                st.items(1);
                let response = Response::success("stats", self.core.stats_value());
                st.finish();
                (response, false)
            }
            Request::Shutdown => (
                Response::success("shutdown", json!({"stopping": true})),
                true,
            ),
        }
    }

    /// Serve newline-delimited JSON requests from `input`, writing one
    /// response line each to `output`, until EOF or a `shutdown`. The
    /// final response is flushed before the loop exits, and the store
    /// index is flushed to disk on the way out.
    pub fn serve(&self, input: impl BufRead, mut output: impl Write) -> std::io::Result<()> {
        for line in input.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let (response, stop) = self.handle_line(&line);
            writeln!(output, "{}", response.render())?;
            output.flush()?;
            if stop {
                break;
            }
        }
        self.core.stats.accepting.store(false, Ordering::SeqCst);
        self.core.flush_store();
        Ok(())
    }

    /// Serve over a unix socket with the default concurrent-server
    /// options (see [`crate::server::ServeOptions`]): a bounded worker
    /// pool over N simultaneous connections, a bounded request queue
    /// with load-shedding, and graceful drain on shutdown. The socket
    /// file is created fresh and removed on clean exit.
    #[cfg(unix)]
    pub fn serve_unix(&self, socket_path: &std::path::Path) -> std::io::Result<()> {
        crate::server::serve_unix_with(self, socket_path, crate::server::ServeOptions::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Pas2p;
    use std::io::Cursor;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn temp_root(tag: &str) -> PathBuf {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "pas2p-serve-test-{}-{}-{}",
            std::process::id(),
            tag,
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn service(root: &std::path::Path) -> PredictionService {
        let store = SignatureStore::open(root).expect("open store");
        PredictionService::new(Pas2p::default(), store, Box::new(pas2p_apps::by_name))
    }

    #[test]
    fn malformed_requests_fail_without_stopping_the_loop() {
        let root = temp_root("malformed");
        let svc = service(&root);
        let (response, stop) = svc.handle_line("{definitely not json");
        assert!(!response.ok);
        assert_eq!(response.op, "invalid");
        assert!(!stop);
        let (response, stop) = svc.handle_line(r#"{"op":"no_such_op"}"#);
        assert!(!response.ok);
        assert!(!stop);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn unknown_app_or_machine_is_an_error_response() {
        let root = temp_root("unknown");
        let svc = service(&root);
        assert!(svc.submit("nosuchapp", 4, "A").is_err());
        assert!(svc.predict("cg", 4, "A", "Z").is_err());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn submit_is_computed_once_then_served_from_the_store() {
        let root = temp_root("submit");
        let svc = service(&root);
        let cold = svc.submit("cg", 4, "A").expect("cold submit");
        assert!(!cold.cached);
        assert!(cold.relevant > 0, "cg has relevant phases");
        let warm = svc.submit("cg", 4, "A").expect("warm submit");
        assert!(warm.cached, "second submit must hit the store");
        assert_eq!(warm.digest, cold.digest, "same inputs, same address");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn warm_predictions_are_byte_identical_to_cold_ones() {
        let root = temp_root("predict");
        let svc = service(&root);
        let cold = svc.predict("cg", 4, "A", "B").expect("cold predict");
        assert!(!cold.cached);
        assert!(!cold.signature_cached, "nothing was stored yet");
        let warm = svc.predict("cg", 4, "A", "B").expect("warm predict");
        assert!(warm.cached, "second predict must hit the prediction cache");
        assert!(warm.signature_cached);
        assert_eq!(
            warm.prediction_json, cold.prediction_json,
            "cache hits must be byte-identical to the cold compute"
        );
        // The canonical artifact carries no host-volatile fields.
        let value: serde_json::Value = serde_json::from_str(&warm.prediction_json).unwrap();
        assert_eq!(value["wall_seconds"], serde_json::json!(0.0));
        assert!(value.get("metrics").is_none());

        // A fresh service over the same store predicts without Stage A.
        let svc2 = service(&root);
        let reheated = svc2.predict("cg", 4, "A", "B").expect("reheated predict");
        assert!(reheated.cached);
        assert_eq!(reheated.prediction_json, cold.prediction_json);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn batch_analyzes_missing_apps_and_serves_the_matrix() {
        let root = temp_root("batch");
        let svc = service(&root);
        svc.submit("cg", 4, "A").expect("pre-seed cg");
        let result = svc
            .batch(
                &["cg".to_string(), "ft".to_string()],
                4,
                "A",
                &["B".to_string()],
                Some(2),
                None,
                Some(1),
            )
            .expect("batch");
        assert_eq!(result["jobs"]["cg"], serde_json::json!("cached"));
        assert_eq!(result["jobs"]["ft"], serde_json::json!("ok"));
        let predictions = result["predictions"].as_array().expect("predictions");
        assert_eq!(predictions.len(), 2, "apps x targets");
        for p in predictions {
            assert!(p.get("error").is_none(), "no prediction errors: {p}");
            assert!(p["prediction"]["pet"].as_f64().unwrap() > 0.0);
        }
        // Everything is now cached: a second batch does zero Stage-A work.
        let again = svc
            .batch(
                &["cg".to_string(), "ft".to_string()],
                4,
                "A",
                &["B".to_string()],
                None,
                None,
                None,
            )
            .expect("second batch");
        assert_eq!(again["jobs"]["cg"], serde_json::json!("cached"));
        assert_eq!(again["jobs"]["ft"], serde_json::json!("cached"));
        for p in again["predictions"].as_array().unwrap() {
            assert_eq!(p["cached"], serde_json::json!(true));
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn serve_loop_answers_each_line_and_stops_on_shutdown() {
        let root = temp_root("loop");
        let svc = service(&root);
        let input = concat!(
            r#"{"op":"submit","app":"cg","nprocs":4}"#,
            "\n\n",
            r#"{"op":"predict","app":"cg","nprocs":4,"target":"B"}"#,
            "\n",
            r#"{"op":"stats"}"#,
            "\n",
            r#"{"op":"shutdown"}"#,
            "\n",
            r#"{"op":"stats"}"#,
            "\n",
        );
        let mut out = Vec::new();
        svc.serve(Cursor::new(input), &mut out).expect("serve");
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 4, "shutdown stops the loop mid-stream");
        let submit: serde_json::Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(submit["ok"], serde_json::json!(true));
        assert_eq!(submit["op"], serde_json::json!("submit"));
        let predict: serde_json::Value = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(predict["ok"], serde_json::json!(true));
        assert_eq!(
            predict["result"]["signature_cached"],
            serde_json::json!(true)
        );
        let stats: serde_json::Value = serde_json::from_str(lines[2]).unwrap();
        assert_eq!(stats["result"]["entries"], serde_json::json!(2));
        let shutdown: serde_json::Value = serde_json::from_str(lines[3]).unwrap();
        assert_eq!(shutdown["result"]["stopping"], serde_json::json!(true));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_serves_the_same_protocol() {
        use std::io::{BufRead, BufReader, Write};
        use std::os::unix::net::UnixStream;

        let root = temp_root("socket");
        let socket = root.join("pas2p.sock");
        std::fs::create_dir_all(&root).expect("mkdir");
        let socket_path = socket.clone();
        let store_root = root.clone();
        let server = std::thread::spawn(move || {
            let svc = service(&store_root);
            svc.serve_unix(&socket_path).expect("serve_unix");
        });
        // The listener needs a moment to bind.
        let mut attempts = 0;
        let stream = loop {
            match UnixStream::connect(&socket) {
                Ok(s) => break s,
                Err(_) if attempts < 100 => {
                    attempts += 1;
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
                Err(e) => panic!("connect: {e}"),
            }
        };
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        writeln!(writer, r#"{{"op":"submit","app":"ft","nprocs":4}}"#).unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let submit: serde_json::Value = serde_json::from_str(&line).unwrap();
        assert_eq!(submit["ok"], serde_json::json!(true));
        writeln!(writer, r#"{{"op":"shutdown"}}"#).unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        server.join().expect("server thread");
        assert!(!socket.exists(), "socket file is removed on clean exit");
        let _ = std::fs::remove_dir_all(&root);
    }
}
