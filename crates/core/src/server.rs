//! The concurrent unix-socket front end of the prediction service.
//!
//! PR 8's `serve_unix` accepted one connection at a time: a stalled or
//! malicious client starved every other. This module replaces it with a
//! small, explicit server shaped for the ROADMAP's "heavy traffic"
//! north-star while staying deterministic enough to chaos-test:
//!
//! * **N simultaneous connections.** A nonblocking accept loop hands
//!   each connection to its own reader thread (bounded by
//!   `max_connections`; excess connections get a classified `busy`
//!   response and are closed).
//! * **Bounded worker pool, bounded queue.** Compute-bearing requests
//!   (`submit`/`predict`/`batch`/`stats`) travel through a
//!   `sync_channel` of capacity `queue_capacity` to `workers` worker
//!   threads. When the queue is full the request is *shed* — a
//!   `code:"busy"` response, a `serve.shed` counter tick — never
//!   unbounded memory.
//! * **Inline control plane.** `ping`, `health`, `shutdown` and
//!   malformed lines are answered by the connection thread itself,
//!   without consuming queue capacity: the control plane stays
//!   responsive when the data plane is saturated (`health` takes no
//!   lock at all).
//! * **Graceful shutdown.** A `shutdown` request is acknowledged on its
//!   own connection first; then the listener stops accepting, in-flight
//!   requests drain (bounded by `drain`), workers retire, the store
//!   index is flushed and the socket file removed.
//!
//! Per-request deadlines are the service's own
//! ([`crate::service::PredictionService::with_deadline`]); the server
//! adds the queueing, shedding and drain semantics around them.
//!
//! Observability: `serve.shed` / `serve.timeout` counters (the latter
//! from the service), `serve.inflight` / `serve.queue` gauges, plus the
//! per-request counters the service already maintains.

#![cfg(unix)]

use crate::service::{PredictionService, Request, Response};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Knobs of the concurrent server. The defaults suit tests and small
/// deployments; the CLI exposes each as a flag.
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Worker threads executing queued requests.
    pub workers: usize,
    /// Bound of the in-flight request queue; a full queue sheds.
    pub queue_capacity: usize,
    /// Maximum simultaneous connections; excess are answered `busy`
    /// and closed.
    pub max_connections: usize,
    /// How long shutdown waits for in-flight connections to finish
    /// before giving up on them.
    pub drain: Duration,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            workers: 4,
            queue_capacity: 64,
            max_connections: 64,
            drain: Duration::from_secs(5),
        }
    }
}

/// One queued request: the raw line plus the channel its response rides
/// back on (per-request, so responses cannot cross connections).
struct Job {
    line: String,
    reply: SyncSender<Response>,
}

fn set_queue_gauge(depth: u64) {
    if pas2p_obs::enabled() {
        pas2p_obs::gauge("serve.queue").set(depth as f64);
    }
}

fn set_inflight_gauge(n: u64) {
    if pas2p_obs::enabled() {
        pas2p_obs::gauge("serve.inflight").set(n as f64);
    }
}

/// Serve `service` on a unix socket at `socket_path` until a client
/// sends `shutdown`. See the module docs for the lifecycle.
pub fn serve_unix_with(
    service: &PredictionService,
    socket_path: &std::path::Path,
    opts: ServeOptions,
) -> std::io::Result<()> {
    let workers = opts.workers.max(1);
    let queue_capacity = opts.queue_capacity.max(1);
    let core = Arc::clone(service.core());
    core.stats.workers.store(workers as u64, Ordering::SeqCst);
    core.stats
        .queue_capacity
        .store(queue_capacity as u64, Ordering::SeqCst);
    core.stats.accepting.store(true, Ordering::SeqCst);

    let _ = std::fs::remove_file(socket_path);
    let listener = UnixListener::bind(socket_path)?;
    listener.set_nonblocking(true)?;

    let stop = Arc::new(AtomicBool::new(false));
    let (job_tx, job_rx) = mpsc::sync_channel::<Job>(queue_capacity);
    let job_rx = Arc::new(Mutex::new(job_rx));

    // The worker pool: claim one job at a time from the shared
    // receiver, execute it through the service (deadline + panic
    // boundary included), send the response back to its connection.
    let mut worker_handles = Vec::with_capacity(workers);
    for _ in 0..workers {
        let rx = Arc::clone(&job_rx);
        let svc = service.clone();
        worker_handles.push(std::thread::spawn(move || {
            loop {
                let job = {
                    let guard = rx.lock().expect("worker queue lock");
                    guard.recv()
                };
                let Ok(job) = job else {
                    // Every sender is gone: the server is draining.
                    break;
                };
                let core = svc.core();
                let depth = core.stats.queue_depth.fetch_sub(1, Ordering::SeqCst) - 1;
                set_queue_gauge(depth);
                let inflight = core.stats.inflight.fetch_add(1, Ordering::SeqCst) + 1;
                set_inflight_gauge(inflight);
                let (response, _stop) = svc.handle_line(&job.line);
                let inflight = core.stats.inflight.fetch_sub(1, Ordering::SeqCst) - 1;
                set_inflight_gauge(inflight);
                // The connection may have vanished; that is its problem.
                let _ = job.reply.send(response);
            }
            // Detached deadline runners may outlive the worker; events
            // buffered on this thread are handed over before it exits.
            pas2p_obs::events::flush();
        }));
    }

    // The accept loop: poll the (nonblocking) listener, spawn one
    // reader thread per connection, stop when a connection requested
    // shutdown.
    let mut conn_handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let open = core.stats.connections.load(Ordering::SeqCst);
                if open >= opts.max_connections as u64 {
                    // Shed the connection itself: classified, closed.
                    shed_connection(stream, &core);
                    continue;
                }
                core.stats.connections.fetch_add(1, Ordering::SeqCst);
                let svc = service.clone();
                let stop = Arc::clone(&stop);
                let job_tx = job_tx.clone();
                conn_handles.push(std::thread::spawn(move || {
                    handle_connection(stream, &svc, &stop, &job_tx);
                    svc.core()
                        .stats
                        .connections
                        .fetch_sub(1, Ordering::SeqCst);
                    pas2p_obs::events::flush();
                }));
                conn_handles.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(e),
        }
    }

    // Graceful shutdown: stop accepting (drop the listener), give
    // in-flight connections `drain` to finish (workers are still
    // serving the queue), then retire the pool and seal the store.
    core.stats.accepting.store(false, Ordering::SeqCst);
    drop(listener);
    let deadline = Instant::now() + opts.drain;
    while core.stats.connections.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    for handle in conn_handles {
        if handle.is_finished() {
            let _ = handle.join();
        }
    }
    // Dropping the last sender ends the workers' recv loops.
    drop(job_tx);
    for handle in worker_handles {
        let _ = handle.join();
    }
    core.flush_store();
    let _ = std::fs::remove_file(socket_path);
    Ok(())
}

/// Answer an over-limit connection with one classified `busy` line.
fn shed_connection(mut stream: UnixStream, core: &crate::service::ServiceCore) {
    core.stats.shed.fetch_add(1, Ordering::SeqCst);
    if pas2p_obs::enabled() {
        pas2p_obs::counter("serve.shed").add(1);
    }
    let response = Response::failure_code(
        "busy",
        "busy",
        "connection limit reached; retry later".to_string(),
    );
    let _ = writeln!(stream, "{}", response.render());
}

/// Ops the connection thread answers inline, without consuming queue
/// capacity: the control plane must stay responsive when the data
/// plane is saturated, and a malformed line must not occupy a worker.
fn inline_response(service: &PredictionService, line: &str) -> Option<(Response, bool)> {
    match Request::from_line(line) {
        Err(_) | Ok(Request::Ping) | Ok(Request::Health) | Ok(Request::Shutdown) => {
            Some(service.handle_line(line))
        }
        Ok(_) => None,
    }
}

/// One connection's read loop: decode lines, answer control-plane ops
/// inline, enqueue compute ops (shedding when the queue is full), stop
/// on EOF, socket error, server stop, or a shutdown request from this
/// client. Reads run under a 100ms timeout so the loop notices the
/// stop flag even while a slow-loris client drips bytes.
fn handle_connection(
    stream: UnixStream,
    service: &PredictionService,
    stop: &AtomicBool,
    job_tx: &SyncSender<Job>,
) {
    let core = service.core();
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        // `read_line` under a read timeout: a WouldBlock/TimedOut tick
        // leaves any partial line buffered in the BufReader, so a
        // slow-loris client's bytes accumulate across ticks while the
        // loop keeps polling the stop flag.
        match read_line_patiently(&mut reader, &mut line, stop) {
            ReadOutcome::Line => {}
            ReadOutcome::Closed => break,
        }
        if line.trim().is_empty() {
            continue;
        }
        if let Some((response, request_stop)) = inline_response(service, &line) {
            if writeln!(writer, "{}", response.render()).is_err() || writer.flush().is_err() {
                break;
            }
            if request_stop {
                // Ack flushed above; now stop the accept loop. The
                // listener drains the rest.
                stop.store(true, Ordering::SeqCst);
                break;
            }
            continue;
        }
        // Compute-bearing request: enqueue, or shed if the queue is
        // full. `try_send` is the load-shedding decision point — it
        // never blocks, so a saturated service answers `busy` fast
        // instead of accumulating unbounded work.
        let (reply_tx, reply_rx) = mpsc::sync_channel::<Response>(1);
        let job = Job {
            line: line.clone(),
            reply: reply_tx,
        };
        // Account the queue slot *before* handing the job over: the
        // worker decrements on dequeue, so incrementing only after a
        // successful `try_send` would race the decrement below zero.
        let depth = core.stats.queue_depth.fetch_add(1, Ordering::SeqCst) + 1;
        set_queue_gauge(depth);
        let response = match job_tx.try_send(job) {
            Ok(()) => match wait_for_reply(&reply_rx, stop) {
                Some(response) => response,
                None => break,
            },
            Err(TrySendError::Full(_)) => {
                let depth = core.stats.queue_depth.fetch_sub(1, Ordering::SeqCst) - 1;
                set_queue_gauge(depth);
                core.stats.shed.fetch_add(1, Ordering::SeqCst);
                if pas2p_obs::enabled() {
                    pas2p_obs::counter("serve.shed").add(1);
                }
                let op = Request::from_line(&line)
                    .map(|r| match r {
                        Request::Submit { .. } => "submit",
                        Request::Predict { .. } => "predict",
                        Request::Batch { .. } => "batch",
                        _ => "invalid",
                    })
                    .unwrap_or("invalid");
                Response::failure_code(op, "busy", "request queue full; retry later".to_string())
            }
            Err(TrySendError::Disconnected(_)) => {
                core.stats.queue_depth.fetch_sub(1, Ordering::SeqCst);
                break;
            }
        };
        if writeln!(writer, "{}", response.render()).is_err() || writer.flush().is_err() {
            break;
        }
    }
}

enum ReadOutcome {
    Line,
    Closed,
}

/// Read one line, riding out read-timeout ticks until data arrives, the
/// peer closes, or the server stops. A final unterminated fragment at
/// EOF is surfaced as a line (it will parse — or classify — normally).
fn read_line_patiently(
    reader: &mut BufReader<UnixStream>,
    line: &mut String,
    stop: &AtomicBool,
) -> ReadOutcome {
    loop {
        match reader.read_line(line) {
            Ok(0) => {
                return if line.is_empty() {
                    ReadOutcome::Closed
                } else {
                    ReadOutcome::Line
                };
            }
            Ok(_) => return ReadOutcome::Line,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::SeqCst) {
                    // Drain in progress: drop the partial line — the
                    // client never finished the request.
                    return ReadOutcome::Closed;
                }
            }
            Err(_) => return ReadOutcome::Closed,
        }
    }
}

/// Wait for the worker's response; bail out (returning `None`) only if
/// the worker side vanished entirely.
fn wait_for_reply(reply_rx: &Receiver<Response>, _stop: &AtomicBool) -> Option<Response> {
    // In-flight requests are drained even during shutdown, so this
    // blocks until the worker answers; the worker pool outlives every
    // connection thread's sender, so a RecvError means real trouble.
    reply_rx.recv().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Pas2p;
    use pas2p_store::SignatureStore;
    use std::path::PathBuf;
    use std::sync::atomic::AtomicU32;

    fn temp_root(tag: &str) -> PathBuf {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "pas2p-server-test-{}-{}-{}",
            std::process::id(),
            tag,
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn service(root: &std::path::Path) -> PredictionService {
        let store = SignatureStore::open(root.join("store")).expect("open store");
        PredictionService::new(Pas2p::default(), store, Box::new(pas2p_apps::by_name))
    }

    fn connect(socket: &std::path::Path) -> UnixStream {
        let mut attempts = 0;
        loop {
            match UnixStream::connect(socket) {
                Ok(s) => return s,
                Err(_) if attempts < 200 => {
                    attempts += 1;
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => panic!("connect {}: {e}", socket.display()),
            }
        }
    }

    fn roundtrip(stream: &mut UnixStream, request: &str) -> serde_json::Value {
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        writeln!(stream, "{request}").expect("write");
        let mut line = String::new();
        loop {
            match reader.read_line(&mut line) {
                Ok(0) => panic!("peer closed before responding"),
                Ok(_) => break,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(e) => panic!("read: {e}"),
            }
        }
        serde_json::from_str(&line).expect("response parses")
    }

    #[test]
    fn concurrent_clients_are_served_simultaneously() {
        let root = temp_root("concurrent");
        let socket = root.join("pas2p.sock");
        let svc = service(&root);
        let server_svc = svc.clone();
        let server_socket = socket.clone();
        let server = std::thread::spawn(move || {
            serve_unix_with(
                &server_svc,
                &server_socket,
                ServeOptions {
                    workers: 2,
                    ..ServeOptions::default()
                },
            )
            .expect("serve");
        });
        // Client A connects first but stays silent; client B must be
        // served anyway — the single-threaded server of PR 8 would
        // starve B behind A.
        let _idle = connect(&socket);
        let mut active = connect(&socket);
        let pong = roundtrip(&mut active, r#"{"op":"ping"}"#);
        assert_eq!(pong["ok"], serde_json::json!(true));
        assert_eq!(pong["result"]["pong"], serde_json::json!(true));
        let health = roundtrip(&mut active, r#"{"op":"health"}"#);
        assert_eq!(health["result"]["accepting"], serde_json::json!(true));
        assert_eq!(health["result"]["workers"], serde_json::json!(2));
        assert!(
            health["result"]["connections"].as_u64().unwrap() >= 2,
            "both connections visible: {health}"
        );
        let bye = roundtrip(&mut active, r#"{"op":"shutdown"}"#);
        assert_eq!(bye["result"]["stopping"], serde_json::json!(true));
        server.join().expect("server thread");
        assert!(!socket.exists(), "socket removed on clean exit");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn garbage_and_disconnects_get_classified_answers_not_crashes() {
        let root = temp_root("garbage");
        let socket = root.join("pas2p.sock");
        let svc = service(&root);
        let server_svc = svc.clone();
        let server_socket = socket.clone();
        let server = std::thread::spawn(move || {
            serve_unix_with(&server_svc, &server_socket, ServeOptions::default()).expect("serve");
        });
        // A client that sends garbage gets a classified invalid answer.
        let mut garbage = connect(&socket);
        let answer = roundtrip(&mut garbage, "this is not json");
        assert_eq!(answer["ok"], serde_json::json!(false));
        assert_eq!(answer["code"], serde_json::json!("invalid"));
        // A client that disconnects mid-request leaves no residue.
        {
            let mut rude = connect(&socket);
            rude.write_all(b"{\"op\":\"pred").expect("partial write");
            // dropped here — mid-request disconnect
        }
        // The service still answers.
        let mut polite = connect(&socket);
        let pong = roundtrip(&mut polite, r#"{"op":"ping"}"#);
        assert_eq!(pong["ok"], serde_json::json!(true));
        let bye = roundtrip(&mut polite, r#"{"op":"shutdown"}"#);
        assert_eq!(bye["ok"], serde_json::json!(true));
        server.join().expect("server thread");
        let _ = std::fs::remove_dir_all(&root);
    }
}
