//! The end-to-end PAS2P pipeline (Fig 1 / Fig 2 of the paper).

use pas2p_machine::{MachineModel, MappingPolicy};
use pas2p_model::pas2p_order;
use pas2p_phases::{extract_phases, PhaseAnalysis, PhaseTable, SimilarityConfig};
use pas2p_signature::{
    construct_signature, execute_signature, predict, run_traced, ConstructionStats, ExecError,
    MpiApp, Prediction, Signature, SignatureConfig, ValidationReport,
};
use pas2p_trace::InstrumentationModel;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Stage-A output: everything the analysis of one application run on the
/// base machine produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Analysis {
    /// Application name.
    pub app_name: String,
    /// Workload description.
    pub workload: String,
    /// Number of processes.
    pub nprocs: u32,
    /// Base machine name.
    pub base_machine: String,
    /// Tracefile size in bytes (the paper's TFSize, Table 8).
    pub trace_bytes: u64,
    /// Total recorded communication events.
    pub trace_events: usize,
    /// Host seconds spent building the model and extracting phases (the
    /// paper's TFAT, Table 8).
    pub tfat_seconds: f64,
    /// Application execution time under instrumentation (AET_PAS2P,
    /// Table 9), virtual seconds on the base machine.
    pub aet_instrumented: f64,
    /// The full phase analysis.
    pub analysis: PhaseAnalysis,
    /// The phase table feeding signature construction.
    pub table: PhaseTable,
}

impl Analysis {
    /// Total unique phases (Table 8 "Total Phases").
    pub fn total_phases(&self) -> usize {
        self.analysis.total_phases()
    }

    /// Relevant phases (Table 8 "Relevant Phases").
    pub fn relevant_phases(&self) -> usize {
        self.table.relevant_phases()
    }
}

/// The PAS2P tool: configuration plus the pipeline entry points.
#[derive(Debug, Clone, Copy)]
#[derive(Default)]
pub struct Pas2p {
    /// Phase-similarity thresholds (§3.3 step 5).
    pub similarity: SimilarityConfig,
    /// Interposition overhead model (§3.1).
    pub instrumentation: InstrumentationModel,
    /// Checkpoint/restart and relevance parameters (§3.4).
    pub signature: SignatureConfig,
}


impl Pas2p {
    /// Stage A (Fig 1 "Application analysis"): instrument and run the
    /// application on the base machine, build the machine-independent
    /// model, extract phases and produce the phase table.
    pub fn analyze(
        &self,
        app: &dyn MpiApp,
        base: &MachineModel,
        policy: MappingPolicy,
    ) -> Analysis {
        let (trace, report) = run_traced(app, base, policy, self.instrumentation);
        let tfat_start = Instant::now();
        let logical = pas2p_order(&trace);
        let analysis = extract_phases(&logical, &self.similarity);
        let tfat_seconds = tfat_start.elapsed().as_secs_f64();
        let table = PhaseTable::from_analysis(
            &analysis,
            self.signature.relevance_threshold,
            self.signature.warmup_occurrences,
            self.signature.measure_occurrences,
        );
        Analysis {
            app_name: app.name(),
            workload: app.workload(),
            nprocs: app.nprocs(),
            base_machine: base.name.clone(),
            trace_bytes: trace.size_bytes(),
            trace_events: trace.total_events(),
            tfat_seconds,
            aet_instrumented: report.makespan,
            analysis,
            table,
        }
    }

    /// Build the signature from an analysis by re-running the application
    /// on the base machine and checkpointing the relevant phases (§3.4).
    pub fn build_signature(
        &self,
        app: &dyn MpiApp,
        analysis: &Analysis,
        base: &MachineModel,
        policy: MappingPolicy,
    ) -> (Signature, ConstructionStats) {
        construct_signature(app, &analysis.table, base, policy, self.signature)
    }

    /// Stage B (Fig 1 "Performance prediction"): execute the signature on
    /// a target machine and apply Equation 1.
    pub fn predict(
        &self,
        app: &dyn MpiApp,
        signature: &Signature,
        target: &MachineModel,
        policy: MappingPolicy,
    ) -> Result<Prediction, ExecError> {
        execute_signature(app, signature, target, policy)
    }

    /// The experimental-validation block (Fig 12): predict, then run the
    /// whole application on the target to measure PETE.
    pub fn validate(
        &self,
        app: &dyn MpiApp,
        signature: &Signature,
        target: &MachineModel,
        policy: MappingPolicy,
    ) -> Result<ValidationReport, ExecError> {
        predict::validate(app, signature, target, policy)
    }

    /// Convenience: the whole methodology in one call — analyze on
    /// `base`, build the signature, validate against `target`.
    pub fn analyze_and_validate(
        &self,
        app: &dyn MpiApp,
        base: &MachineModel,
        target: &MachineModel,
        policy: MappingPolicy,
    ) -> Result<(Analysis, ValidationReport), ExecError> {
        let analysis = self.analyze(app, base, policy.clone());
        let (signature, _) = self.build_signature(app, &analysis, base, policy.clone());
        let report = self.validate(app, &signature, target, policy)?;
        Ok((analysis, report))
    }
}
