//! The end-to-end PAS2P pipeline (Fig 1 / Fig 2 of the paper).

use pas2p_check::{Artifacts, CheckEngine, CheckReport};
use pas2p_machine::{MachineModel, MappingPolicy};
use pas2p_model::pas2p_order;
use pas2p_obs::{Level, MetricsSnapshot};
use pas2p_phases::{extract_phases, PhaseAnalysis, PhaseTable, SimilarityConfig};
use pas2p_signature::{
    construct_signature, execute_signature, predict, run_plain, run_traced, ConstructionStats,
    ExecError, MpiApp, Prediction, Signature, SignatureConfig, ValidationReport,
};
use pas2p_trace::{ingest, Confidence, IngestReport, InstrumentationModel};
use serde::{Deserialize, Serialize};

/// Stage-A output: everything the analysis of one application run on the
/// base machine produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Analysis {
    /// Application name.
    pub app_name: String,
    /// Workload description.
    pub workload: String,
    /// Number of processes.
    pub nprocs: u32,
    /// Base machine name.
    pub base_machine: String,
    /// Tracefile size in bytes (the paper's TFSize, Table 8).
    pub trace_bytes: u64,
    /// Total recorded communication events.
    pub trace_events: usize,
    /// Host seconds spent building the model and extracting phases (the
    /// paper's TFAT, Table 8).
    pub tfat_seconds: f64,
    /// Application execution time under instrumentation (AET_PAS2P,
    /// Table 9), virtual seconds on the base machine.
    pub aet_instrumented: f64,
    /// The full phase analysis.
    pub analysis: PhaseAnalysis,
    /// The phase table feeding signature construction.
    pub table: PhaseTable,
    /// Observability snapshot taken at the end of the analysis (absent
    /// when observability is disabled).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub metrics: Option<MetricsSnapshot>,
    /// Invariant-check report over the produced artifacts (absent unless
    /// the analysis ran through [`Pas2p::analyze_checked`]).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub check: Option<CheckReport>,
    /// Whether the whole run's data reached the analysis. `Degraded`
    /// means the trace came through the recovering decoder with losses:
    /// the numbers describe the surviving subset of the run.
    #[serde(default)]
    pub confidence: Confidence,
    /// What the recovering decoder did to the input; absent when the
    /// trace was collected live (no decode involved).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub ingest: Option<IngestReport>,
}

impl Analysis {
    /// Total unique phases (Table 8 "Total Phases").
    pub fn total_phases(&self) -> usize {
        self.analysis.total_phases()
    }

    /// Relevant phases (Table 8 "Relevant Phases").
    pub fn relevant_phases(&self) -> usize {
        self.table.relevant_phases()
    }
}

/// Analysis from trace bytes failed. The ingest report is always
/// populated — even a fatally corrupt buffer yields an accounting of
/// what the recovering decoder saw, so callers (the batch driver, the
/// CLI) can classify the failure instead of guessing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysisError {
    /// Why the pipeline could not proceed.
    pub reason: String,
    /// What ingest recovered before the pipeline gave up.
    pub ingest: IngestReport,
}

impl std::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.reason)
    }
}

impl std::error::Error for AnalysisError {}

/// The PAS2P tool: configuration plus the pipeline entry points.
#[derive(Debug, Clone, Copy, Default)]
pub struct Pas2p {
    /// Phase-similarity thresholds (§3.3 step 5).
    pub similarity: SimilarityConfig,
    /// Interposition overhead model (§3.1).
    pub instrumentation: InstrumentationModel,
    /// Checkpoint/restart and relevance parameters (§3.4).
    pub signature: SignatureConfig,
}

impl Pas2p {
    /// Stage A (Fig 1 "Application analysis"): instrument and run the
    /// application on the base machine, build the machine-independent
    /// model, extract phases and produce the phase table.
    pub fn analyze(
        &self,
        app: &dyn MpiApp,
        base: &MachineModel,
        policy: MappingPolicy,
    ) -> Analysis {
        self.analyze_full(app, base, policy).0
    }

    /// [`Pas2p::analyze`], then run the `pas2p-check` diagnostics engine
    /// over every artifact of the stage (physical trace, logical trace,
    /// phase analysis, phase table) and attach the [`CheckReport`] to the
    /// result. The intermediate trace and logical trace are kept alive
    /// only for the check and dropped afterwards.
    pub fn analyze_checked(
        &self,
        app: &dyn MpiApp,
        base: &MachineModel,
        policy: MappingPolicy,
    ) -> Analysis {
        self.analyze_checked_with(app, base, policy, &CheckEngine::with_default_rules())
    }

    /// [`Pas2p::analyze_checked`] with a caller-supplied engine — the
    /// CLI passes one configured with `--workers`; tests pass engines at
    /// several worker counts to pin report invariance.
    pub fn analyze_checked_with(
        &self,
        app: &dyn MpiApp,
        base: &MachineModel,
        policy: MappingPolicy,
        engine: &CheckEngine,
    ) -> Analysis {
        let (mut analysis, trace, logical) = self.analyze_full(app, base, policy);
        let mut st = pas2p_obs::stage("check");
        let artifacts = Artifacts {
            trace: Some(&trace),
            logical: Some(&logical),
            analysis: Some(&analysis.analysis),
            table: Some(&analysis.table),
            similarity: self.similarity,
            ingest: None,
        };
        let report = engine.run(&artifacts);
        st.items(report.diagnostics.len() as u64);
        st.finish();
        // An order-sensitive signature is a weaker claim than a full one:
        // the phases exist, but their timings depend on which race
        // outcome the traced run happened to commit.
        if analysis.confidence == Confidence::Full && report.has_code("SIG-STAB-001") {
            analysis.confidence = Confidence::OrderSensitive;
        }
        if !report.is_clean() {
            pas2p_obs::log(
                Level::Warn,
                "pas2p.pipeline",
                "check found issues",
                &[
                    ("app", analysis.app_name.clone()),
                    ("errors", report.errors().to_string()),
                    ("warnings", report.warnings().to_string()),
                ],
            );
        }
        // Refresh the snapshot so the check stage and rule hit counters
        // are part of the recorded metrics.
        if pas2p_obs::enabled() {
            analysis.metrics = Some(pas2p_obs::global().snapshot());
        }
        analysis.check = Some(report);
        analysis
    }

    /// Stage A from a serialized trace buffer instead of a live run,
    /// via the recovering decoder: quarantine what cannot be decoded,
    /// proceed with the surviving ranks, and mark the result
    /// [`Confidence::Degraded`] when anything was lost. Collective
    /// `involved` counts are clamped to the surviving participants so
    /// the PAS2P ordering can complete without the missing ranks.
    ///
    /// Errors carry the [`IngestReport`] alongside the reason: an
    /// unusable buffer or an ordering that still cannot complete
    /// (e.g. a truncated collective tail) is a classified failure, not
    /// a panic.
    pub fn analyze_bytes(
        &self,
        app_name: &str,
        workload: &str,
        buf: &[u8],
    ) -> Result<Analysis, AnalysisError> {
        self.analyze_bytes_inner(app_name, workload, buf, false)
    }

    /// [`Pas2p::analyze_bytes`], then run the `pas2p-check` engine over
    /// the recovered artifacts — including the ingest report, so
    /// `INGEST-*` findings appear alongside the usual families — and
    /// attach the [`CheckReport`].
    pub fn analyze_bytes_checked(
        &self,
        app_name: &str,
        workload: &str,
        buf: &[u8],
    ) -> Result<Analysis, AnalysisError> {
        self.analyze_bytes_inner(app_name, workload, buf, true)
    }

    fn analyze_bytes_inner(
        &self,
        app_name: &str,
        workload: &str,
        buf: &[u8],
        checked: bool,
    ) -> Result<Analysis, AnalysisError> {
        let _span = pas2p_obs::span("pas2p.pipeline", "analyze_bytes");

        crate::cancel::checkpoint();
        let mut st = pas2p_obs::stage("ingest");
        let (trace, mut report) = ingest::decode_recovering(buf);
        let Some(mut trace) = trace else {
            st.finish();
            let reason = report
                .fatal
                .clone()
                .unwrap_or_else(|| "trace buffer unusable".to_string());
            return Err(AnalysisError {
                reason,
                ingest: report,
            });
        };
        if report.is_degraded() {
            report.collectives_clamped = ingest::repair_collectives(&mut trace);
        }
        st.items(trace.total_events() as u64);
        let ingest_seconds = st.finish();

        crate::cancel::checkpoint();
        let mut st = pas2p_obs::stage("pas2p_order");
        let logical = match pas2p_model::try_pas2p_order(&trace) {
            Ok(l) => l,
            Err(e) => {
                st.finish();
                return Err(AnalysisError {
                    reason: format!("ordering failed on recovered trace: {}", e),
                    ingest: report,
                });
            }
        };
        st.items(trace.total_events() as u64);
        let order_seconds = st.finish();

        crate::cancel::checkpoint();
        let analysis = extract_phases(&logical, &self.similarity);
        let tfat_seconds = ingest_seconds + order_seconds + analysis.analysis_seconds;

        let mut st = pas2p_obs::stage("table");
        let table = PhaseTable::from_analysis(
            &analysis,
            self.signature.relevance_threshold,
            self.signature.warmup_occurrences,
            self.signature.measure_occurrences,
        );
        st.items(table.rows.len() as u64);
        st.finish();

        let check = if checked {
            let mut st = pas2p_obs::stage("check");
            let artifacts = Artifacts {
                trace: Some(&trace),
                logical: Some(&logical),
                analysis: Some(&analysis),
                table: Some(&table),
                similarity: self.similarity,
                ingest: Some(&report),
            };
            let r = CheckEngine::with_default_rules().run(&artifacts);
            st.items(r.diagnostics.len() as u64);
            st.finish();
            Some(r)
        } else {
            None
        };

        let mut confidence = report.confidence();
        if confidence == Confidence::Full
            && check.as_ref().is_some_and(|r| r.has_code("SIG-STAB-001"))
        {
            confidence = Confidence::OrderSensitive;
        }
        if confidence == Confidence::Degraded {
            pas2p_obs::log(
                Level::Warn,
                "pas2p.pipeline",
                "degraded analysis",
                &[
                    ("app", app_name.to_string()),
                    ("missing_ranks", report.missing_ranks().len().to_string()),
                    ("quarantined", report.records_quarantined().to_string()),
                ],
            );
        }
        let metrics = if pas2p_obs::enabled() {
            Some(pas2p_obs::global().snapshot())
        } else {
            None
        };
        Ok(Analysis {
            app_name: app_name.to_string(),
            workload: workload.to_string(),
            nprocs: trace.nprocs,
            base_machine: trace.machine.clone(),
            trace_bytes: buf.len() as u64,
            trace_events: trace.total_events(),
            tfat_seconds,
            aet_instrumented: trace.elapsed(),
            analysis,
            table,
            metrics,
            check,
            confidence,
            ingest: Some(report),
        })
    }

    /// Stage A up to the machine-independent model only (§3.1–§3.2):
    /// run the instrumented application and apply the PAS2P ordering,
    /// returning both the physical trace and its logical trace. Useful
    /// for exporting the model so it can be inspected or re-checked
    /// (`pas2p-cli check --logical`).
    pub fn model(
        &self,
        app: &dyn MpiApp,
        base: &MachineModel,
        policy: MappingPolicy,
    ) -> (pas2p_trace::Trace, pas2p_model::LogicalTrace) {
        let (trace, _) = run_traced(app, base, policy, self.instrumentation);
        let logical = pas2p_order(&trace);
        (trace, logical)
    }

    /// [`Pas2p::analyze`], keeping the intermediate artifacts: the
    /// physical trace and the logical trace alongside the analysis.
    /// This is what the timeline exporter builds the application's
    /// virtual-time tracks from (`pas2p-cli timeline`).
    pub fn analyze_full(
        &self,
        app: &dyn MpiApp,
        base: &MachineModel,
        policy: MappingPolicy,
    ) -> (Analysis, pas2p_trace::Trace, pas2p_model::LogicalTrace) {
        let _span = pas2p_obs::span("pas2p.pipeline", "analyze");

        // Stage-boundary cancellation checkpoints: a run abandoned by
        // the batch driver's deadline watcher unwinds at the next
        // boundary instead of completing (and mutating obs state) on a
        // detached thread after its report was sealed.
        crate::cancel::checkpoint();
        let mut st = pas2p_obs::stage("run_traced");
        let (trace, report) = run_traced(app, base, policy, self.instrumentation);
        st.items(trace.total_events() as u64);
        st.finish();

        crate::cancel::checkpoint();
        let mut st = pas2p_obs::stage("pas2p_order");
        let logical = pas2p_order(&trace);
        st.items(trace.total_events() as u64);
        let order_seconds = st.finish();

        crate::cancel::checkpoint();

        // `extract_phases` records its own stage profile and returns the
        // same profiler reading as `analysis_seconds`, so TFAT and the
        // analysis timing are a single measurement and cannot diverge.
        let analysis = extract_phases(&logical, &self.similarity);
        let tfat_seconds = order_seconds + analysis.analysis_seconds;

        let mut st = pas2p_obs::stage("table");
        let table = PhaseTable::from_analysis(
            &analysis,
            self.signature.relevance_threshold,
            self.signature.warmup_occurrences,
            self.signature.measure_occurrences,
        );
        st.items(table.rows.len() as u64);
        st.finish();

        let metrics = if pas2p_obs::enabled() {
            pas2p_obs::gauge("pipeline.tfat_seconds").set(tfat_seconds);
            pas2p_obs::gauge("pipeline.aet_instrumented").set(report.makespan);
            Some(pas2p_obs::global().snapshot())
        } else {
            None
        };
        pas2p_obs::log(
            Level::Info,
            "pas2p.pipeline",
            "analysis complete",
            &[
                ("app", app.name()),
                ("nprocs", app.nprocs().to_string()),
                ("events", trace.total_events().to_string()),
                ("phases", analysis.total_phases().to_string()),
                ("tfat_seconds", format!("{tfat_seconds:.6}")),
            ],
        );
        let analysis = Analysis {
            app_name: app.name(),
            workload: app.workload(),
            nprocs: app.nprocs(),
            base_machine: base.name.clone(),
            trace_bytes: trace.size_bytes(),
            trace_events: trace.total_events(),
            tfat_seconds,
            aet_instrumented: report.makespan,
            analysis,
            table,
            metrics,
            check: None,
            confidence: Confidence::Full,
            ingest: None,
        };
        (analysis, trace, logical)
    }

    /// Build the signature from an analysis by re-running the application
    /// on the base machine and checkpointing the relevant phases (§3.4).
    pub fn build_signature(
        &self,
        app: &dyn MpiApp,
        analysis: &Analysis,
        base: &MachineModel,
        policy: MappingPolicy,
    ) -> (Signature, ConstructionStats) {
        let _span = pas2p_obs::span("pas2p.pipeline", "construct");
        let mut st = pas2p_obs::stage("construct");
        let (mut signature, stats) =
            construct_signature(app, &analysis.table, base, policy, self.signature);
        // A signature built from a degraded analysis stays degraded; the
        // flag rides through to every prediction it produces.
        signature.confidence = analysis.confidence;
        st.items(signature.phase_count() as u64);
        st.finish();
        (signature, stats)
    }

    /// Stage B (Fig 1 "Performance prediction"): execute the signature on
    /// a target machine and apply Equation 1.
    pub fn predict(
        &self,
        app: &dyn MpiApp,
        signature: &Signature,
        target: &MachineModel,
        policy: MappingPolicy,
    ) -> Result<Prediction, ExecError> {
        let _span = pas2p_obs::span("pas2p.pipeline", "execute");
        let mut st = pas2p_obs::stage("execute");
        let mut prediction = execute_signature(app, signature, target, policy)?;
        st.items(prediction.measurements.len() as u64);
        st.finish();
        if pas2p_obs::enabled() {
            prediction.metrics = Some(pas2p_obs::global().snapshot());
        }
        Ok(prediction)
    }

    /// The experimental-validation block (Fig 12): predict, then run the
    /// whole application on the target to measure PETE.
    pub fn validate(
        &self,
        app: &dyn MpiApp,
        signature: &Signature,
        target: &MachineModel,
        policy: MappingPolicy,
    ) -> Result<ValidationReport, ExecError> {
        let _span = pas2p_obs::span("pas2p.pipeline", "validate");
        let prediction = self.predict(app, signature, target, policy.clone())?;
        // The whole-application AET run is profiled under its own name;
        // the `predict` stage covers only the actual prediction.
        let mut st = pas2p_obs::stage("run_plain");
        let aet = run_plain(app, target, policy).makespan;
        st.items(1);
        st.finish();
        let mut st = pas2p_obs::stage("predict");
        let report = predict::report_from(prediction, aet);
        st.items(1);
        st.finish();
        pas2p_obs::log(
            Level::Info,
            "pas2p.pipeline",
            "validation complete",
            &[
                ("pet", format!("{:.6}", report.prediction.pet)),
                ("aet", format!("{aet:.6}")),
                ("pete_percent", format!("{:.3}", report.pete_or_inf())),
            ],
        );
        Ok(report)
    }

    /// Convenience: the whole methodology in one call — analyze on
    /// `base`, build the signature, validate against `target`.
    pub fn analyze_and_validate(
        &self,
        app: &dyn MpiApp,
        base: &MachineModel,
        target: &MachineModel,
        policy: MappingPolicy,
    ) -> Result<(Analysis, ValidationReport), ExecError> {
        let analysis = self.analyze(app, base, policy.clone());
        let (signature, _) = self.build_signature(app, &analysis, base, policy.clone());
        let report = self.validate(app, &signature, target, policy)?;
        Ok((analysis, report))
    }
}
