//! The workload effect (paper reference \[2\]: Canillas, Wong, Rexachs,
//! Luque — "Predicting parallel applications performance using
//! signatures: the workload effect").
//!
//! A signature predicts only for the data set it was analyzed with
//! (paper §7). The companion work observes that, for iteration-dimension
//! workload changes, the *phases* stay the same and only their *weights*
//! move: fitting weight-vs-workload functions from a few analyses lets
//! one signature predict unseen workload sizes without re-analysis.
//!
//! This module implements that extension for workloads parameterized by a
//! scalar (iteration/timestep count): per-phase linear least-squares fits
//! `weight(w) = a·w + b`, combined with the PhaseETs a signature measures
//! on the target machine (per-occurrence phase times are workload-
//! invariant when the per-iteration work is fixed — the scope of the
//! method; problem-*size* scaling changes PhaseETs and is out of scope).

use pas2p_phases::PhaseTable;
use pas2p_signature::Prediction;
use serde::{Deserialize, Serialize};

/// One phase family's fitted weight function.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseWeightFit {
    /// Phase id in the reference (largest-workload) table.
    pub phase_id: u32,
    /// Slope: extra repetitions per unit of workload.
    pub a: f64,
    /// Intercept: workload-independent repetitions (prologue/epilogue).
    pub b: f64,
}

impl PhaseWeightFit {
    /// Predicted weight at workload `w` (clamped non-negative).
    pub fn weight_at(&self, w: f64) -> f64 {
        (self.a * w + self.b).max(0.0)
    }
}

/// Errors from model fitting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadFitError {
    /// Fewer than two observations.
    NotEnoughObservations,
    /// The observations disagree on the number of relevant phases — the
    /// workload change altered the phase structure, so the linear-weight
    /// assumption does not hold and a re-analysis is needed.
    PhaseStructureMismatch {
        /// Relevant-phase counts seen across observations.
        counts: Vec<usize>,
    },
}

impl std::fmt::Display for WorkloadFitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadFitError::NotEnoughObservations => {
                write!(f, "need at least two (workload, phase table) observations")
            }
            WorkloadFitError::PhaseStructureMismatch { counts } => write!(
                f,
                "relevant-phase structure changed across workloads ({:?}); re-analyze",
                counts
            ),
        }
    }
}

impl std::error::Error for WorkloadFitError {}

/// A fitted workload model for one application on one base machine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadModel {
    /// Per-phase weight fits, in the reference table's row order.
    pub fits: Vec<PhaseWeightFit>,
    /// Workload parameters the model was fitted on.
    pub fitted_at: Vec<f64>,
}

impl WorkloadModel {
    /// Fit per-phase linear weight functions from two or more analyses of
    /// the same application at different scalar workloads. Phases are
    /// matched by row order (analyses of the same application discover
    /// phases in the same order).
    pub fn fit(observations: &[(f64, &PhaseTable)]) -> Result<WorkloadModel, WorkloadFitError> {
        if observations.len() < 2 {
            return Err(WorkloadFitError::NotEnoughObservations);
        }
        let counts: Vec<usize> = observations
            .iter()
            .map(|(_, t)| t.relevant_phases())
            .collect();
        if counts.windows(2).any(|w| w[0] != w[1]) {
            return Err(WorkloadFitError::PhaseStructureMismatch { counts });
        }
        let nphases = counts[0];
        let reference = observations
            .iter()
            .max_by(|a, b| a.0.partial_cmp(&b.0).unwrap())
            .unwrap()
            .1;

        let mut fits = Vec::with_capacity(nphases);
        for row in 0..nphases {
            // Least squares over (w, weight) pairs.
            let pts: Vec<(f64, f64)> = observations
                .iter()
                .map(|(w, t)| (*w, t.rows[row].weight as f64))
                .collect();
            let n = pts.len() as f64;
            let sw: f64 = pts.iter().map(|p| p.0).sum();
            let sy: f64 = pts.iter().map(|p| p.1).sum();
            let sww: f64 = pts.iter().map(|p| p.0 * p.0).sum();
            let swy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
            let denom = n * sww - sw * sw;
            let (a, b) = if denom.abs() < 1e-12 {
                (0.0, sy / n)
            } else {
                let a = (n * swy - sw * sy) / denom;
                let b = (sy - a * sw) / n;
                (a, b)
            };
            fits.push(PhaseWeightFit {
                phase_id: reference.rows[row].phase_id,
                a,
                b,
            });
        }
        Ok(WorkloadModel {
            fits,
            fitted_at: observations.iter().map(|(w, _)| *w).collect(),
        })
    }

    /// Predict the execution time at workload `w` from a signature
    /// execution (`prediction`) obtained at any of the fitted workloads:
    /// the measured PhaseETs are reused, the weights are re-derived.
    ///
    /// Phase measurements are matched to fits by row order.
    pub fn predict_at(&self, prediction: &Prediction, w: f64) -> f64 {
        self.fits
            .iter()
            .zip(&prediction.measurements)
            .map(|(fit, m)| fit.weight_at(w) * m.phase_et)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas2p_phases::{MeasureWindow, PhaseRow};
    use pas2p_signature::PhaseMeasurement;

    fn table(weights: &[u64]) -> PhaseTable {
        PhaseTable {
            nprocs: 2,
            aet_base: 1.0,
            total_phases: weights.len(),
            relevance_threshold: 0.01,
            rows: weights
                .iter()
                .enumerate()
                .map(|(i, &w)| PhaseRow {
                    phase_id: i as u32,
                    weight: w,
                    phase_et_base: 0.01,
                    ckpt_counts: vec![0, 0],
                    windows: vec![MeasureWindow {
                        start_counts: vec![0, 0],
                        end_counts: vec![1, 1],
                    }],
                })
                .collect(),
        }
    }

    #[test]
    fn fit_recovers_linear_weights() {
        let t1 = table(&[10, 1]);
        let t2 = table(&[20, 1]);
        let model = WorkloadModel::fit(&[(10.0, &t1), (20.0, &t2)]).unwrap();
        // Phase 0: weight = w; phase 1: constant 1.
        assert!((model.fits[0].weight_at(40.0) - 40.0).abs() < 1e-9);
        assert!((model.fits[1].weight_at(40.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fit_requires_two_observations() {
        let t = table(&[10]);
        assert_eq!(
            WorkloadModel::fit(&[(10.0, &t)]).unwrap_err(),
            WorkloadFitError::NotEnoughObservations
        );
    }

    #[test]
    fn structure_mismatch_is_detected() {
        let t1 = table(&[10, 1]);
        let t2 = table(&[20]);
        let err = WorkloadModel::fit(&[(10.0, &t1), (20.0, &t2)]).unwrap_err();
        assert!(matches!(
            err,
            WorkloadFitError::PhaseStructureMismatch { .. }
        ));
        assert!(err.to_string().contains("re-analyze"));
    }

    #[test]
    fn predict_at_combines_fits_with_measured_ets() {
        let t1 = table(&[10, 5]);
        let t2 = table(&[20, 5]);
        let model = WorkloadModel::fit(&[(10.0, &t1), (20.0, &t2)]).unwrap();
        let prediction = Prediction::from_measurements(
            "x".into(),
            "a".into(),
            "b".into(),
            2,
            vec![
                PhaseMeasurement {
                    phase_id: 0,
                    weight: 20,
                    phase_et: 0.5,
                    measured_span: 0.5,
                    restart_cost: 0.0,
                },
                PhaseMeasurement {
                    phase_id: 1,
                    weight: 5,
                    phase_et: 2.0,
                    measured_span: 2.0,
                    restart_cost: 0.0,
                },
            ],
            0.0,
        );
        // At w=40: phase0 weight 40 × 0.5 + phase1 weight 5 × 2.0 = 30.
        assert!((model.predict_at(&prediction, 40.0) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn weights_clamp_at_zero() {
        let fit = PhaseWeightFit {
            phase_id: 0,
            a: 1.0,
            b: -100.0,
        };
        assert_eq!(fit.weight_at(10.0), 0.0);
    }

    #[test]
    fn three_point_fit_averages_noise() {
        let t1 = table(&[11, 1]);
        let t2 = table(&[19, 1]);
        let t3 = table(&[31, 1]);
        let model = WorkloadModel::fit(&[(10.0, &t1), (20.0, &t2), (30.0, &t3)]).unwrap();
        let w40 = model.fits[0].weight_at(40.0);
        assert!((w40 - 40.33).abs() < 1.0, "w40 = {}", w40);
    }
}
