//! PAS2P — Parallel Application Signatures for Performance Prediction.
//!
//! A Rust reproduction of the PAS2P methodology (Wong, Rexachs, Luque):
//! characterize a message-passing application by tracing its
//! communication, build a machine-independent logical model, extract the
//! repetitive *phases* and their *weights*, checkpoint the application at
//! the relevant phases into a *signature*, and predict the application's
//! execution time on other machines by executing just the signature:
//!
//! ```text
//! PET = Σᵢ PhaseETᵢ · Wᵢ
//! ```
//!
//! # Quickstart
//!
//! ```
//! use pas2p::{Pas2p, prelude::*};
//! use pas2p_apps::MoldyApp;
//!
//! // The application under study and the machines involved.
//! let app = MoldyApp { nprocs: 8, steps: 30, rebuild_every: 10, atoms_per_proc: 256 };
//! let base = cluster_a();
//! let target = cluster_b();
//!
//! let pas2p = Pas2p::default();
//! // Stage A: analyze on the base machine and build the signature.
//! let analysis = pas2p.analyze(&app, &base, MappingPolicy::Block);
//! let (signature, _stats) = pas2p.build_signature(&app, &analysis, &base, MappingPolicy::Block);
//! // Stage B: execute the signature on the target machine.
//! let report = pas2p.validate(&app, &signature, &target, MappingPolicy::Block).unwrap();
//! assert!(report.pete_or_inf() < 15.0, "PETE {}%", report.pete_or_inf());
//! ```

#![forbid(unsafe_code)]

pub mod baselines;
pub mod batch;
pub mod benchrec;
pub mod cancel;
pub mod experiment;
pub mod pipeline;
pub mod server;
pub mod service;
pub mod timeline;
pub mod workload;

pub use batch::{
    run_batch, run_batch_with, BatchJob, BatchOptions, BatchReport, BatchResult, BatchStatus,
};
pub use benchrec::{
    append_record, bench_record, BenchAppStat, BenchRecord, CheckBenchStat, KernelBenchStat,
    BENCH_SCHEMA_VERSION,
};
pub use cancel::{cancelled, run_abandonable, with_cancel, CancelToken};
pub use pipeline::{Analysis, AnalysisError, Pas2p};
#[cfg(unix)]
pub use server::{serve_unix_with, ServeOptions};
pub use service::{
    canonicalize_prediction, AppResolver, PredictOutcome, PredictionService, Request, Response,
    ServeStats, SubmitOutcome,
};
pub use timeline::{compose_timeline, validate_chrome_json, TimelineStats};

/// Convenient re-exports of the whole PAS2P stack.
pub mod prelude {
    pub use pas2p_check::{Artifacts, CheckEngine, CheckReport, Diagnostic, Severity};
    pub use pas2p_faults::{fault_matrix, FaultKind, FaultPlan};
    pub use pas2p_machine::{
        cluster_a, cluster_b, cluster_c, cluster_d, preset_by_name, IsaKind, MachineModel, Mapping,
        MappingPolicy, Work,
    };
    pub use pas2p_model::{lamport_order, pas2p_order, try_pas2p_order, LogicalTrace, ModelError};
    pub use pas2p_mpisim::{run_app, Group, Mpi, RankCtx, ReduceOp, SimConfig};
    pub use pas2p_phases::{
        extract_phases, PhaseAnalysis, PhaseTable, SimilarityConfig, SimilarityKernel,
    };
    pub use pas2p_signature::{
        construct_signature, execute_signature, predict, rebuild_signature, run_plain, run_traced,
        MpiApp, Prediction, RankProgram, Signature, SignatureConfig, ValidationReport,
    };
    pub use pas2p_trace::{
        decode_recovering, Confidence, IngestReport, InstrumentationModel, Trace, TraceCollector,
        Traced,
    };
}
