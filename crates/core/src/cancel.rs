//! Cooperative cancellation for abandoned pipeline runs.
//!
//! The batch driver abandons a job when its deadline expires
//! ([`crate::batch::BatchStatus::TimedOut`]), but the detached thread
//! actually running the analysis used to keep going to completion —
//! writing obs counters, stage profiles and trace events long after the
//! batch report was sealed, skewing `batch.job_micros` and exported
//! timelines. A [`CancelToken`] closes that hole: the deadline watcher
//! flips the token, and the pipeline checks it at every stage boundary
//! via a thread-local, unwinding out of the run (the unwind is caught at
//! the existing panic boundary in the retry loop) instead of running on.
//!
//! Cancellation is cooperative and stage-granular by design: a stage in
//! flight finishes, but no *new* stage starts and no retry is attempted
//! once the token is set. Code outside a [`with_cancel`] scope never
//! pays more than a thread-local read that finds `None`.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The panic payload used to unwind a cancelled run. The retry loop
/// catches it like any other panic; the message makes the classification
/// self-describing if it ever surfaces in an error string.
pub const CANCELLED: &str = "pas2p: run cancelled";

/// A shared cancellation flag. Clone it freely: all clones observe the
/// same flag.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// True once [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

thread_local! {
    static CURRENT: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
}

/// Run `f` with `token` installed as this thread's cancellation token;
/// the previous token (if any) is restored afterwards, even on unwind.
pub fn with_cancel<T>(token: &CancelToken, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<CancelToken>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT.with(|c| *c.borrow_mut() = self.0.take());
        }
    }
    let previous = CURRENT.with(|c| c.borrow_mut().replace(token.clone()));
    let _restore = Restore(previous);
    f()
}

/// True when the current thread runs under a cancelled token.
pub fn cancelled() -> bool {
    CURRENT.with(|c| c.borrow().as_ref().is_some_and(|t| t.is_cancelled()))
}

/// Stage-boundary checkpoint: unwind out of a cancelled run. A no-op on
/// threads without an installed token — i.e. everywhere except detached
/// deadline runners.
pub(crate) fn checkpoint() {
    if cancelled() {
        std::panic::panic_any(CANCELLED);
    }
}

/// Run `f` on a detached thread under a fresh [`CancelToken`] and wait
/// at most `deadline` for its result. On expiry the token is cancelled
/// and `None` returned: the runner observes the token at its next
/// stage boundary (or through [`cancelled`] probes) and unwinds instead
/// of running to completion against a sealed report.
///
/// This is the one deadline mechanism in the crate — the batch driver
/// uses it per job, the prediction service per request — so the
/// abandonment semantics (obs events of an abandoned run are discarded,
/// a finished run's events are flushed before the result is handed
/// over) cannot drift between the two.
///
/// `category` names the obs flow arrow drawn from the waiting thread to
/// the runner (e.g. `"host.batch"`, `"host.serve"`).
pub fn run_abandonable<T: Send + 'static>(
    category: &'static str,
    deadline: std::time::Duration,
    f: impl FnOnce() -> T + Send + 'static,
) -> Option<T> {
    let (tx, rx) = std::sync::mpsc::channel();
    let token = CancelToken::new();
    let runner_token = token.clone();
    // Flow arrow from the waiting thread to the detached runner, so the
    // timeline shows where the work actually executed.
    let flow = pas2p_obs::flow_start(category, "deadline handoff", None);
    std::thread::spawn(move || {
        pas2p_obs::flow_end(category, "deadline handoff", flow);
        let out = with_cancel(&runner_token, f);
        if runner_token.is_cancelled() {
            // Abandoned: the caller already gave up. Discard the partial
            // timeline this thread buffered — the exit-time drain would
            // otherwise publish it into a later take().
            pas2p_obs::events::discard_local();
            return;
        }
        // Hand buffered events over before signalling completion: the
        // waiting thread resumes the moment the send lands, and this
        // detached thread's exit-time drain would race any take() after
        // that.
        pas2p_obs::events::flush();
        let _ = tx.send(out);
    });
    match rx.recv_timeout(deadline) {
        Ok(out) => Some(out),
        Err(_) => {
            token.cancel();
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn token_is_shared_across_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!t.is_cancelled());
        c.cancel();
        assert!(t.is_cancelled());
        t.cancel(); // idempotent
        assert!(c.is_cancelled());
    }

    #[test]
    fn checkpoint_is_a_noop_without_a_token() {
        assert!(!cancelled());
        checkpoint(); // must not panic
    }

    #[test]
    fn checkpoint_unwinds_under_a_cancelled_token() {
        let token = CancelToken::new();
        token.cancel();
        let result = catch_unwind(AssertUnwindSafe(|| with_cancel(&token, checkpoint)));
        let payload = result.expect_err("cancelled checkpoint must unwind");
        assert_eq!(payload.downcast_ref::<&str>(), Some(&CANCELLED));
        // The token is uninstalled again after the unwind.
        assert!(!cancelled());
    }

    #[test]
    fn run_abandonable_returns_a_finished_result() {
        let out = super::run_abandonable("host.test", std::time::Duration::from_secs(5), || 41 + 1);
        assert_eq!(out, Some(42));
    }

    #[test]
    fn run_abandonable_cancels_an_overrunning_runner() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let observed_cancel = Arc::new(AtomicBool::new(false));
        let probe = Arc::clone(&observed_cancel);
        let out = super::run_abandonable(
            "host.test",
            std::time::Duration::from_millis(20),
            move || {
                // Simulate a stage loop that polls the installed token.
                for _ in 0..500 {
                    if cancelled() {
                        probe.store(true, Ordering::SeqCst);
                        return 0;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                1
            },
        );
        assert_eq!(out, None, "deadline expiry abandons the runner");
        // The runner keeps going briefly; give it time to see the token.
        for _ in 0..200 {
            if observed_cancel.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        panic!("runner never observed the cancelled token");
    }

    #[test]
    fn previous_token_is_restored() {
        let outer = CancelToken::new();
        let inner = CancelToken::new();
        with_cancel(&outer, || {
            with_cancel(&inner, || {
                inner.cancel();
                assert!(cancelled());
            });
            // Back under the (live) outer token.
            assert!(!cancelled());
        });
        assert!(!cancelled());
    }
}
