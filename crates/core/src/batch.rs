//! Batch analysis: run many app×workload analyses over a bounded worker
//! pool, surviving whatever the jobs do.
//!
//! The driver exists for the paper's experimental sweeps (Tables 5–9):
//! one Stage-A analysis per application/workload pair, all independent of
//! each other. Jobs are claimed from a shared cursor by worker threads
//! and every result is written back into the slot of its submission
//! index, so the report order — and, because each analysis is itself
//! deterministic, the report content — is identical for any worker count
//! and any claiming order.
//!
//! The driver is hardened against misbehaving jobs: a panic inside one
//! analysis is caught at the worker boundary and classified, never
//! propagated ([`BatchStatus::Failed`]); a job can carry a per-job
//! deadline after which it is abandoned ([`BatchStatus::TimedOut`]);
//! transient failures can be retried with exponential backoff
//! ([`BatchStatus::Retried`]). Jobs may also carry a seeded
//! [`FaultPlan`] injected into their trace byte stream, driving the
//! analysis through the recovering ingest path — the fault-matrix
//! acceptance suite is built on this.

use crate::pipeline::{Analysis, Pas2p};
use parking_lot::Mutex;
use pas2p_faults::FaultPlan;
use pas2p_machine::{MachineModel, MappingPolicy};
use pas2p_signature::{run_traced, MpiApp};
use pas2p_trace::{Confidence, IngestReport};
use serde::Serialize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One unit of batch work: analyze `app` on `base` under `policy`.
pub struct BatchJob {
    /// The application under study.
    pub app: Box<dyn MpiApp>,
    /// The base machine the analysis runs on.
    pub base: MachineModel,
    /// Process-to-node mapping policy.
    pub policy: MappingPolicy,
    /// Optional seeded fault plan injected into the trace byte stream
    /// before analysis; the job then runs through the recovering ingest
    /// path and reports an [`IngestReport`].
    pub fault: Option<FaultPlan>,
}

impl BatchJob {
    /// A job with the default block mapping and no fault injection.
    pub fn new(app: Box<dyn MpiApp>, base: MachineModel) -> BatchJob {
        BatchJob {
            app,
            base,
            policy: MappingPolicy::Block,
            fault: None,
        }
    }

    /// Attach a seeded fault plan to this job.
    pub fn with_fault(mut self, plan: FaultPlan) -> BatchJob {
        self.fault = Some(plan);
        self
    }
}

/// How a batch job ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum BatchStatus {
    /// Completed at full confidence on the first attempt.
    Ok,
    /// Completed, but on recovered input: the analysis carries
    /// [`Confidence::Degraded`].
    Degraded,
    /// Completed at full confidence, but only after at least one retry.
    Retried,
    /// Every attempt failed (typed error or panic); `error` says why.
    Failed,
    /// The per-job deadline expired; the job was abandoned.
    TimedOut,
}

impl std::fmt::Display for BatchStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchStatus::Ok => write!(f, "ok"),
            BatchStatus::Degraded => write!(f, "degraded"),
            BatchStatus::Retried => write!(f, "retried"),
            BatchStatus::Failed => write!(f, "failed"),
            BatchStatus::TimedOut => write!(f, "timed-out"),
        }
    }
}

/// One job's outcome, in submission order.
#[derive(Debug, Clone, Serialize)]
pub struct BatchResult {
    /// Submission index of the job this result belongs to.
    pub index: usize,
    /// Application name, available even when the job produced no
    /// analysis (failed or timed out).
    pub app_name: String,
    /// Failure classification.
    pub status: BatchStatus,
    /// The full Stage-A analysis; absent for `Failed` and `TimedOut`.
    pub analysis: Option<Analysis>,
    /// Ingest accounting when the job went through the recovering
    /// decoder (fault jobs and byte-stream jobs), even on failure.
    pub ingest: Option<IngestReport>,
    /// The last attempt's error for `Failed` jobs.
    pub error: Option<String>,
    /// Attempts consumed (1 = no retries).
    pub attempts: u32,
    /// Host wall-clock seconds this job took on its worker.
    pub job_seconds: f64,
}

/// The batch driver's output: every job's result plus run-level stats.
#[derive(Debug, Clone, Serialize)]
pub struct BatchReport {
    /// Per-job results, in submission order regardless of worker count.
    pub results: Vec<BatchResult>,
    /// Worker threads the batch ran with.
    pub workers: usize,
    /// Host wall-clock seconds for the whole batch.
    pub wall_seconds: f64,
}

impl BatchReport {
    /// One summary line per job (Table 8 columns: events, phases, TFAT).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.results {
            match (&r.status, &r.analysis) {
                (BatchStatus::Failed, _) => {
                    out.push_str(&format!(
                        "{:<12} {:>3}  FAILED after {} attempt(s): {}\n",
                        r.app_name,
                        "",
                        r.attempts,
                        r.error.as_deref().unwrap_or("unknown error"),
                    ));
                }
                (BatchStatus::TimedOut, _) => {
                    out.push_str(&format!(
                        "{:<12} {:>3}  TIMED OUT after {} attempt(s)\n",
                        r.app_name, "", r.attempts,
                    ));
                }
                (_, Some(a)) => {
                    out.push_str(&format!(
                        "{:<12} {:>3}p {:>8} events {:>4} phases ({:>3} relevant) \
                         TFAT {:.3}s AET {:.3}s [{}]\n",
                        a.app_name,
                        a.nprocs,
                        a.trace_events,
                        a.total_phases(),
                        a.relevant_phases(),
                        a.tfat_seconds,
                        a.aet_instrumented,
                        r.status,
                    ));
                }
                (_, None) => {
                    out.push_str(&format!("{:<12} [{}]\n", r.app_name, r.status));
                }
            }
        }
        out.push_str(&format!(
            "{} job(s) on {} worker(s), {:.3}s wall\n",
            self.results.len(),
            self.workers,
            self.wall_seconds
        ));
        out
    }

    /// Deterministic digest of the batch outcome: everything that must
    /// be byte-identical across worker counts and submission claiming
    /// orders — statuses, attempt counts, analysis shapes, and ingest
    /// accounting — and nothing that may not (wall times, metrics).
    pub fn digest(&self) -> String {
        let mut out = String::new();
        for r in &self.results {
            out.push_str(&format!(
                "job {} {} status={} attempts={}",
                r.index, r.app_name, r.status, r.attempts
            ));
            if let Some(a) = &r.analysis {
                out.push_str(&format!(
                    " nprocs={} events={} phases={} relevant={} confidence={}",
                    a.nprocs,
                    a.trace_events,
                    a.total_phases(),
                    a.relevant_phases(),
                    a.confidence,
                ));
            }
            if let Some(e) = &r.error {
                out.push_str(&format!(" error={}", e));
            }
            out.push('\n');
            if let Some(i) = &r.ingest {
                for line in i.render().lines() {
                    out.push_str("  ");
                    out.push_str(line);
                    out.push('\n');
                }
            }
        }
        out
    }

    /// True when every job completed (possibly degraded or retried).
    pub fn all_completed(&self) -> bool {
        self.results
            .iter()
            .all(|r| !matches!(r.status, BatchStatus::Failed | BatchStatus::TimedOut))
    }
}

/// Knobs for [`run_batch_with`].
#[derive(Debug, Clone, Copy)]
pub struct BatchOptions {
    /// Worker threads; `None` means one per available core. Clamped to
    /// the job count either way.
    pub workers: Option<usize>,
    /// Per-job wall-clock deadline. A job still running when it expires
    /// is abandoned ([`BatchStatus::TimedOut`]) and its worker slot
    /// freed; the runaway attempt finishes (or not) on a detached
    /// thread whose result is discarded.
    pub deadline: Option<Duration>,
    /// Retries after a failed attempt (0 = single attempt).
    pub max_retries: u32,
    /// Sleep before the first retry; doubles per subsequent retry.
    pub retry_backoff: Duration,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            workers: None,
            deadline: None,
            max_retries: 0,
            retry_backoff: Duration::from_millis(50),
        }
    }
}

/// Resolve the worker count: an explicit request is clamped to the job
/// count; `None` means one worker per available core (again clamped).
pub fn batch_workers(requested: Option<usize>, jobs: usize) -> usize {
    requested
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
        .clamp(1, jobs.max(1))
}

/// Largest exponent used by the retry backoff: delays stop doubling at
/// `retry_backoff × 2^16` (so pathological `max_retries` values can't
/// shift the factor into nonsense).
const BACKOFF_EXPONENT_CAP: u32 = 16;

/// Delay before retry number `retry` (1-based): `base × 2^(retry − 1)`,
/// with the exponent capped at [`BACKOFF_EXPONENT_CAP`] and the
/// multiplication saturating to `Duration::MAX`. `Duration * u32`
/// panics on overflow, and a large user-supplied `retry_backoff`
/// reaches that panic even with the exponent cap — inside the retry
/// loop, where a panic is indistinguishable from a failing job.
fn retry_backoff_delay(base: Duration, retry: u32) -> Duration {
    let factor = 1u32 << retry.saturating_sub(1).min(BACKOFF_EXPONENT_CAP);
    base.checked_mul(factor).unwrap_or(Duration::MAX)
}

/// What one job's retry loop produced.
struct Outcome {
    result: Result<Analysis, String>,
    ingest: Option<IngestReport>,
    attempts: u32,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        format!("panicked: {}", s)
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panicked: {}", s)
    } else {
        "panicked".to_string()
    }
}

/// One attempt: run the job to completion, through fault injection and
/// recovering ingest when the job carries a plan.
fn attempt(pas2p: &Pas2p, job: &BatchJob) -> Result<Analysis, (String, Option<IngestReport>)> {
    match &job.fault {
        None => Ok(pas2p.analyze(job.app.as_ref(), &job.base, job.policy.clone())),
        Some(plan) => {
            let (trace, _) = run_traced(
                job.app.as_ref(),
                &job.base,
                job.policy.clone(),
                pas2p.instrumentation,
            );
            let (bytes, _log) = plan.inject(&trace);
            pas2p
                .analyze_bytes_checked(&job.app.name(), &job.app.workload(), &bytes)
                .map_err(|e| (e.reason, Some(e.ingest)))
        }
    }
}

/// The bounded retry loop around [`attempt`], with the panic boundary.
/// Never unwinds: a panicking job becomes an `Err` like any other.
fn attempt_loop(pas2p: &Pas2p, job: &BatchJob, opts: &BatchOptions) -> Outcome {
    let mut attempts = 0u32;
    // Every failing iteration assigns before the bound check reads.
    let mut last_err;
    let mut last_ingest = None;
    loop {
        attempts += 1;
        match catch_unwind(AssertUnwindSafe(|| attempt(pas2p, job))) {
            Ok(Ok(analysis)) => {
                let ingest = analysis.ingest.clone();
                return Outcome {
                    result: Ok(analysis),
                    ingest,
                    attempts,
                };
            }
            Ok(Err((reason, ingest))) => {
                last_err = reason;
                if ingest.is_some() {
                    last_ingest = ingest;
                }
            }
            Err(payload) => {
                last_err = panic_message(payload);
            }
        }
        if attempts > opts.max_retries {
            return Outcome {
                result: Err(last_err),
                ingest: last_ingest,
                attempts,
            };
        }
        // An abandoned (deadline-expired) run stops here: no retry, no
        // retry accounting — nobody is listening for the outcome.
        if crate::cancel::cancelled() {
            return Outcome {
                result: Err(last_err),
                ingest: last_ingest,
                attempts,
            };
        }
        if pas2p_obs::enabled() {
            pas2p_obs::counter("batch.retries").add(1);
        }
        if pas2p_obs::tracing_enabled() {
            pas2p_obs::instant(
                "host.batch",
                "retry",
                vec![
                    ("app", job.app.name()),
                    ("attempt", attempts.to_string()),
                    ("error", last_err.clone()),
                ],
            );
        }
        // Exponential backoff: opts.retry_backoff × 2^(retry - 1),
        // capped and saturating so no combination of knobs can panic.
        std::thread::sleep(retry_backoff_delay(opts.retry_backoff, attempts));
    }
}

fn classify(outcome: &Outcome) -> BatchStatus {
    match &outcome.result {
        Ok(a) if a.confidence == Confidence::Degraded => BatchStatus::Degraded,
        Ok(_) if outcome.attempts > 1 => BatchStatus::Retried,
        Ok(_) => BatchStatus::Ok,
        Err(_) => BatchStatus::Failed,
    }
}

/// Run one job, enforcing the deadline if there is one. With a deadline
/// the retry loop runs on a detached thread so the worker can abandon
/// it; `Pas2p` is `Copy` and the job moves in whole.
fn run_job(pas2p: &Pas2p, job: BatchJob, opts: &BatchOptions) -> (String, BatchStatus, Outcome) {
    let app_name = job.app.name();
    let Some(deadline) = opts.deadline else {
        let outcome = attempt_loop(pas2p, &job, opts);
        let status = classify(&outcome);
        return (app_name, status, outcome);
    };
    let pas2p = *pas2p;
    let opts = *opts;
    // The shared abandonable runner owns the detached thread, the
    // cancel token, and the events flush/discard discipline; expiry
    // cancels the runner at its next stage boundary instead of letting
    // it mutate counters and timelines after this report line is
    // sealed.
    let outcome = crate::cancel::run_abandonable("host.batch", deadline, move || {
        attempt_loop(&pas2p, &job, &opts)
    });
    match outcome {
        Some(outcome) => {
            let status = classify(&outcome);
            (app_name, status, outcome)
        }
        None => {
            if pas2p_obs::tracing_enabled() {
                pas2p_obs::instant(
                    "host.batch",
                    "deadline expired",
                    vec![
                        ("app", app_name.clone()),
                        ("deadline_s", format!("{:.3}", deadline.as_secs_f64())),
                    ],
                );
            }
            (
                app_name,
                BatchStatus::TimedOut,
                Outcome {
                    result: Err(format!(
                        "deadline of {:.3}s expired",
                        deadline.as_secs_f64()
                    )),
                    ingest: None,
                    attempts: 1,
                },
            )
        }
    }
}

/// Analyze every job over a pool of worker threads, with panic
/// isolation, per-job deadlines and bounded retries per
/// [`BatchOptions`].
///
/// Workers claim jobs through a shared atomic cursor — no job is run
/// twice, no job is skipped — and deposit results into the slot of the
/// job's submission index. The analyses themselves are deterministic,
/// so [`BatchReport::digest`] is byte-identical for any worker count
/// and any claiming order.
pub fn run_batch_with(pas2p: &Pas2p, jobs: Vec<BatchJob>, opts: BatchOptions) -> BatchReport {
    let njobs = jobs.len();
    let workers = batch_workers(opts.workers, njobs);
    let mut st = pas2p_obs::stage("batch");
    st.items(njobs as u64);
    if pas2p_obs::enabled() {
        pas2p_obs::counter("batch.jobs").add(njobs as u64);
        pas2p_obs::gauge("pipeline.par.workers").set(workers as f64);
    }

    let cursor = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<BatchResult>>> = Mutex::new((0..njobs).map(|_| None).collect());
    // Jobs are owned behind mutexed slots so a worker can take one and
    // move it into a deadline runner thread.
    let jobs: Arc<Vec<Mutex<Option<BatchJob>>>> =
        Arc::new(jobs.into_iter().map(|j| Mutex::new(Some(j))).collect());

    let run_one = |index: usize| {
        let job = jobs[index]
            .lock()
            .take()
            .expect("the cursor hands each job to exactly one worker");
        // One aggregated histogram for all jobs plus a bounded top-K of
        // stage profiles after the pool drains — NOT one stage profile
        // per job, which made snapshot size grow with batch size.
        let job_span = if pas2p_obs::tracing_enabled() {
            Some(pas2p_obs::trace_span(
                "host.job",
                &format!("job {index}: {}", job.app.name()),
            ))
        } else {
            None
        };
        let started = std::time::Instant::now();
        let (app_name, status, outcome) = run_job(pas2p, job, &opts);
        if pas2p_obs::enabled() {
            match status {
                BatchStatus::Failed => pas2p_obs::counter("batch.failed").add(1),
                BatchStatus::TimedOut => pas2p_obs::counter("batch.timed_out").add(1),
                BatchStatus::Degraded => pas2p_obs::counter("batch.degraded").add(1),
                _ => {}
            }
        }
        let (analysis, error) = match outcome.result {
            Ok(a) => (Some(a), None),
            Err(e) => (None, Some(e)),
        };
        let job_seconds = started.elapsed().as_secs_f64();
        if pas2p_obs::enabled() {
            pas2p_obs::histogram("batch.job_micros").record((job_seconds * 1e6) as u64);
        }
        if let Some(span) = job_span {
            span.finish_with(vec![
                ("app", app_name.clone()),
                ("status", status.to_string()),
                ("attempts", outcome.attempts.to_string()),
            ]);
        }
        BatchResult {
            index,
            app_name,
            status,
            analysis,
            ingest: outcome.ingest,
            error,
            attempts: outcome.attempts,
            job_seconds,
        }
    };

    // Always run through the pool, even with one worker: a job must see
    // the same thread environment (fresh thread, no enclosing timeline
    // span) regardless of the worker count, or the exported timelines
    // would nest differently for workers = 1 vs. workers > 1.
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= njobs {
                        break;
                    }
                    let result = run_one(index);
                    slots.lock()[index] = Some(result);
                }
                // The scope unblocks before this thread's TLS
                // destructors run; flush so a take() right after the
                // batch returns sees every job span.
                pas2p_obs::events::flush();
            });
        }
    });

    let results: Vec<BatchResult> = slots
        .into_inner()
        .into_iter()
        .map(|r| r.expect("every claimed job deposits a result"))
        .collect();
    if pas2p_obs::enabled() {
        record_slowest_jobs(&results);
    }
    let wall_seconds = st.finish();
    BatchReport {
        results,
        workers,
        wall_seconds,
    }
}

/// Stage profiles for only the `SLOWEST_JOBS` slowest jobs of a batch,
/// keeping the per-job detail that matters (the stragglers) without the
/// metric-cardinality creep of one profile per job.
const SLOWEST_JOBS: usize = 8;

fn record_slowest_jobs(results: &[BatchResult]) {
    let mut order: Vec<&BatchResult> = results.iter().collect();
    order.sort_by(|a, b| {
        b.job_seconds
            .total_cmp(&a.job_seconds)
            .then(a.index.cmp(&b.index))
    });
    for r in order.iter().take(SLOWEST_JOBS) {
        let items = r
            .analysis
            .as_ref()
            .map(|a| a.trace_events as u64)
            .unwrap_or(0);
        let items_per_sec = if r.job_seconds > 0.0 {
            items as f64 / r.job_seconds
        } else {
            0.0
        };
        pas2p_obs::global().record_stage(pas2p_obs::StageProfile {
            name: format!("batch.job[{}#{}]", r.app_name, r.index),
            wall_seconds: r.job_seconds,
            items,
            items_per_sec,
        });
    }
}

/// [`run_batch_with`] under default options: no deadlines, no retries —
/// but still panic-isolated. Kept as the simple entry point for sweeps
/// of well-behaved jobs.
pub fn run_batch(pas2p: &Pas2p, jobs: Vec<BatchJob>, workers: Option<usize>) -> BatchReport {
    run_batch_with(
        pas2p,
        jobs,
        BatchOptions {
            workers,
            ..BatchOptions::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas2p_machine::cluster_a;
    use pas2p_signature::RankProgram;

    fn jobs_of(names: &[&str]) -> Vec<BatchJob> {
        names
            .iter()
            .map(|n| BatchJob::new(pas2p_apps::by_name(n, 8).expect("catalog app"), cluster_a()))
            .collect()
    }

    /// The determinism surface of one result: everything except host
    /// timing and the metrics snapshot.
    fn key(r: &BatchResult) -> (usize, String, usize, usize, usize) {
        let a = r.analysis.as_ref().expect("analysis present");
        (
            r.index,
            a.app_name.clone(),
            a.trace_events,
            a.total_phases(),
            a.relevant_phases(),
        )
    }

    #[test]
    fn batch_results_are_worker_count_invariant() {
        let pas2p = Pas2p::default();
        let names = ["cg", "moldy", "masterworker", "ft"];
        let baseline = run_batch(&pas2p, jobs_of(&names), Some(1));
        assert_eq!(baseline.results.len(), names.len());
        for (i, r) in baseline.results.iter().enumerate() {
            assert_eq!(r.index, i, "results must be in submission order");
            assert_eq!(r.status, BatchStatus::Ok);
            assert_eq!(r.attempts, 1);
            assert_eq!(r.app_name.to_lowercase(), names[i]);
        }
        for workers in [2, 3, 8] {
            let par = run_batch(&pas2p, jobs_of(&names), Some(workers));
            assert_eq!(par.workers, workers.min(names.len()));
            let a: Vec<_> = baseline.results.iter().map(key).collect();
            let b: Vec<_> = par.results.iter().map(key).collect();
            assert_eq!(a, b, "worker count {workers} changed the batch output");
            assert_eq!(
                baseline.digest(),
                par.digest(),
                "digest must be byte-identical across worker counts"
            );
        }
    }

    #[test]
    fn batch_results_are_submission_order_invariant() {
        let pas2p = Pas2p::default();
        let forward = run_batch(&pas2p, jobs_of(&["cg", "moldy"]), Some(2));
        let reverse = run_batch(&pas2p, jobs_of(&["moldy", "cg"]), Some(2));
        // Same jobs, opposite submission order: each result follows its
        // job, so the reports are mirror images of each other.
        let body = |r: &BatchResult| {
            let k = key(r);
            (k.1, k.2, k.3, k.4)
        };
        assert_eq!(body(&forward.results[0]), body(&reverse.results[1]));
        assert_eq!(body(&forward.results[1]), body(&reverse.results[0]));
    }

    #[test]
    fn batch_workers_clamps() {
        assert_eq!(batch_workers(Some(16), 4), 4);
        assert_eq!(batch_workers(Some(0), 4), 1);
        assert_eq!(batch_workers(Some(2), 0), 1);
        assert!(batch_workers(None, 100) >= 1);
    }

    #[test]
    fn empty_batch_is_fine() {
        let report = run_batch(&Pas2p::default(), Vec::new(), None);
        assert!(report.results.is_empty());
        assert_eq!(report.workers, 1);
        assert!(report.render().contains("0 job(s)"));
        assert!(report.all_completed());
    }

    /// An app whose rank program panics mid-run: the batch must survive
    /// and classify, never unwind.
    struct PanickingApp;

    struct PanickingRank;
    impl RankProgram for PanickingRank {
        fn prologue(&mut self, _: &mut dyn pas2p_mpisim::Mpi) {}
        fn steps(&self) -> u64 {
            1
        }
        fn step(&mut self, _: u64, _: &mut dyn pas2p_mpisim::Mpi) {
            panic!("injected rank panic");
        }
        fn epilogue(&mut self, _: &mut dyn pas2p_mpisim::Mpi) {}
        fn snapshot(&self) -> Vec<u8> {
            Vec::new()
        }
        fn restore(&mut self, _: &[u8]) {}
    }

    impl MpiApp for PanickingApp {
        fn name(&self) -> String {
            "panicker".into()
        }
        fn nprocs(&self) -> u32 {
            2
        }
        fn workload(&self) -> String {
            "panics".into()
        }
        fn make_rank(&self, _: u32) -> Box<dyn RankProgram> {
            Box::new(PanickingRank)
        }
    }

    /// An app that sleeps long enough to blow any small deadline.
    struct SleepyApp;

    struct SleepyRank;
    impl RankProgram for SleepyRank {
        fn prologue(&mut self, _: &mut dyn pas2p_mpisim::Mpi) {}
        fn steps(&self) -> u64 {
            1
        }
        fn step(&mut self, _: u64, _: &mut dyn pas2p_mpisim::Mpi) {
            std::thread::sleep(Duration::from_millis(400));
        }
        fn epilogue(&mut self, _: &mut dyn pas2p_mpisim::Mpi) {}
        fn snapshot(&self) -> Vec<u8> {
            Vec::new()
        }
        fn restore(&mut self, _: &[u8]) {}
    }

    impl MpiApp for SleepyApp {
        fn name(&self) -> String {
            "sleeper".into()
        }
        fn nprocs(&self) -> u32 {
            1
        }
        fn workload(&self) -> String {
            "sleeps".into()
        }
        fn make_rank(&self, _: u32) -> Box<dyn RankProgram> {
            Box::new(SleepyRank)
        }
    }

    #[test]
    fn panicking_job_is_isolated_and_classified() {
        let pas2p = Pas2p::default();
        let jobs = vec![
            BatchJob::new(Box::new(PanickingApp), cluster_a()),
            BatchJob::new(
                pas2p_apps::by_name("cg", 8).expect("catalog app"),
                cluster_a(),
            ),
        ];
        let report = run_batch(&pas2p, jobs, Some(2));
        assert_eq!(report.results[0].status, BatchStatus::Failed);
        assert!(report.results[0].analysis.is_none());
        assert!(
            report.results[0]
                .error
                .as_deref()
                .unwrap()
                .contains("panic"),
            "{:?}",
            report.results[0].error
        );
        // The neighbor job is untouched by the panic.
        assert_eq!(report.results[1].status, BatchStatus::Ok);
        assert!(!report.all_completed());
    }

    #[test]
    fn retries_are_bounded_and_counted() {
        let pas2p = Pas2p::default();
        let opts = BatchOptions {
            workers: Some(1),
            max_retries: 2,
            retry_backoff: Duration::from_millis(1),
            ..BatchOptions::default()
        };
        let jobs = vec![BatchJob::new(Box::new(PanickingApp), cluster_a())];
        let report = run_batch_with(&pas2p, jobs, opts);
        let r = &report.results[0];
        assert_eq!(r.status, BatchStatus::Failed);
        assert_eq!(r.attempts, 3, "1 attempt + 2 retries");
    }

    #[test]
    fn deadline_expiry_times_a_job_out() {
        let pas2p = Pas2p::default();
        let opts = BatchOptions {
            workers: Some(2),
            deadline: Some(Duration::from_millis(60)),
            ..BatchOptions::default()
        };
        let jobs = vec![
            BatchJob::new(Box::new(SleepyApp), cluster_a()),
            BatchJob::new(
                pas2p_apps::by_name("cg", 8).expect("catalog app"),
                cluster_a(),
            ),
        ];
        let report = run_batch_with(&pas2p, jobs, opts);
        assert_eq!(report.results[0].status, BatchStatus::TimedOut);
        assert!(report.results[0].analysis.is_none());
        // A fast job under the same deadline completes normally.
        assert_eq!(report.results[1].status, BatchStatus::Ok);
    }

    #[test]
    fn retry_backoff_saturates_instead_of_panicking() {
        // The documented schedule below the caps is unchanged.
        let base = Duration::from_millis(50);
        assert_eq!(retry_backoff_delay(base, 1), Duration::from_millis(50));
        assert_eq!(retry_backoff_delay(base, 2), Duration::from_millis(100));
        assert_eq!(retry_backoff_delay(base, 5), Duration::from_millis(800));
        // The exponent stops doubling at 2^16 for any retry count.
        assert_eq!(retry_backoff_delay(base, 17), base * 65536);
        assert_eq!(retry_backoff_delay(base, 1000), base * 65536);
        // Degenerate retry number 0 behaves like the first retry.
        assert_eq!(retry_backoff_delay(base, 0), base);
        // A large base × a capped factor used to overflow `Duration *
        // u32` and panic inside the retry loop; now it saturates.
        let huge = Duration::from_secs(u64::MAX / 1000);
        assert_eq!(retry_backoff_delay(huge, 40), Duration::MAX);
        assert_eq!(retry_backoff_delay(Duration::MAX, 2), Duration::MAX);
    }

    #[test]
    fn cancelled_attempt_loop_stops_before_retrying() {
        let pas2p = Pas2p::default();
        let opts = BatchOptions {
            max_retries: 50,
            retry_backoff: Duration::from_millis(1),
            ..BatchOptions::default()
        };
        let job = BatchJob::new(Box::new(PanickingApp), cluster_a());
        let token = crate::cancel::CancelToken::new();
        token.cancel();
        // Under a cancelled token the loop gives up after the in-flight
        // attempt instead of burning through all 50 retries.
        let outcome = crate::cancel::with_cancel(&token, || attempt_loop(&pas2p, &job, &opts));
        assert_eq!(outcome.attempts, 1);
        assert!(outcome.result.is_err());
    }

    #[test]
    fn cancelled_pipeline_unwinds_at_the_next_stage_boundary() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let pas2p = Pas2p::default();
        let app = pas2p_apps::by_name("cg", 8).expect("catalog app");
        let token = crate::cancel::CancelToken::new();
        token.cancel();
        let result = catch_unwind(AssertUnwindSafe(|| {
            crate::cancel::with_cancel(&token, || {
                pas2p.analyze(app.as_ref(), &cluster_a(), MappingPolicy::Block)
            })
        }));
        let payload = result.expect_err("cancelled analysis must unwind");
        assert_eq!(
            payload.downcast_ref::<&str>(),
            Some(&crate::cancel::CANCELLED)
        );
    }

    #[test]
    fn fault_job_reports_ingest_and_degrades() {
        let pas2p = Pas2p::default();
        let plan = FaultPlan::new(7).with(pas2p_faults::FaultKind::DropRank { rank: 1 });
        let jobs = vec![BatchJob::new(
            pas2p_apps::by_name("cg", 8).expect("catalog app"),
            cluster_a(),
        )
        .with_fault(plan)];
        let report = run_batch(&pas2p, jobs, Some(1));
        let r = &report.results[0];
        assert!(
            matches!(r.status, BatchStatus::Degraded | BatchStatus::Failed),
            "fault job must be classified, got {:?}",
            r.status
        );
        let ingest = r
            .ingest
            .as_ref()
            .expect("fault jobs carry an ingest report");
        assert!(ingest.is_degraded());
    }
}
