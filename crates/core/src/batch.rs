//! Batch analysis: run many app×workload analyses over a bounded worker
//! pool.
//!
//! The driver exists for the paper's experimental sweeps (Tables 5–9):
//! one Stage-A analysis per application/workload pair, all independent of
//! each other. Jobs are claimed from a shared cursor by scoped worker
//! threads and every result is written back into the slot of its
//! submission index, so the report order — and, because each analysis is
//! itself deterministic, the report content — is identical for any worker
//! count and any claiming order.

use crate::pipeline::{Analysis, Pas2p};
use pas2p_machine::{MachineModel, MappingPolicy};
use pas2p_signature::MpiApp;
use parking_lot::Mutex;
use serde::Serialize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One unit of batch work: analyze `app` on `base` under `policy`.
pub struct BatchJob {
    /// The application under study.
    pub app: Box<dyn MpiApp>,
    /// The base machine the analysis runs on.
    pub base: MachineModel,
    /// Process-to-node mapping policy.
    pub policy: MappingPolicy,
}

impl BatchJob {
    /// A job with the default block mapping.
    pub fn new(app: Box<dyn MpiApp>, base: MachineModel) -> BatchJob {
        BatchJob {
            app,
            base,
            policy: MappingPolicy::Block,
        }
    }
}

/// One job's outcome, in submission order.
#[derive(Debug, Clone, Serialize)]
pub struct BatchResult {
    /// Submission index of the job this result belongs to.
    pub index: usize,
    /// The full Stage-A analysis.
    pub analysis: Analysis,
    /// Host wall-clock seconds this job took on its worker.
    pub job_seconds: f64,
}

/// The batch driver's output: every job's result plus run-level stats.
#[derive(Debug, Clone, Serialize)]
pub struct BatchReport {
    /// Per-job results, in submission order regardless of worker count.
    pub results: Vec<BatchResult>,
    /// Worker threads the batch ran with.
    pub workers: usize,
    /// Host wall-clock seconds for the whole batch.
    pub wall_seconds: f64,
}

impl BatchReport {
    /// One summary line per job (Table 8 columns: events, phases, TFAT).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.results {
            let a = &r.analysis;
            out.push_str(&format!(
                "{:<12} {:>3}p {:>8} events {:>4} phases ({:>3} relevant) \
                 TFAT {:.3}s AET {:.3}s\n",
                a.app_name,
                a.nprocs,
                a.trace_events,
                a.total_phases(),
                a.relevant_phases(),
                a.tfat_seconds,
                a.aet_instrumented,
            ));
        }
        out.push_str(&format!(
            "{} job(s) on {} worker(s), {:.3}s wall\n",
            self.results.len(),
            self.workers,
            self.wall_seconds
        ));
        out
    }
}

/// Resolve the worker count: an explicit request is clamped to the job
/// count; `None` means one worker per available core (again clamped).
pub fn batch_workers(requested: Option<usize>, jobs: usize) -> usize {
    requested
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
        .clamp(1, jobs.max(1))
}

/// Analyze every job over a pool of `workers` scoped threads.
///
/// Workers claim jobs through a shared atomic cursor — no job is run
/// twice, no job is skipped — and deposit results into the slot of the
/// job's submission index. The analyses themselves are deterministic, so
/// the returned report is independent of the worker count and of which
/// worker happened to claim which job.
pub fn run_batch(pas2p: &Pas2p, jobs: Vec<BatchJob>, workers: Option<usize>) -> BatchReport {
    let workers = batch_workers(workers, jobs.len());
    let mut st = pas2p_obs::stage("batch");
    st.items(jobs.len() as u64);
    if pas2p_obs::enabled() {
        pas2p_obs::counter("batch.jobs").add(jobs.len() as u64);
        pas2p_obs::gauge("pipeline.par.workers").set(workers as f64);
    }

    let cursor = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<BatchResult>>> = Mutex::new((0..jobs.len()).map(|_| None).collect());
    let jobs = &jobs;
    let run_one = |index: usize| {
        let job = &jobs[index];
        let mut st = pas2p_obs::stage("batch.job");
        let started = std::time::Instant::now();
        let analysis = pas2p.analyze(job.app.as_ref(), &job.base, job.policy.clone());
        st.items(analysis.trace_events as u64);
        st.finish();
        BatchResult {
            index,
            analysis,
            job_seconds: started.elapsed().as_secs_f64(),
        }
    };

    if workers > 1 {
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= jobs.len() {
                        break;
                    }
                    let result = run_one(index);
                    slots.lock()[index] = Some(result);
                });
            }
        });
    } else {
        for index in 0..jobs.len() {
            let result = run_one(index);
            slots.lock()[index] = Some(result);
        }
    }

    let results: Vec<BatchResult> = slots
        .into_inner()
        .into_iter()
        .map(|r| r.expect("every claimed job deposits a result"))
        .collect();
    let wall_seconds = st.finish();
    BatchReport {
        results,
        workers,
        wall_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas2p_machine::cluster_a;

    fn jobs_of(names: &[&str]) -> Vec<BatchJob> {
        names
            .iter()
            .map(|n| {
                BatchJob::new(
                    pas2p_apps::by_name(n, 8).expect("catalog app"),
                    cluster_a(),
                )
            })
            .collect()
    }

    /// The determinism surface of one result: everything except host
    /// timing and the metrics snapshot.
    fn key(r: &BatchResult) -> (usize, String, usize, usize, usize) {
        (
            r.index,
            r.analysis.app_name.clone(),
            r.analysis.trace_events,
            r.analysis.total_phases(),
            r.analysis.relevant_phases(),
        )
    }

    #[test]
    fn batch_results_are_worker_count_invariant() {
        let pas2p = Pas2p::default();
        let names = ["cg", "moldy", "masterworker", "ft"];
        let baseline = run_batch(&pas2p, jobs_of(&names), Some(1));
        assert_eq!(baseline.results.len(), names.len());
        for (i, r) in baseline.results.iter().enumerate() {
            assert_eq!(r.index, i, "results must be in submission order");
            assert_eq!(r.analysis.app_name.to_lowercase(), names[i]);
        }
        for workers in [2, 3, 8] {
            let par = run_batch(&pas2p, jobs_of(&names), Some(workers));
            assert_eq!(par.workers, workers.min(names.len()));
            let a: Vec<_> = baseline.results.iter().map(key).collect();
            let b: Vec<_> = par.results.iter().map(key).collect();
            assert_eq!(a, b, "worker count {workers} changed the batch output");
        }
    }

    #[test]
    fn batch_results_are_submission_order_invariant() {
        let pas2p = Pas2p::default();
        let forward = run_batch(&pas2p, jobs_of(&["cg", "moldy"]), Some(2));
        let reverse = run_batch(&pas2p, jobs_of(&["moldy", "cg"]), Some(2));
        // Same jobs, opposite submission order: each result follows its
        // job, so the reports are mirror images of each other.
        let body = |r: &BatchResult| {
            let k = key(r);
            (k.1, k.2, k.3, k.4)
        };
        assert_eq!(body(&forward.results[0]), body(&reverse.results[1]));
        assert_eq!(body(&forward.results[1]), body(&reverse.results[0]));
    }

    #[test]
    fn batch_workers_clamps() {
        assert_eq!(batch_workers(Some(16), 4), 4);
        assert_eq!(batch_workers(Some(0), 4), 1);
        assert_eq!(batch_workers(Some(2), 0), 1);
        assert!(batch_workers(None, 100) >= 1);
    }

    #[test]
    fn empty_batch_is_fine() {
        let report = run_batch(&Pas2p::default(), Vec::new(), None);
        assert!(report.results.is_empty());
        assert_eq!(report.workers, 1);
        assert!(report.render().contains("0 job(s)"));
    }
}
