//! Dimemas-like trace replay (related work \[14\]).
//!
//! The recorded physical trace of a base-machine run is replayed against
//! a target machine model: per-process compute segments are rescaled by
//! the ratio of the two machines' compute rates, point-to-point messages
//! are re-timed with the target's latency/bandwidth through the message
//! *relation*, and collectives are re-costed with the target's collective
//! model. The result is a predicted makespan without executing anything
//! on the target.
//!
//! The structural weakness (and the paper's argument for signatures): the
//! compute rescale factor must be assumed. A replay cannot know each
//! segment's flop/byte mix, so it applies one global factor — biased
//! whenever base and target differ in their balance of compute and
//! memory bandwidth. The signature sidesteps this by running the real
//! code.

use pas2p_machine::{CollectiveKind, MachineModel, Mapping, MappingPolicy, Work};
use pas2p_trace::{CollClass, EventKind, Trace};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Outcome of a trace replay.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplayPrediction {
    /// Predicted application execution time on the target, seconds.
    pub pet: f64,
    /// The global compute rescale factor applied (target seconds per base
    /// second of computation).
    pub compute_scale: f64,
    /// Events replayed.
    pub events: usize,
    /// Host seconds the replay took.
    pub wall_seconds: f64,
}

/// The flop/byte mixture assumed when deriving the global compute-scale
/// factor: a generic HPC kernel at ~0.25 flop per byte of memory traffic.
fn canonical_work() -> Work {
    Work::new(1.0e9, 4.0e9)
}

/// Compute-rescale factor between two machines for the canonical mixture.
pub fn compute_scale(base: &MachineModel, target: &MachineModel) -> f64 {
    let w = canonical_work();
    target.compute.time(w) / base.compute.time(w)
}

/// Replay `trace` (recorded on `base`) against `target` under `policy`.
pub fn predict_by_replay(
    trace: &Trace,
    base: &MachineModel,
    target: &MachineModel,
    policy: MappingPolicy,
) -> ReplayPrediction {
    let started = std::time::Instant::now();
    let n = trace.nprocs as usize;
    let mapping: Mapping = target.map(trace.nprocs, policy);
    let scale = compute_scale(base, target);

    // Per-process replay cursors.
    let mut clock = vec![0.0f64; n];
    let mut next_event = vec![0usize; n];
    // Send completions by relation id: msg_id → departure time on target.
    let mut departures: HashMap<u64, f64> = HashMap::new();
    // Collective staging: comm_id → (arrived members, max clock, bytes).
    #[derive(Default)]
    struct CollRound {
        arrived: Vec<usize>,
        max_clock: f64,
        bytes: u64,
        kind: Option<CollClass>,
    }
    let mut colls: HashMap<u64, CollRound> = HashMap::new();

    let total_events = trace.total_events();
    let mut replayed = 0usize;
    // Deadlock-free scheduling: repeatedly advance any process whose next
    // event is ready (sends always are; receives need their departure;
    // collectives need all members).
    while replayed < total_events {
        let mut progressed = false;
        for p in 0..n {
            loop {
                let i = next_event[p];
                let events = &trace.procs[p].events;
                if i >= events.len() {
                    break;
                }
                let e = &events[i];
                // Compute segment preceding the event, rescaled.
                let compute = trace.procs[p].compute_before(i) * scale;
                match e.kind {
                    EventKind::Send => {
                        clock[p] += compute;
                        let overhead = target.network.per_msg_overhead;
                        clock[p] += overhead;
                        departures.insert(e.msg_id, clock[p]);
                    }
                    EventKind::Recv => {
                        let Some(&depart) = departures.get(&e.msg_id) else {
                            break; // sender not replayed yet
                        };
                        clock[p] += compute;
                        let src = e.peer.unwrap_or(p as u32);
                        let wire = target.p2p_cost(&mapping, src, p as u32, e.size);
                        clock[p] = clock[p].max(depart + wire);
                    }
                    EventKind::Coll(class) => {
                        let round = colls.entry(e.comm_id).or_default();
                        if round.arrived.contains(&p) {
                            // Already registered in this round; still
                            // blocked until the last member arrives.
                            break;
                        }
                        clock[p] += compute;
                        round.arrived.push(p);
                        round.max_clock = round.max_clock.max(clock[p]);
                        round.bytes = round.bytes.max(e.size);
                        round.kind = Some(class);
                        if round.arrived.len() == e.involved as usize {
                            let round = colls.remove(&e.comm_id).unwrap();
                            let kind = match round.kind.unwrap() {
                                CollClass::Barrier => CollectiveKind::Barrier,
                                CollClass::Bcast => CollectiveKind::Bcast,
                                CollClass::Reduce => CollectiveKind::Reduce,
                                CollClass::Allreduce => CollectiveKind::Allreduce,
                                CollClass::Allgather => CollectiveKind::Allgather,
                                CollClass::Alltoall => CollectiveKind::Alltoall,
                                CollClass::Gather => CollectiveKind::Gather,
                                CollClass::Scatter => CollectiveKind::Scatter,
                            };
                            let members: Vec<u32> =
                                round.arrived.iter().map(|&q| q as u32).collect();
                            let cost =
                                target.collective_cost(&mapping, kind, &members, round.bytes);
                            let out = round.max_clock + cost;
                            for &q in &round.arrived {
                                clock[q] = out;
                                next_event[q] += 1;
                                replayed += 1;
                            }
                            progressed = true;
                            continue; // p's cursor already advanced
                        } else {
                            // Blocked until the round completes; the cursor
                            // advances when the last member arrives.
                            break;
                        }
                    }
                }
                next_event[p] += 1;
                replayed += 1;
                progressed = true;
            }
        }
        assert!(
            progressed,
            "replay deadlocked: inconsistent trace (unmatched receive or split collective)"
        );
    }

    ReplayPrediction {
        pet: clock.iter().cloned().fold(0.0, f64::max),
        compute_scale: scale,
        events: replayed,
        wall_seconds: started.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas2p_machine::{cluster_a, cluster_b, cluster_c, JitterModel};
    use pas2p_signature::{run_plain, run_traced, MpiApp};
    use pas2p_trace::InstrumentationModel;

    fn quiet(mut m: MachineModel) -> MachineModel {
        m.jitter = JitterModel::none();
        m
    }

    fn ring_app() -> impl MpiApp {
        struct A;
        struct R {
            rank: u32,
            n: u32,
        }
        impl MpiApp for A {
            fn name(&self) -> String {
                "replay-ring".into()
            }
            fn nprocs(&self) -> u32 {
                8
            }
            fn make_rank(&self, rank: u32) -> Box<dyn pas2p_signature::RankProgram> {
                Box::new(R { rank, n: 8 })
            }
        }
        impl pas2p_signature::RankProgram for R {
            fn prologue(&mut self, ctx: &mut dyn pas2p_mpisim::Mpi) {
                ctx.barrier();
            }
            fn steps(&self) -> u64 {
                20
            }
            fn step(&mut self, _s: u64, ctx: &mut dyn pas2p_mpisim::Mpi) {
                ctx.compute(Work::new(2e7, 8e7));
                let next = (self.rank + 1) % self.n;
                let prev = (self.rank + self.n - 1) % self.n;
                ctx.send(next, 1, &[0u8; 4096]);
                ctx.recv(Some(prev), Some(1));
                ctx.allreduce_f64(&[1.0], pas2p_mpisim::ReduceOp::Sum);
            }
            fn epilogue(&mut self, ctx: &mut dyn pas2p_mpisim::Mpi) {
                ctx.barrier();
            }
            fn snapshot(&self) -> Vec<u8> {
                Vec::new()
            }
            fn restore(&mut self, _b: &[u8]) {}
        }
        A
    }

    #[test]
    fn replay_on_same_machine_reproduces_aet() {
        let base = quiet(cluster_a());
        let app = ring_app();
        let (trace, report) = run_traced(
            &app,
            &base,
            MappingPolicy::Block,
            InstrumentationModel::free(),
        );
        let replay = predict_by_replay(&trace, &base, &base, MappingPolicy::Block);
        let err = (replay.pet - report.makespan).abs() / report.makespan;
        assert!(
            err < 0.02,
            "replay {} vs AET {}",
            replay.pet,
            report.makespan
        );
        assert!((replay.compute_scale - 1.0).abs() < 1e-12);
    }

    #[test]
    fn replay_tracks_cross_machine_direction() {
        // Replay from A to B must move the prediction toward B's real AET.
        let base = quiet(cluster_a());
        let target = quiet(cluster_b());
        let app = ring_app();
        let (trace, _) = run_traced(
            &app,
            &base,
            MappingPolicy::Block,
            InstrumentationModel::free(),
        );
        let aet_target = run_plain(&app, &target, MappingPolicy::Block).makespan;
        let replay = predict_by_replay(&trace, &base, &target, MappingPolicy::Block);
        let err = (replay.pet - aet_target).abs() / aet_target;
        assert!(
            err < 0.25,
            "replay {} vs target AET {}",
            replay.pet,
            aet_target
        );
    }

    #[test]
    fn replay_bias_appears_when_machine_balance_differs() {
        // Cluster C's flop/byte balance differs sharply from A's; the
        // single global scale factor cannot be right for every kernel,
        // which is PAS2P's core argument. Here the kernel is memory-heavy
        // (1:4 flops:bytes like the canonical mixture), so the bias stays
        // moderate, but the factor itself must differ from the pure-flops
        // ratio.
        let base = quiet(cluster_a());
        let target = quiet(cluster_c());
        let flops_ratio = base.compute.flops_per_sec / target.compute.flops_per_sec;
        let scale = compute_scale(&base, &target);
        assert!((scale - flops_ratio).abs() > 0.05);
    }

    #[test]
    fn replay_counts_every_event() {
        let base = quiet(cluster_a());
        let app = ring_app();
        let (trace, _) = run_traced(
            &app,
            &base,
            MappingPolicy::Block,
            InstrumentationModel::free(),
        );
        let replay = predict_by_replay(&trace, &base, &base, MappingPolicy::Block);
        assert_eq!(replay.events, trace.total_events());
    }
}
