//! Comparator baselines from the paper's related work (§2).
//!
//! PAS2P's claim is not merely that prediction is possible but that
//! executing *real application slices* beats the alternatives. Two of
//! the related-work approaches are implemented here so the benches can
//! compare them head-to-head:
//!
//! * [`replay`] — a Dimemas-like trace-replay simulator (Girona et al.
//!   \[14\]): replays the full communication trace against the target
//!   machine model, rescaling compute segments. Needs no target-machine
//!   execution but also never runs real code — "when we execute it on
//!   different parallel computers, real memory access patterns and the
//!   real computational resource requirements are used" is exactly what
//!   it lacks.
//! * [`partial`] — partial execution (Yang et al. \[17\]): run the first
//!   few timesteps on the target and extrapolate linearly. Cheap, but
//!   "our signature intends to analyze the entire execution to provide
//!   better prediction quality" — rare phases (neighbour-list rebuilds,
//!   I/O bursts) outside the observed prefix are invisible to it.

pub mod partial;
pub mod replay;

pub use partial::{predict_by_partial_execution, PartialPrediction};
pub use replay::{predict_by_replay, ReplayPrediction};
