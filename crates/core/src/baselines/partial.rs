//! Partial-execution prediction (related work \[17\], Yang et al.).
//!
//! "They argued that it is enough to observe partial executions of a
//! parallel application because codes are iterative and behave
//! predictably after an algorithm initialization period." The predictor
//! runs the application's prologue plus the first `observe_steps`
//! timesteps on the target, measures the steady per-step time, and
//! extrapolates linearly over the remaining steps.
//!
//! Its blind spot — the paper's argument for analyzing the *entire*
//! execution — is any behaviour outside the observed prefix: periodic
//! neighbour-list rebuilds, solver regime switches, epilogues. The
//! `baseline_comparison` bench shows this directly on Moldy.

use parking_lot::Mutex;
use pas2p_machine::{MachineModel, MappingPolicy};
use pas2p_mpisim::{run_app, Mpi, SimConfig};
use pas2p_signature::MpiApp;
use serde::{Deserialize, Serialize};

/// Outcome of a partial execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PartialPrediction {
    /// Predicted application execution time, seconds.
    pub pet: f64,
    /// Timesteps actually executed on the target.
    pub observed_steps: u64,
    /// Total timesteps of the application.
    pub total_steps: u64,
    /// Time spent in the observation run (the method's "SET" analog).
    pub observation_time: f64,
}

/// Run the prologue + the first `observe_steps` steps (after discarding
/// `skip_steps` as initialization, per the method) and extrapolate.
pub fn predict_by_partial_execution(
    app: &dyn MpiApp,
    target: &MachineModel,
    policy: MappingPolicy,
    skip_steps: u64,
    observe_steps: u64,
) -> PartialPrediction {
    assert!(observe_steps > 0);
    let n = app.nprocs();
    // Per-rank clocks at the skip boundary and at the observation end.
    let marks: Mutex<Vec<(f64, f64, f64)>> = Mutex::new(vec![(0.0, 0.0, 0.0); n as usize]);
    let total_steps = app.make_rank(0).steps();
    let observed = observe_steps
        .min(total_steps.saturating_sub(skip_steps))
        .max(1);

    let cfg = SimConfig::new(target.clone(), n, policy);
    run_app(&cfg, |ctx| {
        let rank = ctx.rank();
        let mut prog = app.make_rank(rank);
        prog.prologue(ctx);
        let prologue_t = ctx.now();
        for s in 0..skip_steps.min(total_steps) {
            prog.step(s, ctx);
        }
        let skip_t = ctx.now();
        for s in skip_steps..(skip_steps + observed).min(total_steps) {
            prog.step(s, ctx);
        }
        let end_t = ctx.now();
        marks.lock()[rank as usize] = (prologue_t, skip_t, end_t);
    });

    let marks = marks.into_inner();
    let prologue = marks.iter().map(|m| m.0).fold(0.0f64, f64::max);
    let skip_end = marks.iter().map(|m| m.1).fold(0.0f64, f64::max);
    let observe_end = marks.iter().map(|m| m.2).fold(0.0f64, f64::max);
    let per_step = (observe_end - skip_end) / observed as f64;

    PartialPrediction {
        pet: prologue + per_step * total_steps as f64,
        observed_steps: observed,
        total_steps,
        observation_time: observe_end,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas2p_machine::{cluster_a, JitterModel, Work};
    use pas2p_mpisim::ReduceOp;
    use pas2p_signature::{run_plain, RankProgram};

    fn quiet() -> MachineModel {
        let mut m = cluster_a();
        m.jitter = JitterModel::none();
        m
    }

    /// Perfectly uniform iterative app: partial execution is exact.
    struct Uniform {
        steps: u64,
    }
    struct UniformRank {
        rank: u32,
        steps: u64,
    }
    impl MpiApp for Uniform {
        fn name(&self) -> String {
            "uniform".into()
        }
        fn nprocs(&self) -> u32 {
            4
        }
        fn make_rank(&self, rank: u32) -> Box<dyn RankProgram> {
            Box::new(UniformRank {
                rank,
                steps: self.steps,
            })
        }
    }
    impl RankProgram for UniformRank {
        fn prologue(&mut self, ctx: &mut dyn Mpi) {
            ctx.barrier();
        }
        fn steps(&self) -> u64 {
            self.steps
        }
        fn step(&mut self, _s: u64, ctx: &mut dyn Mpi) {
            ctx.compute(Work::flops(2e7));
            let next = (self.rank + 1) % 4;
            let prev = (self.rank + 3) % 4;
            ctx.send(next, 0, &[0u8; 512]);
            ctx.recv(Some(prev), Some(0));
            ctx.allreduce_f64(&[1.0], ReduceOp::Sum);
        }
        fn epilogue(&mut self, _ctx: &mut dyn Mpi) {}
        fn snapshot(&self) -> Vec<u8> {
            Vec::new()
        }
        fn restore(&mut self, _b: &[u8]) {}
    }

    /// An app with a heavy burst every 10 steps — invisible to a short
    /// observation window.
    struct Bursty {
        steps: u64,
    }
    struct BurstyRank {
        inner: UniformRank,
    }
    impl MpiApp for Bursty {
        fn name(&self) -> String {
            "bursty".into()
        }
        fn nprocs(&self) -> u32 {
            4
        }
        fn make_rank(&self, rank: u32) -> Box<dyn RankProgram> {
            Box::new(BurstyRank {
                inner: UniformRank {
                    rank,
                    steps: self.steps,
                },
            })
        }
    }
    impl RankProgram for BurstyRank {
        fn prologue(&mut self, ctx: &mut dyn Mpi) {
            self.inner.prologue(ctx);
        }
        fn steps(&self) -> u64 {
            self.inner.steps
        }
        fn step(&mut self, s: u64, ctx: &mut dyn Mpi) {
            self.inner.step(s, ctx);
            if (s + 1).is_multiple_of(10) {
                ctx.compute(Work::flops(4e8)); // 20x a normal step
            }
        }
        fn epilogue(&mut self, ctx: &mut dyn Mpi) {
            self.inner.epilogue(ctx);
        }
        fn snapshot(&self) -> Vec<u8> {
            Vec::new()
        }
        fn restore(&mut self, _b: &[u8]) {}
    }

    #[test]
    fn partial_execution_is_exact_for_uniform_apps() {
        let m = quiet();
        let app = Uniform { steps: 50 };
        let aet = run_plain(&app, &m, MappingPolicy::Block).makespan;
        let p = predict_by_partial_execution(&app, &m, MappingPolicy::Block, 2, 5);
        let err = (p.pet - aet).abs() / aet;
        assert!(
            err < 0.03,
            "pet {} vs aet {} ({:.1}%)",
            p.pet,
            aet,
            err * 100.0
        );
        assert!(p.observation_time < aet);
        assert_eq!(p.total_steps, 50);
    }

    #[test]
    fn partial_execution_misses_periodic_bursts() {
        // Observing 5 steps misses the every-10-step burst entirely: the
        // prediction must underestimate badly — the PAS2P argument.
        let m = quiet();
        let app = Bursty { steps: 50 };
        let aet = run_plain(&app, &m, MappingPolicy::Block).makespan;
        let p = predict_by_partial_execution(&app, &m, MappingPolicy::Block, 2, 5);
        assert!(
            p.pet < 0.75 * aet,
            "short observation should miss the bursts: pet {} vs aet {}",
            p.pet,
            aet
        );
    }

    #[test]
    fn observation_clamps_to_available_steps() {
        let m = quiet();
        let app = Uniform { steps: 4 };
        let p = predict_by_partial_execution(&app, &m, MappingPolicy::Block, 2, 100);
        assert_eq!(p.observed_steps, 2);
    }
}
