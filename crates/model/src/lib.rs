//! The parallel application model (paper §3.2).
//!
//! Physical per-process traces carry local clocks; to reason about the
//! application as a whole PAS2P moves to a single logical global clock.
//! Plain Lamport ordering leaves receive events nondeterministic — message
//! receptions reorder run to run with network delays, which degraded the
//! prediction quality as process counts grew. The PAS2P ordering fixes
//! this: **when a process sends a message at logical time `LT`, its
//! reception is modeled to arrive at `LT + 1` and never afterwards**
//! (Fig 3). Collective communications take the largest participant `LT`
//! and assign `LT + 1` to every member's event.
//!
//! The pipeline is:
//!
//! 1. [`ordering::pas2p_order`] — the queue-based assignment algorithm
//!    (the paper's Table 1 walkthrough; [`ordering::pas2p_order_logged`]
//!    also returns the dequeue log so the walkthrough can be reproduced).
//! 2. Receive permutation — within each process the multiset of receive
//!    LTs is reassigned in ascending program order (Fig 4 → Fig 5).
//! 3. Tick splitting — ticks holding more than one event of the same
//!    process are split so each (process, tick) holds at most one event
//!    (Fig 5), yielding the final [`LogicalTrace`].
//!
//! A plain Lamport baseline ([`lamport::lamport_order`]) is provided for
//! the ablation study motivating the PAS2P ordering.

#![forbid(unsafe_code)]

pub mod lamport;
pub mod logical;
pub mod ordering;

pub use lamport::lamport_order;
pub use logical::{LogicalEvent, LogicalTrace, Tick};
pub use ordering::{
    pas2p_order, pas2p_order_logged, try_pas2p_order, try_pas2p_order_logged, ModelError,
};
