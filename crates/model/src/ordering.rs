//! The queue-based logical-time assignment algorithm (paper §3.2,
//! Table 1, Appendix A).
//!
//! Events are processed through a FIFO queue primed with the first event
//! of every process; dequeuing an event assigns its logical time (LT) and
//! inserts the next event of that process. The assignment rules are:
//!
//! * **Send** — next free LT of its process; the paired Receive is
//!   immediately pre-assigned `LT + 1` ("and never afterwards", Fig 3).
//! * **Receive** — takes its pre-assigned LT. If its Send has not been
//!   processed yet the event is deferred to the back of the queue (the
//!   real execution guarantees progress, so deferral always terminates).
//! * **Collective** — participants buffer until all `K` involved processes
//!   arrive; then every member's event gets `max(member LTs) + 1` and the
//!   members resume.
//!
//! Afterwards, receive LTs are permuted into ascending program order per
//! process and ticks are split so each (process, tick) holds at most one
//! event, producing the final [`LogicalTrace`].

use crate::logical::{assemble, LogicalEvent, LogicalTrace};
use pas2p_trace::{EventKind, ProcessTrace, Trace, TraceEvent};
use std::collections::{HashMap, VecDeque};

/// Traces below this many events stay single-threaded in the per-rank
/// prep: thread spawns cost more than the rank loops.
const PAR_MIN_EVENTS: usize = 4096;

/// Workers for the per-rank prep: one per available core for large
/// traces, 1 (sequential) below [`PAR_MIN_EVENTS`].
fn par_workers(total_events: usize) -> usize {
    if total_events < PAR_MIN_EVENTS {
        return 1;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Which logical-clock rule the engine applies to receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Rule {
    /// The paper's ordering: receive fixed at `send LT + 1`.
    Pas2p,
    /// Classic Lamport happened-before: receive at
    /// `max(local next, send LT + 1)`.
    Lamport,
}

/// Structural defects that make a trace impossible to order. These are
/// the conditions the panicking entry points abort on; the `try_` family
/// surfaces them as values so callers (notably `pas2p-check`) can report
/// instead of crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A collective never completed: some member's event stream ran out
    /// before all `involved` processes arrived at the communicator.
    CollectiveIncomplete {
        /// Communicator whose collective is stuck.
        comm_id: u64,
        /// How many members had arrived when the queue drained.
        arrived: u32,
        /// How many the collective requires.
        involved: u32,
    },
    /// An event was never assigned a logical time (the queue drained
    /// around it — only possible for events stranded behind an incomplete
    /// collective).
    Unordered {
        /// Process owning the stranded event.
        process: u32,
        /// Its per-process event number.
        number: u64,
    },
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::CollectiveIncomplete {
                comm_id,
                arrived,
                involved,
            } => write!(
                f,
                "collective on communicator {} never completed: {} of {} members arrived",
                comm_id, arrived, involved
            ),
            ModelError::Unordered { process, number } => write!(
                f,
                "event {} of process {} was never assigned a logical time",
                number, process
            ),
        }
    }
}

impl std::error::Error for ModelError {}

/// Apply the PAS2P ordering to a physical trace.
///
/// Panics on a structurally broken trace; use [`try_pas2p_order`] when
/// the input is untrusted.
pub fn pas2p_order(trace: &Trace) -> LogicalTrace {
    pas2p_order_logged(trace).0
}

/// Fallible form of [`pas2p_order`].
pub fn try_pas2p_order(trace: &Trace) -> Result<LogicalTrace, ModelError> {
    try_pas2p_order_logged(trace).map(|(l, _)| l)
}

/// Apply the PAS2P ordering, also returning the dequeue log as
/// `(process, event number)` pairs — the first column of the paper's
/// Table 1.
///
/// Panics on a structurally broken trace; use [`try_pas2p_order_logged`]
/// when the input is untrusted.
pub fn pas2p_order_logged(trace: &Trace) -> (LogicalTrace, Vec<(u32, u64)>) {
    order_with_rule(trace, Rule::Pas2p)
}

/// Fallible form of [`pas2p_order_logged`].
pub fn try_pas2p_order_logged(
    trace: &Trace,
) -> Result<(LogicalTrace, Vec<(u32, u64)>), ModelError> {
    try_order_with_rule(trace, Rule::Pas2p)
}

pub(crate) fn order_with_rule(trace: &Trace, rule: Rule) -> (LogicalTrace, Vec<(u32, u64)>) {
    try_order_with_rule(trace, rule).unwrap_or_else(|e| panic!("{}", e))
}

pub(crate) fn try_order_with_rule(
    trace: &Trace,
    rule: Rule,
) -> Result<(LogicalTrace, Vec<(u32, u64)>), ModelError> {
    try_order_with_rule_workers(trace, rule, par_workers(trace.total_events()))
}

pub(crate) fn try_order_with_rule_workers(
    trace: &Trace,
    rule: Rule,
    workers: usize,
) -> Result<(LogicalTrace, Vec<(u32, u64)>), ModelError> {
    let nprocs = trace.nprocs;
    let n = nprocs as usize;
    let workers = workers.max(1).min(n.max(1));

    // Per-event assigned LTs, indexed [process][event index].
    let mut lt: Vec<Vec<Option<u64>>> = trace
        .procs
        .iter()
        .map(|p| vec![None; p.events.len()])
        .collect();
    // Next free logical time per process.
    let mut proc_next: Vec<u64> = vec![0; n];
    // Where each message's receive lives: msg_id → (process, index).
    let recv_index = build_recv_index(trace, workers);

    // The processing queue: (process, event index).
    let mut queue: VecDeque<(usize, usize)> = VecDeque::new();
    for p in 0..n {
        if !trace.procs[p].events.is_empty() {
            queue.push_back((p, 0));
        }
    }
    // Collective staging: comm_id → buffered (process, index) pairs.
    let mut coll_pending: HashMap<u64, Vec<(usize, usize)>> = HashMap::new();
    let mut log: Vec<(u32, u64)> = Vec::new();
    // Consecutive deferrals; if the whole queue cycles without progress the
    // trace is malformed (an unmatched receive) and we fall back to local
    // time so analysis can continue.
    let mut stall = 0usize;
    let mut deferred: u64 = 0;
    let mut unmatched: u64 = 0;

    while let Some((p, i)) = queue.pop_front() {
        let e = &trace.procs[p].events[i];
        match e.kind {
            EventKind::Send => {
                let t = proc_next[p];
                lt[p][i] = Some(t);
                proc_next[p] = t + 1;
                if rule == Rule::Pas2p {
                    if let Some(&(q, j)) = recv_index.get(&e.msg_id) {
                        // "Its reception is modeled to arrive at LT + 1 and
                        // never afterwards."
                        lt[q][j] = Some(t + 1);
                    }
                }
                log.push((p as u32, i as u64));
                push_next(&mut queue, trace, p, i);
                stall = 0;
            }
            EventKind::Recv => {
                let assigned = match rule {
                    Rule::Pas2p => lt[p][i],
                    Rule::Lamport => {
                        // Need the send's LT; resolve through the relation.
                        send_lt_of(trace, &lt, e).map(|s| s + 1)
                    }
                };
                match assigned {
                    Some(t) => {
                        let t = match rule {
                            Rule::Pas2p => t,
                            Rule::Lamport => t.max(proc_next[p]),
                        };
                        lt[p][i] = Some(t);
                        proc_next[p] = proc_next[p].max(t + 1);
                        log.push((p as u32, i as u64));
                        push_next(&mut queue, trace, p, i);
                        stall = 0;
                    }
                    None if stall <= queue.len() => {
                        // Send not processed yet: defer.
                        queue.push_back((p, i));
                        stall += 1;
                        deferred += 1;
                    }
                    None => {
                        // Unmatched receive (malformed trace): local time.
                        unmatched += 1;
                        let t = proc_next[p];
                        lt[p][i] = Some(t);
                        proc_next[p] = t + 1;
                        log.push((p as u32, i as u64));
                        push_next(&mut queue, trace, p, i);
                        stall = 0;
                    }
                }
            }
            EventKind::Coll(_) => {
                let members = coll_pending.entry(e.comm_id).or_default();
                members.push((p, i));
                if members.len() == e.involved as usize {
                    // "Select from all processes the event with the biggest
                    // LT and assign LT + 1 to the events that compose the
                    // collective communication."
                    let members = coll_pending.remove(&e.comm_id).unwrap();
                    let biggest = members
                        .iter()
                        .map(|&(q, _)| proc_next[q])
                        .max()
                        .unwrap_or(0);
                    // proc_next is "last assigned + 1", so the collective
                    // lands at max(last assigned) + 1 = max(proc_next).
                    let t = biggest;
                    for &(q, j) in &members {
                        lt[q][j] = Some(t);
                        proc_next[q] = t + 1;
                        log.push((q as u32, j as u64));
                        push_next(&mut queue, trace, q, j);
                    }
                    stall = 0;
                }
                // Member stays blocked until the collective completes; its
                // next event is inserted above on completion.
            }
        }
    }
    if let Some((&comm_id, members)) = coll_pending.iter().next() {
        let (q, j) = members[0];
        let involved = trace.procs[q].events[j].involved;
        return Err(ModelError::CollectiveIncomplete {
            comm_id,
            arrived: members.len() as u32,
            involved,
        });
    }

    let mut resolved: Vec<Vec<u64>> = Vec::with_capacity(lt.len());
    for (p, v) in lt.into_iter().enumerate() {
        let mut out = Vec::with_capacity(v.len());
        for (i, o) in v.into_iter().enumerate() {
            out.push(o.ok_or(ModelError::Unordered {
                process: p as u32,
                number: i as u64,
            })?);
        }
        resolved.push(out);
    }
    let mut lt = resolved;

    let (permuted, splits, keyed) = finish_ranks(trace, &mut lt, rule, workers);
    let logical = assemble(trace.nprocs, keyed);
    if pas2p_obs::enabled() {
        pas2p_obs::counter("model.events_ordered").add(log.len() as u64);
        pas2p_obs::counter("model.deferred_recvs").add(deferred);
        pas2p_obs::counter("model.unmatched_recvs").add(unmatched);
        pas2p_obs::counter("model.recv_permutations").add(permuted);
        pas2p_obs::counter("model.tick_splits").add(splits);
        pas2p_obs::counter("model.ticks").add(logical.len() as u64);
        if workers > 1 {
            pas2p_obs::gauge("model.par.workers").set(workers as f64);
        }
    }
    Ok((logical, log))
}

/// Build the msg_id → receive location index. For large traces the
/// per-rank scans run on a scoped worker pool; partial maps merge in rank
/// order, preserving the sequential last-wins semantics for duplicate
/// msg_ids.
fn build_recv_index(trace: &Trace, workers: usize) -> HashMap<u64, (usize, usize)> {
    let index_of = |base: usize, procs: &[ProcessTrace]| {
        let mut m: HashMap<u64, (usize, usize)> = HashMap::new();
        for (dp, pt) in procs.iter().enumerate() {
            for (i, e) in pt.events.iter().enumerate() {
                if e.kind == EventKind::Recv && e.msg_id != 0 {
                    m.insert(e.msg_id, (base + dp, i));
                }
            }
        }
        m
    };
    let n = trace.procs.len();
    if workers <= 1 || n <= 1 {
        return index_of(0, &trace.procs);
    }
    let chunk = n.div_ceil(workers);
    let partials: Vec<HashMap<u64, (usize, usize)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = trace
            .procs
            .chunks(chunk)
            .enumerate()
            .map(|(ci, procs)| scope.spawn(move || index_of(ci * chunk, procs)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("recv-index worker"))
            .collect()
    });
    let mut recv_index = HashMap::with_capacity(partials.iter().map(HashMap::len).sum());
    for m in partials {
        recv_index.extend(m);
    }
    recv_index
}

/// The per-rank post-processing after the global queue merge: receive-LT
/// permutation, program-order clamping and tick-key construction. Every
/// rank is independent here, so the ranks fan out over a scoped worker
/// pool; results concatenate in rank order, making the output identical
/// to the sequential pass for any worker count.
#[allow(clippy::type_complexity)]
fn finish_ranks(
    trace: &Trace,
    lt: &mut [Vec<u64>],
    rule: Rule,
    workers: usize,
) -> (u64, u64, Vec<(u64, u64, LogicalEvent)>) {
    let n = trace.procs.len();
    let results: Vec<(u64, u64, Vec<(u64, u64, LogicalEvent)>)> = if workers > 1 && n > 1 {
        let chunk = n.div_ceil(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = lt
                .chunks_mut(chunk)
                .zip(trace.procs.chunks(chunk))
                .map(|(lts_chunk, procs_chunk)| {
                    scope.spawn(move || {
                        lts_chunk
                            .iter_mut()
                            .zip(procs_chunk)
                            .map(|(lts, pt)| finish_rank(pt, lts, rule))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("rank prep worker"))
                .collect()
        })
    } else {
        lt.iter_mut()
            .zip(&trace.procs)
            .map(|(lts, pt)| finish_rank(pt, lts, rule))
            .collect()
    };
    let mut permuted = 0u64;
    let mut splits = 0u64;
    let mut keyed = Vec::with_capacity(trace.total_events());
    for (m, sp, k) in results {
        permuted += m;
        splits += sp;
        keyed.extend(k);
    }
    (permuted, splits, keyed)
}

/// One rank's post-processing; see [`finish_ranks`].
fn finish_rank(
    pt: &ProcessTrace,
    lts: &mut [u64],
    rule: Rule,
) -> (u64, u64, Vec<(u64, u64, LogicalEvent)>) {
    let permuted = if rule == Rule::Pas2p {
        permute_rank_recvs(pt, lts)
    } else {
        0
    };
    clamp_rank_program_order(lts);
    let (splits, keyed) = key_rank_ticks(pt, lts);
    (permuted, splits, keyed)
}

fn push_next(queue: &mut VecDeque<(usize, usize)>, trace: &Trace, p: usize, i: usize) {
    if i + 1 < trace.procs[p].events.len() {
        queue.push_back((p, i + 1));
    }
}

fn send_lt_of(trace: &Trace, lt: &[Vec<Option<u64>>], recv: &TraceEvent) -> Option<u64> {
    let src = recv.peer? as usize;
    // The send with this msg_id lives in the peer's stream.
    let pt = trace.procs.get(src)?;
    let idx = pt
        .events
        .iter()
        .position(|e| e.kind == EventKind::Send && e.msg_id == recv.msg_id)?;
    lt[src][idx]
}

/// Reassign one process's receive LTs in ascending program order
/// (Fig 4 → Fig 5: "a permutation only inside the LTRecvs … so that the
/// reception events are in ascending order"). Returns how many receive
/// LTs actually moved.
fn permute_rank_recvs(pt: &ProcessTrace, lts: &mut [u64]) -> u64 {
    let mut moved = 0u64;
    let recv_idx: Vec<usize> = pt
        .events
        .iter()
        .enumerate()
        .filter(|(_, e)| e.kind == EventKind::Recv)
        .map(|(i, _)| i)
        .collect();
    let mut recv_lts: Vec<u64> = recv_idx.iter().map(|&i| lts[i]).collect();
    recv_lts.sort_unstable();
    for (&i, &t) in recv_idx.iter().zip(&recv_lts) {
        if lts[i] != t {
            moved += 1;
        }
        lts[i] = t;
    }
    moved
}

/// Program order must survive on the tick axis: clamp each event's LT to
/// at least its predecessor's (ties are separated by tick splitting).
fn clamp_rank_program_order(lts: &mut [u64]) {
    for i in 1..lts.len() {
        if lts[i] < lts[i - 1] {
            lts[i] = lts[i - 1];
        }
    }
}

/// "There can only be one event for each process at a particular LT":
/// events sharing (process, LT) are fanned out to sub-ticks in program
/// order; [`assemble`] densely renumbers the (LT, sub) pairs. Also
/// returns how many events needed a sub-tick.
fn key_rank_ticks(pt: &ProcessTrace, lts: &[u64]) -> (u64, Vec<(u64, u64, LogicalEvent)>) {
    let mut splits = 0u64;
    let mut keyed = Vec::with_capacity(pt.events.len());
    let mut prev_lt = u64::MAX;
    let mut sub = 0u64;
    for (i, e) in pt.events.iter().enumerate() {
        let t = lts[i];
        sub = if t == prev_lt { sub + 1 } else { 0 };
        if sub > 0 {
            splits += 1;
        }
        prev_lt = t;
        keyed.push((
            t,
            sub,
            LogicalEvent {
                process: e.process,
                number: e.number,
                kind: e.kind,
                peer: e.peer,
                size: e.size,
                involved: e.involved,
                msg_id: e.msg_id,
                comm_id: e.comm_id,
                compute_before: pt.compute_before(i),
                duration: (e.t_complete - e.t_post).max(0.0),
                t_post: e.t_post,
                t_complete: e.t_complete,
            },
        ));
    }
    (splits, keyed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas2p_trace::{CollClass, ProcessTrace};

    /// Build an event quickly for synthetic traces.
    #[allow(clippy::too_many_arguments)]
    fn ev(
        number: u64,
        process: u32,
        kind: EventKind,
        peer: Option<u32>,
        msg_id: u64,
        comm_id: u64,
        involved: u32,
        t: f64,
    ) -> TraceEvent {
        TraceEvent {
            number,
            process,
            t_post: t,
            t_complete: t + 0.1,
            kind,
            peer,
            tag: 0,
            size: 8,
            involved,
            msg_id,
            comm_id,
            wildcard: false,
        }
    }

    fn trace_of(procs: Vec<Vec<TraceEvent>>) -> Trace {
        Trace {
            nprocs: procs.len() as u32,
            machine: "test".into(),
            procs: procs
                .into_iter()
                .enumerate()
                .map(|(r, events)| ProcessTrace {
                    process: r as u32,
                    end_time: events.last().map(|e| e.t_complete).unwrap_or(0.0),
                    events,
                })
                .collect(),
        }
    }

    /// Table 1 walkthrough: with four processes of independent events the
    /// queue dequeues round-robin — ids 1, 7, 13, 19, 2, 8, 14, 20, 3, …
    /// (paper ids are process*6 + number + 1).
    #[test]
    fn table1_walkthrough() {
        let procs: Vec<Vec<TraceEvent>> = (0..4u32)
            .map(|p| {
                (0..6u64)
                    .map(|i| ev(i, p, EventKind::Send, Some((p + 1) % 4), 0, 0, 1, i as f64))
                    .collect()
            })
            .collect();
        let t = trace_of(procs);
        let (_, log) = pas2p_order_logged(&t);
        let paper_ids: Vec<u64> = log.iter().map(|&(p, n)| p as u64 * 6 + n + 1).collect();
        assert_eq!(
            &paper_ids[..9],
            &[1, 7, 13, 19, 2, 8, 14, 20, 3],
            "dequeue order must match Table 1"
        );
        assert_eq!(paper_ids.len(), 24);
    }

    /// Fig 3: the reception of a message sent at LT is fixed at LT + 1,
    /// even if the receiver is logically far ahead.
    #[test]
    fn recv_is_fixed_at_send_lt_plus_one() {
        // P0: three sends to P2 (unpaired fillers), then send msg 42 to P1.
        // P1: busy with 5 sends first, then receives msg 42.
        let p0: Vec<TraceEvent> = (0..3)
            .map(|i| ev(i, 0, EventKind::Send, Some(2), 100 + i, 0, 1, i as f64))
            .chain(std::iter::once(ev(
                3,
                0,
                EventKind::Send,
                Some(1),
                42,
                0,
                1,
                3.0,
            )))
            .collect();
        let p1: Vec<TraceEvent> = (0..5)
            .map(|i| ev(i, 1, EventKind::Send, Some(2), 200 + i, 0, 1, i as f64))
            .chain(std::iter::once(ev(
                5,
                1,
                EventKind::Recv,
                Some(0),
                42,
                0,
                1,
                6.0,
            )))
            .collect();
        let p2: Vec<TraceEvent> = (0..8)
            .map(|i| {
                ev(
                    i,
                    2,
                    EventKind::Recv,
                    Some(if i < 3 { 0 } else { 1 }),
                    if i < 3 { 100 + i } else { 200 + i - 3 },
                    0,
                    1,
                    10.0 + i as f64,
                )
            })
            .collect();
        let t = trace_of(vec![p0, p1, p2]);
        let logical = pas2p_order(&t);
        logical.validate_against(&t).unwrap();
        // The send (P0 #3) has LT 3; in the pre-permutation model the recv
        // is at LT 4, but P1 already used LTs 0–4, so after program-order
        // clamping the recv cannot precede P1's own sends. What must hold:
        // the recv appears in a tick >= the send's tick.
        let tick_of = |proc: u32, number: u64| {
            logical
                .ticks
                .iter()
                .position(|tk| tk.events.iter().any(|e| e.process == proc && e.number == number))
                .unwrap()
        };
        assert!(tick_of(1, 5) > tick_of(0, 3));
    }

    /// Simple paired send/recv: recv at send LT + 1 exactly.
    #[test]
    fn paired_recv_lands_one_tick_after_send() {
        let p0 = vec![ev(0, 0, EventKind::Send, Some(1), 7, 0, 1, 0.0)];
        let p1 = vec![ev(0, 1, EventKind::Recv, Some(0), 7, 0, 1, 1.0)];
        let t = trace_of(vec![p0, p1]);
        let logical = pas2p_order(&t);
        assert_eq!(logical.len(), 2);
        assert_eq!(logical.ticks[0].events[0].kind, EventKind::Send);
        assert_eq!(logical.ticks[1].events[0].kind, EventKind::Recv);
    }

    /// Collectives synchronize: all members land on the same tick at
    /// max(LT) + 1.
    #[test]
    fn collective_takes_biggest_lt_plus_one() {
        let coll = |p: u32, n: u64, t: f64| {
            ev(n, p, EventKind::Coll(CollClass::Allreduce), None, 0, 99, 3, t)
        };
        // P0 has 2 sends first; P1 and P2 go straight to the collective.
        let p0 = vec![
            ev(0, 0, EventKind::Send, Some(1), 11, 0, 1, 0.0),
            ev(1, 0, EventKind::Send, Some(2), 12, 0, 1, 1.0),
            coll(0, 2, 2.0),
        ];
        let p1 = vec![
            ev(0, 1, EventKind::Recv, Some(0), 11, 0, 1, 0.5),
            coll(1, 1, 2.0),
        ];
        let p2 = vec![
            ev(0, 2, EventKind::Recv, Some(0), 12, 0, 1, 1.5),
            coll(2, 1, 2.0),
        ];
        let t = trace_of(vec![p0, p1, p2]);
        let logical = pas2p_order(&t);
        logical.validate_against(&t).unwrap();
        // Find the tick holding the collective: all three processes present.
        let coll_ticks: Vec<usize> = logical
            .ticks
            .iter()
            .enumerate()
            .filter(|(_, tk)| tk.events.iter().any(|e| e.kind.is_collective()))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(coll_ticks.len(), 1, "collective must occupy a single tick");
        let tk = &logical.ticks[coll_ticks[0]];
        assert_eq!(tk.events.len(), 3);
    }

    /// Receive permutation: out-of-order pre-assigned receive LTs are
    /// reordered ascending within the process.
    #[test]
    fn recv_lts_ascend_in_program_order() {
        // P0 sends m1 then m2 to P1. P1 receives m2 first, then m1 (as a
        // network reordering would deliver). PAS2P pre-assigns m2's recv a
        // LARGER lt than m1's; permutation restores ascending order.
        let p0 = vec![
            ev(0, 0, EventKind::Send, Some(1), 1, 0, 1, 0.0),
            ev(1, 0, EventKind::Send, Some(1), 2, 0, 1, 1.0),
        ];
        let p1 = vec![
            ev(0, 1, EventKind::Recv, Some(0), 2, 0, 1, 2.0),
            ev(1, 1, EventKind::Recv, Some(0), 1, 0, 1, 3.0),
        ];
        let t = trace_of(vec![p0, p1]);
        let logical = pas2p_order(&t);
        logical.validate_against(&t).unwrap();
        // Program order on the tick axis is guaranteed by validate; also
        // both recvs exist.
        let recvs: Vec<&LogicalEvent> = logical
            .ticks
            .iter()
            .flat_map(|tk| tk.events.iter())
            .filter(|e| e.kind == EventKind::Recv)
            .collect();
        assert_eq!(recvs.len(), 2);
    }

    /// The same physical behavior with permuted reception order yields the
    /// same logical shape — the property motivating the PAS2P ordering.
    #[test]
    fn pas2p_ordering_is_insensitive_to_reception_order() {
        let sends = |swap: bool| {
            let p0 = vec![
                ev(0, 0, EventKind::Send, Some(1), 1, 0, 1, 0.0),
                ev(1, 0, EventKind::Send, Some(1), 2, 0, 1, 1.0),
            ];
            let (a, b) = if swap { (2, 1) } else { (1, 2) };
            let p1 = vec![
                ev(0, 1, EventKind::Recv, Some(0), a, 0, 1, 2.0),
                ev(1, 1, EventKind::Recv, Some(0), b, 0, 1, 3.0),
            ];
            trace_of(vec![p0, p1])
        };
        let l1 = pas2p_order(&sends(false));
        let l2 = pas2p_order(&sends(true));
        // Tick-level shape: same number of ticks and same per-tick event
        // kind layout.
        assert_eq!(l1.len(), l2.len());
        for (a, b) in l1.ticks.iter().zip(&l2.ticks) {
            let ka: Vec<_> = a.events.iter().map(|e| (e.process, e.kind)).collect();
            let kb: Vec<_> = b.events.iter().map(|e| (e.process, e.kind)).collect();
            assert_eq!(ka, kb);
        }
    }

    #[test]
    fn empty_trace_orders_to_empty() {
        let t = trace_of(vec![vec![], vec![]]);
        let logical = pas2p_order(&t);
        assert!(logical.is_empty());
    }

    /// The per-rank prep (recv index, permutation, clamping, tick keying)
    /// must produce the same logical trace and dequeue log for any worker
    /// count — parallelism is an implementation detail, not a semantics
    /// knob.
    #[test]
    fn rank_prep_is_worker_count_invariant() {
        // Six ranks in a ring: each sends two messages to the next rank
        // and receives two from the previous one — deliberately received
        // out of order so the permutation and clamping paths both run —
        // then everybody joins a barrier-like collective.
        let nprocs = 6u32;
        let msg = |src: u32, k: u64| 1000 * (src as u64 + 1) + k;
        let procs: Vec<Vec<TraceEvent>> = (0..nprocs)
            .map(|p| {
                let next = (p + 1) % nprocs;
                let prev = (p + nprocs - 1) % nprocs;
                let mut events = vec![
                    ev(0, p, EventKind::Send, Some(next), msg(p, 0), 0, 1, 0.0),
                    ev(1, p, EventKind::Send, Some(next), msg(p, 1), 0, 1, 1.0),
                    // Receive the SECOND message first (network reordering).
                    ev(2, p, EventKind::Recv, Some(prev), msg(prev, 1), 0, 1, 2.0),
                    ev(3, p, EventKind::Recv, Some(prev), msg(prev, 0), 0, 1, 3.0),
                ];
                events.push(ev(
                    4,
                    p,
                    EventKind::Coll(CollClass::Allreduce),
                    None,
                    0,
                    7,
                    nprocs,
                    4.0,
                ));
                events
            })
            .collect();
        let t = trace_of(procs);
        for rule in [Rule::Pas2p, Rule::Lamport] {
            let baseline =
                try_order_with_rule_workers(&t, rule, 1).expect("sequential ordering succeeds");
            for workers in [2, 3, 4, 8] {
                let par = try_order_with_rule_workers(&t, rule, workers)
                    .expect("parallel ordering succeeds");
                assert_eq!(
                    baseline, par,
                    "worker count {workers} changed the {rule:?} ordering output"
                );
            }
        }
    }
}
