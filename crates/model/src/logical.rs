//! The logical trace: events laid out on a global tick axis.

use pas2p_trace::{EventKind, Trace};
use serde::{Deserialize, Serialize};

/// One event positioned in the logical trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogicalEvent {
    /// Rank the event belongs to.
    pub process: u32,
    /// Per-process event number in the original physical trace.
    pub number: u64,
    /// Event class (send / recv / collective).
    pub kind: EventKind,
    /// Point-to-point peer, if any.
    pub peer: Option<u32>,
    /// Communication volume in bytes.
    pub size: u64,
    /// Involved processes (K).
    pub involved: u32,
    /// Relation (message id) for p2p events.
    pub msg_id: u64,
    /// Communicator identity for collectives.
    pub comm_id: u64,
    /// Computational time preceding this event in its process (the PBB
    /// content), in physical seconds on the base machine.
    pub compute_before: f64,
    /// Time the communication call itself took (blocking/transfer time).
    pub duration: f64,
    /// Physical post time on the base machine.
    pub t_post: f64,
    /// Physical completion time on the base machine.
    pub t_complete: f64,
}

/// One logical time unit holding at most one event per process.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Tick {
    /// Events at this tick, sorted by process.
    pub events: Vec<LogicalEvent>,
}

impl Tick {
    /// The event of `process` at this tick, if any.
    pub fn event_of(&self, process: u32) -> Option<&LogicalEvent> {
        self.events
            .binary_search_by_key(&process, |e| e.process)
            .ok()
            .map(|i| &self.events[i])
    }
}

/// The machine-independent application model: the merged, logically
/// ordered event stream of all processes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogicalTrace {
    /// Number of processes.
    pub nprocs: u32,
    /// Ticks in ascending logical time.
    pub ticks: Vec<Tick>,
}

impl LogicalTrace {
    /// Number of ticks.
    pub fn len(&self) -> usize {
        self.ticks.len()
    }

    /// True when the trace holds no ticks.
    pub fn is_empty(&self) -> bool {
        self.ticks.is_empty()
    }

    /// Total number of events across ticks.
    pub fn total_events(&self) -> usize {
        self.ticks.iter().map(|t| t.events.len()).sum()
    }

    /// Map every event to its tick: `(process, number) → tick index`.
    /// This is the bridge race analysis needs between trace-space
    /// findings (rank, event number) and tick-space artifacts (phase
    /// occurrences span tick ranges).
    pub fn tick_positions(&self) -> std::collections::HashMap<(u32, u64), usize> {
        let mut map = std::collections::HashMap::with_capacity(self.total_events());
        for (t, tick) in self.ticks.iter().enumerate() {
            for e in &tick.events {
                map.insert((e.process, e.number), t);
            }
        }
        map
    }

    /// Verify the defining invariants of a logical trace:
    /// * at most one event per (process, tick);
    /// * per process, ticks preserve program order (event numbers strictly
    ///   increase along the tick axis);
    /// * every event of the source trace appears exactly once.
    pub fn validate_against(&self, source: &Trace) -> Result<(), String> {
        let mut seen = vec![0u64; self.nprocs as usize];
        let mut counts = vec![0usize; self.nprocs as usize];
        for (t, tick) in self.ticks.iter().enumerate() {
            let mut procs_here = std::collections::HashSet::new();
            for e in &tick.events {
                if !procs_here.insert(e.process) {
                    return Err(format!("tick {} holds two events of process {}", t, e.process));
                }
                let p = e.process as usize;
                if counts[p] > 0 && e.number <= seen[p] {
                    return Err(format!(
                        "process {} event {} out of program order at tick {}",
                        e.process, e.number, t
                    ));
                }
                seen[p] = e.number;
                counts[p] += 1;
            }
        }
        for (rank, proc_trace) in source.procs.iter().enumerate() {
            if counts[rank] != proc_trace.events.len() {
                return Err(format!(
                    "process {}: {} events in logical trace, {} in source",
                    rank,
                    counts[rank],
                    proc_trace.events.len()
                ));
            }
        }
        Ok(())
    }
}

/// Assemble `(lt, sub)`-keyed events into the final tick axis: events are
/// grouped by their (possibly split) logical time, orderings inside a tick
/// are by process, and tick indices are renumbered densely from zero.
pub(crate) fn assemble(nprocs: u32, mut keyed: Vec<(u64, u64, LogicalEvent)>) -> LogicalTrace {
    keyed.sort_by_key(|a| (a.0, a.1, a.2.process));
    let mut ticks: Vec<Tick> = Vec::new();
    let mut current: Option<(u64, u64)> = None;
    for (lt, sub, ev) in keyed {
        if current != Some((lt, sub)) {
            ticks.push(Tick::default());
            current = Some((lt, sub));
        }
        ticks.last_mut().unwrap().events.push(ev);
    }
    LogicalTrace { nprocs, ticks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas2p_trace::EventKind;

    fn ev(process: u32, number: u64) -> LogicalEvent {
        LogicalEvent {
            process,
            number,
            kind: EventKind::Send,
            peer: None,
            size: 0,
            involved: 1,
            msg_id: 0,
            comm_id: 0,
            compute_before: 0.0,
            duration: 0.0,
            t_post: 0.0,
            t_complete: 0.0,
        }
    }

    #[test]
    fn assemble_groups_by_lt_and_sub() {
        let keyed = vec![
            (1, 0, ev(1, 0)),
            (0, 0, ev(0, 0)),
            (1, 1, ev(0, 1)),
            (1, 0, ev(0, 2)), // same (lt,sub) as first → same tick. (out of
                               // program order; assemble doesn't validate)
        ];
        let lt = assemble(2, keyed);
        assert_eq!(lt.len(), 3);
        assert_eq!(lt.ticks[0].events.len(), 1);
        assert_eq!(lt.ticks[1].events.len(), 2);
        // Within a tick, events sorted by process.
        assert_eq!(lt.ticks[1].events[0].process, 0);
        assert_eq!(lt.ticks[1].events[1].process, 1);
    }

    #[test]
    fn event_of_finds_by_process() {
        let keyed = vec![(0, 0, ev(3, 0)), (0, 0, ev(1, 0))];
        let lt = assemble(4, keyed);
        let tick = &lt.ticks[0];
        assert!(tick.event_of(1).is_some());
        assert!(tick.event_of(3).is_some());
        assert!(tick.event_of(0).is_none());
    }

    #[test]
    fn tick_positions_invert_the_layout() {
        let keyed = vec![(0, 0, ev(0, 0)), (1, 0, ev(0, 1)), (1, 0, ev(1, 0))];
        let lt = assemble(2, keyed);
        let pos = lt.tick_positions();
        assert_eq!(pos[&(0, 0)], 0);
        assert_eq!(pos[&(0, 1)], 1);
        assert_eq!(pos[&(1, 0)], 1);
    }

    #[test]
    fn totals_count_events() {
        let keyed = vec![(0, 0, ev(0, 0)), (1, 0, ev(0, 1)), (1, 0, ev(1, 0))];
        let lt = assemble(2, keyed);
        assert_eq!(lt.total_events(), 3);
        assert!(!lt.is_empty());
    }
}
