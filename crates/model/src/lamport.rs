//! Plain Lamport ordering — the baseline the PAS2P ordering improves on.
//!
//! Under happened-before, a receive's logical time is
//! `max(local clock, send LT + 1)`: reception order (which varies run to
//! run with network delays) leaks into the logical trace, so phases that
//! are really "the same" get different tick layouts and similarity
//! matching degrades — the paper observed prediction quality falling as
//! process counts grew. The `ablation_ordering` bench quantifies this by
//! extracting phases under both orderings.

use crate::logical::LogicalTrace;
use crate::ordering::{order_with_rule, Rule};
use pas2p_trace::Trace;

/// Order a physical trace with classic Lamport happened-before semantics
/// (no receive fixing, no receive permutation).
pub fn lamport_order(trace: &Trace) -> LogicalTrace {
    order_with_rule(trace, Rule::Lamport).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pas2p_order;
    use pas2p_trace::{EventKind, ProcessTrace, TraceEvent};

    fn ev(
        number: u64,
        process: u32,
        kind: EventKind,
        peer: Option<u32>,
        msg_id: u64,
        t: f64,
    ) -> TraceEvent {
        TraceEvent {
            number,
            process,
            t_post: t,
            t_complete: t + 0.1,
            kind,
            peer,
            tag: 0,
            size: 8,
            involved: 1,
            msg_id,
            comm_id: 0,
            wildcard: false,
        }
    }

    fn two_proc_trace(recv_order: [u64; 2]) -> Trace {
        let p0 = vec![
            ev(0, 0, EventKind::Send, Some(1), 1, 0.0),
            ev(1, 0, EventKind::Send, Some(1), 2, 1.0),
        ];
        let p1 = vec![
            ev(0, 1, EventKind::Recv, Some(0), recv_order[0], 2.0),
            ev(1, 1, EventKind::Recv, Some(0), recv_order[1], 3.0),
        ];
        Trace {
            nprocs: 2,
            machine: "test".into(),
            procs: vec![
                ProcessTrace { process: 0, events: p0, end_time: 1.1 },
                ProcessTrace { process: 1, events: p1, end_time: 3.1 },
            ],
        }
    }

    #[test]
    fn lamport_orders_simple_exchange() {
        let t = two_proc_trace([1, 2]);
        let l = lamport_order(&t);
        l.validate_against(&t).unwrap();
        assert_eq!(l.total_events(), 4);
    }

    #[test]
    fn lamport_recv_respects_happened_before() {
        let t = two_proc_trace([1, 2]);
        let l = lamport_order(&t);
        // Receive of msg 1 must come after send of msg 1 on the tick axis.
        let tick_of = |proc: u32, number: u64| {
            l.ticks
                .iter()
                .position(|tk| tk.events.iter().any(|e| e.process == proc && e.number == number))
                .unwrap()
        };
        assert!(tick_of(1, 0) > tick_of(0, 0));
        assert!(tick_of(1, 1) > tick_of(0, 1));
    }

    /// The motivating difference: swapping reception order changes the
    /// Lamport layout of receive events, while PAS2P produces the same
    /// per-tick kind layout (see `pas2p_ordering_is_insensitive_…` in
    /// ordering.rs).
    #[test]
    fn pas2p_shape_is_stable_where_lamport_reorders_relations() {
        let in_order = two_proc_trace([1, 2]);
        let swapped = two_proc_trace([2, 1]);
        // Lamport: the message relations crossing each tick boundary
        // differ between the two runs.
        let relations = |l: &LogicalTrace| -> Vec<(u32, u64, u64)> {
            l.ticks
                .iter()
                .enumerate()
                .flat_map(|(i, tk)| {
                    tk.events
                        .iter()
                        .filter(|e| e.kind == EventKind::Recv)
                        .map(move |e| (e.process, e.msg_id, i as u64))
                })
                .collect()
        };
        let la = relations(&lamport_order(&in_order));
        let lb = relations(&lamport_order(&swapped));
        let pa = relations(&pas2p_order(&in_order));
        let pb = relations(&pas2p_order(&swapped));
        // Under both orderings msg ids map to ticks; under PAS2P the tick
        // multiset of receives is identical across the two delivery orders.
        let ticks = |v: &[(u32, u64, u64)]| {
            let mut t: Vec<u64> = v.iter().map(|&(_, _, t)| t).collect();
            t.sort_unstable();
            t
        };
        assert_eq!(ticks(&pa), ticks(&pb), "PAS2P tick layout must be stable");
        // (Lamport happens to also produce 2 receives; we only check both
        // paths ran.)
        assert_eq!(la.len(), 2);
        assert_eq!(lb.len(), 2);
    }
}
