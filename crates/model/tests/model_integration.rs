//! Model tests against traces produced by real simulated runs.

use pas2p_machine::{cluster_a, JitterModel, MappingPolicy, Work};
use pas2p_mpisim::{run_app, Mpi, ReduceOp, SimConfig};
use pas2p_model::{lamport_order, pas2p_order};
use pas2p_trace::{EventKind, InstrumentationModel, Trace, TraceCollector, Traced};
use std::sync::Arc;

fn quiet_machine() -> pas2p_machine::MachineModel {
    let mut m = cluster_a();
    m.jitter = JitterModel::none();
    m
}

fn trace_program<F>(n: u32, f: F) -> Trace
where
    F: Fn(&mut Traced<'_, pas2p_mpisim::RankCtx>) + Send + Sync,
{
    let collector = Arc::new(TraceCollector::new(
        n,
        "cluster-A",
        InstrumentationModel::free(),
    ));
    let cfg = SimConfig::new(quiet_machine(), n, MappingPolicy::Block);
    let col = collector.clone();
    run_app(&cfg, move |ctx| {
        let mut t = Traced::new(ctx, &col);
        f(&mut t);
        t.finish();
    });
    Arc::into_inner(collector).unwrap().into_trace()
}

fn ring_trace(iters: usize) -> Trace {
    trace_program(4, move |t| {
        let n = t.size();
        let next = (t.rank() + 1) % n;
        let prev = (t.rank() + n - 1) % n;
        for _ in 0..iters {
            t.compute(Work::flops(1e7));
            t.send(next, 1, &[0u8; 128]);
            t.recv(Some(prev), Some(1));
            t.allreduce_f64(&[1.0], ReduceOp::Sum);
        }
    })
}

#[test]
fn ring_trace_orders_and_validates() {
    let trace = ring_trace(6);
    let logical = pas2p_order(&trace);
    logical.validate_against(&trace).unwrap();
    assert_eq!(logical.total_events(), trace.total_events());
}

#[test]
fn collectives_occupy_shared_ticks() {
    let trace = ring_trace(3);
    let logical = pas2p_order(&trace);
    let coll_ticks: Vec<usize> = logical
        .ticks
        .iter()
        .enumerate()
        .filter(|(_, tk)| tk.events.iter().any(|e| e.kind.is_collective()))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(coll_ticks.len(), 3, "one collective tick per iteration");
    for i in coll_ticks {
        assert_eq!(
            logical.ticks[i].events.len(),
            4,
            "all 4 ranks synchronize in the collective tick"
        );
    }
}

#[test]
fn logical_trace_is_machine_independent() {
    // Same program on two machines: physical times differ, logical shape
    // must be identical (the model strips machine effects).
    let shape = |trace: &Trace| -> Vec<Vec<(u32, EventKind)>> {
        pas2p_order(trace)
            .ticks
            .iter()
            .map(|tk| tk.events.iter().map(|e| (e.process, e.kind)).collect())
            .collect()
    };
    let prog = |t: &mut Traced<'_, pas2p_mpisim::RankCtx>| {
        let n = t.size();
        let next = (t.rank() + 1) % n;
        let prev = (t.rank() + n - 1) % n;
        for _ in 0..4 {
            t.compute(Work::flops(2e7));
            t.send(next, 1, &[0u8; 64]);
            t.recv(Some(prev), Some(1));
        }
        t.barrier();
    };

    let ta = {
        let collector = Arc::new(TraceCollector::new(4, "A", InstrumentationModel::free()));
        let cfg = SimConfig::new(quiet_machine(), 4, MappingPolicy::Block);
        let col = collector.clone();
        run_app(&cfg, move |ctx| {
            let mut t = Traced::new(ctx, &col);
            prog(&mut t);
            t.finish();
        });
        Arc::into_inner(collector).unwrap().into_trace()
    };
    let tc = {
        let mut m = pas2p_machine::cluster_c();
        m.jitter = JitterModel::none();
        let collector = Arc::new(TraceCollector::new(4, "C", InstrumentationModel::free()));
        let cfg = SimConfig::new(m, 4, MappingPolicy::Block);
        let col = collector.clone();
        run_app(&cfg, move |ctx| {
            let mut t = Traced::new(ctx, &col);
            prog(&mut t);
            t.finish();
        });
        Arc::into_inner(collector).unwrap().into_trace()
    };
    assert_eq!(shape(&ta), shape(&tc));
}

#[test]
fn lamport_also_validates_on_real_traces() {
    let trace = ring_trace(5);
    let logical = lamport_order(&trace);
    logical.validate_against(&trace).unwrap();
    assert_eq!(logical.total_events(), trace.total_events());
}

#[test]
fn master_worker_with_any_source_orders() {
    // Master receives with ANY_SOURCE — the nondeterministic pattern the
    // PAS2P ordering is designed for.
    let trace = trace_program(4, |t| {
        let n = t.size();
        if t.rank() == 0 {
            for _round in 0..3 {
                for _ in 1..n {
                    let m = t.recv(None, Some(1));
                    t.send(m.src, 2, b"task");
                }
            }
        } else {
            for _round in 0..3 {
                t.send(0, 1, b"ready");
                t.recv(Some(0), Some(2));
                t.compute(Work::flops(5e6));
            }
        }
    });
    let logical = pas2p_order(&trace);
    logical.validate_against(&trace).unwrap();
}

#[test]
fn ordering_is_deterministic() {
    let trace = ring_trace(4);
    assert_eq!(pas2p_order(&trace), pas2p_order(&trace));
}
