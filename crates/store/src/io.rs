//! The store's filesystem seam: every byte the repository reads or
//! writes goes through a [`StoreIo`], so durability can be tested
//! against *injected* failures instead of hoped-for ones.
//!
//! Production uses [`RealIo`] (plain `std::fs` plus explicit fsync);
//! the chaos harness swaps in `pas2p_faults::FaultStoreIo`, which
//! wraps a `RealIo` and makes the nth write tear, the nth read come up
//! short, a rename or fsync fail, or an operation block on a gate file
//! — all deterministically. The store's contract is the same either
//! way: an acknowledged write survives, a failed write surfaces a
//! classified [`crate::StoreError`], and nothing is ever torn silently.

use std::io;
use std::path::{Path, PathBuf};

/// Filesystem operations the repository performs. Implementations must
/// be [`Send`] so a store can live behind a mutex shared by server
/// workers.
pub trait StoreIo: Send {
    /// Read a whole file as UTF-8.
    fn read_to_string(&self, path: &Path) -> io::Result<String>;
    /// Create (or truncate) `path` and write `bytes` to it.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Flush `path`'s data and metadata to stable storage (fsync).
    fn sync_file(&self, path: &Path) -> io::Result<()>;
    /// Flush the directory entry table of `dir` to stable storage, so a
    /// rename into it survives a crash.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Atomically rename `from` to `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Remove a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Create a directory and all parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// All entries of a directory (files and subdirectories).
    fn list_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
}

/// The production implementation: `std::fs` with explicit fsync.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealIo;

impl StoreIo for RealIo {
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        std::fs::read_to_string(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        std::fs::OpenOptions::new()
            .read(true)
            .open(path)?
            .sync_all()
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Opening a directory read-only and fsyncing it is the portable
        // unix idiom for making a rename durable; on platforms where
        // directories cannot be fsynced the open itself fails and the
        // caller surfaces the error.
        std::fs::File::open(dir)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out: Vec<PathBuf> = std::fs::read_dir(dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        out.sort();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_io_roundtrips_and_syncs() {
        let dir = std::env::temp_dir().join(format!("pas2p-io-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let io = RealIo;
        io.create_dir_all(&dir).expect("mkdir");
        let a = dir.join("a.txt");
        let b = dir.join("b.txt");
        io.write(&a, b"hello").expect("write");
        io.sync_file(&a).expect("fsync file");
        io.rename(&a, &b).expect("rename");
        io.sync_dir(&dir).expect("fsync dir");
        assert_eq!(io.read_to_string(&b).expect("read"), "hello");
        assert_eq!(io.list_dir(&dir).expect("list"), vec![b.clone()]);
        io.remove_file(&b).expect("rm");
        assert!(io.read_to_string(&b).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
