//! Content addresses: what identifies a stored artifact.
//!
//! PAS2P splits the methodology into signature *construction* (Stage A
//! on the base machine) and signature *execution* (Stage B on each
//! target). The store mirrors that split with two key shapes:
//!
//! * a **signature key** is the digest of everything construction
//!   consumed — the encoded trace bytes, the base machine preset, the
//!   analysis configuration, and the store format version. Same inputs,
//!   same key, so a signature is computed once per (run, machine,
//!   config) and every later request hits it;
//! * a **prediction key** extends a signature key with what execution
//!   adds — the target machine preset and the mapping policy.
//!
//! The configuration fingerprint hashes each threshold's exact bit
//! pattern (`f64::to_bits`), so any semantic config change — however
//! small — moves every key, which is precisely the "incremental
//! invalidation on config bumps" contract. Execution-only knobs that
//! cannot change the produced artifact (worker counts) are deliberately
//! excluded: the same signature served at `parallelism = 1` and `= 8`
//! must share one address.

use crate::digest::Sha256;
use pas2p_machine::MachineModel;
use pas2p_phases::SimilarityConfig;
use pas2p_signature::SignatureConfig;
use serde::{Deserialize, Serialize};

/// Version of the store's on-disk layout and key derivation. Bumping it
/// invalidates every existing entry (they are evicted at open).
pub const STORE_FORMAT_VERSION: u32 = 1;

/// The address of one stored artifact.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StoreKey {
    /// SHA-256 content address (64 hex chars).
    pub digest: String,
    /// The configuration fingerprint baked into the digest, kept
    /// alongside it so stale-config entries can be found and evicted
    /// without recomputing anything.
    pub fingerprint: String,
}

/// Hash of the analysis/construction configuration: every threshold
/// that can change a produced signature or prediction, over exact f64
/// bit patterns. `SimilarityConfig::parallelism` and
/// `SimilarityConfig::kernel` are excluded — both are execution knobs
/// with a byte-identical-output guarantee (the scalar oracle and the
/// SoA kernel produce the same artifact, `tests/kernel_equivalence.rs`).
pub fn config_fingerprint(
    similarity: &SimilarityConfig,
    signature: &SignatureConfig,
    per_event_seconds: f64,
) -> String {
    let mut h = Sha256::new();
    h.update(b"pas2p-config-v1\0");
    for bits in [
        similarity.compute_ratio.to_bits(),
        similarity.size_ratio.to_bits(),
        similarity.event_fraction.to_bits(),
        similarity.compute_floor.to_bits(),
        signature.relevance_threshold.to_bits(),
        signature.warmup_occurrences as u64,
        signature.measure_occurrences as u64,
        signature.disk_bandwidth.to_bits(),
        signature.ckpt_latency.to_bits(),
        signature.restart_latency.to_bits(),
        per_event_seconds.to_bits(),
    ] {
        h.update(&bits.to_be_bytes());
    }
    crate::digest::to_hex(&h.finish())
}

/// Canonical byte rendering of a machine preset. Spelled out field by
/// field (exact `f64` bit patterns, big-endian) rather than through a
/// serialization framework: the digest must not move when serialization
/// details — field order, number formatting — change.
fn machine_bytes(machine: &MachineModel) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(machine.name.as_bytes());
    out.push(0);
    for v in [
        machine.nodes,
        machine.sockets_per_node,
        machine.cores_per_socket,
    ] {
        out.extend_from_slice(&v.to_be_bytes());
    }
    for bits in [
        machine.compute.flops_per_sec.to_bits(),
        machine.compute.mem_bw.to_bits(),
    ] {
        out.extend_from_slice(&bits.to_be_bytes());
    }
    for net in [&machine.network, &machine.intra] {
        for bits in [
            net.latency.to_bits(),
            net.bandwidth.to_bits(),
            net.per_msg_overhead.to_bits(),
        ] {
            out.extend_from_slice(&bits.to_be_bytes());
        }
    }
    for bits in [
        machine.jitter.compute_sigma.to_bits(),
        machine.jitter.comm_sigma.to_bits(),
        machine.jitter.seed,
    ] {
        out.extend_from_slice(&bits.to_be_bytes());
    }
    out.extend_from_slice(machine.isa.to_string().as_bytes());
    out
}

fn segment(h: &mut Sha256, tag: &[u8], bytes: &[u8]) {
    // Length-prefixed, tagged segments: no two input splits collide.
    h.update(tag);
    h.update(&(bytes.len() as u64).to_be_bytes());
    h.update(bytes);
}

/// The signature key: `digest(trace bytes ‖ base machine ‖ config
/// fingerprint ‖ format version)`.
pub fn signature_key(trace_bytes: &[u8], base: &MachineModel, fingerprint: &str) -> StoreKey {
    let mut h = Sha256::new();
    segment(&mut h, b"sig\0", &STORE_FORMAT_VERSION.to_be_bytes());
    segment(&mut h, b"trace\0", trace_bytes);
    segment(&mut h, b"machine\0", &machine_bytes(base));
    segment(&mut h, b"config\0", fingerprint.as_bytes());
    StoreKey {
        digest: crate::digest::to_hex(&h.finish()),
        fingerprint: fingerprint.to_string(),
    }
}

/// The prediction key: a signature key extended with the execution
/// inputs (target machine, mapping policy).
pub fn prediction_key(signature: &StoreKey, target: &MachineModel, policy: &str) -> StoreKey {
    let mut h = Sha256::new();
    segment(&mut h, b"pred\0", &STORE_FORMAT_VERSION.to_be_bytes());
    segment(&mut h, b"sig-digest\0", signature.digest.as_bytes());
    segment(&mut h, b"target\0", &machine_bytes(target));
    segment(&mut h, b"policy\0", policy.as_bytes());
    StoreKey {
        digest: crate::digest::to_hex(&h.finish()),
        fingerprint: signature.fingerprint.clone(),
    }
}

/// The human-oriented alias of a signature entry: lets a service answer
/// "is (app, workload, nprocs, base) under this config already
/// analyzed?" without re-collecting the trace just to hash it. Aliases
/// are derived, never stored authoritative state — an index rebuild
/// regenerates them from entry metadata.
pub fn signature_alias(
    app: &str,
    workload: &str,
    nprocs: u32,
    base: &str,
    fingerprint: &str,
) -> String {
    format!("{app}\u{1f}{workload}\u{1f}{nprocs}\u{1f}{base}\u{1f}{fingerprint}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas2p_machine::{cluster_a, cluster_b};

    #[test]
    fn fingerprint_ignores_parallelism() {
        let sig = SignatureConfig::default();
        let a = SimilarityConfig {
            parallelism: Some(1),
            ..SimilarityConfig::default()
        };
        let b = SimilarityConfig {
            parallelism: Some(8),
            ..SimilarityConfig::default()
        };
        assert_eq!(
            config_fingerprint(&a, &sig, 3e-6),
            config_fingerprint(&b, &sig, 3e-6)
        );
    }

    #[test]
    fn fingerprint_moves_on_any_threshold_change() {
        let sim = SimilarityConfig::default();
        let sig = SignatureConfig::default();
        let base = config_fingerprint(&sim, &sig, 3e-6);
        let bumped_sim = SimilarityConfig {
            size_ratio: 0.86,
            ..sim
        };
        assert_ne!(config_fingerprint(&bumped_sim, &sig, 3e-6), base);
        let bumped_sig = SignatureConfig {
            measure_occurrences: 25,
            ..sig
        };
        assert_ne!(config_fingerprint(&sim, &bumped_sig, 3e-6), base);
        assert_ne!(config_fingerprint(&sim, &sig, 4e-6), base);
    }

    #[test]
    fn signature_key_separates_every_input() {
        let fp = config_fingerprint(
            &SimilarityConfig::default(),
            &SignatureConfig::default(),
            3e-6,
        );
        let base = signature_key(b"trace-bytes", &cluster_a(), &fp);
        assert_eq!(base.digest.len(), 64);
        assert_ne!(
            signature_key(b"other-bytes", &cluster_a(), &fp).digest,
            base.digest
        );
        assert_ne!(
            signature_key(b"trace-bytes", &cluster_b(), &fp).digest,
            base.digest
        );
        assert_ne!(
            signature_key(b"trace-bytes", &cluster_a(), "other-fp").digest,
            base.digest
        );
        // Deterministic: same inputs, same address.
        assert_eq!(signature_key(b"trace-bytes", &cluster_a(), &fp), base);
    }

    #[test]
    fn prediction_key_separates_target_and_policy() {
        let fp = "fp";
        let sig = signature_key(b"t", &cluster_a(), fp);
        let a = prediction_key(&sig, &cluster_b(), "block");
        assert_ne!(a.digest, sig.digest);
        assert_ne!(prediction_key(&sig, &cluster_a(), "block").digest, a.digest);
        assert_ne!(
            prediction_key(&sig, &cluster_b(), "round-robin").digest,
            a.digest
        );
        assert_eq!(prediction_key(&sig, &cluster_b(), "block").digest, a.digest);
    }

    #[test]
    fn alias_is_injective_over_fields() {
        let a = signature_alias("cg", "w", 8, "A", "fp");
        assert_ne!(a, signature_alias("cg", "w", 16, "A", "fp"));
        assert_ne!(a, signature_alias("cg", "w", 8, "B", "fp"));
        assert_ne!(a, signature_alias("cg", "w", 8, "A", "fp2"));
    }
}
