//! A small, dependency-free SHA-256 (FIPS 180-4) for content addresses.
//!
//! The store keys artifacts by the digest of their inputs, so the hash
//! must be stable across platforms, endianness and releases — a
//! `DefaultHasher` guarantees none of that. The workspace forbids
//! unsafe code and adds no external crates, so the compression function
//! is written out here; throughput is irrelevant next to the pipeline
//! work the store exists to avoid.

/// Round constants: first 32 bits of the fractional parts of the cube
/// roots of the first 64 primes.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Streaming SHA-256 state: feed with [`Sha256::update`], close with
/// [`Sha256::finish`].
pub struct Sha256 {
    /// Working hash values a..h.
    h: [u32; 8],
    /// Partially filled block.
    block: [u8; 64],
    /// Bytes currently in `block`.
    fill: usize,
    /// Total message length in bytes.
    len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256::new()
    }
}

impl Sha256 {
    /// A fresh hash state (the FIPS 180-4 initial values: fractional
    /// parts of the square roots of the first 8 primes).
    pub fn new() -> Sha256 {
        Sha256 {
            h: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            block: [0u8; 64],
            fill: 0,
            len: 0,
        }
    }

    /// Absorb `data` into the state.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.fill > 0 {
            let take = rest.len().min(64 - self.fill);
            self.block[self.fill..self.fill + take].copy_from_slice(&rest[..take]);
            self.fill += take;
            rest = &rest[take..];
            if self.fill == 64 {
                let block = self.block;
                self.compress(&block);
                self.fill = 0;
            }
        }
        while rest.len() >= 64 {
            let (head, tail) = rest.split_at(64);
            let mut block = [0u8; 64];
            block.copy_from_slice(head);
            self.compress(&block);
            rest = tail;
        }
        if !rest.is_empty() {
            self.block[..rest.len()].copy_from_slice(rest);
            self.fill = rest.len();
        }
    }

    /// Pad, close and return the 32-byte digest.
    pub fn finish(mut self) -> [u8; 32] {
        // The trailer carries the pre-padding length; capture it before
        // the padding bytes inflate the running count.
        let bit_len = self.len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.fill != 56 {
            self.update(&[0x00]);
        }
        self.update(&bit_len.to_be_bytes());
        let mut out = [0u8; 32];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.h) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, word) in w.iter_mut().take(16).enumerate() {
            *word = u32::from_be_bytes([
                block[4 * i],
                block[4 * i + 1],
                block[4 * i + 2],
                block[4 * i + 3],
            ]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.h;
        for (ki, wi) in K.iter().zip(w) {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(*ki)
                .wrapping_add(wi);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (slot, v) in self.h.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *slot = slot.wrapping_add(v);
        }
    }
}

/// SHA-256 of `data` as a lowercase hex string — the store's content
/// address format.
pub fn sha256_hex(data: &[u8]) -> String {
    let mut h = Sha256::new();
    h.update(data);
    to_hex(&h.finish())
}

/// Lowercase hex rendering of a digest.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(char::from_digit((b >> 4) as u32, 16).expect("nibble"));
        out.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // FIPS 180-4 / NIST CAVP reference vectors.
    #[test]
    fn empty_input() {
        assert_eq!(
            sha256_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            sha256_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            sha256_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            sha256_hex(&data),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0u16..1000).map(|i| (i % 251) as u8).collect();
        let one_shot = sha256_hex(&data);
        for chunk in [1usize, 7, 63, 64, 65, 130] {
            let mut h = Sha256::new();
            for part in data.chunks(chunk) {
                h.update(part);
            }
            assert_eq!(to_hex(&h.finish()), one_shot, "chunk size {chunk}");
        }
    }

    #[test]
    fn exactly_one_block_boundary() {
        // 55, 56 and 64 bytes exercise the padding edge cases.
        for n in [55usize, 56, 64] {
            let data = vec![0x5au8; n];
            let mut h = Sha256::new();
            h.update(&data);
            let a = to_hex(&h.finish());
            let b = sha256_hex(&data);
            assert_eq!(a, b, "length {n}");
            assert_eq!(a.len(), 64);
        }
    }
}
