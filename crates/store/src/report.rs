//! Accounting of what opening and serving from a store had to do —
//! the `IngestReport` pattern applied to the repository: nothing the
//! store repairs is silent, everything it repairs is classified.
//!
//! # Rule codes
//!
//! * `STORE-IDX-001` — the index file was missing or unreadable and was
//!   rebuilt by scanning the object files (Warning).
//! * `STORE-VER-001` — entries written under an older store format
//!   version were evicted at open (Info: expected on upgrades).
//! * `STORE-CORRUPT-001` — an object failed its checksum or did not
//!   parse; the entry was evicted and the artifact recomputed (Warning).
//! * `STORE-OBJ-001` — the index pointed at an object file that no
//!   longer exists; the dangling entry was evicted (Warning).
//! * `STORE-TMP-001` — stale temp files from crashed writes were
//!   removed by the startup recovery pass (Info: the crash-durability
//!   protocol working as designed).

use pas2p_check::{Diagnostic, Location, Severity};
use serde::{Deserialize, Serialize};

/// What the store repaired, evicted and rebuilt. Carried by
/// [`crate::SignatureStore`] and folded into service responses.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StoreReport {
    /// The index file was missing/unreadable and was reconstructed from
    /// the object files on disk.
    pub index_rebuilt: bool,
    /// Entries alive in the index after open-time validation.
    pub entries_loaded: usize,
    /// Entries evicted at open because they were written under a
    /// different [`crate::STORE_FORMAT_VERSION`].
    pub evicted_version: usize,
    /// Entries evicted (at open or on access) because the object file
    /// failed its checksum or did not parse.
    pub evicted_corrupt: usize,
    /// Entries evicted because the index pointed at a missing object.
    pub evicted_missing: usize,
    /// Stale temp files (crashed writes) removed at open by the
    /// recovery pass.
    #[serde(default)]
    pub temps_removed: usize,
    /// One line per corrupt/missing object: digest prefix plus reason.
    pub eviction_log: Vec<String>,
}

impl StoreReport {
    /// True when the store opened clean: nothing rebuilt, nothing
    /// evicted.
    pub fn is_clean(&self) -> bool {
        !self.index_rebuilt
            && self.evicted_version == 0
            && self.evicted_corrupt == 0
            && self.evicted_missing == 0
            && self.temps_removed == 0
    }

    /// Total entries evicted for any reason.
    pub fn evicted(&self) -> usize {
        self.evicted_version + self.evicted_corrupt + self.evicted_missing
    }

    /// The report as a JSON value, for service `stats` responses.
    pub fn to_value(&self) -> serde_json::Value {
        serde_json::json!({
            "index_rebuilt": self.index_rebuilt,
            "entries_loaded": self.entries_loaded,
            "evicted_version": self.evicted_version,
            "evicted_corrupt": self.evicted_corrupt,
            "evicted_missing": self.evicted_missing,
            "temps_removed": self.temps_removed,
            "eviction_log": self.eviction_log.clone(),
        })
    }

    pub(crate) fn log_eviction(&mut self, digest: &str, reason: &str) {
        let prefix = &digest[..digest.len().min(12)];
        self.eviction_log.push(format!("{prefix}: {reason}"));
    }

    /// Human-readable accounting, one finding per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.index_rebuilt {
            out.push_str("index rebuilt from object files\n");
        }
        out.push_str(&format!("{} entr(ies) loaded\n", self.entries_loaded));
        if self.evicted_version > 0 {
            out.push_str(&format!(
                "{} entr(ies) evicted: stale format version\n",
                self.evicted_version
            ));
        }
        if self.evicted_corrupt > 0 {
            out.push_str(&format!(
                "{} entr(ies) evicted: corrupt object\n",
                self.evicted_corrupt
            ));
        }
        if self.evicted_missing > 0 {
            out.push_str(&format!(
                "{} entr(ies) evicted: missing object file\n",
                self.evicted_missing
            ));
        }
        if self.temps_removed > 0 {
            out.push_str(&format!(
                "{} stale temp file(s) from crashed writes removed\n",
                self.temps_removed
            ));
        }
        for line in &self.eviction_log {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    /// The report as `STORE-*` diagnostics, in the same shape the check
    /// engine's rule families produce — so CLI and service surfaces can
    /// render store findings next to `INGEST-*` ones. (The store crate
    /// sits *above* `pas2p-check` in the dependency graph, so these are
    /// produced here rather than by a `Checker` inside the engine.)
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        if self.index_rebuilt {
            out.push(
                Diagnostic::new(
                    "STORE-IDX-001",
                    Severity::Warning,
                    Location::none(),
                    format!(
                        "store index was missing or unreadable; rebuilt from object files \
                         ({} entries recovered)",
                        self.entries_loaded
                    ),
                )
                .with_suggestion(
                    "aliases and entries were re-derived from object metadata; verify the \
                     store directory is not shared by concurrent writers",
                ),
            );
        }
        if self.evicted_version > 0 {
            out.push(
                Diagnostic::new(
                    "STORE-VER-001",
                    Severity::Info,
                    Location::none(),
                    format!(
                        "{} entr(ies) from an older store format version were evicted",
                        self.evicted_version
                    ),
                )
                .with_suggestion(
                    "expected after a format-version bump; artifacts recompute on demand",
                ),
            );
        }
        if self.evicted_corrupt > 0 {
            out.push(
                Diagnostic::new(
                    "STORE-CORRUPT-001",
                    Severity::Warning,
                    Location::none(),
                    format!(
                        "{} corrupt object(s) evicted (checksum or parse failure)",
                        self.evicted_corrupt
                    ),
                )
                .with_suggestion(
                    "the artifacts will be recomputed on the next request; check the \
                     storage medium if this recurs",
                ),
            );
        }
        if self.evicted_missing > 0 {
            out.push(
                Diagnostic::new(
                    "STORE-OBJ-001",
                    Severity::Warning,
                    Location::none(),
                    format!(
                        "{} index entr(ies) pointed at missing object files and were evicted",
                        self.evicted_missing
                    ),
                )
                .with_suggestion("object files were deleted outside the store API"),
            );
        }
        if self.temps_removed > 0 {
            out.push(
                Diagnostic::new(
                    "STORE-TMP-001",
                    Severity::Info,
                    Location::none(),
                    format!(
                        "{} stale temp file(s) from interrupted writes were removed at open",
                        self.temps_removed
                    ),
                )
                .with_suggestion(
                    "expected after a crash mid-write; the published objects were verified \
                     by the recovery pass",
                ),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_report_has_no_diagnostics() {
        let report = StoreReport {
            entries_loaded: 3,
            ..StoreReport::default()
        };
        assert!(report.is_clean());
        assert!(report.diagnostics().is_empty());
        assert!(report.render().contains("3 entr(ies) loaded"));
    }

    #[test]
    fn every_repair_surfaces_a_code() {
        let mut report = StoreReport {
            index_rebuilt: true,
            entries_loaded: 1,
            evicted_version: 2,
            evicted_corrupt: 1,
            evicted_missing: 1,
            ..StoreReport::default()
        };
        report.log_eviction("deadbeefdeadbeefdeadbeef", "checksum mismatch");
        assert!(!report.is_clean());
        assert_eq!(report.evicted(), 4);
        let codes: Vec<String> = report
            .diagnostics()
            .iter()
            .map(|d| d.code.clone())
            .collect();
        assert_eq!(
            codes,
            vec![
                "STORE-IDX-001",
                "STORE-VER-001",
                "STORE-CORRUPT-001",
                "STORE-OBJ-001"
            ]
        );
        assert!(report.render().contains("deadbeefdead: checksum mismatch"));
    }
}
