//! `pas2p-store`: a content-addressed, versioned signature repository.
//!
//! PAS2P's economics rest on the construction/execution split (paper
//! §IV): a signature is built **once** from an instrumented run on the
//! base machine, then executed cheaply on any number of target machines.
//! This crate is the "once": it persists what Stage A + construction
//! produced — phase table, checkpoints, confidence flag, metrics
//! snapshot — keyed by
//! `digest(trace bytes ‖ base machine ‖ config fingerprint ‖ format
//! version)`, plus canonical predictions keyed by
//! `digest(signature ‖ target machine ‖ mapping policy)`.
//!
//! Properties the tests pin:
//!
//! * **Content addressing** — the key is derived from inputs, not
//!   names; re-analyzing identical inputs lands on the same entry, and
//!   execution knobs (worker counts) don't move the address.
//! * **Byte stability** — payloads exclude host wall-clock values, so
//!   two runs at different parallelism store identical payload bytes.
//! * **Incremental invalidation** — config changes move the key
//!   (old entries become unreachable; [`SignatureStore::evict_stale_configs`]
//!   reclaims them), and format-version bumps evict at open.
//! * **Corruption tolerance** — a damaged index is rebuilt from object
//!   files; a damaged object fails its checksum, is evicted, and the
//!   caller recomputes — all reported via [`StoreReport`] and `STORE-*`
//!   diagnostics (the `IngestReport` pattern, one layer up).
//! * **Crash durability** — writes go to per-write unique temp files
//!   that are fsynced (file and parent directory) around an atomic
//!   rename, and opening runs a recovery pass that sweeps stale temps
//!   and evicts torn objects; all filesystem access is routed through
//!   the [`StoreIo`] seam so these guarantees are provable under
//!   injected faults.
//!
//! Observability: `store.hit` / `store.miss` / `store.evict` /
//! `store.put` counters and a `store.entries` gauge, behind the same
//! [`pas2p_obs::enabled`] gate as the rest of the stack.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod digest;
pub mod io;
mod key;
mod report;
mod store;

pub use digest::{sha256_hex, Sha256};
pub use io::{RealIo, StoreIo};
pub use key::{
    config_fingerprint, prediction_key, signature_alias, signature_key, StoreKey,
    STORE_FORMAT_VERSION,
};
pub use report::StoreReport;
pub use store::{ArtifactKind, IndexEntry, Sidecar, SignatureStore, StoreError, StoredSignature};

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU32, Ordering};

    /// A unique, throwaway store root per test.
    fn temp_root(tag: &str) -> PathBuf {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "pas2p-store-test-{}-{}-{}",
            std::process::id(),
            tag,
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn pred_entry(app: &str, target: &str) -> IndexEntry {
        IndexEntry {
            kind: ArtifactKind::Prediction,
            format_version: STORE_FORMAT_VERSION,
            fingerprint: "fp".into(),
            app: app.into(),
            workload: "w".into(),
            nprocs: 8,
            base: "A".into(),
            target: Some(target.into()),
        }
    }

    fn pred_key(n: u8) -> StoreKey {
        StoreKey {
            digest: sha256_hex(&[n]),
            fingerprint: "fp".into(),
        }
    }

    #[test]
    fn put_get_roundtrip_is_byte_identical() {
        let root = temp_root("roundtrip");
        let mut store = SignatureStore::open(&root).expect("open");
        assert!(store.is_empty());
        assert!(store.report().is_clean());

        let key = pred_key(1);
        let json = r#"{"app":"cg","pet":1.25}"#;
        assert!(store.get_prediction_json(&key).is_none(), "cold miss");
        store
            .put_prediction_json(&key, pred_entry("cg", "B"), json)
            .expect("put");
        assert_eq!(store.len(), 1);
        assert_eq!(store.get_prediction_json(&key).as_deref(), Some(json));

        // A fresh handle over the same directory serves the same bytes.
        let mut reopened = SignatureStore::open(&root).expect("reopen");
        assert!(reopened.report().is_clean());
        assert_eq!(reopened.get_prediction_json(&key).as_deref(), Some(json));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_object_is_evicted_and_reported() {
        let root = temp_root("corrupt");
        let mut store = SignatureStore::open(&root).expect("open");
        let key = pred_key(2);
        store
            .put_prediction_json(&key, pred_entry("cg", "B"), r#"{"pet":1.0}"#)
            .expect("put");

        // Flip payload bytes behind the store's back.
        let obj_path = root.join("objects").join(format!("{}.json", key.digest));
        let text = std::fs::read_to_string(&obj_path).expect("object file");
        std::fs::write(&obj_path, text.replace("1.0", "9.9")).expect("tamper");

        let mut store = SignatureStore::open(&root).expect("reopen");
        assert!(
            store.get_prediction_json(&key).is_none(),
            "checksum mismatch must read as a miss"
        );
        assert_eq!(store.report().evicted_corrupt, 1);
        assert!(store
            .diagnostics()
            .iter()
            .any(|d| d.code == "STORE-CORRUPT-001"));
        assert_eq!(store.len(), 0, "the corrupt entry is gone");
        assert!(!obj_path.exists(), "the corrupt object file is deleted");

        // Recompute path: a fresh put over the same key works.
        store
            .put_prediction_json(&key, pred_entry("cg", "B"), r#"{"pet":1.0}"#)
            .expect("re-put");
        assert!(store.get_prediction_json(&key).is_some());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn missing_object_file_is_evicted_and_reported() {
        let root = temp_root("missing");
        let mut store = SignatureStore::open(&root).expect("open");
        let key = pred_key(3);
        store
            .put_prediction_json(&key, pred_entry("cg", "C"), "{}")
            .expect("put");
        std::fs::remove_file(root.join("objects").join(format!("{}.json", key.digest)))
            .expect("delete object");
        assert!(store.get_prediction_json(&key).is_none());
        assert_eq!(store.report().evicted_missing, 1);
        assert!(store
            .diagnostics()
            .iter()
            .any(|d| d.code == "STORE-OBJ-001"));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn unreadable_index_is_rebuilt_from_objects() {
        let root = temp_root("rebuild");
        let mut store = SignatureStore::open(&root).expect("open");
        let key = pred_key(4);
        let json = r#"{"pet":2.5}"#;
        store
            .put_prediction_json(&key, pred_entry("lu", "D"), json)
            .expect("put");
        std::fs::write(root.join("index.json"), b"not json at all {{{").expect("clobber index");

        let mut store = SignatureStore::open(&root).expect("reopen");
        assert!(store.report().index_rebuilt);
        assert!(store
            .diagnostics()
            .iter()
            .any(|d| d.code == "STORE-IDX-001"));
        assert_eq!(store.len(), 1);
        assert_eq!(store.get_prediction_json(&key).as_deref(), Some(json));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn format_version_bump_evicts_at_open() {
        let root = temp_root("version");
        let mut store = SignatureStore::open(&root).expect("open");
        let key = pred_key(5);
        store
            .put_prediction_json(&key, pred_entry("ft", "B"), "{}")
            .expect("put");
        drop(store);

        // Rewrite the entry as if an older release had produced it.
        let index_path = root.join("index.json");
        let text = std::fs::read_to_string(&index_path).expect("index");
        let mut value: serde_json::Value = serde_json::from_str(&text).expect("index json");
        value["entries"][key.digest.as_str()]["format_version"] = serde_json::json!(0);
        std::fs::write(&index_path, serde_json::to_string(&value).expect("encode"))
            .expect("rewrite index");

        let mut store = SignatureStore::open(&root).expect("reopen");
        assert_eq!(store.report().evicted_version, 1);
        assert!(store
            .diagnostics()
            .iter()
            .any(|d| d.code == "STORE-VER-001"));
        assert!(store.get_prediction_json(&key).is_none());
        assert!(store.is_empty());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn evict_stale_configs_keeps_the_pinned_fingerprint() {
        let root = temp_root("stale");
        let mut store = SignatureStore::open(&root).expect("open");
        let keep = pred_key(6);
        let mut drop_key = pred_key(7);
        drop_key.fingerprint = "old-fp".into();
        let mut old_entry = pred_entry("cg", "B");
        old_entry.fingerprint = "old-fp".into();
        store
            .put_prediction_json(&keep, pred_entry("cg", "B"), "{}")
            .expect("put");
        store
            .put_prediction_json(&drop_key, old_entry, "{}")
            .expect("put");
        assert_eq!(store.len(), 2);
        assert_eq!(store.evict_stale_configs("fp"), 1);
        assert_eq!(store.len(), 1);
        assert!(store.get_prediction_json(&keep).is_some());
        assert!(store.get_prediction_json(&drop_key).is_none());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn wrong_kind_is_a_miss_not_a_panic() {
        let root = temp_root("kind");
        let mut store = SignatureStore::open(&root).expect("open");
        let key = pred_key(8);
        store
            .put_prediction_json(&key, pred_entry("cg", "B"), "{}")
            .expect("put");
        assert!(store.get_signature(&key).is_none());
        // The entry survives: kind mismatch is the caller's confusion,
        // not corruption.
        assert_eq!(store.len(), 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    /// The crash-recovery contract: a kill mid-write leaves a torn
    /// object and a stale temp file on disk; reopening the store must
    /// sweep the temp, evict the torn object with a `STORE-*`
    /// diagnostic, and keep serving intact entries byte-identically.
    #[test]
    fn kill_mid_write_recovers_on_reopen() {
        let root = temp_root("crash");
        let mut store = SignatureStore::open(&root).expect("open");
        let intact = pred_key(10);
        let torn = pred_key(11);
        let intact_json = r#"{"app":"cg","pet":1.25}"#;
        store
            .put_prediction_json(&intact, pred_entry("cg", "B"), intact_json)
            .expect("put intact");
        store
            .put_prediction_json(&torn, pred_entry("lu", "B"), r#"{"app":"lu","pet":3.5}"#)
            .expect("put torn-to-be");
        drop(store);

        // Simulate the kill: the second object's bytes are half-written
        // (as if the page cache never made it out), and a stale temp
        // file from the interrupted write is still lying around.
        let objects = root.join("objects");
        let torn_path = objects.join(format!("{}.json", torn.digest));
        let text = std::fs::read_to_string(&torn_path).expect("object");
        std::fs::write(&torn_path, &text.as_bytes()[..text.len() / 2]).expect("tear");
        std::fs::write(
            objects.join("deadbeef.json.0123456789abcdef-99-7.tmp"),
            b"partial temp garbage",
        )
        .expect("stale temp");

        let mut store = SignatureStore::open(&root).expect("reopen");
        let report = store.report().clone();
        assert_eq!(report.temps_removed, 1, "stale temp swept: {report:?}");
        assert_eq!(report.evicted_corrupt, 1, "torn object evicted at open");
        assert!(!report.is_clean());
        let codes: Vec<String> = store.diagnostics().iter().map(|d| d.code.clone()).collect();
        let codes: Vec<&str> = codes.iter().map(String::as_str).collect();
        assert!(codes.contains(&"STORE-CORRUPT-001"), "codes: {codes:?}");
        assert!(codes.contains(&"STORE-TMP-001"), "codes: {codes:?}");
        assert!(
            report.eviction_log.iter().any(|l| l.contains("startup recovery")),
            "eviction log names the recovery pass: {:?}",
            report.eviction_log
        );

        // The torn entry reads as a miss (recompute path); the intact
        // entry still serves byte-identical payloads; no temp remains.
        assert!(store.get_prediction_json(&torn).is_none());
        assert_eq!(
            store.get_prediction_json(&intact).as_deref(),
            Some(intact_json)
        );
        for file in std::fs::read_dir(&objects).expect("objects") {
            let path = file.expect("entry").path();
            assert_ne!(path.extension().and_then(|e| e.to_str()), Some("tmp"));
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn explicit_evict_removes_entry_and_object() {
        let root = temp_root("evict");
        let mut store = SignatureStore::open(&root).expect("open");
        let key = pred_key(9);
        store
            .put_prediction_json(&key, pred_entry("sp", "C"), "{}")
            .expect("put");
        assert!(store.evict(&key));
        assert!(!store.evict(&key), "second evict is a no-op");
        assert!(store.is_empty());
        assert!(store.get_prediction_json(&key).is_none());
        let _ = std::fs::remove_dir_all(&root);
    }
}
