//! The on-disk repository: an index file plus one object file per
//! artifact, every byte of it accounted for.
//!
//! # Layout
//!
//! ```text
//! <root>/index.json               digest → entry metadata, alias → digest
//! <root>/objects/<digest>.json    wrapper { entry, checksum, payload, sidecar }
//! ```
//!
//! The payload — the phase table, checkpoints, confidence flag, the
//! signature itself — is stored as one canonical JSON string, covered
//! by a SHA-256 checksum and free of host wall-clock values, so the
//! same inputs always produce the same payload bytes (this is what the
//! digest-stability tests pin). Volatile observations (TFAT seconds,
//! the metrics snapshot) ride in a sidecar outside the checksum.
//!
//! Writes are crash-durable: each goes to a per-write unique temp file
//! (digest-derived suffix, so concurrent writers can never clobber each
//! other), the temp is fsynced, renamed over the target, and the parent
//! directory is fsynced — an acknowledged write survives a crash, and a
//! crash mid-write leaves only the old object plus a stray temp file
//! that the next open removes. Corruption is handled twice: a startup
//! recovery pass verifies every indexed object and evicts torn ones,
//! and checksums are re-verified lazily on access; every eviction is
//! reported ([`crate::StoreReport`]) and the caller recomputes.
//!
//! All filesystem access goes through a [`StoreIo`] (see [`crate::io`]),
//! so the fault-injection harness can tear writes, shorten reads and
//! fail renames/fsyncs deterministically.

use crate::digest::sha256_hex;
use crate::io::{RealIo, StoreIo};
use crate::key::{signature_alias, StoreKey, STORE_FORMAT_VERSION};
use crate::report::StoreReport;
use pas2p_obs::MetricsSnapshot;
use pas2p_phases::{PhaseAnalysis, PhaseTable};
use pas2p_signature::Signature;
use pas2p_trace::Confidence;
use serde::{Deserialize, Serialize};
use serde_json::{json, Map, Value};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// What kind of artifact an entry holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ArtifactKind {
    /// A constructed signature plus its analysis artifacts.
    Signature,
    /// A canonical prediction produced by executing a signature.
    Prediction,
}

/// Index metadata for one entry — enough to rebuild the index (and the
/// alias map) from object files alone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndexEntry {
    /// Artifact kind.
    pub kind: ArtifactKind,
    /// Store format version the entry was written under.
    pub format_version: u32,
    /// Configuration fingerprint baked into the entry's key.
    pub fingerprint: String,
    /// Application name.
    pub app: String,
    /// Workload description.
    pub workload: String,
    /// Process count.
    pub nprocs: u32,
    /// Base machine name.
    pub base: String,
    /// Target machine name (predictions only).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub target: Option<String>,
}

/// The byte-stable signature payload: everything Stage A + construction
/// produced that is deterministic for the key's inputs. Host timings
/// live in the [`Sidecar`], not here.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoredSignature {
    /// Application name.
    pub app_name: String,
    /// Workload description.
    pub workload: String,
    /// Process count.
    pub nprocs: u32,
    /// Base machine name.
    pub base_machine: String,
    /// Trace size in bytes (TFSize).
    pub trace_bytes: u64,
    /// Total recorded events.
    pub trace_events: usize,
    /// Virtual instrumented execution time (AET_PAS2P).
    pub aet_instrumented: f64,
    /// Analysis confidence flag.
    pub confidence: Confidence,
    /// The phase analysis, with its host `analysis_seconds` zeroed for
    /// byte stability (the real value is in the sidecar's TFAT).
    pub analysis: PhaseAnalysis,
    /// The phase table feeding construction.
    pub table: PhaseTable,
    /// The constructed signature (phase rows + checkpoints + config).
    pub signature: Signature,
}

/// Volatile observations attached to an entry outside the checksum:
/// they describe the producing host run, not the artifact.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Sidecar {
    /// Host seconds the producing analysis spent (TFAT).
    pub tfat_seconds: f64,
    /// Metrics snapshot captured when the artifact was produced.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub metrics: Option<MetricsSnapshot>,
}

/// One object file: metadata + checksummed payload + sidecar.
#[derive(Debug, Clone)]
struct StoredObject {
    digest: String,
    entry: IndexEntry,
    checksum: String,
    payload: String,
    sidecar: Sidecar,
}

/// The index file.
#[derive(Debug, Clone)]
struct StoreIndex {
    format_version: u32,
    entries: BTreeMap<String, IndexEntry>,
    aliases: BTreeMap<String, String>,
}

impl Default for StoreIndex {
    fn default() -> Self {
        StoreIndex {
            format_version: STORE_FORMAT_VERSION,
            entries: BTreeMap::new(),
            aliases: BTreeMap::new(),
        }
    }
}

// The index and object envelopes are written through explicit `Value`
// construction rather than derived serde impls: the wire format is a
// durable contract (other tooling greps and tampers with these files in
// tests and CI), so it is spelled out field by field here. The deep
// payloads inside — `StoredSignature`, predictions, metrics — still use
// their derived impls.

fn kind_str(kind: ArtifactKind) -> &'static str {
    match kind {
        ArtifactKind::Signature => "signature",
        ArtifactKind::Prediction => "prediction",
    }
}

fn kind_from_str(s: &str) -> Option<ArtifactKind> {
    match s {
        "signature" => Some(ArtifactKind::Signature),
        "prediction" => Some(ArtifactKind::Prediction),
        _ => None,
    }
}

fn entry_to_value(entry: &IndexEntry) -> Value {
    let mut v = json!({
        "kind": kind_str(entry.kind),
        "format_version": entry.format_version,
        "fingerprint": entry.fingerprint.as_str(),
        "app": entry.app.as_str(),
        "workload": entry.workload.as_str(),
        "nprocs": entry.nprocs,
        "base": entry.base.as_str(),
    });
    if let Some(target) = &entry.target {
        v["target"] = json!(target.as_str());
    }
    v
}

fn entry_from_value(v: &Value) -> Option<IndexEntry> {
    Some(IndexEntry {
        kind: kind_from_str(v.get("kind")?.as_str()?)?,
        format_version: v.get("format_version")?.as_u64()? as u32,
        fingerprint: v.get("fingerprint")?.as_str()?.to_string(),
        app: v.get("app")?.as_str()?.to_string(),
        workload: v.get("workload")?.as_str()?.to_string(),
        nprocs: v.get("nprocs")?.as_u64()? as u32,
        base: v.get("base")?.as_str()?.to_string(),
        target: v.get("target").and_then(Value::as_str).map(str::to_string),
    })
}

fn sidecar_to_value(sidecar: &Sidecar) -> Value {
    json!({
        "tfat_seconds": sidecar.tfat_seconds,
        "metrics": match &sidecar.metrics {
            Some(m) => serde_json::to_value(m).unwrap_or_default(),
            None => Value::Null,
        },
    })
}

fn sidecar_from_value(v: &Value) -> Sidecar {
    Sidecar {
        tfat_seconds: v
            .get("tfat_seconds")
            .and_then(Value::as_f64)
            .unwrap_or(0.0),
        metrics: v
            .get("metrics")
            .and_then(|m| serde_json::from_str(&m.to_string()).ok()),
    }
}

fn object_to_value(obj: &StoredObject) -> Value {
    json!({
        "digest": obj.digest.as_str(),
        "entry": entry_to_value(&obj.entry),
        "checksum": obj.checksum.as_str(),
        "payload": obj.payload.as_str(),
        "sidecar": sidecar_to_value(&obj.sidecar),
    })
}

fn object_from_value(v: &Value) -> Option<StoredObject> {
    Some(StoredObject {
        digest: v.get("digest")?.as_str()?.to_string(),
        entry: entry_from_value(v.get("entry")?)?,
        checksum: v.get("checksum")?.as_str()?.to_string(),
        payload: v.get("payload")?.as_str()?.to_string(),
        sidecar: v.get("sidecar").map(sidecar_from_value).unwrap_or_default(),
    })
}

fn index_to_value(index: &StoreIndex) -> Value {
    let mut entries = Map::new();
    for (digest, entry) in &index.entries {
        entries.insert(digest.clone(), entry_to_value(entry));
    }
    let mut aliases = Map::new();
    for (alias, digest) in &index.aliases {
        aliases.insert(alias.clone(), json!(digest.as_str()));
    }
    json!({
        "format_version": index.format_version,
        "entries": Value::Object(entries),
        "aliases": Value::Object(aliases),
    })
}

fn index_from_value(v: &Value) -> Option<StoreIndex> {
    let mut index = StoreIndex {
        format_version: v.get("format_version")?.as_u64()? as u32,
        entries: BTreeMap::new(),
        aliases: BTreeMap::new(),
    };
    for (digest, entry) in v.get("entries")?.as_object()? {
        index.entries.insert(digest.clone(), entry_from_value(entry)?);
    }
    for (alias, digest) in v.get("aliases")?.as_object()? {
        index.aliases.insert(alias.clone(), digest.as_str()?.to_string());
    }
    Some(index)
}

/// A store operation failed at the filesystem or encoding layer.
/// Corrupt *entries* are not errors — they are evictions recorded in
/// the [`StoreReport`]; this type is for the store itself being
/// unusable (unwritable directory, full disk).
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// Filesystem operation failed.
    Io(String),
    /// An artifact could not be serialized.
    Encode(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::Encode(e) => write!(f, "store encoding error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

fn io_err(context: &str, e: std::io::Error) -> StoreError {
    StoreError::Io(format!("{context}: {e}"))
}

/// The content-addressed signature repository.
pub struct SignatureStore {
    root: PathBuf,
    index: StoreIndex,
    report: StoreReport,
    io: Box<dyn StoreIo>,
}

impl SignatureStore {
    /// Open (or create) a store rooted at `root`, with production I/O.
    pub fn open(root: impl Into<PathBuf>) -> Result<SignatureStore, StoreError> {
        Self::open_with_io(root, Box::new(RealIo))
    }

    /// Open (or create) a store rooted at `root`, performing all
    /// filesystem access through `io` (the chaos harness passes a
    /// fault-injecting implementation here).
    ///
    /// Opening validates what is already there: entries from another
    /// format version are evicted, an unreadable index is rebuilt by
    /// scanning the object files, stale temp files from crashed writes
    /// are removed, torn or missing objects are evicted by a recovery
    /// pass, and everything done is recorded in
    /// [`SignatureStore::report`]. Checksums are additionally
    /// re-verified lazily on every access.
    pub fn open_with_io(
        root: impl Into<PathBuf>,
        io: Box<dyn StoreIo>,
    ) -> Result<SignatureStore, StoreError> {
        let root = root.into();
        io.create_dir_all(&root.join("objects"))
            .map_err(|e| io_err("creating store directories", e))?;
        let mut report = StoreReport::default();
        let index_path = root.join("index.json");
        let mut index = match io.read_to_string(&index_path) {
            Ok(text) => match serde_json::from_str::<Value>(&text)
                .ok()
                .as_ref()
                .and_then(index_from_value)
            {
                Some(index) => index,
                None => {
                    report.index_rebuilt = true;
                    Self::rebuild_index(&root, io.as_ref())
                }
            },
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => StoreIndex::default(),
            Err(_) => {
                report.index_rebuilt = true;
                Self::rebuild_index(&root, io.as_ref())
            }
        };

        // Format-version invalidation: entries written under any other
        // version are dropped wholesale — the key derivation itself is
        // versioned, so they could never be addressed again anyway.
        let stale: Vec<String> = index
            .entries
            .iter()
            .filter(|(_, e)| e.format_version != STORE_FORMAT_VERSION)
            .map(|(d, _)| d.clone())
            .collect();
        for digest in &stale {
            index.entries.remove(digest);
            index.aliases.retain(|_, d| d != digest);
            let _ = io.remove_file(&root.join("objects").join(format!("{digest}.json")));
            report.evicted_version += 1;
            report.log_eviction(digest, "stale format version");
            count_evict();
        }
        index.format_version = STORE_FORMAT_VERSION;

        let mut store = SignatureStore {
            root,
            index,
            report,
            io,
        };
        let recovered = store.recover();
        store.report.entries_loaded = store.index.entries.len();
        if store.report.index_rebuilt || !stale.is_empty() || recovered {
            store.flush_index()?;
        }
        Ok(store)
    }

    /// Startup recovery: remove stale temp files left by crashed writes
    /// and evict indexed objects that are torn (truncated / corrupt) or
    /// missing, so an acknowledged-but-damaged entry can never serve.
    /// Returns whether the index changed.
    fn recover(&mut self) -> bool {
        // Stale temps: a crash between temp-write and rename leaves a
        // `*.tmp` file behind. They are never addressable, only litter.
        for dir in [self.root.clone(), self.root.join("objects")] {
            let Ok(entries) = self.io.list_dir(&dir) else {
                continue;
            };
            for path in entries {
                if path.extension().and_then(|e| e.to_str()) == Some("tmp") {
                    if self.io.remove_file(&path).is_ok() {
                        self.report.temps_removed += 1;
                    }
                }
            }
        }

        // Torn-object eviction: verify every indexed object end to end
        // (parse, digest agreement, payload checksum). A partial write
        // published by a crash or a lying disk is caught here instead of
        // surfacing as a latent read failure.
        let digests: Vec<String> = self.index.entries.keys().cloned().collect();
        let mut changed = false;
        for digest in digests {
            let path = self.object_path(&digest);
            let reason = match self.io.read_to_string(&path) {
                Err(_) => {
                    self.index.entries.remove(&digest);
                    self.index.aliases.retain(|_, d| d != &digest);
                    self.report.evicted_missing += 1;
                    self.report
                        .log_eviction(&digest, "startup recovery: object file missing");
                    count_evict();
                    changed = true;
                    continue;
                }
                Ok(text) => match serde_json::from_str::<Value>(&text)
                    .ok()
                    .as_ref()
                    .and_then(object_from_value)
                {
                    None => Some("startup recovery: torn object (did not parse)"),
                    Some(obj)
                        if obj.digest != digest
                            || obj.checksum != sha256_hex(obj.payload.as_bytes()) =>
                    {
                        Some("startup recovery: torn object (checksum mismatch)")
                    }
                    Some(_) => None,
                },
            };
            if let Some(reason) = reason {
                self.index.entries.remove(&digest);
                self.index.aliases.retain(|_, d| d != &digest);
                let _ = self.io.remove_file(&path);
                self.report.evicted_corrupt += 1;
                self.report.log_eviction(&digest, reason);
                count_evict();
                changed = true;
            }
        }
        changed
    }

    /// Reconstruct an index by scanning `objects/*.json`. Objects that
    /// do not parse are left on disk; without an index entry they are
    /// unreachable and harmless (and a later `put` may overwrite them).
    fn rebuild_index(root: &Path, io: &dyn StoreIo) -> StoreIndex {
        let mut index = StoreIndex::default();
        let Ok(files) = io.list_dir(&root.join("objects")) else {
            return index;
        };
        for path in files {
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            let Ok(text) = io.read_to_string(&path) else {
                continue;
            };
            let Some(obj) = serde_json::from_str::<Value>(&text)
                .ok()
                .as_ref()
                .and_then(object_from_value)
            else {
                continue;
            };
            // The filename must agree with the embedded digest, or the
            // object was renamed/tampered and cannot be trusted.
            if path.file_stem().and_then(|s| s.to_str()) != Some(obj.digest.as_str()) {
                continue;
            }
            if obj.entry.kind == ArtifactKind::Signature {
                let alias = signature_alias(
                    &obj.entry.app,
                    &obj.entry.workload,
                    obj.entry.nprocs,
                    &obj.entry.base,
                    &obj.entry.fingerprint,
                );
                index.aliases.insert(alias, obj.digest.clone());
            }
            index.entries.insert(obj.digest.clone(), obj.entry);
        }
        index
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of the index file (CI uploads this as an artifact).
    pub fn index_path(&self) -> PathBuf {
        self.root.join("index.json")
    }

    /// What opening and serving from this store repaired.
    pub fn report(&self) -> &StoreReport {
        &self.report
    }

    /// The report as `STORE-*` diagnostics.
    pub fn diagnostics(&self) -> Vec<pas2p_check::Diagnostic> {
        self.report.diagnostics()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.index.entries.len()
    }

    /// True when the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.index.entries.is_empty()
    }

    /// Index metadata of a key's entry, if present. Does not touch the
    /// object file and records no hit/miss.
    pub fn entry(&self, key: &StoreKey) -> Option<&IndexEntry> {
        self.index.entries.get(&key.digest)
    }

    /// Resolve a signature alias (see [`signature_alias`]) to its key.
    pub fn lookup_alias(&self, alias: &str) -> Option<StoreKey> {
        let digest = self.index.aliases.get(alias)?;
        let entry = self.index.entries.get(digest)?;
        Some(StoreKey {
            digest: digest.clone(),
            fingerprint: entry.fingerprint.clone(),
        })
    }

    /// Load a stored signature. `None` is a miss — absent, wrong kind,
    /// or evicted just now as corrupt/missing (see the report).
    pub fn get_signature(&mut self, key: &StoreKey) -> Option<(StoredSignature, Sidecar)> {
        let obj = self.load_object(key, ArtifactKind::Signature)?;
        match serde_json::from_str::<StoredSignature>(&obj.payload) {
            Ok(payload) => {
                count_hit();
                Some((payload, obj.sidecar))
            }
            Err(e) => {
                self.evict_corrupt(&key.digest, &format!("signature payload: {e}"));
                count_miss();
                None
            }
        }
    }

    /// Load a stored prediction's canonical JSON, byte-for-byte as it
    /// was put. `None` is a miss.
    pub fn get_prediction_json(&mut self, key: &StoreKey) -> Option<String> {
        let obj = self.load_object(key, ArtifactKind::Prediction)?;
        count_hit();
        Some(obj.payload)
    }

    /// Store a signature under `key`, registering its alias so later
    /// requests can find it by (app, workload, nprocs, base, config).
    pub fn put_signature(
        &mut self,
        key: &StoreKey,
        payload: &StoredSignature,
        sidecar: Sidecar,
    ) -> Result<(), StoreError> {
        let entry = IndexEntry {
            kind: ArtifactKind::Signature,
            format_version: STORE_FORMAT_VERSION,
            fingerprint: key.fingerprint.clone(),
            app: payload.app_name.clone(),
            workload: payload.workload.clone(),
            nprocs: payload.nprocs,
            base: payload.base_machine.clone(),
            target: None,
        };
        let text = serde_json::to_string(payload).map_err(|e| StoreError::Encode(e.to_string()))?;
        let alias = signature_alias(
            &entry.app,
            &entry.workload,
            entry.nprocs,
            &entry.base,
            &entry.fingerprint,
        );
        self.index.aliases.insert(alias, key.digest.clone());
        self.write_object(key, entry, text, sidecar)
    }

    /// Store a prediction's canonical JSON under `key`.
    pub fn put_prediction_json(
        &mut self,
        key: &StoreKey,
        entry: IndexEntry,
        canonical_json: &str,
    ) -> Result<(), StoreError> {
        self.write_object(key, entry, canonical_json.to_string(), Sidecar::default())
    }

    /// Remove one entry (index + object file). Returns whether it
    /// existed.
    pub fn evict(&mut self, key: &StoreKey) -> bool {
        let existed = self.index.entries.remove(&key.digest).is_some();
        if existed {
            self.index.aliases.retain(|_, d| d != &key.digest);
            let _ = self.io.remove_file(&self.object_path(&key.digest));
            count_evict();
            let _ = self.flush_index();
        }
        existed
    }

    /// Evict every entry whose fingerprint differs from `fingerprint`:
    /// incremental invalidation after a config bump, for deployments
    /// that pin one config and want the disk back. (Without this call,
    /// other-config entries stay valid — the store is content-addressed
    /// and can serve several configs side by side.)
    pub fn evict_stale_configs(&mut self, fingerprint: &str) -> usize {
        let stale: Vec<String> = self
            .index
            .entries
            .iter()
            .filter(|(_, e)| e.fingerprint != fingerprint)
            .map(|(d, _)| d.clone())
            .collect();
        for digest in &stale {
            self.index.entries.remove(digest);
            self.index.aliases.retain(|_, d| d != digest);
            let _ = self.io.remove_file(&self.object_path(digest));
            self.report.log_eviction(digest, "stale config fingerprint");
            count_evict();
        }
        if !stale.is_empty() {
            let _ = self.flush_index();
        }
        stale.len()
    }

    fn object_path(&self, digest: &str) -> PathBuf {
        self.root.join("objects").join(format!("{digest}.json"))
    }

    /// Read and verify one object. Misses are counted here; hits are
    /// counted by the typed getters once the payload also parses.
    fn load_object(&mut self, key: &StoreKey, kind: ArtifactKind) -> Option<StoredObject> {
        if !self.index.entries.contains_key(&key.digest) {
            count_miss();
            return None;
        }
        let path = self.object_path(&key.digest);
        let text = match self.io.read_to_string(&path) {
            Ok(t) => t,
            Err(_) => {
                self.index.entries.remove(&key.digest);
                self.index.aliases.retain(|_, d| d != &key.digest);
                self.report.evicted_missing += 1;
                self.report.log_eviction(&key.digest, "object file missing");
                count_evict();
                count_miss();
                let _ = self.flush_index();
                return None;
            }
        };
        let obj = match serde_json::from_str::<Value>(&text)
            .ok()
            .as_ref()
            .and_then(object_from_value)
        {
            Some(o) => o,
            None => {
                self.evict_corrupt(&key.digest, "object did not parse");
                count_miss();
                return None;
            }
        };
        if obj.digest != key.digest || obj.checksum != sha256_hex(obj.payload.as_bytes()) {
            self.evict_corrupt(&key.digest, "payload checksum mismatch");
            count_miss();
            return None;
        }
        if obj.entry.kind != kind {
            count_miss();
            return None;
        }
        Some(obj)
    }

    fn evict_corrupt(&mut self, digest: &str, reason: &str) {
        self.index.entries.remove(digest);
        self.index.aliases.retain(|_, d| d != digest);
        let _ = self.io.remove_file(&self.object_path(digest));
        self.report.evicted_corrupt += 1;
        self.report.log_eviction(digest, reason);
        count_evict();
        let _ = self.flush_index();
    }

    fn write_object(
        &mut self,
        key: &StoreKey,
        entry: IndexEntry,
        payload: String,
        sidecar: Sidecar,
    ) -> Result<(), StoreError> {
        let obj = StoredObject {
            digest: key.digest.clone(),
            checksum: sha256_hex(payload.as_bytes()),
            entry: entry.clone(),
            payload,
            sidecar,
        };
        let text = serde_json::to_string(&object_to_value(&obj))
            .map_err(|e| StoreError::Encode(e.to_string()))?;
        self.write_atomic(&self.object_path(&key.digest), text.as_bytes())?;
        self.index.entries.insert(key.digest.clone(), entry);
        self.flush_index()?;
        if pas2p_obs::enabled() {
            pas2p_obs::counter("store.put").add(1);
            pas2p_obs::gauge("store.entries").set(self.index.entries.len() as f64);
        }
        Ok(())
    }

    /// Persist the index. Called by every mutating operation; public so
    /// long-running services can force a sync point.
    pub fn flush_index(&mut self) -> Result<(), StoreError> {
        let text = serde_json::to_string(&index_to_value(&self.index))
            .map_err(|e| StoreError::Encode(e.to_string()))?;
        self.write_atomic(&self.index_path(), text.as_bytes())
    }

    /// Durable atomic write: a per-write unique temp file (so two
    /// concurrent writers can never clobber each other's temp), fsynced
    /// before the rename, with the parent directory fsynced after it —
    /// an acknowledged write survives a crash at any point, and a crash
    /// mid-write leaves only a stale temp for the next open's recovery
    /// pass. Any failure removes the temp and surfaces a classified
    /// [`StoreError`]; the target is never left torn.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
        let tmp = temp_path_for(path, bytes);
        let cleanup_on = |context: &str, e: std::io::Error| {
            let _ = self.io.remove_file(&tmp);
            io_err(context, e)
        };
        self.io
            .write(&tmp, bytes)
            .map_err(|e| cleanup_on("writing artifact", e))?;
        self.io
            .sync_file(&tmp)
            .map_err(|e| cleanup_on("fsyncing artifact", e))?;
        self.io
            .rename(&tmp, path)
            .map_err(|e| cleanup_on("publishing artifact", e))?;
        if let Some(parent) = path.parent() {
            self.io
                .sync_dir(parent)
                .map_err(|e| io_err("fsyncing store directory", e))?;
        }
        Ok(())
    }
}

/// A per-write unique temp name next to `path`: a digest-derived
/// suffix (first 16 hex of the content's SHA-256) plus pid and a
/// process-global sequence number. Ends in `.tmp` so startup recovery
/// can sweep strays.
fn temp_path_for(path: &Path, bytes: &[u8]) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let digest = sha256_hex(bytes);
    let name = format!(
        "{}.{}-{}-{}.tmp",
        path.file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("artifact"),
        &digest[..16],
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    );
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn temp_names_are_unique_per_write_and_digest_derived() {
        let path = Path::new("/store/objects/abcd.json");
        let a = temp_path_for(path, b"payload one");
        let b = temp_path_for(path, b"payload one");
        let c = temp_path_for(path, b"payload two");
        // Same target, same content: still distinct (sequence number).
        assert_ne!(a, b, "two writers must never share a temp file");
        assert_ne!(a, c);
        for t in [&a, &b, &c] {
            assert_eq!(t.extension().and_then(|e| e.to_str()), Some("tmp"));
            assert_eq!(t.parent(), path.parent(), "temp stays in the target dir");
            let name = t.file_name().unwrap().to_string_lossy().into_owned();
            assert!(name.starts_with("abcd.json."), "suffix scheme: {name}");
        }
        // The digest-derived component differs with the content.
        let digest_of = |p: &Path| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            name.split('.').nth(2).unwrap().split('-').next().unwrap().to_string()
        };
        assert_eq!(digest_of(&a), digest_of(&b));
        assert_ne!(digest_of(&a), digest_of(&c));
    }

    #[test]
    fn concurrent_writers_leave_every_object_well_formed() {
        let root = std::env::temp_dir().join(format!(
            "pas2p-store-concurrent-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        // Many threads, each with its own store handle over the same
        // root, writing distinct keys: every published object must be
        // intact (no clobbered temp, no torn rename target). Handles are
        // opened up front because open's recovery pass sweeps *.tmp
        // files — legitimate on startup, hostile to a write in flight.
        let mut handles: Vec<SignatureStore> = (0..4)
            .map(|_| SignatureStore::open(&root).expect("open"))
            .collect();
        std::thread::scope(|scope| {
            for (t, store) in handles.iter_mut().enumerate() {
                let t = t as u8;
                scope.spawn(move || {
                    for i in 0..8u8 {
                        let key = StoreKey {
                            digest: sha256_hex(&[t, i]),
                            fingerprint: "fp".into(),
                        };
                        let entry = IndexEntry {
                            kind: ArtifactKind::Prediction,
                            format_version: STORE_FORMAT_VERSION,
                            fingerprint: "fp".into(),
                            app: format!("app-{t}"),
                            workload: "w".into(),
                            nprocs: 8,
                            base: "A".into(),
                            target: Some("B".into()),
                        };
                        store
                            .put_prediction_json(&key, entry, &format!("{{\"pet\":{t}.{i}}}"))
                            .expect("put");
                    }
                });
            }
        });
        let mut count = 0;
        for file in std::fs::read_dir(root.join("objects")).expect("objects") {
            let path = file.expect("entry").path();
            assert_ne!(
                path.extension().and_then(|e| e.to_str()),
                Some("tmp"),
                "no temp litter after clean writes: {path:?}"
            );
            let text = std::fs::read_to_string(&path).expect("object readable");
            let v: Value = serde_json::from_str(&text).expect("object parses");
            let obj = object_from_value(&v).expect("object well-formed");
            assert_eq!(obj.checksum, sha256_hex(obj.payload.as_bytes()));
            count += 1;
        }
        assert_eq!(count, 32, "every write published exactly one object");
        let _ = std::fs::remove_dir_all(&root);
    }
}

fn count_hit() {
    if pas2p_obs::enabled() {
        pas2p_obs::counter("store.hit").add(1);
    }
}

fn count_miss() {
    if pas2p_obs::enabled() {
        pas2p_obs::counter("store.miss").add(1);
    }
}

fn count_evict() {
    if pas2p_obs::enabled() {
        pas2p_obs::counter("store.evict").add(1);
    }
}
