//! Workload kernels for the PAS2P reproduction.
//!
//! The paper evaluates PAS2P on CG, BT, SP, LU and FT from the NAS
//! Parallel Benchmarks, Sweep3D, SMG2000, the Parallel Ocean Program,
//! GROMACS and Moldy. Each kernel here reproduces the corresponding
//! application's *communication structure* (topology, collective mix,
//! message sizes, per-iteration repetitiveness, prologue/epilogue) and
//! carries real — scaled-down — numerics plus declared full-scale work so
//! the machine models charge realistic virtual time. All kernels
//! implement [`MpiApp`]/[`RankProgram`](pas2p_signature::RankProgram) and
//! are therefore traceable, checkpointable and signature-ready.

#![forbid(unsafe_code)]

pub mod gromacs;
pub mod master_worker;
pub mod moldy;
pub mod npb;
pub mod pop;
pub mod smg2000;
pub mod sweep3d;
pub mod util;

pub use gromacs::GromacsApp;
pub use master_worker::MasterWorkerApp;
pub use moldy::MoldyApp;
pub use npb::bt::BtApp;
pub use npb::cg::CgApp;
pub use npb::ft::FtApp;
pub use npb::lu::LuApp;
pub use npb::sp::SpApp;
pub use npb::Class;
pub use pop::PopApp;
pub use smg2000::Smg2000App;
pub use sweep3d::Sweep3dApp;

use pas2p_signature::MpiApp;

/// Instantiate an application by name at a given process count, using the
/// paper's workload presets (scaled). Names are case-insensitive:
/// `cg`, `bt`, `sp`, `lu`, `ft`, `sweep3d`, `smg2000`, `pop`, `moldy`,
/// `gromacs`, `masterworker`.
pub fn by_name(name: &str, nprocs: u32) -> Option<Box<dyn MpiApp>> {
    Some(match name.to_ascii_lowercase().as_str() {
        "cg" => Box::new(CgApp::class_c(nprocs)),
        "bt" => Box::new(BtApp::class_c(nprocs)),
        "sp" => Box::new(SpApp::class_c(nprocs)),
        "lu" => Box::new(LuApp::class_c(nprocs)),
        "ft" => Box::new(FtApp::class_d(nprocs)),
        "sweep3d" => Box::new(Sweep3dApp::sweep250(nprocs)),
        "smg2000" | "smg2k" => Box::new(Smg2000App::n200(nprocs)),
        "pop" => Box::new(PopApp::synthetic(nprocs)),
        "moldy" => Box::new(MoldyApp::tip4p(nprocs)),
        "gromacs" => Box::new(GromacsApp::benchmark(nprocs)),
        "masterworker" | "master_worker" | "mw" => {
            Box::new(MasterWorkerApp::one_shot(nprocs))
        }
        _ => return None,
    })
}

/// The paper's Table 4 application set (base-machine cluster A analysis):
/// CG/BT/SP class C at 64 processes, Sweep3D sweep.250 at 32, SMG2000 at
/// 64, POP at 64 — scaled for CI, with process counts divided by
/// `shrink` (use `shrink = 1` for the paper's sizes).
pub fn table4_apps(shrink: u32) -> Vec<Box<dyn MpiApp>> {
    assert!(shrink >= 1);
    vec![
        Box::new(CgApp::class_c(64 / shrink)),
        Box::new(BtApp::class_c(64 / shrink)),
        Box::new(SpApp::class_c(64 / shrink)),
        Box::new(Smg2000App::n200(64 / shrink)),
        Box::new(Sweep3dApp::sweep250(32 / shrink)),
        Box::new(PopApp::synthetic(64 / shrink)),
    ]
}

/// The paper's Table 6 application set (base-machine cluster C, 256
/// processes): CG/BT/SP class D, SMG2000 long run, Sweep3D sweep.200.
pub fn table6_apps(shrink: u32) -> Vec<Box<dyn MpiApp>> {
    assert!(shrink >= 1);
    vec![
        Box::new(CgApp::class_d(256 / shrink)),
        Box::new(BtApp::class_d(256 / shrink)),
        Box::new(SpApp::class_d(256 / shrink)),
        Box::new(Smg2000App::n200_long(256 / shrink)),
        Box::new(Sweep3dApp::sweep200(256 / shrink)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_name_resolves_all_applications() {
        for n in [
            "CG", "bt", "SP", "lu", "FT", "Sweep3D", "SMG2000", "smg2k", "POP", "moldy",
            "GROMACS", "masterworker",
        ] {
            let app = by_name(n, 16).unwrap_or_else(|| panic!("{} missing", n));
            assert_eq!(app.nprocs(), 16);
        }
        assert!(by_name("nonesuch", 4).is_none());
    }

    #[test]
    fn table_sets_match_paper_process_counts() {
        let t4 = table4_apps(1);
        assert_eq!(t4.len(), 6);
        assert_eq!(t4[0].nprocs(), 64);
        assert_eq!(t4[4].nprocs(), 32); // Sweep3D
        let t6 = table6_apps(1);
        assert_eq!(t6.len(), 5);
        assert!(t6.iter().all(|a| a.nprocs() == 256));
    }

    #[test]
    fn shrink_scales_process_counts() {
        let t4 = table4_apps(8);
        assert_eq!(t4[0].nprocs(), 8);
        assert_eq!(t4[4].nprocs(), 4);
    }
}
