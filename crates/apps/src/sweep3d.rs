//! Sweep3D: the ASCI 3-D discrete-ordinates neutron-transport kernel.
//!
//! The domain is decomposed over a 2-D process grid (i, j); the k
//! dimension and the angular octants pipeline through it as wavefronts.
//! For each timestep and each of the 8 octants, a rank receives the
//! upstream i- and j-fluxes, computes its k-blocks of angles, and sends
//! downstream — the classic diagonal pipeline the paper analyzes
//! (workloads `sweep.250`/`sweep.200`/`sweep.150`, 13 iterations).

use crate::util::{near_square_grid, SplitMix, StateReader, StateWriter};
use pas2p_machine::Work;
use pas2p_mpisim::Mpi;
use pas2p_signature::{MpiApp, RankProgram};

/// The Sweep3D application.
pub struct Sweep3dApp {
    /// Number of processes (2-D grid).
    pub nprocs: u32,
    /// Grid points per dimension — the paper's `sweep.N` input.
    pub grid_n: u32,
    /// Timestep iterations (the paper uses 13).
    pub iters: u64,
    /// k-blocks per octant sweep.
    pub k_blocks: u32,
}

impl Sweep3dApp {
    /// `sweep.250`, 13 iterations — Table 4 (32 processes).
    pub fn sweep250(nprocs: u32) -> Sweep3dApp {
        Sweep3dApp { nprocs, grid_n: 250, iters: 13, k_blocks: 4 }
    }

    /// `sweep.200`, 13 iterations — Table 6 (256 processes).
    pub fn sweep200(nprocs: u32) -> Sweep3dApp {
        Sweep3dApp { nprocs, grid_n: 200, iters: 13, k_blocks: 4 }
    }

    /// `sweep.150` — the §6 tool-performance workload.
    pub fn sweep150(nprocs: u32) -> Sweep3dApp {
        Sweep3dApp { nprocs, grid_n: 150, iters: 13, k_blocks: 4 }
    }
}

impl MpiApp for Sweep3dApp {
    fn name(&self) -> String {
        "Sweep3D".into()
    }
    fn nprocs(&self) -> u32 {
        self.nprocs
    }
    fn workload(&self) -> String {
        format!("sweep.{} {} iterations", self.grid_n, self.iters)
    }
    fn make_rank(&self, rank: u32) -> Box<dyn RankProgram> {
        let (rows, cols) = near_square_grid(self.nprocs);
        let n = self.grid_n as f64;
        let local = 256usize;
        let mut rng = SplitMix::new(0x3D ^ rank as u64);
        Box::new(SweepRank {
            rank,
            rows,
            cols,
            iters: self.iters,
            k_blocks: self.k_blocks,
            // n³ cells × ~60 flops per cell-angle × angles per octant,
            // split over ranks and k-blocks.
            block_flops: 600.0 * n * n * n / (self.nprocs as f64 * self.k_blocks as f64),
            mem_bytes: 120.0 * n * n * n / (self.nprocs as f64 * self.k_blocks as f64),
            // Face fluxes: n²/P doubles per boundary.
            msg_bytes: (8.0 * n * n / (self.nprocs as f64).sqrt()) as usize,
            flux: (0..local).map(|_| rng.next_f64()).collect(),
            step_no: 0,
        })
    }
}

struct SweepRank {
    rank: u32,
    rows: u32,
    cols: u32,
    iters: u64,
    k_blocks: u32,
    block_flops: f64,
    mem_bytes: f64,
    msg_bytes: usize,
    flux: Vec<f64>,
    step_no: u64,
}

impl SweepRank {
    fn row(&self) -> u32 {
        self.rank / self.cols
    }
    fn col(&self) -> u32 {
        self.rank % self.cols
    }
    fn neighbour(&self, dr: i64, dc: i64) -> Option<u32> {
        let r = self.row() as i64 + dr;
        let c = self.col() as i64 + dc;
        (r >= 0 && r < self.rows as i64 && c >= 0 && c < self.cols as i64)
            .then(|| (r as u32) * self.cols + c as u32)
    }

    fn relax(&mut self) {
        let n = self.flux.len();
        for i in 0..n {
            let a = self.flux[(i + 1) % n];
            self.flux[i] = 0.98 * self.flux[i] + 0.02 * a;
        }
    }

    /// Sweep one octant: directions (di, dj) give the upstream/downstream
    /// neighbours in the grid.
    fn octant(&mut self, ctx: &mut dyn Mpi, di: i64, dj: i64, tag: u32) {
        let up_i = self.neighbour(-di, 0);
        let up_j = self.neighbour(0, -dj);
        let down_i = self.neighbour(di, 0);
        let down_j = self.neighbour(0, dj);
        for kb in 0..self.k_blocks {
            let t = tag + kb;
            if let Some(p) = up_i {
                ctx.recv(Some(p), Some(t));
            }
            if let Some(p) = up_j {
                ctx.recv(Some(p), Some(t + 500));
            }
            ctx.compute(Work::new(self.block_flops, self.mem_bytes));
            if let Some(p) = down_i {
                ctx.send(p, t, &vec![1u8; self.msg_bytes]);
            }
            if let Some(p) = down_j {
                ctx.send(p, t + 500, &vec![2u8; self.msg_bytes]);
            }
        }
    }
}

impl RankProgram for SweepRank {
    fn prologue(&mut self, ctx: &mut dyn Mpi) {
        // Input decks + flux initialization.
        ctx.compute(Work::new(self.block_flops * self.k_blocks as f64, self.mem_bytes));
        ctx.barrier();
    }

    fn steps(&self) -> u64 {
        self.iters
    }

    fn step(&mut self, _s: u64, ctx: &mut dyn Mpi) {
        self.relax();
        // 8 octants: all four diagonal direction pairs, each twice (±k).
        let dirs = [(1i64, 1i64), (1, -1), (-1, 1), (-1, -1)];
        for (o, &(di, dj)) in dirs.iter().enumerate() {
            let tag = 10 + (o as u32) * 1000;
            self.octant(ctx, di, dj, tag);
            self.octant(ctx, di, dj, tag + 100); // the ±k mirror octant
        }
        // Flux error check each timestep.
        ctx.allreduce_f64(&[self.flux[0]], pas2p_mpisim::ReduceOp::Max);
        self.step_no += 1;
    }

    fn epilogue(&mut self, ctx: &mut dyn Mpi) {
        ctx.reduce_f64(0, &[self.flux[0]], pas2p_mpisim::ReduceOp::Sum);
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.u64(self.step_no).f64s(&self.flux);
        w.finish()
    }

    fn restore(&mut self, bytes: &[u8]) {
        let mut r = StateReader::new(bytes);
        self.step_no = r.u64();
        self.flux = r.f64s();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas2p_machine::{cluster_a, JitterModel, MappingPolicy};
    use pas2p_signature::run_plain;

    #[test]
    fn sweep_pipelines_without_deadlock() {
        let mut m = cluster_a();
        m.jitter = JitterModel::none();
        let app = Sweep3dApp { nprocs: 16, grid_n: 50, iters: 2, k_blocks: 2 };
        let r = run_plain(&app, &m, MappingPolicy::Block);
        assert!(!r.aborted);
        assert!(r.makespan > 0.0);
    }

    #[test]
    fn corner_ranks_skip_missing_neighbours() {
        let mut m = cluster_a();
        m.jitter = JitterModel::none();
        // 1-D degenerate grids also work.
        let app = Sweep3dApp { nprocs: 2, grid_n: 30, iters: 1, k_blocks: 2 };
        let r = run_plain(&app, &m, MappingPolicy::Block);
        assert!(!r.aborted);
    }

    #[test]
    fn larger_input_means_longer_run() {
        let mut m = cluster_a();
        m.jitter = JitterModel::none();
        let small = Sweep3dApp { nprocs: 4, grid_n: 40, iters: 2, k_blocks: 2 };
        let large = Sweep3dApp { nprocs: 4, grid_n: 80, iters: 2, k_blocks: 2 };
        let rs = run_plain(&small, &m, MappingPolicy::Block);
        let rl = run_plain(&large, &m, MappingPolicy::Block);
        assert!(rl.makespan > rs.makespan * 2.0);
    }

    #[test]
    fn sweep_snapshot_roundtrips() {
        let app = Sweep3dApp::sweep150(4);
        let p = app.make_rank(3);
        let snap = p.snapshot();
        let mut q = app.make_rank(3);
        q.restore(&snap);
        assert_eq!(q.snapshot(), snap);
    }
}
