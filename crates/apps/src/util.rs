//! Shared helpers: process-grid math, the checkpoint state codec, and a
//! tiny deterministic PRNG for initial data.

/// Factor `n` into the most square `rows × cols` grid (rows ≤ cols).
pub fn near_square_grid(n: u32) -> (u32, u32) {
    assert!(n > 0);
    let mut best = (1, n);
    let mut r = 1;
    while r * r <= n {
        if n.is_multiple_of(r) {
            best = (r, n / r);
        }
        r += 1;
    }
    best
}

/// Factor `n` into a 3-D grid `(px, py, pz)` with px ≤ py ≤ pz.
pub fn near_cube_grid(n: u32) -> (u32, u32, u32) {
    let mut best = (1, 1, n);
    let mut best_score = u32::MAX;
    let mut x = 1;
    while x * x * x <= n {
        if n.is_multiple_of(x) {
            let rest = n / x;
            let (y, z) = near_square_grid(rest);
            let score = z - x;
            if score < best_score {
                best = (x, y.min(z), y.max(z));
                best_score = score;
            }
        }
        x += 1;
    }
    best
}

/// Deterministic splitmix64 stream for initial data.
#[derive(Debug, Clone)]
pub struct SplitMix {
    state: u64,
}

impl SplitMix {
    /// Seeded stream.
    pub fn new(seed: u64) -> SplitMix {
        SplitMix { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Minimal binary codec for checkpoint snapshots (we deliberately avoid a
/// serialization framework here: snapshots are hot and size-metered).
#[derive(Debug, Default)]
pub struct StateWriter {
    buf: Vec<u8>,
}

impl StateWriter {
    /// Fresh writer.
    pub fn new() -> StateWriter {
        StateWriter { buf: Vec::new() }
    }

    /// Append a u64.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append an f64.
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a length-prefixed f64 slice.
    pub fn f64s(&mut self, vs: &[f64]) -> &mut Self {
        self.u64(vs.len() as u64);
        for v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
        self
    }

    /// Finish and take the buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Reader matching [`StateWriter`].
#[derive(Debug)]
pub struct StateReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> StateReader<'a> {
    /// Read from a snapshot buffer.
    pub fn new(buf: &'a [u8]) -> StateReader<'a> {
        StateReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> &'a [u8] {
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        s
    }

    /// Read a u64.
    pub fn u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    /// Read an f64.
    pub fn f64(&mut self) -> f64 {
        f64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    /// Read a length-prefixed f64 vector.
    pub fn f64s(&mut self) -> Vec<f64> {
        let n = self.u64() as usize;
        (0..n).map(|_| self.f64()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn near_square_prefers_balanced_factors() {
        assert_eq!(near_square_grid(64), (8, 8));
        assert_eq!(near_square_grid(32), (4, 8));
        assert_eq!(near_square_grid(256), (16, 16));
        assert_eq!(near_square_grid(7), (1, 7));
        assert_eq!(near_square_grid(1), (1, 1));
    }

    #[test]
    fn near_cube_factors() {
        assert_eq!(near_cube_grid(64), (4, 4, 4));
        let (x, y, z) = near_cube_grid(32);
        assert_eq!(x * y * z, 32);
        assert!(x <= y && y <= z);
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix::new(7);
        let mut b = SplitMix::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let v = SplitMix::new(7).next_f64();
        assert!((0.0..1.0).contains(&v));
    }

    #[test]
    fn state_codec_roundtrips() {
        let mut w = StateWriter::new();
        w.u64(42).f64(1.5).f64s(&[1.0, 2.0, 3.0]);
        let buf = w.finish();
        let mut r = StateReader::new(&buf);
        assert_eq!(r.u64(), 42);
        assert_eq!(r.f64(), 1.5);
        assert_eq!(r.f64s(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn empty_f64s_roundtrip() {
        let mut w = StateWriter::new();
        w.f64s(&[]);
        let buf = w.finish();
        assert_eq!(StateReader::new(&buf).f64s(), Vec::<f64>::new());
    }
}
