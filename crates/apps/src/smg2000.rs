//! SMG2000: semicoarsening multigrid solver (the ASC Purple benchmark).
//!
//! Each solver iteration is a V-cycle: relaxation with nearest-neighbour
//! halo exchanges on every level, with grids (and therefore message sizes
//! and compute) shrinking level by level, then the mirrored up-phase, and
//! a residual allreduce. The paper runs `-n 200 solver 3` on 64 and 256
//! processes.

use crate::util::{near_square_grid, SplitMix, StateReader, StateWriter};
use pas2p_machine::Work;
use pas2p_mpisim::Mpi;
use pas2p_signature::{MpiApp, RankProgram};

/// The SMG2000 application.
pub struct Smg2000App {
    /// Number of processes (2-D grid).
    pub nprocs: u32,
    /// Per-process grid points per dimension (`-n N`).
    pub n: u32,
    /// Multigrid levels in the V-cycle.
    pub levels: u32,
    /// Solver iterations.
    pub iters: u64,
}

impl Smg2000App {
    /// Table 4 configuration: `-n 200 solver 3`, 64 processes (scaled
    /// iterations).
    pub fn n200(nprocs: u32) -> Smg2000App {
        Smg2000App { nprocs, n: 200, levels: 4, iters: 30 }
    }

    /// Table 6 configuration: `-n 200 solver 3`, 1200 iterations (scaled).
    pub fn n200_long(nprocs: u32) -> Smg2000App {
        Smg2000App { nprocs, n: 200, levels: 4, iters: 60 }
    }
}

impl MpiApp for Smg2000App {
    fn name(&self) -> String {
        "SMG2000".into()
    }
    fn nprocs(&self) -> u32 {
        self.nprocs
    }
    fn workload(&self) -> String {
        format!("-n {} solver 3 ({} iters)", self.n, self.iters)
    }
    fn make_rank(&self, rank: u32) -> Box<dyn RankProgram> {
        let (rows, cols) = near_square_grid(self.nprocs);
        let n = self.n as f64;
        let local = 256usize;
        let mut rng = SplitMix::new(0x56 ^ rank as u64);
        Box::new(SmgRank {
            rank,
            rows,
            cols,
            iters: self.iters,
            levels: self.levels,
            relax_flops: 60.0 * n * n * n,
            mem_bytes: 40.0 * n * n * n,
            msg_bytes: (8.0 * n * n) as usize,
            x: (0..local).map(|_| rng.next_f64()).collect(),
            step_no: 0,
        })
    }
}

struct SmgRank {
    rank: u32,
    rows: u32,
    cols: u32,
    iters: u64,
    levels: u32,
    relax_flops: f64,
    mem_bytes: f64,
    msg_bytes: usize,
    x: Vec<f64>,
    step_no: u64,
}

impl SmgRank {
    fn row(&self) -> u32 {
        self.rank / self.cols
    }
    fn col(&self) -> u32 {
        self.rank % self.cols
    }
    fn neighbour(&self, dr: i64, dc: i64) -> Option<u32> {
        let r = self.row() as i64 + dr;
        let c = self.col() as i64 + dc;
        (r >= 0 && r < self.rows as i64 && c >= 0 && c < self.cols as i64)
            .then(|| (r as u32) * self.cols + c as u32)
    }

    /// Halo exchange at level `level` (semicoarsening halves one
    /// dimension per level, shrinking messages and compute by ~2×).
    fn halo(&mut self, ctx: &mut dyn Mpi, level: u32, tag: u32) {
        let shrink = 1usize << level;
        let bytes = (self.msg_bytes / shrink).max(64);
        // Ordered neighbour exchange avoids send/recv cycles: send to
        // lower-ranked neighbours first, then receive, then the reverse.
        let pairs = [(-1i64, 0i64), (1, 0), (0, -1), (0, 1)];
        for (i, &(dr, dc)) in pairs.iter().enumerate() {
            if let Some(p) = self.neighbour(dr, dc) {
                let t = tag + i as u32;
                ctx.send(p, t, &vec![1u8; bytes]);
            }
        }
        for (i, &(dr, dc)) in pairs.iter().enumerate() {
            // Matching receive: the neighbour sent with the mirrored
            // direction index.
            let mirror = [1usize, 0, 3, 2][i];
            if let Some(p) = self.neighbour(dr, dc) {
                ctx.recv(Some(p), Some(tag + mirror as u32));
            }
        }
    }

    fn relax(&mut self, ctx: &mut dyn Mpi, level: u32) {
        let shrink = (1u64 << level) as f64;
        let n = self.x.len();
        for i in 0..n {
            let a = self.x[(i + n - 1) % n];
            let b = self.x[(i + 1) % n];
            self.x[i] = 0.8 * self.x[i] + 0.1 * (a + b);
        }
        ctx.compute(Work::new(self.relax_flops / shrink, self.mem_bytes / shrink));
    }
}

impl RankProgram for SmgRank {
    fn prologue(&mut self, ctx: &mut dyn Mpi) {
        // Grid + operator setup: one halo and a heavy local assembly.
        ctx.compute(Work::new(self.relax_flops * 2.0, self.mem_bytes * 2.0));
        self.halo(ctx, 0, 900);
        ctx.barrier();
    }

    fn steps(&self) -> u64 {
        self.iters
    }

    fn step(&mut self, _s: u64, ctx: &mut dyn Mpi) {
        // Down-cycle: relax + halo per level, coarsening as we go.
        for level in 0..self.levels {
            self.halo(ctx, level, 10 + level * 10);
            self.relax(ctx, level);
        }
        // Coarsest solve.
        ctx.compute(Work::flops(self.relax_flops / (1u64 << self.levels) as f64));
        // Up-cycle: interpolate + relax back up.
        for level in (0..self.levels).rev() {
            self.halo(ctx, level, 500 + level * 10);
            self.relax(ctx, level);
        }
        // Convergence check.
        ctx.allreduce_f64(&[self.x[0]], pas2p_mpisim::ReduceOp::Sum);
        self.step_no += 1;
    }

    fn epilogue(&mut self, ctx: &mut dyn Mpi) {
        ctx.reduce_f64(0, &[self.x[0]], pas2p_mpisim::ReduceOp::Sum);
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.u64(self.step_no).f64s(&self.x);
        w.finish()
    }

    fn restore(&mut self, bytes: &[u8]) {
        let mut r = StateReader::new(bytes);
        self.step_no = r.u64();
        self.x = r.f64s();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas2p_machine::{cluster_a, JitterModel, MappingPolicy};
    use pas2p_signature::run_plain;

    #[test]
    fn smg_vcycle_completes() {
        let mut m = cluster_a();
        m.jitter = JitterModel::none();
        let app = Smg2000App { nprocs: 16, n: 40, levels: 3, iters: 2 };
        let r = run_plain(&app, &m, MappingPolicy::Block);
        assert!(!r.aborted);
        assert!(r.makespan > 0.0);
    }

    #[test]
    fn more_levels_means_more_messages() {
        let mut m = cluster_a();
        m.jitter = JitterModel::none();
        let shallow = Smg2000App { nprocs: 9, n: 40, levels: 2, iters: 2 };
        let deep = Smg2000App { nprocs: 9, n: 40, levels: 4, iters: 2 };
        let rs = run_plain(&shallow, &m, MappingPolicy::Block);
        let rd = run_plain(&deep, &m, MappingPolicy::Block);
        assert!(rd.total_msgs > rs.total_msgs);
    }

    #[test]
    fn smg_snapshot_roundtrips() {
        let app = Smg2000App::n200(4);
        let p = app.make_rank(2);
        let snap = p.snapshot();
        let mut q = app.make_rank(2);
        q.restore(&snap);
        assert_eq!(q.snapshot(), snap);
    }
}
