//! Master/worker: the paper's illustrative counter-example (§6).
//!
//! "The master sends the job to the workers, then the workers compute and
//! when they end the job send their results to the master. In this kind
//! of application PAS2P detects one phase with a weight of 1 and
//! executing this phase will be the same as to execute the whole
//! application."
//!
//! The one-shot variant reproduces exactly that behaviour; a repeated
//! variant (rounds > 1) turns the same code into a weighted phase,
//! useful for testing how weight changes the prediction.

use crate::util::{SplitMix, StateReader, StateWriter};
use pas2p_machine::Work;
use pas2p_mpisim::Mpi;
use pas2p_signature::{MpiApp, RankProgram};

/// The master/worker application.
pub struct MasterWorkerApp {
    /// Number of processes (rank 0 is the master).
    pub nprocs: u32,
    /// Task distribution rounds; 1 reproduces the paper's single-phase,
    /// weight-1 scenario.
    pub rounds: u64,
    /// Worker compute per task, flops.
    pub task_flops: f64,
}

impl MasterWorkerApp {
    /// The paper's one-shot scenario.
    pub fn one_shot(nprocs: u32) -> MasterWorkerApp {
        MasterWorkerApp { nprocs, rounds: 1, task_flops: 5e9 }
    }
}

impl MpiApp for MasterWorkerApp {
    fn name(&self) -> String {
        "MasterWorker".into()
    }
    fn nprocs(&self) -> u32 {
        self.nprocs
    }
    fn workload(&self) -> String {
        format!("{} rounds", self.rounds)
    }
    fn make_rank(&self, rank: u32) -> Box<dyn RankProgram> {
        Box::new(MwRank {
            rank,
            nprocs: self.nprocs,
            rounds: self.rounds,
            task_flops: self.task_flops,
            result: SplitMix::new(rank as u64).next_f64(),
            step_no: 0,
        })
    }
}

struct MwRank {
    rank: u32,
    nprocs: u32,
    rounds: u64,
    task_flops: f64,
    result: f64,
    step_no: u64,
}

impl RankProgram for MwRank {
    fn prologue(&mut self, _ctx: &mut dyn Mpi) {}

    fn steps(&self) -> u64 {
        self.rounds
    }

    fn step(&mut self, _s: u64, ctx: &mut dyn Mpi) {
        if self.rank == 0 {
            // Distribute one task to each worker, then collect results.
            // ANY_SOURCE receives: the nondeterministic pattern §3.2
            // motivates.
            for w in 1..self.nprocs {
                ctx.send(w, 1, &vec![1u8; 4096]);
            }
            for _ in 1..self.nprocs {
                let m = ctx.recv(None, Some(2));
                self.result += m.data.len() as f64;
            }
        } else {
            ctx.recv(Some(0), Some(1));
            // Unbalanced tasks: worker w computes w units.
            ctx.compute(Work::flops(self.task_flops * self.rank as f64
                / self.nprocs as f64));
            self.result = self.result * 0.5 + self.rank as f64;
            ctx.send(0, 2, &vec![2u8; 1024]);
        }
        self.step_no += 1;
    }

    fn epilogue(&mut self, _ctx: &mut dyn Mpi) {}

    fn snapshot(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.u64(self.step_no).f64(self.result);
        w.finish()
    }

    fn restore(&mut self, bytes: &[u8]) {
        let mut r = StateReader::new(bytes);
        self.step_no = r.u64();
        self.result = r.f64();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas2p_machine::{cluster_a, JitterModel, MappingPolicy};
    use pas2p_signature::run_plain;

    #[test]
    fn master_worker_completes() {
        let mut m = cluster_a();
        m.jitter = JitterModel::none();
        let app = MasterWorkerApp::one_shot(8);
        let r = run_plain(&app, &m, MappingPolicy::Block);
        assert!(!r.aborted);
        // 7 task sends + 7 result sends.
        assert_eq!(r.total_msgs, 14);
    }

    #[test]
    fn imbalance_shows_in_clocks() {
        let mut m = cluster_a();
        m.jitter = JitterModel::none();
        let app = MasterWorkerApp::one_shot(8);
        let r = run_plain(&app, &m, MappingPolicy::Block);
        // Worker 7 computes 7× worker 1's load; the master waits for all.
        assert!(r.imbalance() > 0.1);
    }

    #[test]
    fn mw_snapshot_roundtrips() {
        let app = MasterWorkerApp::one_shot(4);
        let p = app.make_rank(0);
        let snap = p.snapshot();
        let mut q = app.make_rank(0);
        q.restore(&snap);
        assert_eq!(q.snapshot(), snap);
    }
}
