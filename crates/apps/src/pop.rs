//! POP: the Parallel Ocean Program (synthetic configuration).
//!
//! Each timestep has two regimes with very different communication
//! signatures — exactly the multi-phase structure PAS2P thrives on:
//!
//! * **baroclinic**: heavy 3-D tracer computation with one large
//!   4-neighbour halo exchange;
//! * **barotropic**: an implicit free-surface solve — several cheap
//!   conjugate-gradient inner iterations, each a small halo plus two
//!   global reductions.
//!
//! The paper runs a synthetic benchmark with 150 iterations on 64
//! processes (Table 4).

use crate::util::{near_square_grid, SplitMix, StateReader, StateWriter};
use pas2p_machine::Work;
use pas2p_mpisim::Mpi;
use pas2p_signature::{MpiApp, RankProgram};

/// The POP application.
pub struct PopApp {
    /// Number of processes (2-D grid).
    pub nprocs: u32,
    /// Timesteps (the paper's synthetic input: 150).
    pub iters: u64,
    /// Inner barotropic CG iterations per timestep.
    pub inner: u32,
}

impl PopApp {
    /// Table 4 configuration: synthetic, 150 iterations (scaled to 50).
    pub fn synthetic(nprocs: u32) -> PopApp {
        PopApp { nprocs, iters: 50, inner: 4 }
    }
}

impl MpiApp for PopApp {
    fn name(&self) -> String {
        "POP".into()
    }
    fn nprocs(&self) -> u32 {
        self.nprocs
    }
    fn workload(&self) -> String {
        format!("Synthetic with {} iterations", self.iters)
    }
    fn make_rank(&self, rank: u32) -> Box<dyn RankProgram> {
        let (rows, cols) = near_square_grid(self.nprocs);
        let local = 256usize;
        let mut rng = SplitMix::new(0xB0 ^ rank as u64);
        Box::new(PopRank {
            rank,
            rows,
            cols,
            iters: self.iters,
            inner: self.inner,
            baroclinic_flops: 2.0e10 / self.nprocs as f64,
            barotropic_flops: 6.0e8 / self.nprocs as f64,
            mem_bytes: 1.2e10 / self.nprocs as f64,
            halo_bytes: 32768,
            eta: (0..local).map(|_| rng.next_f64()).collect(),
            step_no: 0,
        })
    }
}

struct PopRank {
    rank: u32,
    rows: u32,
    cols: u32,
    iters: u64,
    inner: u32,
    baroclinic_flops: f64,
    barotropic_flops: f64,
    mem_bytes: f64,
    halo_bytes: usize,
    eta: Vec<f64>,
    step_no: u64,
}

impl PopRank {
    fn row(&self) -> u32 {
        self.rank / self.cols
    }
    fn col(&self) -> u32 {
        self.rank % self.cols
    }
    /// POP is periodic east–west (the globe) and bounded north–south.
    fn neighbour(&self, dr: i64, dc: i64) -> Option<u32> {
        let r = self.row() as i64 + dr;
        if r < 0 || r >= self.rows as i64 {
            return None;
        }
        let c = (self.col() as i64 + dc).rem_euclid(self.cols as i64);
        Some((r as u32) * self.cols + c as u32)
    }

    /// POP's boundary update uses the nonblocking pattern: post all
    /// receives, send all faces, then wait — letting the wire time of the
    /// four exchanges overlap.
    fn halo(&mut self, ctx: &mut dyn Mpi, bytes: usize, tag: u32) {
        let pairs = [(-1i64, 0i64), (1, 0), (0, -1), (0, 1)];
        let mut reqs = Vec::with_capacity(4);
        for (i, &(dr, dc)) in pairs.iter().enumerate() {
            let mirror = [1usize, 0, 3, 2][i];
            if let Some(p) = self.neighbour(dr, dc) {
                reqs.push(ctx.irecv(Some(p), Some(tag + mirror as u32)));
            }
        }
        for (i, &(dr, dc)) in pairs.iter().enumerate() {
            if let Some(p) = self.neighbour(dr, dc) {
                ctx.send(p, tag + i as u32, &vec![1u8; bytes]);
            }
        }
        ctx.waitall(reqs);
    }

    fn advance_eta(&mut self) {
        let n = self.eta.len();
        for i in 0..n {
            let a = self.eta[(i + 1) % n];
            let b = self.eta[(i + n - 1) % n];
            self.eta[i] = 0.96 * self.eta[i] + 0.02 * (a + b);
        }
    }
}

impl RankProgram for PopRank {
    fn prologue(&mut self, ctx: &mut dyn Mpi) {
        // Grid/topography/forcing initialization.
        ctx.compute(Work::new(self.baroclinic_flops, self.mem_bytes));
        self.halo(ctx, self.halo_bytes, 900);
        ctx.barrier();
    }

    fn steps(&self) -> u64 {
        self.iters
    }

    fn step(&mut self, _s: u64, ctx: &mut dyn Mpi) {
        self.advance_eta();
        // Baroclinic: 3-D tracers, one big halo, heavy compute.
        self.halo(ctx, self.halo_bytes, 10);
        ctx.compute(Work::new(self.baroclinic_flops, self.mem_bytes));
        // Barotropic: CG inner iterations — small halo + 2 reductions.
        for _ in 0..self.inner {
            self.halo(ctx, self.halo_bytes / 8, 40);
            ctx.compute(Work::flops(self.barotropic_flops / self.inner as f64));
            ctx.allreduce_f64(&[self.eta[0]], pas2p_mpisim::ReduceOp::Sum);
            ctx.allreduce_f64(&[self.eta[1]], pas2p_mpisim::ReduceOp::Sum);
        }
        self.step_no += 1;
    }

    fn epilogue(&mut self, ctx: &mut dyn Mpi) {
        // Diagnostics output gather.
        ctx.reduce_f64(0, &[self.eta[0]], pas2p_mpisim::ReduceOp::Sum);
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.u64(self.step_no).f64s(&self.eta);
        w.finish()
    }

    fn restore(&mut self, bytes: &[u8]) {
        let mut r = StateReader::new(bytes);
        self.step_no = r.u64();
        self.eta = r.f64s();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas2p_machine::{cluster_a, JitterModel, MappingPolicy};
    use pas2p_signature::run_plain;

    #[test]
    fn pop_runs_both_regimes() {
        let mut m = cluster_a();
        m.jitter = JitterModel::none();
        let app = PopApp { nprocs: 16, iters: 3, inner: 2 };
        let r = run_plain(&app, &m, MappingPolicy::Block);
        assert!(!r.aborted);
        // 2 allreduces per inner iter per step per rank + prologue barrier
        // + epilogue reduce.
        assert_eq!(r.total_colls as u32, 16 * (3 * 2 * 2 + 2));
    }

    #[test]
    fn pop_periodic_east_west() {
        let app = PopApp { nprocs: 4, iters: 1, inner: 1 };
        let prog = app.make_rank(0);
        assert!(!prog.snapshot().is_empty());
        // Indirect check: the app runs on a 1-row grid where east-west
        // wraps; a bounded grid would deadlock on mismatched sends.
        let mut m = cluster_a();
        m.jitter = JitterModel::none();
        let r = run_plain(&PopApp { nprocs: 2, iters: 2, inner: 1 }, &m, MappingPolicy::Block);
        assert!(!r.aborted);
    }

    #[test]
    fn pop_snapshot_roundtrips() {
        let app = PopApp::synthetic(4);
        let p = app.make_rank(1);
        let snap = p.snapshot();
        let mut q = app.make_rank(1);
        q.restore(&snap);
        assert_eq!(q.snapshot(), snap);
    }
}
