//! GROMACS-like molecular dynamics with PME electrostatics.
//!
//! Distinguishes itself from Moldy by the particle-mesh-Ewald long-range
//! solver: every step does the short-range halo + force work, and every
//! `pme_every` steps the charge grid is redistributed with row/column
//! `MPI_Alltoall` transposes (the 3-D FFT inside PME) — giving the
//! application two strongly different phase families plus an occasional
//! load-balancing broadcast.

use crate::util::{near_square_grid, SplitMix, StateReader, StateWriter};
use bytes::Bytes;
use pas2p_machine::Work;
use pas2p_mpisim::{Group, Mpi};
use pas2p_signature::{MpiApp, RankProgram};

/// The GROMACS-like application.
pub struct GromacsApp {
    /// Number of processes.
    pub nprocs: u32,
    /// MD steps.
    pub steps: u64,
    /// PME long-range solve every this many steps.
    pub pme_every: u64,
    /// Dynamic load balancing broadcast every this many steps.
    pub dlb_every: u64,
}

impl GromacsApp {
    /// A scaled configuration comparable to the paper's GROMACS runs
    /// (Appendix D).
    pub fn benchmark(nprocs: u32) -> GromacsApp {
        GromacsApp { nprocs, steps: 80, pme_every: 4, dlb_every: 20 }
    }
}

impl MpiApp for GromacsApp {
    fn name(&self) -> String {
        "GROMACS".into()
    }
    fn nprocs(&self) -> u32 {
        self.nprocs
    }
    fn workload(&self) -> String {
        format!("{} steps, PME every {}", self.steps, self.pme_every)
    }
    fn make_rank(&self, rank: u32) -> Box<dyn RankProgram> {
        let (rows, cols) = near_square_grid(self.nprocs);
        let n_local = 128usize;
        let mut rng = SplitMix::new(0x6A ^ rank as u64);
        Box::new(GromacsRank {
            rank,
            rows,
            cols,
            steps: self.steps,
            pme_every: self.pme_every,
            dlb_every: self.dlb_every,
            force_flops: 3.0e9 / self.nprocs as f64,
            pme_flops: 1.0e9 / self.nprocs as f64,
            mem_bytes: 1.5e9 / self.nprocs as f64,
            halo_bytes: 16384,
            pme_block: 8192,
            q: (0..n_local).map(|_| rng.next_f64()).collect(),
            step_no: 0,
        })
    }
}

struct GromacsRank {
    rank: u32,
    rows: u32,
    cols: u32,
    steps: u64,
    pme_every: u64,
    dlb_every: u64,
    force_flops: f64,
    pme_flops: f64,
    mem_bytes: f64,
    halo_bytes: usize,
    pme_block: usize,
    q: Vec<f64>,
    step_no: u64,
}

impl GromacsRank {
    fn row(&self) -> u32 {
        self.rank / self.cols
    }
    fn col(&self) -> u32 {
        self.rank % self.cols
    }
    fn east(&self) -> u32 {
        self.row() * self.cols + (self.col() + 1) % self.cols
    }
    fn west(&self) -> u32 {
        self.row() * self.cols + (self.col() + self.cols - 1) % self.cols
    }

    fn short_range(&mut self, ctx: &mut dyn Mpi) {
        // Neighbour halo (ring along the row; GROMACS DD pulses).
        let (e, w) = (self.east(), self.west());
        if e != self.rank {
            ctx.send(e, 10, &vec![1u8; self.halo_bytes]);
            ctx.recv(Some(w), Some(10));
            ctx.send(w, 11, &vec![1u8; self.halo_bytes]);
            ctx.recv(Some(e), Some(11));
        }
        // Nonbonded kernels.
        let n = self.q.len();
        for i in 0..n {
            let a = self.q[(i + 1) % n];
            self.q[i] = 0.97 * self.q[i] + 0.03 * a * a / (a * a + 1.0);
        }
        ctx.compute(Work::new(self.force_flops, self.mem_bytes));
    }

    fn pme(&mut self, ctx: &mut dyn Mpi) {
        let rg = Group::grid_row(self.rank, self.rows, self.cols);
        let cg = Group::grid_col(self.rank, self.rows, self.cols);
        let blocks = |g: &Group, fill: u8, bytes: usize| -> Vec<Bytes> {
            (0..g.len()).map(|_| Bytes::from(vec![fill; bytes])).collect()
        };
        ctx.alltoall_in(&rg, blocks(&rg, 4, self.pme_block));
        ctx.compute(Work::flops(self.pme_flops));
        ctx.alltoall_in(&cg, blocks(&cg, 5, self.pme_block));
        ctx.compute(Work::flops(self.pme_flops * 0.5));
    }
}

impl RankProgram for GromacsRank {
    fn prologue(&mut self, ctx: &mut dyn Mpi) {
        // Topology distribution.
        let data = (self.rank == 0).then(|| Bytes::from(vec![9u8; 4096]));
        ctx.bcast(0, data);
        ctx.compute(Work::new(self.force_flops, self.mem_bytes));
        ctx.barrier();
    }

    fn steps(&self) -> u64 {
        self.steps
    }

    fn step(&mut self, s: u64, ctx: &mut dyn Mpi) {
        self.short_range(ctx);
        if (s + 1).is_multiple_of(self.pme_every) {
            self.pme(ctx);
        }
        // Energy/virial reduction + integration.
        ctx.allreduce_f64(&[self.q[0]], pas2p_mpisim::ReduceOp::Sum);
        ctx.compute(Work::flops(self.force_flops * 0.05));
        if (s + 1).is_multiple_of(self.dlb_every) {
            let data = (self.rank == 0).then(|| Bytes::from(vec![8u8; 512]));
            ctx.bcast(0, data);
        }
        self.step_no += 1;
    }

    fn epilogue(&mut self, ctx: &mut dyn Mpi) {
        ctx.gather(0, Bytes::from(vec![7u8; 256]));
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.u64(self.step_no).f64s(&self.q);
        w.finish()
    }

    fn restore(&mut self, bytes: &[u8]) {
        let mut r = StateReader::new(bytes);
        self.step_no = r.u64();
        self.q = r.f64s();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas2p_machine::{cluster_a, JitterModel, MappingPolicy};
    use pas2p_signature::run_plain;

    #[test]
    fn gromacs_mixes_phase_families() {
        let mut m = cluster_a();
        m.jitter = JitterModel::none();
        let app = GromacsApp { nprocs: 8, steps: 8, pme_every: 2, dlb_every: 4 };
        let r = run_plain(&app, &m, MappingPolicy::Block);
        assert!(!r.aborted);
        // Collectives: prologue (bcast+barrier)=2; per step allreduce=8;
        // PME: 4 rounds × 2 alltoall = 8; DLB: 2 bcasts; epilogue gather=1.
        assert_eq!(r.total_colls, 8 * (2 + 8 + 8 + 2 + 1));
    }

    #[test]
    fn gromacs_snapshot_roundtrips() {
        let app = GromacsApp::benchmark(4);
        let p = app.make_rank(3);
        let snap = p.snapshot();
        let mut q = app.make_rank(3);
        q.restore(&snap);
        assert_eq!(q.snapshot(), snap);
    }
}
