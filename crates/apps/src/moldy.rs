//! Moldy: molecular-dynamics with domain decomposition (Refson's Moldy,
//! run by the paper with the `tip4p` water input on 256 processes,
//! Table 3).
//!
//! Each timestep: exchange boundary atoms with the 6 spatial neighbours,
//! compute short-range forces (the dominant cost), integrate, and reduce
//! the system energy. Every `rebuild_every` steps the neighbour list is
//! rebuilt with an extra all-gather of cell occupancy — a second,
//! lower-weight phase family, matching the paper's Table 3 profile
//! (13 phases total, 4 relevant, weights spanning 10⁴–2·10⁵).

use crate::util::{near_cube_grid, SplitMix, StateReader, StateWriter};
use bytes::Bytes;
use pas2p_machine::Work;
use pas2p_mpisim::Mpi;
use pas2p_signature::{MpiApp, RankProgram};

/// The Moldy application.
pub struct MoldyApp {
    /// Number of processes (3-D grid).
    pub nprocs: u32,
    /// MD timesteps (the paper's tip4p run had phase weights up to
    /// 200 000; scaled here).
    pub steps: u64,
    /// Rebuild the neighbour list every this many steps.
    pub rebuild_every: u64,
    /// Atoms per process.
    pub atoms_per_proc: u32,
}

impl MoldyApp {
    /// Table 3 configuration: tip4p-like input, 256 processes (scaled).
    pub fn tip4p(nprocs: u32) -> MoldyApp {
        MoldyApp {
            nprocs,
            steps: 100,
            rebuild_every: 10,
            atoms_per_proc: 2048,
        }
    }
}

impl MpiApp for MoldyApp {
    fn name(&self) -> String {
        "Moldy".into()
    }
    fn nprocs(&self) -> u32 {
        self.nprocs
    }
    fn workload(&self) -> String {
        format!("tip4p ({} steps)", self.steps)
    }
    fn make_rank(&self, rank: u32) -> Box<dyn RankProgram> {
        let (px, py, pz) = near_cube_grid(self.nprocs);
        let n_local = 96usize;
        let mut rng = SplitMix::new(0x4D ^ rank as u64);
        let atoms = self.atoms_per_proc as f64;
        Box::new(MoldyRank {
            rank,
            px,
            py,
            pz,
            steps: self.steps,
            rebuild_every: self.rebuild_every,
            // ~400 flops per atom pair over ~500 pairs within the cutoff.
            force_flops: 400.0 * 500.0 * atoms,
            integrate_flops: 50.0 * atoms,
            mem_bytes: 1600.0 * atoms,
            // Boundary shell ≈ atoms^(2/3) positions of 24 bytes.
            halo_bytes: (24.0 * atoms.powf(2.0 / 3.0) * 4.0) as usize,
            pos: (0..n_local).map(|_| rng.next_f64()).collect(),
            vel: (0..n_local).map(|_| rng.next_f64() - 0.5).collect(),
            energy: 0.0,
            step_no: 0,
        })
    }
}

struct MoldyRank {
    rank: u32,
    px: u32,
    py: u32,
    pz: u32,
    steps: u64,
    rebuild_every: u64,
    force_flops: f64,
    integrate_flops: f64,
    mem_bytes: f64,
    halo_bytes: usize,
    pos: Vec<f64>,
    vel: Vec<f64>,
    energy: f64,
    step_no: u64,
}

impl MoldyRank {
    fn coords(&self) -> (u32, u32, u32) {
        let xy = self.px * self.py;
        (self.rank % self.px, (self.rank / self.px) % self.py, self.rank / xy)
    }

    /// Periodic 3-D neighbour in direction `(dx, dy, dz)`.
    fn neighbour(&self, dx: i64, dy: i64, dz: i64) -> u32 {
        let (x, y, z) = self.coords();
        let nx = (x as i64 + dx).rem_euclid(self.px as i64) as u32;
        let ny = (y as i64 + dy).rem_euclid(self.py as i64) as u32;
        let nz = (z as i64 + dz).rem_euclid(self.pz as i64) as u32;
        nz * self.px * self.py + ny * self.px + nx
    }

    /// Exchange boundary atoms along each axis (send both ways, receive
    /// both ways — the standard MD ghost exchange).
    fn ghost_exchange(&mut self, ctx: &mut dyn Mpi, tag: u32) {
        let dirs = [
            (1i64, 0i64, 0i64),
            (-1, 0, 0),
            (0, 1, 0),
            (0, -1, 0),
            (0, 0, 1),
            (0, 0, -1),
        ];
        for (i, &(dx, dy, dz)) in dirs.iter().enumerate() {
            let p = self.neighbour(dx, dy, dz);
            if p == self.rank {
                continue; // degenerate axis of the grid
            }
            ctx.send(p, tag + i as u32, &vec![1u8; self.halo_bytes]);
        }
        for (i, _) in dirs.iter().enumerate() {
            let (dx, dy, dz) = dirs[i];
            let p = self.neighbour(dx, dy, dz);
            if p == self.rank {
                continue;
            }
            // The neighbour sent toward us with the opposite direction.
            let mirror = [1u32, 0, 3, 2, 5, 4][i];
            ctx.recv(Some(p), Some(tag + mirror));
        }
    }

    fn integrate(&mut self) {
        let mut e = 0.0;
        for (p, v) in self.pos.iter_mut().zip(self.vel.iter_mut()) {
            let f = -0.1 * *p;
            *v += 0.01 * f;
            *p += 0.01 * *v;
            e += 0.5 * *v * *v + 0.05 * *p * *p;
        }
        self.energy = e;
    }
}

impl RankProgram for MoldyRank {
    fn prologue(&mut self, ctx: &mut dyn Mpi) {
        // Read input, build initial cells (cheap relative to the MD loop:
        // a non-relevant phase, like the paper's initialization phases).
        ctx.compute(Work::new(self.force_flops * 0.1, self.mem_bytes * 0.2));
        ctx.allgather(Bytes::from(vec![0u8; 64]));
        ctx.barrier();
    }

    fn steps(&self) -> u64 {
        self.steps
    }

    fn step(&mut self, s: u64, ctx: &mut dyn Mpi) {
        // Ghost exchange + short-range forces.
        self.ghost_exchange(ctx, 10);
        ctx.compute(Work::new(self.force_flops, self.mem_bytes));
        // Integration + energy reduction.
        self.integrate();
        ctx.compute(Work::flops(self.integrate_flops));
        ctx.allreduce_f64(&[self.energy], pas2p_mpisim::ReduceOp::Sum);
        // Periodic neighbour-list rebuild: a different, rarer phase.
        if (s + 1).is_multiple_of(self.rebuild_every) {
            ctx.allgather(Bytes::from(vec![2u8; 256]));
            ctx.compute(Work::new(self.force_flops * 0.4, self.mem_bytes * 0.5));
        }
        // Sparse trajectory sampling: a cheap, rare phase family that
        // stays below the 1 % relevance cut-off (Moldy's dump/rdf
        // bookkeeping) — the paper's Table 3 finds 13 phases of which
        // only 4 matter.
        if (s + 1).is_multiple_of(self.rebuild_every * 3) {
            ctx.gather(0, Bytes::from(vec![4u8; 64]));
        }
        self.step_no += 1;
    }

    fn epilogue(&mut self, ctx: &mut dyn Mpi) {
        // Final trajectory dump to rank 0.
        ctx.gather(0, Bytes::from(vec![3u8; 128]));
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.u64(self.step_no)
            .f64(self.energy)
            .f64s(&self.pos)
            .f64s(&self.vel);
        w.finish()
    }

    fn restore(&mut self, bytes: &[u8]) {
        let mut r = StateReader::new(bytes);
        self.step_no = r.u64();
        self.energy = r.f64();
        self.pos = r.f64s();
        self.vel = r.f64s();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas2p_machine::{cluster_a, JitterModel, MappingPolicy};
    use pas2p_signature::run_plain;

    #[test]
    fn moldy_runs_with_rebuild_phases() {
        let mut m = cluster_a();
        m.jitter = JitterModel::none();
        let app = MoldyApp { nprocs: 8, steps: 12, rebuild_every: 4, atoms_per_proc: 64 };
        let r = run_plain(&app, &m, MappingPolicy::Block);
        assert!(!r.aborted);
        // 8 ranks × (prologue allgather+barrier + 12 allreduce + 3 rebuild
        // allgathers + 1 trajectory sample + epilogue gather)
        assert_eq!(r.total_colls, 8 * (2 + 12 + 3 + 1 + 1));
    }

    #[test]
    fn moldy_energy_evolves() {
        let app = MoldyApp::tip4p(8);
        let mut p = app.make_rank(0);
        let s0 = p.snapshot();
        // Integrate locally (no ctx needed for the pure part).
        // Drive via the simulator for the full path:
        let mut m = cluster_a();
        m.jitter = JitterModel::none();
        let small = MoldyApp { nprocs: 2, steps: 3, rebuild_every: 2, atoms_per_proc: 32 };
        let r = run_plain(&small, &m, MappingPolicy::Block);
        assert!(!r.aborted);
        p.restore(&s0);
        assert_eq!(p.snapshot(), s0);
    }

    #[test]
    fn moldy_degenerate_grids_skip_self_sends() {
        let mut m = cluster_a();
        m.jitter = JitterModel::none();
        // 2 processes → grid (1,1,2): x and y axes degenerate.
        let app = MoldyApp { nprocs: 2, steps: 2, rebuild_every: 2, atoms_per_proc: 32 };
        let r = run_plain(&app, &m, MappingPolicy::Block);
        assert!(!r.aborted);
    }
}
