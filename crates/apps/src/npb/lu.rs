//! NPB LU: SSOR solver with wavefront pipelining.
//!
//! LU exchanges one small message per k-block per neighbour per sweep —
//! by far the most communication events of the NPB suite, which is why
//! the paper's Table 8 shows LU with the largest tracefile (5.2 GB) and
//! Table 9 with the highest instrumentation overhead (1.96×).
//!
//! Per iteration: a lower-triangular sweep (receive from north/west,
//! compute a wavefront block, send to south/east, repeated per k-block)
//! and the mirrored upper-triangular sweep, plus a residual allreduce.

use crate::npb::Class;
use crate::util::{near_square_grid, SplitMix, StateReader, StateWriter};
use pas2p_machine::Work;
use pas2p_mpisim::Mpi;
use pas2p_signature::{MpiApp, RankProgram};

/// The LU application.
pub struct LuApp {
    /// NPB class.
    pub class: Class,
    /// Number of processes (2-D grid).
    pub nprocs: u32,
    /// SSOR iterations (scaled from NPB's 250-300).
    pub iters: u64,
    /// k-blocks per sweep (NPB pipelines the full nz extent; more blocks
    /// = more, smaller messages).
    pub k_blocks: u32,
}

impl LuApp {
    /// Table 8 configuration: Class D-like, scaled.
    pub fn class_d(nprocs: u32) -> LuApp {
        LuApp { class: Class::D, nprocs, iters: 25, k_blocks: 8 }
    }

    /// Smaller preset for cross-machine prediction runs.
    pub fn class_c(nprocs: u32) -> LuApp {
        LuApp { class: Class::C, nprocs, iters: 30, k_blocks: 6 }
    }
}

impl MpiApp for LuApp {
    fn name(&self) -> String {
        "LU".into()
    }
    fn nprocs(&self) -> u32 {
        self.nprocs
    }
    fn workload(&self) -> String {
        format!(
            "Class {} ({} iters, {} k-blocks)",
            self.class.letter(),
            self.iters,
            self.k_blocks
        )
    }
    fn make_rank(&self, rank: u32) -> Box<dyn RankProgram> {
        let (rows, cols) = near_square_grid(self.nprocs);
        let local = 256usize;
        let mut rng = SplitMix::new(0x17 ^ rank as u64);
        Box::new(LuRank {
            rank,
            rows,
            cols,
            iters: self.iters,
            k_blocks: self.k_blocks,
            block_flops: 2.5e8 * self.class.work_factor()
                / (self.nprocs as f64 * self.k_blocks as f64),
            rhs_flops: 4.0e8 * self.class.work_factor() / self.nprocs as f64,
            mem_bytes: 2.0e8 * self.class.work_factor() / self.nprocs as f64,
            msg_bytes: (2048.0 * self.class.size_factor()) as usize,
            u: (0..local).map(|_| rng.next_f64()).collect(),
            step_no: 0,
        })
    }
}

struct LuRank {
    rank: u32,
    rows: u32,
    cols: u32,
    iters: u64,
    k_blocks: u32,
    block_flops: f64,
    rhs_flops: f64,
    mem_bytes: f64,
    msg_bytes: usize,
    u: Vec<f64>,
    step_no: u64,
}

impl LuRank {
    fn row(&self) -> u32 {
        self.rank / self.cols
    }
    fn col(&self) -> u32 {
        self.rank % self.cols
    }
    fn neighbour(&self, dr: i64, dc: i64) -> Option<u32> {
        let r = self.row() as i64 + dr;
        let c = self.col() as i64 + dc;
        (r >= 0 && r < self.rows as i64 && c >= 0 && c < self.cols as i64)
            .then(|| (r as u32) * self.cols + c as u32)
    }

    fn smooth_local(&mut self) {
        let n = self.u.len();
        for i in 0..n {
            let a = self.u[(i + n - 1) % n];
            self.u[i] = 0.95 * self.u[i] + 0.05 * a;
        }
    }

    /// One triangular sweep: wavefront order over k-blocks, receiving
    /// from the upstream neighbours and forwarding downstream.
    #[allow(clippy::too_many_arguments)]
    fn sweep(
        &mut self,
        ctx: &mut dyn Mpi,
        up_r: Option<u32>,
        up_c: Option<u32>,
        down_r: Option<u32>,
        down_c: Option<u32>,
        tag: u32,
    ) {
        for kb in 0..self.k_blocks {
            let t = tag + kb;
            if let Some(p) = up_r {
                ctx.recv(Some(p), Some(t));
            }
            if let Some(p) = up_c {
                ctx.recv(Some(p), Some(t + 1000));
            }
            ctx.compute(Work::new(self.block_flops, self.mem_bytes / self.k_blocks as f64));
            if let Some(p) = down_r {
                ctx.send(p, t, &vec![1u8; self.msg_bytes]);
            }
            if let Some(p) = down_c {
                ctx.send(p, t + 1000, &vec![2u8; self.msg_bytes]);
            }
        }
    }
}

impl RankProgram for LuRank {
    fn prologue(&mut self, ctx: &mut dyn Mpi) {
        ctx.compute(Work::new(self.rhs_flops, self.mem_bytes));
        ctx.barrier();
    }

    fn steps(&self) -> u64 {
        self.iters
    }

    fn step(&mut self, _s: u64, ctx: &mut dyn Mpi) {
        self.smooth_local();
        // rhs + jacobian assembly.
        ctx.compute(Work::new(self.rhs_flops, self.mem_bytes));
        // Lower-triangular sweep: wavefront from (0,0).
        let north = self.neighbour(-1, 0);
        let west = self.neighbour(0, -1);
        let south = self.neighbour(1, 0);
        let east = self.neighbour(0, 1);
        self.sweep(ctx, north, west, south, east, 10);
        // Upper-triangular sweep: wavefront from (rows-1, cols-1).
        self.sweep(ctx, south, east, north, west, 200);
        // Residual norm every iteration.
        ctx.allreduce_f64(&[self.u[0]], pas2p_mpisim::ReduceOp::Sum);
        self.step_no += 1;
    }

    fn epilogue(&mut self, ctx: &mut dyn Mpi) {
        ctx.compute(Work::flops(self.rhs_flops * 0.3));
        ctx.reduce_f64(0, &[self.u[0]], pas2p_mpisim::ReduceOp::Max);
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.u64(self.step_no).f64s(&self.u);
        w.finish()
    }

    fn restore(&mut self, bytes: &[u8]) {
        let mut r = StateReader::new(bytes);
        self.step_no = r.u64();
        self.u = r.f64s();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas2p_machine::{cluster_a, JitterModel, MappingPolicy};
    use pas2p_signature::run_plain;

    #[test]
    fn lu_wavefront_completes_without_deadlock() {
        let mut m = cluster_a();
        m.jitter = JitterModel::none();
        let app = LuApp { class: Class::A, nprocs: 16, iters: 2, k_blocks: 4 };
        let r = run_plain(&app, &m, MappingPolicy::Block);
        assert!(!r.aborted);
        assert!(r.makespan > 0.0);
    }

    #[test]
    fn lu_has_many_more_events_than_cg() {
        // The property behind Table 8/9: LU's trace dwarfs the others.
        let mut m = cluster_a();
        m.jitter = JitterModel::none();
        let lu = LuApp { class: Class::A, nprocs: 16, iters: 3, k_blocks: 8 };
        let cg = crate::npb::cg::CgApp { class: Class::A, nprocs: 16, iters: 3 };
        let rl = run_plain(&lu, &m, MappingPolicy::Block);
        let rc = run_plain(&cg, &m, MappingPolicy::Block);
        assert!(
            rl.total_msgs > 2 * rc.total_msgs,
            "LU {} vs CG {}",
            rl.total_msgs,
            rc.total_msgs
        );
    }

    #[test]
    fn lu_snapshot_roundtrips() {
        let app = LuApp { class: Class::A, nprocs: 4, iters: 1, k_blocks: 2 };
        let p = app.make_rank(2);
        let snap = p.snapshot();
        let mut q = app.make_rank(2);
        q.restore(&snap);
        assert_eq!(q.snapshot(), snap);
    }
}
