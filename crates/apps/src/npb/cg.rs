//! NPB CG: conjugate gradient with an unstructured sparse matrix.
//!
//! Communication structure per CG iteration (faithful to the NPB 2-D
//! process-grid implementation):
//!
//! * sparse mat-vec: local SpMV compute, then a `log2(cols)`-stage pairwise
//!   reduce-scatter within the process row, then one transpose exchange
//!   with the conjugate rank;
//! * two dot products (`MPI_Allreduce`) and the vector updates.

use crate::npb::Class;
use crate::util::{near_square_grid, SplitMix, StateReader, StateWriter};
use pas2p_machine::Work;
use pas2p_mpisim::Mpi;
use pas2p_signature::{MpiApp, RankProgram};

/// The CG application at a fixed class and process count.
pub struct CgApp {
    /// NPB class.
    pub class: Class,
    /// Number of processes (power of two in NPB).
    pub nprocs: u32,
    /// Outer CG iterations (scaled from NPB's 75).
    pub iters: u64,
}

impl CgApp {
    /// The paper's Table 4 configuration (Class C, 64 processes), with a
    /// scaled iteration count.
    pub fn class_c(nprocs: u32) -> CgApp {
        CgApp { class: Class::C, nprocs, iters: 60 }
    }

    /// The paper's Table 6 configuration (Class D, 256 processes).
    pub fn class_d(nprocs: u32) -> CgApp {
        CgApp { class: Class::D, nprocs, iters: 40 }
    }
}

impl MpiApp for CgApp {
    fn name(&self) -> String {
        "CG".into()
    }
    fn nprocs(&self) -> u32 {
        self.nprocs
    }
    fn workload(&self) -> String {
        format!("Class {} ({} iters)", self.class.letter(), self.iters)
    }
    fn make_rank(&self, rank: u32) -> Box<dyn RankProgram> {
        let (rows, cols) = near_square_grid(self.nprocs);
        // Scaled problem: the declared work models the class size; the
        // local arrays stay small but carry real arithmetic.
        let local_n = 512usize;
        let mut rng = SplitMix::new(0xC6 ^ rank as u64);
        let x: Vec<f64> = (0..local_n).map(|_| rng.next_f64()).collect();
        Box::new(CgRank {
            rank,
            rows,
            cols,
            iters: self.iters,
            // Class-A CG ≈ 2·nnz flops per SpMV; nnz/P per rank.
            spmv_flops: 5.0e8 * self.class.work_factor() / self.nprocs as f64,
            axpy_flops: 6.0e7 * self.class.work_factor() / self.nprocs as f64,
            mem_bytes: 4.0e8 * self.class.work_factor() / self.nprocs as f64,
            msg_bytes: (16384.0 * self.class.size_factor()) as usize,
            x,
            p: vec![0.0; local_n],
            rho: 1.0,
            step_no: 0,
        })
    }
}

struct CgRank {
    rank: u32,
    rows: u32,
    cols: u32,
    iters: u64,
    spmv_flops: f64,
    axpy_flops: f64,
    mem_bytes: f64,
    msg_bytes: usize,
    x: Vec<f64>,
    p: Vec<f64>,
    rho: f64,
    step_no: u64,
}

impl CgRank {
    fn row(&self) -> u32 {
        self.rank / self.cols
    }
    fn col(&self) -> u32 {
        self.rank % self.cols
    }
    /// Reduce-scatter partners within the process row: XOR ladder.
    fn row_partner(&self, stage: u32) -> Option<u32> {
        let peer_col = self.col() ^ (1 << stage);
        (peer_col < self.cols).then(|| self.row() * self.cols + peer_col)
    }
    /// The transpose-exchange partner of the NPB CG mat-vec. The pairing
    /// must be an involution (partner-of-partner = self) so both sides
    /// post matching sends/receives; we pair each rank with the rank half
    /// the grid away, the degenerate single-process case pairing with
    /// itself (skipped by the caller).
    fn transpose_partner(&self) -> u32 {
        let n = self.rows * self.cols;
        if n.is_multiple_of(2) {
            (self.rank + n / 2) % n
        } else {
            self.rank
        }
    }

    fn local_spmv(&mut self) {
        // Real (scaled) arithmetic keeping the state alive: a banded
        // mat-vec over the local vector.
        let n = self.x.len();
        for i in 0..n {
            let prev = self.x[(i + n - 1) % n];
            let next = self.x[(i + 1) % n];
            self.p[i] = 0.5 * self.x[i] + 0.25 * (prev + next);
        }
    }
}

impl RankProgram for CgRank {
    fn prologue(&mut self, ctx: &mut dyn Mpi) {
        // makea + initial residual norm.
        ctx.compute(Work::new(self.spmv_flops * 2.0, self.mem_bytes));
        ctx.allreduce_f64(&[self.rho], pas2p_mpisim::ReduceOp::Sum);
    }

    fn steps(&self) -> u64 {
        self.iters
    }

    fn step(&mut self, _s: u64, ctx: &mut dyn Mpi) {
        // SpMV: compute then row reduce-scatter ladder + transpose.
        self.local_spmv();
        ctx.compute(Work::new(self.spmv_flops, self.mem_bytes));
        // floor(log2(cols)) reduce-scatter stages.
        let stages = 31 - self.cols.leading_zeros();
        for stage in 0..stages {
            if let Some(peer) = self.row_partner(stage) {
                let payload = vec![1u8; self.msg_bytes >> stage.min(4)];
                ctx.send(peer, 10 + stage, &payload);
                ctx.recv(Some(peer), Some(10 + stage));
                ctx.compute(Work::flops(self.axpy_flops * 0.1));
            }
        }
        let tp = self.transpose_partner();
        if tp != self.rank {
            ctx.send(tp, 20, &vec![2u8; self.msg_bytes]);
            ctx.recv(Some(tp), Some(20));
        }
        // Two dot products + vector updates.
        let d1 = ctx.allreduce_f64(&[self.p[0] * self.p[0]], pas2p_mpisim::ReduceOp::Sum);
        ctx.compute(Work::flops(self.axpy_flops));
        let d2 = ctx.allreduce_f64(&[self.x[0] * self.p[0]], pas2p_mpisim::ReduceOp::Sum);
        ctx.compute(Work::flops(self.axpy_flops));
        let alpha = if d2[0].abs() > 1e-300 { d1[0] / d2[0] } else { 0.0 };
        for (xi, pi) in self.x.iter_mut().zip(&self.p) {
            *xi += 1e-3 * alpha.clamp(-10.0, 10.0) * pi;
        }
        self.rho = d1[0];
        self.step_no += 1;
    }

    fn epilogue(&mut self, ctx: &mut dyn Mpi) {
        // Final residual norm (the benchmark's verification value).
        ctx.compute(Work::flops(self.axpy_flops));
        ctx.reduce_f64(0, &[self.rho], pas2p_mpisim::ReduceOp::Sum);
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.u64(self.step_no).f64(self.rho).f64s(&self.x).f64s(&self.p);
        w.finish()
    }

    fn restore(&mut self, bytes: &[u8]) {
        let mut r = StateReader::new(bytes);
        self.step_no = r.u64();
        self.rho = r.f64();
        self.x = r.f64s();
        self.p = r.f64s();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas2p_machine::{cluster_a, JitterModel, MappingPolicy};
    use pas2p_signature::run_plain;

    #[test]
    fn cg_runs_and_is_deterministic() {
        let mut m = cluster_a();
        m.jitter = JitterModel::none();
        let app = CgApp { class: Class::A, nprocs: 8, iters: 5 };
        let a = run_plain(&app, &m, MappingPolicy::Block);
        let b = run_plain(&app, &m, MappingPolicy::Block);
        assert_eq!(a.rank_clocks, b.rank_clocks);
        assert!(a.makespan > 0.0);
        assert!(!a.aborted);
    }

    #[test]
    fn cg_snapshot_roundtrips() {
        let app = CgApp { class: Class::A, nprocs: 4, iters: 5 };
        let p = app.make_rank(1);
        let snap = p.snapshot();
        let mut q = app.make_rank(1);
        q.restore(&snap);
        assert_eq!(q.snapshot(), snap);
    }

    #[test]
    fn transpose_partner_is_stable_under_grid() {
        let app = CgApp { class: Class::A, nprocs: 16, iters: 1 };
        for r in 0..16 {
            let prog = app.make_rank(r);
            // Exercise snapshot to confirm construction works per rank.
            assert!(!prog.snapshot().is_empty());
        }
    }

    #[test]
    fn class_factors_are_monotone() {
        assert!(Class::D.work_factor() > Class::C.work_factor());
        assert!(Class::C.work_factor() > Class::B.work_factor());
    }
}
