//! NPB SP: scalar-pentadiagonal ADI solver.
//!
//! Same multi-partition structure as BT but with scalar (not 5×5 block)
//! systems: more pipeline stages with smaller messages and a lower
//! flop-to-byte ratio — which is why the paper's SP rows show smaller
//! SETs and different phase counts than BT.

use crate::npb::bt::AdiRank;
use crate::npb::Class;
use crate::util::{near_square_grid, SplitMix};
use pas2p_signature::{MpiApp, RankProgram};

/// The SP application.
pub struct SpApp {
    /// NPB class.
    pub class: Class,
    /// Number of processes.
    pub nprocs: u32,
    /// Time steps (scaled from NPB's 400).
    pub iters: u64,
}

impl SpApp {
    /// Table 4 configuration: Class C, 64 processes.
    pub fn class_c(nprocs: u32) -> SpApp {
        SpApp { class: Class::C, nprocs, iters: 50 }
    }

    /// Table 6 configuration: Class D, 256 processes.
    pub fn class_d(nprocs: u32) -> SpApp {
        SpApp { class: Class::D, nprocs, iters: 35 }
    }
}

impl MpiApp for SpApp {
    fn name(&self) -> String {
        "SP".into()
    }
    fn nprocs(&self) -> u32 {
        self.nprocs
    }
    fn workload(&self) -> String {
        format!("Class {} ({} steps)", self.class.letter(), self.iters)
    }
    fn make_rank(&self, rank: u32) -> Box<dyn RankProgram> {
        let (rows, cols) = near_square_grid(self.nprocs);
        let local = 320usize;
        let mut rng = SplitMix::new(0x59 ^ rank as u64);
        Box::new(AdiRank {
            name: "SP",
            rank,
            rows,
            cols,
            iters: self.iters,
            // Scalar systems: ~1/3 the flops of BT's block solves.
            rhs_flops: 3.5e8 * self.class.work_factor() / self.nprocs as f64,
            solve_flops: 2.0e8 * self.class.work_factor() / self.nprocs as f64,
            mem_bytes: 3.0e8 * self.class.work_factor() / self.nprocs as f64,
            // Smaller messages, exchanged in two pipeline stages per dim.
            msg_bytes: (12288.0 * self.class.size_factor()) as usize,
            sweeps_per_dim: 2,
            u: (0..local).map(|_| rng.next_f64()).collect(),
            step_no: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas2p_machine::{cluster_a, JitterModel, MappingPolicy};
    use pas2p_signature::run_plain;

    #[test]
    fn sp_runs_with_more_messages_than_bt() {
        let mut m = cluster_a();
        m.jitter = JitterModel::none();
        let sp = SpApp { class: Class::A, nprocs: 16, iters: 3 };
        let bt = crate::npb::bt::BtApp { class: Class::A, nprocs: 16, iters: 3 };
        let rs = run_plain(&sp, &m, MappingPolicy::Block);
        let rb = run_plain(&bt, &m, MappingPolicy::Block);
        assert!(rs.total_msgs > rb.total_msgs, "{} !> {}", rs.total_msgs, rb.total_msgs);
    }

    #[test]
    fn sp_snapshot_roundtrips() {
        let app = SpApp { class: Class::A, nprocs: 4, iters: 1 };
        let p = app.make_rank(0);
        let snap = p.snapshot();
        let mut q = app.make_rank(0);
        q.restore(&snap);
        assert_eq!(q.snapshot(), snap);
    }
}
