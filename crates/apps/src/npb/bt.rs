//! NPB BT: block-tridiagonal ADI solver on a square process grid
//! (multi-partition decomposition).
//!
//! Per iteration: compute the right-hand side, then perform forward
//! elimination and back substitution sweeps in each of the three spatial
//! dimensions. Every sweep exchanges face blocks with the ±direction
//! neighbours (cyclic, as the multi-partition scheme wraps partitions).

use crate::npb::Class;
use crate::util::{near_square_grid, SplitMix, StateReader, StateWriter};
use pas2p_machine::Work;
use pas2p_mpisim::Mpi;
use pas2p_signature::{MpiApp, RankProgram};

/// The BT application. NPB BT requires a square process count; other
/// counts run on the nearest rows×cols grid.
pub struct BtApp {
    /// NPB class.
    pub class: Class,
    /// Number of processes.
    pub nprocs: u32,
    /// Time steps (scaled from NPB's 200).
    pub iters: u64,
}

impl BtApp {
    /// Table 4 configuration: Class C, 64 processes.
    pub fn class_c(nprocs: u32) -> BtApp {
        BtApp { class: Class::C, nprocs, iters: 40 }
    }

    /// Table 6 configuration: Class D, 256 processes.
    pub fn class_d(nprocs: u32) -> BtApp {
        BtApp { class: Class::D, nprocs, iters: 30 }
    }
}

impl MpiApp for BtApp {
    fn name(&self) -> String {
        "BT".into()
    }
    fn nprocs(&self) -> u32 {
        self.nprocs
    }
    fn workload(&self) -> String {
        format!("Class {} ({} steps)", self.class.letter(), self.iters)
    }
    fn make_rank(&self, rank: u32) -> Box<dyn RankProgram> {
        let (rows, cols) = near_square_grid(self.nprocs);
        let local = 384usize;
        let mut rng = SplitMix::new(0xB7 ^ rank as u64);
        Box::new(AdiRank {
            name: "BT",
            rank,
            rows,
            cols,
            iters: self.iters,
            rhs_flops: 9.0e8 * self.class.work_factor() / self.nprocs as f64,
            solve_flops: 6.0e8 * self.class.work_factor() / self.nprocs as f64,
            mem_bytes: 5.0e8 * self.class.work_factor() / self.nprocs as f64,
            // BT exchanges 5x5 block faces: large messages.
            msg_bytes: (40960.0 * self.class.size_factor()) as usize,
            sweeps_per_dim: 1,
            u: (0..local).map(|_| rng.next_f64()).collect(),
            step_no: 0,
        })
    }
}

/// Shared rank program for the ADI-style solvers (BT and SP): they differ
/// in message sizes, sweep counts and flop balance.
pub(crate) struct AdiRank {
    /// Solver family label, surfaced in panics/diagnostics.
    #[allow(dead_code)]
    pub name: &'static str,
    pub rank: u32,
    pub rows: u32,
    pub cols: u32,
    pub iters: u64,
    pub rhs_flops: f64,
    pub solve_flops: f64,
    pub mem_bytes: f64,
    pub msg_bytes: usize,
    /// Forward+backward exchange rounds per dimension (SP pipelines in
    /// more, smaller stages than BT).
    pub sweeps_per_dim: u32,
    pub u: Vec<f64>,
    pub step_no: u64,
}

impl AdiRank {
    fn row(&self) -> u32 {
        self.rank / self.cols
    }
    fn col(&self) -> u32 {
        self.rank % self.cols
    }
    fn east(&self) -> u32 {
        self.row() * self.cols + (self.col() + 1) % self.cols
    }
    fn west(&self) -> u32 {
        self.row() * self.cols + (self.col() + self.cols - 1) % self.cols
    }
    fn south(&self) -> u32 {
        ((self.row() + 1) % self.rows) * self.cols + self.col()
    }
    fn north(&self) -> u32 {
        ((self.row() + self.rows - 1) % self.rows) * self.cols + self.col()
    }

    fn relax_local(&mut self) {
        let n = self.u.len();
        for i in 0..n {
            let a = self.u[(i + n - 1) % n];
            let b = self.u[(i + 1) % n];
            self.u[i] = 0.9 * self.u[i] + 0.05 * (a + b);
        }
    }

    /// One forward+backward sweep along a dimension: exchange with the
    /// dimension's neighbours around a block solve.
    fn sweep(&mut self, ctx: &mut dyn Mpi, fwd: u32, bwd: u32, tag: u32) {
        for s in 0..self.sweeps_per_dim {
            let t = tag + s;
            if fwd != self.rank {
                ctx.send(fwd, t, &vec![1u8; self.msg_bytes]);
                ctx.recv(Some(bwd), Some(t));
            }
            ctx.compute(Work::new(
                self.solve_flops / self.sweeps_per_dim as f64,
                self.mem_bytes * 0.2 / self.sweeps_per_dim as f64,
            ));
            if bwd != self.rank {
                ctx.send(bwd, t + 100, &vec![2u8; self.msg_bytes]);
                ctx.recv(Some(fwd), Some(t + 100));
            }
            ctx.compute(Work::flops(self.solve_flops * 0.5 / self.sweeps_per_dim as f64));
        }
    }
}

impl RankProgram for AdiRank {
    fn prologue(&mut self, ctx: &mut dyn Mpi) {
        // Grid setup + initial conditions + one setup exchange.
        ctx.compute(Work::new(self.rhs_flops, self.mem_bytes));
        ctx.barrier();
    }

    fn steps(&self) -> u64 {
        self.iters
    }

    fn step(&mut self, _s: u64, ctx: &mut dyn Mpi) {
        self.relax_local();
        // compute_rhs
        ctx.compute(Work::new(self.rhs_flops, self.mem_bytes));
        // x / y / z solves: x,y live in the grid plane; the z dimension is
        // rank-local in the 2-D multi-partition layout but still costs the
        // block solve.
        let (e, w, s, n) = (self.east(), self.west(), self.south(), self.north());
        self.sweep(ctx, e, w, 10);
        self.sweep(ctx, s, n, 30);
        ctx.compute(Work::new(self.solve_flops * 1.5, self.mem_bytes * 0.2));
        // add: update the solution.
        ctx.compute(Work::flops(self.rhs_flops * 0.2));
        self.step_no += 1;
    }

    fn epilogue(&mut self, ctx: &mut dyn Mpi) {
        // Verification: residual norms.
        ctx.compute(Work::flops(self.rhs_flops * 0.5));
        ctx.allreduce_f64(&[self.u[0]], pas2p_mpisim::ReduceOp::Sum);
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.u64(self.step_no).f64s(&self.u);
        w.finish()
    }

    fn restore(&mut self, bytes: &[u8]) {
        let mut r = StateReader::new(bytes);
        self.step_no = r.u64();
        self.u = r.f64s();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas2p_machine::{cluster_a, JitterModel, MappingPolicy};
    use pas2p_signature::run_plain;

    #[test]
    fn bt_runs_on_square_grid() {
        let mut m = cluster_a();
        m.jitter = JitterModel::none();
        let app = BtApp { class: Class::A, nprocs: 16, iters: 3 };
        let r = run_plain(&app, &m, MappingPolicy::Block);
        assert!(r.makespan > 0.0);
        assert!(!r.aborted);
        // every rank sends 2 msgs per sweep × 2 sweeps × 3 iters (when
        // neighbours differ).
        assert_eq!(r.total_msgs, 16 * 4 * 3);
    }

    #[test]
    fn bt_snapshot_roundtrips() {
        let app = BtApp { class: Class::A, nprocs: 4, iters: 1 };
        let p = app.make_rank(3);
        let snap = p.snapshot();
        let mut q = app.make_rank(3);
        q.restore(&snap);
        assert_eq!(q.snapshot(), snap);
    }

    #[test]
    fn bt_is_deterministic() {
        let mut m = cluster_a();
        m.jitter = JitterModel::none();
        let app = BtApp { class: Class::A, nprocs: 4, iters: 4 };
        let a = run_plain(&app, &m, MappingPolicy::Block);
        let b = run_plain(&app, &m, MappingPolicy::Block);
        assert_eq!(a.rank_clocks, b.rank_clocks);
    }
}
