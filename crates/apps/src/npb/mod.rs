//! NAS Parallel Benchmark kernels (communication-faithful Rust ports,
//! scaled): CG, BT, SP, LU and FT — the applications of the paper's
//! Tables 4–9.

pub mod bt;
pub mod cg;
pub mod ft;
pub mod lu;
pub mod sp;

/// NPB problem classes used by the paper (Table 4: Class C; Table 6:
/// Class D). Class sizes are scaled versions of the NPB definitions: the
/// declared virtual work keeps the class ratios, while iteration counts
/// are reduced so the suite runs in CI time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Small (development/test).
    A,
    /// Medium.
    B,
    /// The paper's 64-process workload.
    C,
    /// The paper's 256-process workload.
    D,
}

impl Class {
    /// Multiplier applied to per-iteration work relative to class A.
    pub fn work_factor(self) -> f64 {
        match self {
            Class::A => 1.0,
            Class::B => 4.0,
            Class::C => 16.0,
            Class::D => 256.0,
        }
    }

    /// Multiplier applied to message volumes relative to class A.
    pub fn size_factor(self) -> f64 {
        match self {
            Class::A => 1.0,
            Class::B => 2.0,
            Class::C => 4.0,
            Class::D => 16.0,
        }
    }

    /// Class letter.
    pub fn letter(self) -> char {
        match self {
            Class::A => 'A',
            Class::B => 'B',
            Class::C => 'C',
            Class::D => 'D',
        }
    }
}
