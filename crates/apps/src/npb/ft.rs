//! NPB FT: 3-D FFT via pencil transposes.
//!
//! Per iteration: local 1-D FFTs, an `MPI_Alltoall` transpose within the
//! process row, more local FFTs, an alltoall within the process column,
//! and a checksum allreduce. Few but very large communication events —
//! the paper's Table 8 shows FT with the smallest tracefile (512 KB) and
//! only 5 phases with low weights, making its signature construction
//! relatively expensive (Table 9's 2.62× overhead).

use crate::npb::Class;
use crate::util::{near_square_grid, SplitMix, StateReader, StateWriter};
use bytes::Bytes;
use pas2p_machine::Work;
use pas2p_mpisim::{Group, Mpi};
use pas2p_signature::{MpiApp, RankProgram};

/// The FT application.
pub struct FtApp {
    /// NPB class.
    pub class: Class,
    /// Number of processes (2-D pencil grid).
    pub nprocs: u32,
    /// FFT iterations (NPB class D runs 25; the paper's FT phase weights
    /// top out at ~20).
    pub iters: u64,
}

impl FtApp {
    /// Table 8 configuration: Class D-like, scaled.
    pub fn class_d(nprocs: u32) -> FtApp {
        FtApp { class: Class::D, nprocs, iters: 20 }
    }
}

impl MpiApp for FtApp {
    fn name(&self) -> String {
        "FT".into()
    }
    fn nprocs(&self) -> u32 {
        self.nprocs
    }
    fn workload(&self) -> String {
        format!("Class {} ({} iters)", self.class.letter(), self.iters)
    }
    fn make_rank(&self, rank: u32) -> Box<dyn RankProgram> {
        let (rows, cols) = near_square_grid(self.nprocs);
        let local = 512usize;
        let mut rng = SplitMix::new(0xF7 ^ rank as u64);
        Box::new(FtRank {
            rank,
            rows,
            cols,
            iters: self.iters,
            fft_flops: 1.6e9 * self.class.work_factor() / self.nprocs as f64,
            mem_bytes: 8.0e8 * self.class.work_factor() / self.nprocs as f64,
            // Transpose blocks: each rank sends 1/P of its pencil to every
            // row/col member — large blocks.
            block_bytes: (65536.0 * self.class.size_factor()) as usize,
            re: (0..local).map(|_| rng.next_f64()).collect(),
            im: (0..local).map(|_| rng.next_f64()).collect(),
            step_no: 0,
        })
    }
}

struct FtRank {
    rank: u32,
    rows: u32,
    cols: u32,
    iters: u64,
    fft_flops: f64,
    mem_bytes: f64,
    block_bytes: usize,
    re: Vec<f64>,
    im: Vec<f64>,
    step_no: u64,
}

impl FtRank {
    fn row_group(&self) -> Group {
        Group::grid_row(self.rank, self.rows, self.cols)
    }
    fn col_group(&self) -> Group {
        Group::grid_col(self.rank, self.rows, self.cols)
    }

    /// A real (scaled) butterfly pass over the local pencil.
    fn local_fft_pass(&mut self) {
        let n = self.re.len();
        let half = n / 2;
        for i in 0..half {
            let (ar, ai) = (self.re[i], self.im[i]);
            let (br, bi) = (self.re[i + half], self.im[i + half]);
            self.re[i] = ar + br;
            self.im[i] = ai + bi;
            self.re[i + half] = (ar - br) * 0.9999;
            self.im[i + half] = (ai - bi) * 0.9999;
        }
    }

    fn transpose(&mut self, ctx: &mut dyn Mpi, group: &Group) {
        let blocks: Vec<Bytes> = (0..group.len())
            .map(|_| Bytes::from(vec![3u8; self.block_bytes]))
            .collect();
        ctx.alltoall_in(group, blocks);
    }
}

impl RankProgram for FtRank {
    fn prologue(&mut self, ctx: &mut dyn Mpi) {
        // compute_initial_conditions + plan setup + warm-up transpose.
        ctx.compute(Work::new(self.fft_flops * 0.5, self.mem_bytes));
        let g = self.row_group();
        self.transpose(ctx, &g);
    }

    fn steps(&self) -> u64 {
        self.iters
    }

    fn step(&mut self, _s: u64, ctx: &mut dyn Mpi) {
        self.local_fft_pass();
        // FFT along the local dimension.
        ctx.compute(Work::new(self.fft_flops, self.mem_bytes));
        // Transpose within the row, FFT, transpose within the column, FFT.
        let rg = self.row_group();
        self.transpose(ctx, &rg);
        ctx.compute(Work::new(self.fft_flops, self.mem_bytes * 0.5));
        let cg = self.col_group();
        self.transpose(ctx, &cg);
        ctx.compute(Work::new(self.fft_flops * 0.5, self.mem_bytes * 0.5));
        // Checksum.
        ctx.allreduce_f64(&[self.re[0], self.im[0]], pas2p_mpisim::ReduceOp::Sum);
        self.step_no += 1;
    }

    fn epilogue(&mut self, ctx: &mut dyn Mpi) {
        ctx.reduce_f64(0, &[self.re[0]], pas2p_mpisim::ReduceOp::Sum);
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut w = StateWriter::new();
        w.u64(self.step_no).f64s(&self.re).f64s(&self.im);
        w.finish()
    }

    fn restore(&mut self, bytes: &[u8]) {
        let mut r = StateReader::new(bytes);
        self.step_no = r.u64();
        self.re = r.f64s();
        self.im = r.f64s();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pas2p_machine::{cluster_a, JitterModel, MappingPolicy};
    use pas2p_signature::run_plain;

    #[test]
    fn ft_runs_with_few_events() {
        let mut m = cluster_a();
        m.jitter = JitterModel::none();
        let app = FtApp { class: Class::A, nprocs: 16, iters: 3 };
        let r = run_plain(&app, &m, MappingPolicy::Block);
        assert!(!r.aborted);
        // FT is collective-only: no p2p messages at all.
        assert_eq!(r.total_msgs, 0);
        assert!(r.total_colls > 0);
    }

    #[test]
    fn ft_snapshot_roundtrips() {
        let app = FtApp { class: Class::A, nprocs: 4, iters: 1 };
        let p = app.make_rank(1);
        let snap = p.snapshot();
        let mut q = app.make_rank(1);
        q.restore(&snap);
        assert_eq!(q.snapshot(), snap);
    }

    #[test]
    fn ft_state_evolves_across_steps() {
        let mut m = cluster_a();
        m.jitter = JitterModel::none();
        let app = FtApp { class: Class::A, nprocs: 4, iters: 2 };
        // Drive two ranks' programs manually through the simulator.
        let before = app.make_rank(0).snapshot();
        let after = std::sync::Mutex::new(Vec::new());
        let after_ref = &after;
        let cfg = pas2p_mpisim::SimConfig::new(m, 4, MappingPolicy::Block);
        pas2p_mpisim::run_app(&cfg, move |ctx| {
            let mut p = app.make_rank(ctx.rank());
            pas2p_signature::app::drive_full(p.as_mut(), ctx);
            if ctx.rank() == 0 {
                *after_ref.lock().unwrap() = p.snapshot();
            }
        });
        assert_ne!(*after.lock().unwrap(), before);
    }
}
