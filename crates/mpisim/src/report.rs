//! Run summary returned by [`run_app`](crate::run_app).

use serde::{Deserialize, Serialize};

/// Outcome of a simulated application run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Number of ranks executed.
    pub nprocs: u32,
    /// Final virtual clock per rank, seconds.
    pub rank_clocks: Vec<f64>,
    /// Virtual makespan: the maximum final rank clock. This is the
    /// *application execution time* (AET) of the run on the modeled
    /// machine.
    pub makespan: f64,
    /// Total point-to-point messages delivered.
    pub total_msgs: u64,
    /// Total point-to-point payload bytes.
    pub total_bytes: u64,
    /// Total collective participations (counted per rank per collective).
    pub total_colls: u64,
    /// True if the run was terminated early by a harness abort.
    pub aborted: bool,
    /// Real (host) seconds the simulation took.
    pub wall_seconds: f64,
}

impl RunReport {
    /// Mean final clock across ranks.
    pub fn mean_clock(&self) -> f64 {
        if self.rank_clocks.is_empty() {
            return 0.0;
        }
        self.rank_clocks.iter().sum::<f64>() / self.rank_clocks.len() as f64
    }

    /// Load imbalance: (max − min) / max final clock, 0 for perfectly
    /// balanced runs.
    pub fn imbalance(&self) -> f64 {
        let max = self.rank_clocks.iter().cloned().fold(f64::MIN, f64::max);
        let min = self.rank_clocks.iter().cloned().fold(f64::MAX, f64::min);
        if max <= 0.0 {
            0.0
        } else {
            (max - min) / max
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(clocks: Vec<f64>) -> RunReport {
        let makespan = clocks.iter().cloned().fold(f64::MIN, f64::max);
        RunReport {
            nprocs: clocks.len() as u32,
            rank_clocks: clocks,
            makespan,
            total_msgs: 0,
            total_bytes: 0,
            total_colls: 0,
            aborted: false,
            wall_seconds: 0.0,
        }
    }

    #[test]
    fn mean_and_imbalance() {
        let r = report(vec![1.0, 2.0, 3.0]);
        assert!((r.mean_clock() - 2.0).abs() < 1e-12);
        assert!((r.imbalance() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn balanced_run_has_zero_imbalance() {
        let r = report(vec![5.0, 5.0]);
        assert_eq!(r.imbalance(), 0.0);
    }

    #[test]
    fn empty_report_yields_zeros() {
        // No rank clocks at all: both statistics must degrade to 0 rather
        // than divide by zero or return NaN/-inf from the folds.
        let r = report(vec![]);
        assert_eq!(r.mean_clock(), 0.0);
        assert_eq!(r.imbalance(), 0.0);
    }

    #[test]
    fn single_rank_is_perfectly_balanced() {
        let r = report(vec![3.5]);
        assert!((r.mean_clock() - 3.5).abs() < 1e-12);
        assert_eq!(r.imbalance(), 0.0);
    }

    #[test]
    fn all_zero_clocks_yield_zero_imbalance() {
        // max == 0 would make (max - min) / max a 0/0; the guard must
        // report 0, not NaN.
        let r = report(vec![0.0, 0.0, 0.0]);
        assert_eq!(r.mean_clock(), 0.0);
        assert_eq!(r.imbalance(), 0.0);
        assert!(!r.imbalance().is_nan());
    }
}
