//! Point-to-point messages and the per-rank mailbox.

use bytes::Bytes;

/// Message tag (the MPI tag). [`ANY_TAG`] in a receive matches anything.
pub type Tag = u32;

/// Wildcard tag constant for documentation purposes; receives take
/// `Option<Tag>` where `None` is the wildcard.
pub const ANY_TAG: Option<Tag> = None;

/// A delivered message, as seen by the receiving application.
#[derive(Debug, Clone)]
pub struct Message {
    /// Sending rank (world).
    pub src: u32,
    /// Receiving rank (world).
    pub dest: u32,
    /// Message tag.
    pub tag: Tag,
    /// Payload.
    pub data: Bytes,
    /// Sender's virtual clock at departure.
    pub depart: f64,
    /// Receiver's virtual clock at matching completion.
    pub arrive: f64,
    /// Globally unique message id — the paper's *relation* field linking a
    /// Send event to its Receive event.
    pub msg_id: u64,
}

/// A posted nonblocking receive (`MPI_Irecv` analog). Matching happens at
/// [`Mpi::wait`](crate::Mpi::wait); `posted_at` records when the receive
/// was posted so the trace layer can attribute the wait interval
/// correctly. (Deviation from MPI: the match is resolved at wait time,
/// not post time — equivalent for the deterministic-source receives the
/// workloads use.)
#[derive(Debug, Clone)]
pub struct RecvRequest {
    /// Source filter (`None` = `MPI_ANY_SOURCE`).
    pub src: Option<u32>,
    /// Tag filter (`None` = `MPI_ANY_TAG`).
    pub tag: Option<Tag>,
    /// Virtual time the receive was posted.
    pub posted_at: f64,
}

/// An in-flight message (before matching).
#[derive(Debug)]
pub(crate) struct Envelope {
    pub src: u32,
    pub dest: u32,
    pub tag: Tag,
    pub data: Bytes,
    pub depart: f64,
    pub msg_id: u64,
    /// Precomputed wire cost (seconds) for this message on this machine
    /// and mapping, including the sender-side jitter draw so the cost is
    /// deterministic regardless of the receiving thread's schedule.
    pub wire_cost: f64,
}

/// Messages that have physically arrived at a rank but have not yet been
/// matched by a receive. Matching follows MPI semantics: FIFO per
/// (src, tag) pair; wildcard receives pick the earliest-departed arrival,
/// which is where receive nondeterminism (the paper's motivation for the
/// PAS2P logical ordering) enters.
#[derive(Debug, Default)]
pub(crate) struct PendingQueue {
    items: Vec<Envelope>,
}

impl PendingQueue {
    pub fn push(&mut self, env: Envelope) {
        self.items.push(env);
    }

    /// Number of unmatched arrivals (queue-depth metric and diagnostics).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Find and remove the best match for a receive of (`src`, `tag`).
    ///
    /// For fully-specified receives this is the earliest arrival from that
    /// source with that tag (per-pair FIFO is preserved because senders
    /// deliver in order and we scan in arrival order). For wildcard
    /// receives we choose the minimum `(depart, src, msg_id)` so matching
    /// reflects which message was sent first — mirroring a network where
    /// earlier sends tend to arrive earlier, while still being
    /// deterministic given the same set of arrivals.
    pub fn take_match(&mut self, src: Option<u32>, tag: Option<Tag>) -> Option<Envelope> {
        self.find_match(src, tag).map(|i| self.items.remove(i))
    }

    /// Index of the best match for a receive of (`src`, `tag`) without
    /// removing it — the wildcard receive path inspects the candidate's
    /// departure time before committing (see `RankCtx::recv_wildcard`).
    pub fn find_match(&self, src: Option<u32>, tag: Option<Tag>) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, e) in self.items.iter().enumerate() {
            if let Some(s) = src {
                if e.src != s {
                    continue;
                }
            }
            if let Some(t) = tag {
                if e.tag != t {
                    continue;
                }
            }
            match best {
                None => best = Some(i),
                Some(b) => {
                    let eb = &self.items[b];
                    let cand = (e.depart, e.src, e.msg_id);
                    let cur = (eb.depart, eb.src, eb.msg_id);
                    if cand < cur {
                        best = Some(i);
                    }
                }
            }
        }
        best
    }

    /// Departure time of the queued arrival at `i`.
    pub fn depart_of(&self, i: usize) -> f64 {
        self.items[i].depart
    }

    /// Remove and return the queued arrival at `i` (an index obtained
    /// from [`PendingQueue::find_match`]).
    pub fn remove(&mut self, i: usize) -> Envelope {
        self.items.remove(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(src: u32, tag: Tag, depart: f64, msg_id: u64) -> Envelope {
        Envelope {
            src,
            dest: 0,
            tag,
            data: Bytes::new(),
            depart,
            msg_id,
            wire_cost: 0.0,
        }
    }

    #[test]
    fn exact_match_respects_src_and_tag() {
        let mut q = PendingQueue::default();
        q.push(env(1, 10, 0.0, 1));
        q.push(env(2, 10, 0.0, 2));
        q.push(env(1, 20, 0.0, 3));
        let m = q.take_match(Some(1), Some(20)).unwrap();
        assert_eq!(m.msg_id, 3);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn no_match_returns_none() {
        let mut q = PendingQueue::default();
        q.push(env(1, 10, 0.0, 1));
        assert!(q.take_match(Some(2), None).is_none());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn wildcard_picks_earliest_departure() {
        let mut q = PendingQueue::default();
        q.push(env(3, 10, 5.0, 7));
        q.push(env(1, 10, 2.0, 8));
        q.push(env(2, 10, 9.0, 9));
        let m = q.take_match(None, None).unwrap();
        assert_eq!(m.src, 1);
    }

    #[test]
    fn wildcard_tie_breaks_by_src_then_id() {
        let mut q = PendingQueue::default();
        q.push(env(2, 10, 1.0, 5));
        q.push(env(1, 10, 1.0, 6));
        let m = q.take_match(None, None).unwrap();
        assert_eq!(m.src, 1);
    }

    #[test]
    fn per_pair_fifo_preserved_for_exact_match() {
        let mut q = PendingQueue::default();
        q.push(env(1, 10, 1.0, 100));
        q.push(env(1, 10, 2.0, 101));
        let a = q.take_match(Some(1), Some(10)).unwrap();
        let b = q.take_match(Some(1), Some(10)).unwrap();
        assert_eq!(a.msg_id, 100);
        assert_eq!(b.msg_id, 101);
    }
}
