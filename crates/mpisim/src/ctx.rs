//! The per-rank execution context.

use crate::coll::{keyed_unit_noise, CollInput, CollOp, CollOutput, CollSlot, CollWait, ReduceOp};
use crate::group::Group;
use crate::harness::{Counters, HarnessAction};
use crate::msg::{Envelope, Message, PendingQueue, Tag};
use crate::runtime::{Shared, SimAbort};
use crate::Mpi;
use bytes::Bytes;
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use pas2p_machine::jitter::JitterStream;
use pas2p_machine::Work;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::Ordering;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// How long a blocked operation sleeps between abort-flag polls.
const POLL: Duration = Duration::from_millis(2);

/// Consecutive quiet poll windows (no clock published anywhere in the
/// run) after which a wildcard receive treats the system as quiesced
/// and commits its best pending candidate. ~100 ms of global silence —
/// long enough that a merely-preempted rank is vanishingly unlikely to
/// be mistaken for a parked one.
const QUIESCE_PATIENCE: u32 = 50;

/// The execution context handed to each rank's closure: implements [`Mpi`]
/// directly against the simulated machine.
pub struct RankCtx {
    rank: u32,
    size: u32,
    clock: f64,
    pending: PendingQueue,
    rx: Receiver<Envelope>,
    senders: Arc<Vec<Sender<Envelope>>>,
    shared: Arc<Shared>,
    jitter: JitterStream,
    counters: Counters,
    core_share: u32,
    /// Per-rank send sequence number, the low bits of every msg id this
    /// rank allocates. Kept local (not a shared counter) so msg ids are
    /// a function of the program, not of thread scheduling — traces of
    /// the same logical run must be byte-identical.
    next_msg_seq: u64,
}

impl RankCtx {
    pub(crate) fn new(
        rank: u32,
        size: u32,
        rx: Receiver<Envelope>,
        senders: Arc<Vec<Sender<Envelope>>>,
        shared: Arc<Shared>,
    ) -> RankCtx {
        let jitter = shared.machine.jitter.stream(rank);
        let core_share = shared.mapping.core_share(rank);
        RankCtx {
            rank,
            size,
            clock: 0.0,
            pending: PendingQueue::default(),
            rx,
            senders,
            shared,
            jitter,
            counters: Counters::default(),
            core_share,
            next_msg_seq: 0,
        }
    }

    /// Allocate the next message id: `(rank + 1) << 40 | sequence`.
    /// Deterministic (each rank numbers its own sends in program order),
    /// globally unique, and never 0 — checkers use msg id 0 for "no
    /// message relation". Within one sender ids stay monotone in send
    /// order, the only ordering property wildcard matching's
    /// `(depart, src, msg_id)` tie-break relies on across runs.
    fn alloc_msg_id(&mut self) -> u64 {
        let seq = self.next_msg_seq;
        self.next_msg_seq += 1;
        debug_assert!(seq < 1 << 40, "per-rank send sequence overflowed");
        (u64::from(self.rank) + 1) << 40 | seq
    }

    /// Final virtual clock (used by the runtime after the closure returns).
    pub(crate) fn final_clock(&self) -> f64 {
        self.clock
    }

    fn check_abort(&self) {
        if self.shared.abort.load(Ordering::Relaxed) {
            std::panic::panic_any(SimAbort);
        }
    }

    fn after_comm_event(&mut self) {
        self.check_abort();
        if let Some(h) = &self.shared.harness {
            if h.on_comm_event(self.rank, &self.counters, self.clock) == HarnessAction::AbortAll {
                self.shared.abort.store(true, Ordering::Relaxed);
                std::panic::panic_any(SimAbort);
            }
        }
    }

    fn drain_arrivals(&mut self) {
        while let Ok(env) = self.rx.try_recv() {
            self.pending.push(env);
        }
    }

    /// Publish this rank's virtual clock for wildcard receivers. Must be
    /// called only *after* any envelope departing at the current clock
    /// has been handed to the channel: a reader that observes
    /// `live_clocks[rank] > d` concludes every message from this rank
    /// departing at or before `d` is already delivered.
    fn publish_clock(&self) {
        self.shared.live_clocks[self.rank as usize]
            .store(self.clock.to_bits(), Ordering::Release);
        self.shared.progress.fetch_add(1, Ordering::Release);
    }

    /// `MPI_ANY_SOURCE` receive with a deterministic match.
    ///
    /// The physical race — whichever sender's envelope lands first wins —
    /// is exactly the receive nondeterminism the paper targets with its
    /// logical ordering, but the *simulator* must stay reproducible: the
    /// batch driver promises byte-identical reports for any worker
    /// count. So a wildcard commits conservatively, in virtual time: the
    /// best pending candidate (minimum `(depart, src, msg_id)`) is taken
    /// only once every other rank's published clock is strictly past the
    /// candidate's departure — after which no rank can ever produce an
    /// earlier-departing message (clocks are monotone, and clocks are
    /// published only after the channel send). The match then depends
    /// only on virtual times, never on thread scheduling.
    ///
    /// Liveness backstop: if the whole run publishes nothing for
    /// [`QUIESCE_PATIENCE`] consecutive poll windows, every rank is
    /// parked and the pending set is final — commit the best candidate.
    fn recv_wildcard(&mut self, tag: Option<Tag>) -> Envelope {
        let mut quiet_polls = 0u32;
        let mut last_progress = self.shared.progress.load(Ordering::Acquire);
        loop {
            // Snapshot clocks *before* draining: a stale (smaller) clock
            // only delays the commit, never admits a wrong one.
            let snapshot: Vec<u64> = self
                .shared
                .live_clocks
                .iter()
                .map(|c| c.load(Ordering::Acquire))
                .collect();
            self.drain_arrivals();
            if let Some(i) = self.pending.find_match(None, tag) {
                let depart = self.pending.depart_of(i);
                let committable = snapshot.iter().enumerate().all(|(r, &bits)| {
                    r == self.rank as usize || {
                        let c = f64::from_bits(bits);
                        c > depart || c.is_infinite()
                    }
                });
                if committable {
                    return self.pending.remove(i);
                }
            }
            match self.rx.recv_timeout(POLL) {
                Ok(env) => {
                    self.pending.push(env);
                    quiet_polls = 0;
                }
                Err(RecvTimeoutError::Timeout) => {
                    self.check_abort();
                    let progress = self.shared.progress.load(Ordering::Acquire);
                    if progress == last_progress {
                        quiet_polls += 1;
                        if quiet_polls >= QUIESCE_PATIENCE {
                            if let Some(i) = self.pending.find_match(None, tag) {
                                return self.pending.remove(i);
                            }
                        }
                    } else {
                        last_progress = progress;
                        quiet_polls = 0;
                    }
                }
                Err(RecvTimeoutError::Disconnected) => self.recv_disconnected(None, tag),
            }
        }
    }

    /// All senders hung up while this rank was blocked in a receive:
    /// either the run is aborting (unwind quietly) or the application
    /// deadlocked (loud panic).
    fn recv_disconnected(&self, src: Option<u32>, tag: Option<Tag>) -> ! {
        if self.shared.abort.load(Ordering::Relaxed) {
            std::panic::panic_any(SimAbort);
        }
        panic!(
            "rank {} blocked in recv(src={:?}, tag={:?}) with all senders gone",
            self.rank, src, tag
        )
    }

    fn coll_slot(&self, group: &Group) -> Arc<CollSlot> {
        let mut slots = self.shared.slots.lock();
        slots
            .entry(group.clone())
            .or_insert_with(|| Arc::new(CollSlot::new(group.len())))
            .clone()
    }

    /// Perform one collective round; returns this rank's output.
    fn collective(&mut self, group: &Group, op: CollOp, input: CollInput) -> CollOutput {
        self.check_abort();
        let pos = group
            .position(self.rank)
            .unwrap_or_else(|| panic!("rank {} is not in group {:?}", self.rank, group.ranks()));
        let slot = self.coll_slot(group);
        let shared = self.shared.clone();
        let group_hash = {
            let mut h = DefaultHasher::new();
            group.ranks().hash(&mut h);
            h.finish()
        };
        let machine = &shared.machine;
        let mapping = &shared.mapping;
        let sigma = machine.jitter.comm_sigma;
        let seed = machine.jitter.seed;
        let cost_of = |generation: u64, max_bytes: u64| -> f64 {
            let base = machine.collective_cost(mapping, op.kind(), group.ranks(), max_bytes);
            let factor = (1.0 + sigma * keyed_unit_noise(seed, group_hash, generation)).max(0.05);
            base * factor
        };
        match slot.arrive(group, pos, op, input, self.clock, cost_of, &shared.abort) {
            CollWait::Done(res) => {
                self.clock = res.out_clock;
                self.publish_clock();
                self.counters.colls += 1;
                self.shared.total_colls.fetch_add(1, Ordering::Relaxed);
                self.after_comm_event();
                res.output
            }
            CollWait::Aborted => std::panic::panic_any(SimAbort),
        }
    }
}

impl Mpi for RankCtx {
    fn rank(&self) -> u32 {
        self.rank
    }

    fn size(&self) -> u32 {
        self.size
    }

    fn now(&self) -> f64 {
        self.clock
    }

    fn compute(&mut self, work: Work) {
        self.check_abort();
        if work.is_zero() {
            return;
        }
        let t = self.shared.machine.compute_time(work, self.core_share);
        self.clock += t * self.jitter.compute_factor();
        self.publish_clock();
    }

    fn elapse(&mut self, seconds: f64) {
        debug_assert!(seconds >= 0.0);
        self.clock += seconds;
        self.publish_clock();
    }

    fn send(&mut self, dest: u32, tag: Tag, data: &[u8]) -> u64 {
        assert!(dest < self.size, "send to rank {} of {}", dest, self.size);
        self.check_abort();
        let msg_id = self.alloc_msg_id();
        let machine = &self.shared.machine;
        let mapping = &self.shared.mapping;
        let base = machine.p2p_cost(mapping, self.rank, dest, data.len() as u64);
        let wire_cost = base * self.jitter.comm_factor();
        // Sender-side CPU overhead: injecting the message costs roughly the
        // per-message overhead of the link used.
        let overhead = if mapping.loc(self.rank).node == mapping.loc(dest).node {
            machine.intra.per_msg_overhead
        } else {
            machine.network.per_msg_overhead
        };
        self.clock += overhead;
        let env = Envelope {
            src: self.rank,
            dest,
            tag,
            data: Bytes::copy_from_slice(data),
            depart: self.clock,
            msg_id,
            wire_cost,
        };
        self.shared.total_msgs.fetch_add(1, Ordering::Relaxed);
        self.shared
            .total_bytes
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        // Unbounded channels: an eager send never blocks. A hung-up
        // receiver during a harness abort just means the peer unwound
        // first; propagate the abort instead of failing.
        if self.senders[dest as usize].send(env).is_err() {
            if self.shared.abort.load(Ordering::Relaxed) {
                std::panic::panic_any(SimAbort);
            }
            panic!(
                "rank {} exited while rank {} still had messages for it",
                dest, self.rank
            );
        }
        // Publish strictly after the channel send so wildcard receivers
        // never conclude this envelope cannot exist.
        self.publish_clock();
        self.counters.sends += 1;
        if pas2p_obs::enabled() {
            static MSG_BYTES: OnceLock<Arc<pas2p_obs::Histogram>> = OnceLock::new();
            MSG_BYTES
                .get_or_init(|| pas2p_obs::histogram("mpisim.msg_bytes"))
                .record(data.len() as u64);
        }
        self.after_comm_event();
        msg_id
    }

    fn recv(&mut self, src: Option<u32>, tag: Option<Tag>) -> Message {
        if let Some(s) = src {
            assert!(s < self.size, "recv from rank {} of {}", s, self.size);
        }
        self.check_abort();
        let env = if src.is_some() {
            // Fully-specified receive: per-(src, tag) FIFO, so the first
            // matching arrival is the only possible answer — commit
            // immediately.
            loop {
                self.drain_arrivals();
                if let Some(env) = self.pending.take_match(src, tag) {
                    break env;
                }
                match self.rx.recv_timeout(POLL) {
                    Ok(env) => self.pending.push(env),
                    Err(RecvTimeoutError::Timeout) => self.check_abort(),
                    Err(RecvTimeoutError::Disconnected) => self.recv_disconnected(src, tag),
                }
            }
        } else {
            self.recv_wildcard(tag)
        };
        // Virtual completion: the message physically arrives at
        // depart + wire time; the receive completes no earlier than the
        // receiver posted it.
        let arrive = (env.depart + env.wire_cost).max(self.clock);
        debug_assert_eq!(env.dest, self.rank, "misrouted message");
        self.clock = arrive;
        self.publish_clock();
        self.counters.recvs += 1;
        if pas2p_obs::enabled() {
            // Depth of the unexpected-message queue at match time — the
            // asynchrony signal Afzal et al. analyze.
            static QUEUE_DEPTH: OnceLock<Arc<pas2p_obs::Histogram>> = OnceLock::new();
            QUEUE_DEPTH
                .get_or_init(|| pas2p_obs::histogram("mpisim.unexpected_queue_depth"))
                .record(self.pending.len() as u64);
        }
        let msg = Message {
            src: env.src,
            dest: env.dest,
            tag: env.tag,
            data: env.data,
            depart: env.depart,
            arrive,
            msg_id: env.msg_id,
        };
        self.after_comm_event();
        msg
    }

    fn barrier_in(&mut self, group: &Group) {
        self.collective(group, CollOp::Barrier, CollInput::None);
    }

    fn bcast_in(&mut self, group: &Group, root: u32, data: Option<Bytes>) -> Bytes {
        let input = if self.rank == root {
            CollInput::Bytes(data.expect("bcast root must supply the payload"))
        } else {
            CollInput::None
        };
        match self.collective(group, CollOp::Bcast { root }, input) {
            CollOutput::Bytes(b) => b,
            other => panic!("bcast returned {:?}", other),
        }
    }

    fn reduce_f64_in(
        &mut self,
        group: &Group,
        root: u32,
        xs: &[f64],
        op: ReduceOp,
    ) -> Option<Vec<f64>> {
        let out = self.collective(
            group,
            CollOp::Reduce { root, op },
            CollInput::F64(xs.to_vec()),
        );
        match out {
            CollOutput::F64(v) => Some(v),
            CollOutput::None => None,
            other => panic!("reduce returned {:?}", other),
        }
    }

    fn allreduce_f64_in(&mut self, group: &Group, xs: &[f64], op: ReduceOp) -> Vec<f64> {
        match self.collective(group, CollOp::Allreduce { op }, CollInput::F64(xs.to_vec())) {
            CollOutput::F64(v) => v,
            other => panic!("allreduce returned {:?}", other),
        }
    }

    fn allgather_in(&mut self, group: &Group, data: Bytes) -> Vec<Bytes> {
        match self.collective(group, CollOp::Allgather, CollInput::Bytes(data)) {
            CollOutput::Blocks(bs) => bs,
            other => panic!("allgather returned {:?}", other),
        }
    }

    fn alltoall_in(&mut self, group: &Group, blocks: Vec<Bytes>) -> Vec<Bytes> {
        match self.collective(group, CollOp::Alltoall, CollInput::Blocks(blocks)) {
            CollOutput::Blocks(bs) => bs,
            other => panic!("alltoall returned {:?}", other),
        }
    }

    fn gather_in(&mut self, group: &Group, root: u32, data: Bytes) -> Option<Vec<Bytes>> {
        match self.collective(group, CollOp::Gather { root }, CollInput::Bytes(data)) {
            CollOutput::Blocks(bs) => Some(bs),
            CollOutput::None => None,
            other => panic!("gather returned {:?}", other),
        }
    }

    fn scatter_in(&mut self, group: &Group, root: u32, blocks: Option<Vec<Bytes>>) -> Bytes {
        let input = if self.rank == root {
            CollInput::Blocks(blocks.expect("scatter root must supply the blocks"))
        } else {
            CollInput::None
        };
        match self.collective(group, CollOp::Scatter { root }, input) {
            CollOutput::Bytes(b) => b,
            other => panic!("scatter returned {:?}", other),
        }
    }

    fn counters(&self) -> Counters {
        self.counters
    }
}
