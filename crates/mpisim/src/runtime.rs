//! Simulation driver: spawns one OS thread per rank and collects results.

use crate::coll::CollSlot;
use crate::ctx::RankCtx;
use crate::group::Group;
use crate::harness::SimHarness;
use crate::msg::Envelope;
use crate::report::RunReport;
use crossbeam::channel::unbounded;
use parking_lot::Mutex;
use pas2p_machine::{MachineModel, Mapping, MappingPolicy};
use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Once};
use std::time::Instant;

/// Panic payload used to unwind rank threads on a harness abort. Not an
/// error: the runtime converts it into `RunReport::aborted`.
pub struct SimAbort;

static HOOK: Once = Once::new();

/// Suppress the default "thread panicked" message for [`SimAbort`]
/// unwinds; all other panics keep the previous hook behavior.
fn install_abort_hook() {
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<SimAbort>().is_some() {
                return;
            }
            prev(info);
        }));
    });
}

/// State shared by all rank threads of one run.
pub(crate) struct Shared {
    pub machine: MachineModel,
    pub mapping: Mapping,
    pub abort: AtomicBool,
    pub slots: Mutex<HashMap<Group, Arc<CollSlot>>>,
    pub harness: Option<Arc<dyn SimHarness>>,
    pub total_msgs: AtomicU64,
    pub total_bytes: AtomicU64,
    pub total_colls: AtomicU64,
    /// Each rank's published virtual clock (f64 bit pattern; `INFINITY`
    /// once the rank's program has returned). A rank publishes *after*
    /// handing any departed envelope to the channel, so an observer that
    /// reads `live_clocks[r] > d` knows every message from `r` departing
    /// at or before `d` has already been delivered — the invariant the
    /// deterministic wildcard receive relies on.
    pub live_clocks: Vec<AtomicU64>,
    /// Bumped on every clock publication; a wildcard receive that sees
    /// no movement across a full poll window treats the system as
    /// quiesced (see `RankCtx::recv_wildcard`).
    pub progress: AtomicU64,
}

/// Configuration of a simulated run.
#[derive(Clone)]
pub struct SimConfig {
    /// Machine (cluster) the run executes on.
    pub machine: MachineModel,
    /// Number of ranks.
    pub nprocs: u32,
    /// Process→core placement policy.
    pub policy: MappingPolicy,
    /// Optional runtime observer (signature machinery).
    pub harness: Option<Arc<dyn SimHarness>>,
}

impl SimConfig {
    /// A run of `nprocs` ranks on `machine` under `policy`, no harness.
    pub fn new(machine: MachineModel, nprocs: u32, policy: MappingPolicy) -> SimConfig {
        SimConfig {
            machine,
            nprocs,
            policy,
            harness: None,
        }
    }

    /// Install a harness observer.
    pub fn with_harness(mut self, harness: Arc<dyn SimHarness>) -> SimConfig {
        self.harness = Some(harness);
        self
    }
}

/// Execute `f` once per rank on the configured machine and return the run
/// report. Panics from application code propagate; [`SimAbort`] unwinds
/// are converted into `aborted = true`.
pub fn run_app<F>(cfg: &SimConfig, f: F) -> RunReport
where
    F: Fn(&mut RankCtx) + Send + Sync,
{
    install_abort_hook();
    let n = cfg.nprocs;
    assert!(n > 0, "need at least one rank");
    let mapping = cfg.machine.map(n, cfg.policy.clone());

    let mut senders = Vec::with_capacity(n as usize);
    let mut receivers = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let (tx, rx) = unbounded::<Envelope>();
        senders.push(tx);
        receivers.push(rx);
    }
    let senders = Arc::new(senders);

    let shared = Arc::new(Shared {
        machine: cfg.machine.clone(),
        mapping,
        abort: AtomicBool::new(false),
        slots: Mutex::new(HashMap::new()),
        harness: cfg.harness.clone(),
        total_msgs: AtomicU64::new(0),
        total_bytes: AtomicU64::new(0),
        total_colls: AtomicU64::new(0),
        live_clocks: (0..n).map(|_| AtomicU64::new(0f64.to_bits())).collect(),
        progress: AtomicU64::new(0),
    });

    let clocks = Mutex::new(vec![0.0f64; n as usize]);
    let any_aborted = AtomicBool::new(false);
    let start = Instant::now();
    let f = &f;

    std::thread::scope(|s| {
        for (rank, rx) in receivers.into_iter().enumerate() {
            let senders = senders.clone();
            let shared = shared.clone();
            let clocks = &clocks;
            let any_aborted = &any_aborted;
            s.spawn(move || {
                // Timeline span for this rank's host thread (wall-clock
                // domain; the *virtual* rank timeline is reconstructed
                // from the recorded trace at export, never sampled here).
                let rank_span = if pas2p_obs::tracing_enabled() {
                    Some(pas2p_obs::trace_span("host.rank", &format!("rank {rank}")))
                } else {
                    None
                };
                let mut ctx = RankCtx::new(rank as u32, n, rx, senders, shared.clone());
                let result = panic::catch_unwind(AssertUnwindSafe(|| f(&mut ctx)));
                match result {
                    Ok(()) => {
                        if let Some(h) = &shared.harness {
                            h.on_rank_done(rank as u32, ctx.final_clock());
                        }
                    }
                    Err(payload) => {
                        if payload.downcast_ref::<SimAbort>().is_some() {
                            any_aborted.store(true, Ordering::Relaxed);
                        } else {
                            // Real application panic: make sure the other
                            // ranks don't deadlock, then propagate.
                            shared.abort.store(true, Ordering::Relaxed);
                            panic::resume_unwind(payload);
                        }
                    }
                }
                // This rank will never send again: let wildcard
                // receivers stop waiting on its clock.
                shared.live_clocks[rank].store(f64::INFINITY.to_bits(), Ordering::Release);
                shared.progress.fetch_add(1, Ordering::Release);
                clocks.lock()[rank] = ctx.final_clock();
                if let Some(span) = rank_span {
                    span.finish_with(vec![("virtual_clock", format!("{:.6}", ctx.final_clock()))]);
                    // Scoped threads unblock the scope before TLS
                    // destructors run; hand the events over while the
                    // scope still waits on this closure.
                    pas2p_obs::events::flush();
                }
            });
        }
    });

    let rank_clocks = clocks.into_inner();
    let makespan = rank_clocks.iter().cloned().fold(0.0f64, f64::max);
    if pas2p_obs::enabled() {
        pas2p_obs::counter("mpisim.runs").inc();
        pas2p_obs::counter("mpisim.rank_threads").add(n as u64);
        pas2p_obs::counter("mpisim.messages").add(shared.total_msgs.load(Ordering::Relaxed));
        pas2p_obs::counter("mpisim.bytes").add(shared.total_bytes.load(Ordering::Relaxed));
        pas2p_obs::counter("mpisim.collectives").add(shared.total_colls.load(Ordering::Relaxed));
    }
    RunReport {
        nprocs: n,
        rank_clocks,
        makespan,
        total_msgs: shared.total_msgs.load(Ordering::Relaxed),
        total_bytes: shared.total_bytes.load(Ordering::Relaxed),
        total_colls: shared.total_colls.load(Ordering::Relaxed),
        aborted: any_aborted.load(Ordering::Relaxed),
        wall_seconds: start.elapsed().as_secs_f64(),
    }
}
