//! A message-passing runtime that substitutes for MPI in the PAS2P
//! reproduction.
//!
//! The paper instruments real MPI applications on real clusters. Rust MPI
//! bindings are immature and `PMPI`-style interposition is awkward, so this
//! crate provides the substrate from scratch:
//!
//! * **Real concurrency** — every rank is an OS thread; point-to-point
//!   messages travel over channels and collectives rendezvous through
//!   shared state, so message matching, `ANY_SOURCE` nondeterminism and
//!   collective synchronization are genuine, not simulated formulas.
//! * **Virtual time** — each rank carries a virtual clock advanced by the
//!   [`pas2p_machine::MachineModel`] cost models: computation is charged
//!   via declared [`Work`], communication via latency/bandwidth models, and
//!   both receive deterministic seeded jitter. Executing the same program
//!   against the cluster-A model and the cluster-C model yields the
//!   different execution times a real cross-cluster run would.
//! * **Interposition-friendly API** — applications are written against the
//!   [`Mpi`] trait. The `pas2p-trace` crate wraps any `Mpi` implementation
//!   to record the paper's event stream, playing the role of the
//!   `LD_PRELOAD`-ed `libpas2p`.
//!
//! # Example
//!
//! ```
//! use pas2p_mpisim::{Mpi, SimConfig, run_app, ReduceOp};
//! use pas2p_machine::{cluster_a, Work, MappingPolicy};
//!
//! let cfg = SimConfig::new(cluster_a(), 4, MappingPolicy::Block);
//! let report = run_app(&cfg, |ctx| {
//!     ctx.compute(Work::flops(1e6));
//!     let sum = ctx.allreduce_f64(&[ctx.rank() as f64], ReduceOp::Sum);
//!     assert_eq!(sum[0], 0.0 + 1.0 + 2.0 + 3.0);
//! });
//! assert!(report.makespan > 0.0);
//! ```

#![forbid(unsafe_code)]

pub mod coll;
pub mod ctx;
pub mod group;
pub mod harness;
pub mod msg;
pub mod report;
pub mod runtime;

pub use coll::{CollOp, ReduceOp};
pub use ctx::RankCtx;
pub use group::Group;
pub use harness::{Counters, HarnessAction, SimHarness};
pub use msg::{Message, RecvRequest, Tag, ANY_TAG};
pub use report::RunReport;
pub use runtime::{run_app, SimConfig};

use bytes::Bytes;
use pas2p_machine::Work;

/// The MPI-like interface applications program against.
///
/// Applications are generic over `Mpi`, which is the Rust analog of linking
/// against the MPI profiling interface: the plain [`RankCtx`] executes
/// directly, while `pas2p-trace`'s `Traced<C>` wrapper intercepts every
/// call to record the PAS2P event stream before delegating.
///
/// Collectives come in `_in` variants taking an explicit [`Group`] (a
/// sorted set of world ranks, the analog of an MPI communicator) plus
/// convenience methods over the world group.
pub trait Mpi {
    /// This process's rank in the world group.
    fn rank(&self) -> u32;
    /// Number of processes in the world group.
    fn size(&self) -> u32;
    /// Current virtual time of this rank, in seconds.
    fn now(&self) -> f64;
    /// Advance virtual time by executing `work` on this rank's core.
    fn compute(&mut self, work: Work);
    /// Advance virtual time by `seconds` without modeling (used by the
    /// trace layer to charge instrumentation overhead).
    fn elapse(&mut self, seconds: f64);

    /// Blocking standard-mode send (eager: never blocks on the receiver).
    /// Returns the globally unique message id — the paper's *relation*
    /// field linking this Send event to its Receive event.
    fn send(&mut self, dest: u32, tag: Tag, data: &[u8]) -> u64;
    /// Blocking receive. `src = None` is `MPI_ANY_SOURCE`; `tag = None` is
    /// `MPI_ANY_TAG`.
    fn recv(&mut self, src: Option<u32>, tag: Option<Tag>) -> Message;

    /// Post a nonblocking receive (`MPI_Irecv`). Completion happens at
    /// [`wait`](Mpi::wait); in the virtual-time model this is what makes
    /// communication/computation overlap real — compute performed between
    /// the post and the wait absorbs wire time.
    fn irecv(&mut self, src: Option<u32>, tag: Option<Tag>) -> RecvRequest {
        RecvRequest {
            src,
            tag,
            posted_at: self.now(),
        }
    }

    /// Complete a nonblocking receive (`MPI_Wait`).
    fn wait(&mut self, req: RecvRequest) -> Message {
        self.recv(req.src, req.tag)
    }

    /// Complete a set of nonblocking receives (`MPI_Waitall`), in order.
    fn waitall(&mut self, reqs: Vec<RecvRequest>) -> Vec<Message> {
        reqs.into_iter().map(|r| self.wait(r)).collect()
    }

    /// Barrier over an arbitrary group.
    fn barrier_in(&mut self, group: &Group);
    /// Broadcast `data` from `root` (world rank) to every group member;
    /// returns the broadcast payload on every rank.
    fn bcast_in(&mut self, group: &Group, root: u32, data: Option<Bytes>) -> Bytes;
    /// Element-wise reduction of `xs` to `root`; `Some(result)` on root,
    /// `None` elsewhere.
    fn reduce_f64_in(
        &mut self,
        group: &Group,
        root: u32,
        xs: &[f64],
        op: ReduceOp,
    ) -> Option<Vec<f64>>;
    /// Element-wise reduction delivered to every group member.
    fn allreduce_f64_in(&mut self, group: &Group, xs: &[f64], op: ReduceOp) -> Vec<f64>;
    /// Every member contributes a block; every member receives all blocks
    /// ordered by group position.
    fn allgather_in(&mut self, group: &Group, data: Bytes) -> Vec<Bytes>;
    /// Personalized all-to-all: `blocks[i]` goes to group member `i`;
    /// returns the blocks addressed to this rank, ordered by group position.
    fn alltoall_in(&mut self, group: &Group, blocks: Vec<Bytes>) -> Vec<Bytes>;
    /// Gather every member's block to `root`.
    fn gather_in(&mut self, group: &Group, root: u32, data: Bytes) -> Option<Vec<Bytes>>;
    /// Scatter `root`'s blocks to members; returns this rank's block.
    fn scatter_in(&mut self, group: &Group, root: u32, blocks: Option<Vec<Bytes>>) -> Bytes;

    /// Communication-event counters for this rank (used by the signature
    /// machinery to locate phase start/endpoints).
    fn counters(&self) -> Counters;

    // ---- Convenience wrappers over the world group ----

    /// Barrier over the world group.
    fn barrier(&mut self) {
        let g = Group::world(self.size());
        self.barrier_in(&g);
    }
    /// World-group broadcast.
    fn bcast(&mut self, root: u32, data: Option<Bytes>) -> Bytes {
        let g = Group::world(self.size());
        self.bcast_in(&g, root, data)
    }
    /// World-group reduce.
    fn reduce_f64(&mut self, root: u32, xs: &[f64], op: ReduceOp) -> Option<Vec<f64>> {
        let g = Group::world(self.size());
        self.reduce_f64_in(&g, root, xs, op)
    }
    /// World-group allreduce.
    fn allreduce_f64(&mut self, xs: &[f64], op: ReduceOp) -> Vec<f64> {
        let g = Group::world(self.size());
        self.allreduce_f64_in(&g, xs, op)
    }
    /// World-group allgather.
    fn allgather(&mut self, data: Bytes) -> Vec<Bytes> {
        let g = Group::world(self.size());
        self.allgather_in(&g, data)
    }
    /// World-group all-to-all.
    fn alltoall(&mut self, blocks: Vec<Bytes>) -> Vec<Bytes> {
        let g = Group::world(self.size());
        self.alltoall_in(&g, blocks)
    }
    /// World-group gather.
    fn gather(&mut self, root: u32, data: Bytes) -> Option<Vec<Bytes>> {
        let g = Group::world(self.size());
        self.gather_in(&g, root, data)
    }
    /// World-group scatter.
    fn scatter(&mut self, root: u32, blocks: Option<Vec<Bytes>>) -> Bytes {
        let g = Group::world(self.size());
        self.scatter_in(&g, root, blocks)
    }

    /// Send a slice of `f64` values (convenience; payload is the raw LE
    /// byte representation).
    fn send_f64(&mut self, dest: u32, tag: Tag, xs: &[f64]) -> u64 {
        self.send(dest, tag, &f64s_to_bytes(xs))
    }
    /// Receive a slice of `f64` values.
    fn recv_f64(&mut self, src: Option<u32>, tag: Option<Tag>) -> (Message, Vec<f64>) {
        let m = self.recv(src, tag);
        let xs = bytes_to_f64s(&m.data);
        (m, xs)
    }
}

/// Encode an `f64` slice as little-endian bytes.
pub fn f64s_to_bytes(xs: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(xs.len() * 8);
    for x in xs {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

/// Decode little-endian bytes back into `f64`s. Trailing partial values
/// are ignored.
pub fn bytes_to_f64s(b: &[u8]) -> Vec<f64> {
    b.chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

#[cfg(test)]
mod codec_tests {
    use super::*;

    #[test]
    fn f64_roundtrip() {
        let xs = [1.0, -2.5, 1e-300, f64::MAX];
        assert_eq!(bytes_to_f64s(&f64s_to_bytes(&xs)), xs.to_vec());
    }

    #[test]
    fn partial_trailing_bytes_ignored() {
        let mut b = f64s_to_bytes(&[3.0]);
        b.push(0xFF);
        assert_eq!(bytes_to_f64s(&b), vec![3.0]);
    }

    #[test]
    fn empty_roundtrip() {
        assert!(bytes_to_f64s(&f64s_to_bytes(&[])).is_empty());
    }
}
