//! Process groups — the analog of MPI communicators.
//!
//! A [`Group`] is a sorted, deduplicated set of world ranks. Collectives
//! rendezvous per group; the runtime keys rendezvous slots by the group's
//! member list, so any set of ranks that all call the same collective with
//! the same group synchronizes together (like a sub-communicator).

use serde::{Deserialize, Serialize};

/// A sorted set of world ranks acting as a communicator.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Group {
    ranks: Vec<u32>,
}

impl Group {
    /// The group of all `size` world ranks.
    pub fn world(size: u32) -> Group {
        Group {
            ranks: (0..size).collect(),
        }
    }

    /// Build a group from arbitrary ranks; sorted and deduplicated.
    pub fn new(mut ranks: Vec<u32>) -> Group {
        assert!(!ranks.is_empty(), "a group needs at least one member");
        ranks.sort_unstable();
        ranks.dedup();
        Group { ranks }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// True if the group has a single member.
    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }

    /// Members in ascending world-rank order.
    pub fn ranks(&self) -> &[u32] {
        &self.ranks
    }

    /// Position of `world_rank` within the group, if a member.
    pub fn position(&self, world_rank: u32) -> Option<usize> {
        self.ranks.binary_search(&world_rank).ok()
    }

    /// True if `world_rank` belongs to the group.
    pub fn contains(&self, world_rank: u32) -> bool {
        self.position(world_rank).is_some()
    }

    /// Split the world into row groups of a `rows × cols` grid: rank `r`
    /// is in row `r / cols`. Returns the group containing `rank`.
    pub fn grid_row(rank: u32, rows: u32, cols: u32) -> Group {
        assert!(rank < rows * cols);
        let row = rank / cols;
        Group::new((0..cols).map(|c| row * cols + c).collect())
    }

    /// Column group of a `rows × cols` grid containing `rank`.
    pub fn grid_col(rank: u32, rows: u32, cols: u32) -> Group {
        assert!(rank < rows * cols);
        let col = rank % cols;
        Group::new((0..rows).map(|r| r * cols + col).collect())
    }

    /// Stable communicator identity: an FNV-1a hash of the member list.
    /// Every member computes the same id, so traces from different
    /// processes can be matched by communicator during analysis (the role
    /// the MPI communicator handle plays in real PMPI traces).
    pub fn comm_id(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for r in &self.ranks {
            for b in r.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_contains_all() {
        let g = Group::world(4);
        assert_eq!(g.ranks(), &[0, 1, 2, 3]);
        assert_eq!(g.position(2), Some(2));
    }

    #[test]
    fn new_sorts_and_dedups() {
        let g = Group::new(vec![3, 1, 3, 2]);
        assert_eq!(g.ranks(), &[1, 2, 3]);
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn position_of_non_member_is_none() {
        let g = Group::new(vec![0, 2, 4]);
        assert_eq!(g.position(1), None);
        assert!(!g.contains(1));
        assert!(g.contains(4));
    }

    #[test]
    fn grid_rows_and_cols() {
        // 2x3 grid: ranks 0..6
        let row = Group::grid_row(4, 2, 3);
        assert_eq!(row.ranks(), &[3, 4, 5]);
        let col = Group::grid_col(4, 2, 3);
        assert_eq!(col.ranks(), &[1, 4]);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_group_panics() {
        Group::new(vec![]);
    }

    #[test]
    fn comm_id_is_stable_and_distinguishes_groups() {
        let a = Group::new(vec![0, 1, 2]);
        let b = Group::new(vec![2, 1, 0]);
        let c = Group::new(vec![0, 1, 3]);
        assert_eq!(a.comm_id(), b.comm_id(), "order-insensitive");
        assert_ne!(a.comm_id(), c.comm_id());
        assert_ne!(Group::world(4).comm_id(), Group::world(8).comm_id());
    }
}
