//! Runtime observation hooks.
//!
//! The signature machinery (`pas2p-signature`) needs to watch a running
//! application from outside: it detects when per-rank communication
//! counters cross a phase's startpoint/endpoint (the paper's phase table
//! addresses phases by send counts, Fig 7) and terminates the run once the
//! last phase has been measured ("the signature terminates the execution
//! because it is not necessary to continue", §3.4). A [`SimHarness`]
//! installed in the [`SimConfig`](crate::SimConfig) receives a callback
//! after every communication event.

use serde::{Deserialize, Serialize};

/// Per-rank communication-event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counters {
    /// Point-to-point sends issued.
    pub sends: u64,
    /// Point-to-point receives completed.
    pub recvs: u64,
    /// Collective operations completed.
    pub colls: u64,
}

impl Counters {
    /// Total communication events (sends + receives + collectives) — the
    /// coordinate system used for phase start/endpoints.
    pub fn comm_ops(&self) -> u64 {
        self.sends + self.recvs + self.colls
    }
}

/// What the harness wants the runtime to do after an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HarnessAction {
    /// Keep running.
    Continue,
    /// Abort every rank as soon as possible (used once the last phase of a
    /// signature has been measured).
    AbortAll,
}

/// Observer installed into a simulation run.
///
/// Callbacks may be invoked concurrently from different rank threads;
/// implementations must be `Sync`.
pub trait SimHarness: Send + Sync {
    /// Invoked after each communication event (send, receive or
    /// collective) completes on `rank`, with the rank's updated counters
    /// and virtual clock.
    fn on_comm_event(&self, rank: u32, counters: &Counters, clock: f64) -> HarnessAction {
        let _ = (rank, counters, clock);
        HarnessAction::Continue
    }

    /// Invoked when a rank finishes its program normally.
    fn on_rank_done(&self, rank: u32, clock: f64) {
        let _ = (rank, clock);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comm_ops_sums_all_classes() {
        let c = Counters { sends: 3, recvs: 2, colls: 4 };
        assert_eq!(c.comm_ops(), 9);
    }

    #[test]
    fn default_counters_are_zero() {
        assert_eq!(Counters::default().comm_ops(), 0);
    }

    struct Noop;
    impl SimHarness for Noop {}

    #[test]
    fn default_harness_continues() {
        let h = Noop;
        let c = Counters::default();
        assert_eq!(h.on_comm_event(0, &c, 0.0), HarnessAction::Continue);
        h.on_rank_done(0, 1.0);
    }
}
