//! Collective operations: rendezvous-based implementation.
//!
//! All members of a [`Group`] calling the same collective
//! meet at a shared *slot*. The last arrival combines the inputs, computes
//! every member's output, and advances the group's virtual clock to
//! `max(member clocks) + model cost`, exactly how a synchronizing
//! collective behaves on a real machine: everyone leaves together, paying
//! for the slowest participant plus the network stages.
//!
//! Determinism: inputs are indexed by group position, reduction order is
//! fixed, and the communication jitter applied to the collective's cost is
//! drawn from a counter-based RNG keyed on (machine seed, group, round), so
//! thread scheduling cannot influence the result.

use crate::group::Group;
use bytes::Bytes;
use parking_lot::{Condvar, Mutex};
use pas2p_machine::CollectiveKind;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Element-wise reduction operators over `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReduceOp {
    /// Sum of elements.
    Sum,
    /// Product of elements.
    Prod,
    /// Element-wise maximum.
    Max,
    /// Element-wise minimum.
    Min,
}

impl ReduceOp {
    /// Combine two values.
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Prod => a * b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
        }
    }
}

/// Which collective a group is performing. All participants must pass the
/// same `CollOp` to the same round — mismatches are programming errors and
/// panic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CollOp {
    /// Synchronization only.
    Barrier,
    /// Broadcast from `root` (world rank).
    Bcast { root: u32 },
    /// Reduce to `root` (world rank).
    Reduce { root: u32, op: ReduceOp },
    /// Reduce-to-all.
    Allreduce { op: ReduceOp },
    /// Concatenate everyone's block to everyone.
    Allgather,
    /// Personalized all-to-all exchange.
    Alltoall,
    /// Gather blocks to `root`.
    Gather { root: u32 },
    /// Scatter `root`'s blocks.
    Scatter { root: u32 },
}

impl CollOp {
    /// The network-model collective class used for costing.
    pub fn kind(self) -> CollectiveKind {
        match self {
            CollOp::Barrier => CollectiveKind::Barrier,
            CollOp::Bcast { .. } => CollectiveKind::Bcast,
            CollOp::Reduce { .. } => CollectiveKind::Reduce,
            CollOp::Allreduce { .. } => CollectiveKind::Allreduce,
            CollOp::Allgather => CollectiveKind::Allgather,
            CollOp::Alltoall => CollectiveKind::Alltoall,
            CollOp::Gather { .. } => CollectiveKind::Gather,
            CollOp::Scatter { .. } => CollectiveKind::Scatter,
        }
    }
}

/// A participant's contribution to a collective round.
#[derive(Debug, Clone)]
pub enum CollInput {
    /// No payload (barrier, non-root bcast/scatter).
    None,
    /// A single byte block.
    Bytes(Bytes),
    /// One block per group member (alltoall, root scatter).
    Blocks(Vec<Bytes>),
    /// Numeric vector for reductions.
    F64(Vec<f64>),
}

impl CollInput {
    /// Payload bytes this participant contributes (for costing).
    fn byte_len(&self) -> u64 {
        match self {
            CollInput::None => 0,
            CollInput::Bytes(b) => b.len() as u64,
            CollInput::Blocks(bs) => bs.iter().map(|b| b.len() as u64).max().unwrap_or(0),
            CollInput::F64(xs) => (xs.len() * 8) as u64,
        }
    }
}

/// A participant's result from a collective round.
#[derive(Debug, Clone)]
pub enum CollOutput {
    /// No payload delivered to this member.
    None,
    /// A single byte block.
    Bytes(Bytes),
    /// One block per group member.
    Blocks(Vec<Bytes>),
    /// Numeric vector.
    F64(Vec<f64>),
}

/// Combine all inputs into per-member outputs. `group` gives the position →
/// world-rank correspondence for root resolution.
pub(crate) fn complete(op: CollOp, group: &Group, inputs: &[CollInput]) -> Vec<CollOutput> {
    let n = group.len();
    let root_pos = |root: u32| -> usize {
        group
            .position(root)
            .unwrap_or_else(|| panic!("collective root {} is not in the group", root))
    };
    match op {
        CollOp::Barrier => vec![CollOutput::None; n],
        CollOp::Bcast { root } => {
            let rp = root_pos(root);
            let payload = match &inputs[rp] {
                CollInput::Bytes(b) => b.clone(),
                other => panic!("bcast root must supply Bytes, got {:?}", other),
            };
            (0..n).map(|_| CollOutput::Bytes(payload.clone())).collect()
        }
        CollOp::Reduce { root, op } => {
            let acc = reduce_inputs(inputs, op);
            let rp = root_pos(root);
            (0..n)
                .map(|i| {
                    if i == rp {
                        CollOutput::F64(acc.clone())
                    } else {
                        CollOutput::None
                    }
                })
                .collect()
        }
        CollOp::Allreduce { op } => {
            let acc = reduce_inputs(inputs, op);
            (0..n).map(|_| CollOutput::F64(acc.clone())).collect()
        }
        CollOp::Allgather => {
            let blocks: Vec<Bytes> = inputs
                .iter()
                .map(|i| match i {
                    CollInput::Bytes(b) => b.clone(),
                    other => panic!("allgather members must supply Bytes, got {:?}", other),
                })
                .collect();
            (0..n)
                .map(|_| CollOutput::Blocks(blocks.clone()))
                .collect()
        }
        CollOp::Alltoall => {
            let matrix: Vec<&Vec<Bytes>> = inputs
                .iter()
                .map(|i| match i {
                    CollInput::Blocks(bs) => {
                        assert_eq!(
                            bs.len(),
                            n,
                            "alltoall requires one block per group member"
                        );
                        bs
                    }
                    other => panic!("alltoall members must supply Blocks, got {:?}", other),
                })
                .collect();
            (0..n)
                .map(|i| CollOutput::Blocks(matrix.iter().map(|row| row[i].clone()).collect()))
                .collect()
        }
        CollOp::Gather { root } => {
            let rp = root_pos(root);
            let blocks: Vec<Bytes> = inputs
                .iter()
                .map(|i| match i {
                    CollInput::Bytes(b) => b.clone(),
                    other => panic!("gather members must supply Bytes, got {:?}", other),
                })
                .collect();
            (0..n)
                .map(|i| {
                    if i == rp {
                        CollOutput::Blocks(blocks.clone())
                    } else {
                        CollOutput::None
                    }
                })
                .collect()
        }
        CollOp::Scatter { root } => {
            let rp = root_pos(root);
            let blocks = match &inputs[rp] {
                CollInput::Blocks(bs) => {
                    assert_eq!(bs.len(), n, "scatter root must supply one block per member");
                    bs.clone()
                }
                other => panic!("scatter root must supply Blocks, got {:?}", other),
            };
            blocks.into_iter().map(CollOutput::Bytes).collect()
        }
    }
}

fn reduce_inputs(inputs: &[CollInput], op: ReduceOp) -> Vec<f64> {
    let mut acc: Option<Vec<f64>> = None;
    for input in inputs {
        let xs = match input {
            CollInput::F64(xs) => xs,
            other => panic!("reduction members must supply F64, got {:?}", other),
        };
        match &mut acc {
            None => acc = Some(xs.clone()),
            Some(a) => {
                assert_eq!(a.len(), xs.len(), "reduction vectors must agree in length");
                for (ai, xi) in a.iter_mut().zip(xs) {
                    *ai = op.apply(*ai, *xi);
                }
            }
        }
    }
    acc.expect("reduction over empty input set")
}

/// Counter-based deterministic uniform in [-√3, √3] (unit variance),
/// keyed on arbitrary 64-bit inputs. Used for collective-cost jitter so the
/// draw does not depend on which thread completes the rendezvous.
pub(crate) fn keyed_unit_noise(a: u64, b: u64, c: u64) -> f64 {
    // splitmix64 over the mixed key.
    let mut z = a
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(b.rotate_left(17))
        .wrapping_add(c.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    let u01 = (z >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
    (u01 * 2.0 - 1.0) * 1.732_050_8
}

/// State of one group's rendezvous slot.
struct SlotState {
    generation: u64,
    arrived: usize,
    op: Option<CollOp>,
    inputs: Vec<Option<CollInput>>,
    clocks: Vec<f64>,
    outputs: Vec<CollOutput>,
    out_clock: f64,
}

/// A reusable rendezvous point for one group.
pub(crate) struct CollSlot {
    state: Mutex<SlotState>,
    cv: Condvar,
}

/// Result of participating in a collective round.
pub(crate) struct CollResult {
    pub output: CollOutput,
    pub out_clock: f64,
}

/// Signalled by the runtime when a global abort is requested while a
/// participant waits inside a rendezvous.
pub(crate) enum CollWait {
    Done(CollResult),
    Aborted,
}

impl CollSlot {
    pub fn new(n: usize) -> CollSlot {
        CollSlot {
            state: Mutex::new(SlotState {
                generation: 0,
                arrived: 0,
                op: None,
                inputs: vec![None; n],
                clocks: vec![0.0; n],
                outputs: Vec::new(),
                out_clock: 0.0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Join round `op` as group position `pos` with virtual time `clock`.
    ///
    /// `cost_of` is invoked exactly once per round, by the last arrival,
    /// with the generation number; it returns the modeled collective cost
    /// (including jitter). `abort` is polled while waiting.
    #[allow(clippy::too_many_arguments)]
    pub fn arrive(
        &self,
        group: &Group,
        pos: usize,
        op: CollOp,
        input: CollInput,
        clock: f64,
        cost_of: impl FnOnce(u64, u64) -> f64,
        abort: &std::sync::atomic::AtomicBool,
    ) -> CollWait {
        use std::sync::atomic::Ordering;
        let n = group.len();
        let mut st = self.state.lock();
        match st.op {
            None => st.op = Some(op),
            Some(existing) => assert_eq!(
                existing, op,
                "collective mismatch in group {:?}: {:?} vs {:?}",
                group.ranks(),
                existing,
                op
            ),
        }
        assert!(st.inputs[pos].is_none(), "rank joined the same round twice");
        st.inputs[pos] = Some(input);
        st.clocks[pos] = clock;
        st.arrived += 1;
        let my_gen = st.generation;

        if st.arrived == n {
            // Last arrival: combine and release the round.
            let inputs: Vec<CollInput> = st.inputs.iter_mut().map(|i| i.take().unwrap()).collect();
            let max_bytes = inputs.iter().map(|i| i.byte_len()).max().unwrap_or(0);
            let max_clock = st.clocks.iter().cloned().fold(f64::MIN, f64::max);
            let cost = cost_of(my_gen, max_bytes);
            st.outputs = complete(op, group, &inputs);
            st.out_clock = max_clock + cost;
            st.arrived = 0;
            st.op = None;
            st.generation += 1;
            self.cv.notify_all();
            let output = st.outputs[pos].clone();
            let out_clock = st.out_clock;
            return CollWait::Done(CollResult { output, out_clock });
        }

        // Wait for the round to complete, polling the abort flag.
        while st.generation == my_gen {
            let timeout = self
                .cv
                .wait_for(&mut st, Duration::from_millis(5))
                .timed_out();
            if timeout && abort.load(Ordering::Relaxed) && st.generation == my_gen {
                return CollWait::Aborted;
            }
        }
        let output = st.outputs[pos].clone();
        let out_clock = st.out_clock;
        CollWait::Done(CollResult { output, out_clock })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &[u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }

    #[test]
    fn reduce_ops_combine_correctly() {
        assert_eq!(ReduceOp::Sum.apply(2.0, 3.0), 5.0);
        assert_eq!(ReduceOp::Prod.apply(2.0, 3.0), 6.0);
        assert_eq!(ReduceOp::Max.apply(2.0, 3.0), 3.0);
        assert_eq!(ReduceOp::Min.apply(2.0, 3.0), 2.0);
    }

    #[test]
    fn complete_bcast_copies_root_payload() {
        let g = Group::new(vec![0, 1, 2]);
        let inputs = vec![
            CollInput::None,
            CollInput::Bytes(b(b"hi")),
            CollInput::None,
        ];
        let out = complete(CollOp::Bcast { root: 1 }, &g, &inputs);
        for o in out {
            match o {
                CollOutput::Bytes(p) => assert_eq!(&p[..], b"hi"),
                other => panic!("unexpected {:?}", other),
            }
        }
    }

    #[test]
    fn complete_allreduce_sums_elementwise() {
        let g = Group::new(vec![0, 1]);
        let inputs = vec![
            CollInput::F64(vec![1.0, 2.0]),
            CollInput::F64(vec![10.0, 20.0]),
        ];
        let out = complete(CollOp::Allreduce { op: ReduceOp::Sum }, &g, &inputs);
        for o in out {
            match o {
                CollOutput::F64(xs) => assert_eq!(xs, vec![11.0, 22.0]),
                other => panic!("unexpected {:?}", other),
            }
        }
    }

    #[test]
    fn complete_reduce_only_root_gets_data() {
        let g = Group::new(vec![3, 5]);
        let inputs = vec![CollInput::F64(vec![1.0]), CollInput::F64(vec![4.0])];
        let out = complete(
            CollOp::Reduce { root: 5, op: ReduceOp::Max },
            &g,
            &inputs,
        );
        assert!(matches!(out[0], CollOutput::None));
        match &out[1] {
            CollOutput::F64(xs) => assert_eq!(xs, &vec![4.0]),
            other => panic!("unexpected {:?}", other),
        }
    }

    #[test]
    fn complete_alltoall_transposes_blocks() {
        let g = Group::new(vec![0, 1]);
        let inputs = vec![
            CollInput::Blocks(vec![b(b"00"), b(b"01")]),
            CollInput::Blocks(vec![b(b"10"), b(b"11")]),
        ];
        let out = complete(CollOp::Alltoall, &g, &inputs);
        match &out[0] {
            CollOutput::Blocks(bs) => {
                assert_eq!(&bs[0][..], b"00");
                assert_eq!(&bs[1][..], b"10");
            }
            other => panic!("unexpected {:?}", other),
        }
        match &out[1] {
            CollOutput::Blocks(bs) => {
                assert_eq!(&bs[0][..], b"01");
                assert_eq!(&bs[1][..], b"11");
            }
            other => panic!("unexpected {:?}", other),
        }
    }

    #[test]
    fn complete_scatter_distributes_root_blocks() {
        let g = Group::new(vec![0, 1, 2]);
        let inputs = vec![
            CollInput::Blocks(vec![b(b"a"), b(b"b"), b(b"c")]),
            CollInput::None,
            CollInput::None,
        ];
        let out = complete(CollOp::Scatter { root: 0 }, &g, &inputs);
        let expect = [b"a", b"b", b"c"];
        for (o, e) in out.iter().zip(expect) {
            match o {
                CollOutput::Bytes(p) => assert_eq!(&p[..], *e),
                other => panic!("unexpected {:?}", other),
            }
        }
    }

    #[test]
    fn complete_gather_collects_in_group_order() {
        let g = Group::new(vec![0, 1]);
        let inputs = vec![CollInput::Bytes(b(b"x")), CollInput::Bytes(b(b"y"))];
        let out = complete(CollOp::Gather { root: 0 }, &g, &inputs);
        match &out[0] {
            CollOutput::Blocks(bs) => {
                assert_eq!(&bs[0][..], b"x");
                assert_eq!(&bs[1][..], b"y");
            }
            other => panic!("unexpected {:?}", other),
        }
        assert!(matches!(out[1], CollOutput::None));
    }

    #[test]
    fn keyed_noise_is_deterministic_and_bounded() {
        let a = keyed_unit_noise(1, 2, 3);
        let b = keyed_unit_noise(1, 2, 3);
        assert_eq!(a, b);
        assert_ne!(keyed_unit_noise(1, 2, 4), a);
        for i in 0..1000 {
            let v = keyed_unit_noise(42, i, 7);
            assert!((-1.8..1.8).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "reduction vectors must agree in length")]
    fn mismatched_reduction_lengths_panic() {
        reduce_inputs(
            &[CollInput::F64(vec![1.0]), CollInput::F64(vec![1.0, 2.0])],
            ReduceOp::Sum,
        );
    }
}
