//! Integration tests for the message-passing runtime.

use bytes::Bytes;
use pas2p_machine::{cluster_a, cluster_b, cluster_c, JitterModel, MappingPolicy, Work};
use pas2p_mpisim::{
    run_app, Counters, Group, HarnessAction, Mpi, ReduceOp, RunReport, SimConfig, SimHarness,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn quiet_machine() -> pas2p_machine::MachineModel {
    let mut m = cluster_a();
    m.jitter = JitterModel::none();
    m
}

fn run4<F>(f: F) -> RunReport
where
    F: Fn(&mut pas2p_mpisim::RankCtx) + Send + Sync,
{
    let cfg = SimConfig::new(quiet_machine(), 4, MappingPolicy::Block);
    run_app(&cfg, f)
}

#[test]
fn ping_pong_delivers_payload() {
    run4(|ctx| match ctx.rank() {
        0 => {
            ctx.send(1, 7, b"ping");
            let m = ctx.recv(Some(1), Some(8));
            assert_eq!(&m.data[..], b"pong");
            assert_eq!(m.src, 1);
        }
        1 => {
            let m = ctx.recv(Some(0), Some(7));
            assert_eq!(&m.data[..], b"ping");
            ctx.send(0, 8, b"pong");
        }
        _ => {}
    });
}

#[test]
fn virtual_clock_advances_through_communication() {
    let r = run4(|ctx| {
        if ctx.rank() == 0 {
            ctx.compute(Work::flops(1e9));
            ctx.send(3, 1, &vec![0u8; 1 << 20]);
        } else if ctx.rank() == 3 {
            let m = ctx.recv(Some(0), Some(1));
            // The receive completes after the send departed plus wire time.
            assert!(m.arrive > m.depart);
        }
    });
    // Rank 3 inherits rank 0's compute time through the message.
    assert!(r.rank_clocks[3] > 0.5, "clock {}", r.rank_clocks[3]);
}

#[test]
fn recv_any_source_matches_earliest_departure() {
    // Ranks 1..4 send to rank 0 after different compute delays; the
    // wildcard receives should observe sources ordered by departure time.
    let r = run4(|ctx| {
        let rank = ctx.rank();
        if rank == 0 {
            let mut sources = Vec::new();
            // Give the senders real time to inject everything so the
            // pending queue sees all three messages.
            std::thread::sleep(std::time::Duration::from_millis(100));
            for _ in 0..3 {
                let m = ctx.recv(None, None);
                sources.push((m.depart, m.src));
            }
            let mut sorted = sources.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(sources, sorted, "wildcard receives out of depart order");
        } else {
            // rank r departs at ~r seconds of virtual time
            ctx.compute(Work::flops(1.9e9 * rank as f64));
            ctx.send(0, 5, &[rank as u8]);
        }
    });
    assert_eq!(r.total_msgs, 3);
}

#[test]
fn allreduce_agrees_across_ranks() {
    run4(|ctx| {
        let x = (ctx.rank() + 1) as f64;
        let sum = ctx.allreduce_f64(&[x, 2.0 * x], ReduceOp::Sum);
        assert_eq!(sum, vec![10.0, 20.0]);
        let max = ctx.allreduce_f64(&[x], ReduceOp::Max);
        assert_eq!(max, vec![4.0]);
    });
}

#[test]
fn collectives_synchronize_clocks() {
    let r = run4(|ctx| {
        if ctx.rank() == 2 {
            ctx.compute(Work::flops(1.9e9 * 3.0)); // ~3 s
        }
        ctx.barrier();
        // Everyone leaves the barrier no earlier than the slowest rank.
        assert!(ctx.now() >= 3.0, "rank {} at {}", ctx.rank(), ctx.now());
    });
    for c in &r.rank_clocks {
        assert!(*c >= 3.0);
    }
}

#[test]
fn bcast_from_nonzero_root() {
    run4(|ctx| {
        let data = if ctx.rank() == 2 {
            Some(Bytes::from_static(b"hello"))
        } else {
            None
        };
        let out = ctx.bcast(2, data);
        assert_eq!(&out[..], b"hello");
    });
}

#[test]
fn gather_and_scatter_roundtrip() {
    run4(|ctx| {
        let mine = Bytes::from(vec![ctx.rank() as u8]);
        let gathered = ctx.gather(0, mine);
        if ctx.rank() == 0 {
            let blocks = gathered.unwrap();
            assert_eq!(blocks.len(), 4);
            for (i, b) in blocks.iter().enumerate() {
                assert_eq!(b[0] as usize, i);
            }
            let back = ctx.scatter(0, Some(blocks));
            assert_eq!(back[0], 0);
        } else {
            assert!(gathered.is_none());
            let back = ctx.scatter(0, None);
            assert_eq!(back[0] as u32, ctx.rank());
        }
    });
}

#[test]
fn alltoall_transposes() {
    run4(|ctx| {
        let blocks: Vec<Bytes> = (0..4)
            .map(|d| Bytes::from(vec![ctx.rank() as u8, d as u8]))
            .collect();
        let got = ctx.alltoall(blocks);
        for (s, b) in got.iter().enumerate() {
            assert_eq!(b[0] as usize, s, "block from rank {}", s);
            assert_eq!(b[1] as u32, ctx.rank());
        }
    });
}

#[test]
fn allgather_orders_by_rank() {
    run4(|ctx| {
        let got = ctx.allgather(Bytes::from(vec![ctx.rank() as u8 * 10]));
        let vals: Vec<u8> = got.iter().map(|b| b[0]).collect();
        assert_eq!(vals, vec![0, 10, 20, 30]);
    });
}

#[test]
fn subgroup_collectives_are_independent() {
    run4(|ctx| {
        let rank = ctx.rank();
        let g = if rank < 2 {
            Group::new(vec![0, 1])
        } else {
            Group::new(vec![2, 3])
        };
        let sum = ctx.allreduce_f64_in(&g, &[rank as f64], ReduceOp::Sum);
        if rank < 2 {
            assert_eq!(sum, vec![1.0]);
        } else {
            assert_eq!(sum, vec![5.0]);
        }
    });
}

#[test]
fn grid_row_and_column_groups() {
    run4(|ctx| {
        // 2x2 grid.
        let row = Group::grid_row(ctx.rank(), 2, 2);
        let col = Group::grid_col(ctx.rank(), 2, 2);
        let rsum = ctx.allreduce_f64_in(&row, &[1.0], ReduceOp::Sum);
        let csum = ctx.allreduce_f64_in(&col, &[1.0], ReduceOp::Sum);
        assert_eq!(rsum, vec![2.0]);
        assert_eq!(csum, vec![2.0]);
    });
}

#[test]
fn counters_track_events() {
    run4(|ctx| {
        if ctx.rank() == 0 {
            ctx.send(1, 0, b"x");
        } else if ctx.rank() == 1 {
            ctx.recv(Some(0), Some(0));
        }
        ctx.barrier();
        let c = ctx.counters();
        assert_eq!(c.colls, 1);
        match ctx.rank() {
            0 => assert_eq!((c.sends, c.recvs), (1, 0)),
            1 => assert_eq!((c.sends, c.recvs), (0, 1)),
            _ => assert_eq!((c.sends, c.recvs), (0, 0)),
        }
    });
}

#[test]
fn run_is_deterministic_with_same_seed() {
    let run = || {
        let cfg = SimConfig::new(cluster_b(), 8, MappingPolicy::Block);
        run_app(&cfg, |ctx| {
            let n = ctx.size();
            let next = (ctx.rank() + 1) % n;
            let prev = (ctx.rank() + n - 1) % n;
            for _ in 0..20 {
                ctx.compute(Work::new(1e7, 1e6));
                ctx.send(next, 1, &vec![1u8; 4096]);
                ctx.recv(Some(prev), Some(1));
                ctx.allreduce_f64(&[1.0], ReduceOp::Sum);
            }
        })
    };
    let a = run();
    let b = run();
    assert_eq!(a.rank_clocks, b.rank_clocks);
    assert_eq!(a.makespan, b.makespan);
}

#[test]
fn different_machines_produce_different_times() {
    let prog = |ctx: &mut pas2p_mpisim::RankCtx| {
        let n = ctx.size();
        let next = (ctx.rank() + 1) % n;
        let prev = (ctx.rank() + n - 1) % n;
        for _ in 0..10 {
            ctx.compute(Work::flops(1e8));
            ctx.send(next, 1, &vec![1u8; 1 << 16]);
            ctx.recv(Some(prev), Some(1));
        }
    };
    let ra = run_app(&SimConfig::new(cluster_a(), 16, MappingPolicy::Block), prog);
    let rc = run_app(&SimConfig::new(cluster_c(), 16, MappingPolicy::Block), prog);
    // Cluster C has InfiniBand: the communication-heavy ring must be
    // faster there than on GigE cluster A.
    assert!(
        rc.makespan < ra.makespan,
        "C {} !< A {}",
        rc.makespan,
        ra.makespan
    );
}

#[test]
fn oversubscribed_run_is_slower() {
    let prog = |ctx: &mut pas2p_mpisim::RankCtx| {
        ctx.compute(Work::flops(1e8));
        ctx.barrier();
    };
    let m = quiet_machine();
    let dedicated = run_app(&SimConfig::new(m.clone(), 128, MappingPolicy::Block), prog);
    let packed = run_app(&SimConfig::new(m, 256, MappingPolicy::Block), prog);
    assert!(
        packed.makespan > 1.9 * dedicated.makespan,
        "256 ranks on 128 cores should be ~2x slower: {} vs {}",
        packed.makespan,
        dedicated.makespan
    );
}

struct AbortAfter {
    events: AtomicU64,
    limit: u64,
}

impl SimHarness for AbortAfter {
    fn on_comm_event(&self, _rank: u32, _c: &Counters, _clock: f64) -> HarnessAction {
        if self.events.fetch_add(1, Ordering::Relaxed) + 1 >= self.limit {
            HarnessAction::AbortAll
        } else {
            HarnessAction::Continue
        }
    }
}

#[test]
fn harness_abort_terminates_all_ranks() {
    let harness = Arc::new(AbortAfter {
        events: AtomicU64::new(0),
        limit: 40,
    });
    let cfg = SimConfig::new(quiet_machine(), 4, MappingPolicy::Block)
        .with_harness(harness.clone());
    let r = run_app(&cfg, |ctx| {
        // Endless ring: can only finish by abort.
        let n = ctx.size();
        let next = (ctx.rank() + 1) % n;
        let prev = (ctx.rank() + n - 1) % n;
        loop {
            ctx.send(next, 0, b"spin");
            ctx.recv(Some(prev), Some(0));
        }
    });
    assert!(r.aborted);
    assert!(harness.events.load(Ordering::Relaxed) >= 40);
}

#[test]
fn irecv_wait_completes_like_recv() {
    run4(|ctx| {
        if ctx.rank() == 0 {
            ctx.send(1, 7, b"async");
        } else if ctx.rank() == 1 {
            let req = ctx.irecv(Some(0), Some(7));
            assert_eq!(req.posted_at, ctx.now());
            let m = ctx.wait(req);
            assert_eq!(&m.data[..], b"async");
            assert_eq!(ctx.counters().recvs, 1);
        }
    });
}

#[test]
fn overlapped_compute_absorbs_wire_time() {
    // Posting the receive, computing, then waiting: the compute interval
    // overlaps the transfer, so the total is max(compute, wire), not the
    // sum — the point of nonblocking communication.
    let m = quiet_machine();
    let cfg = SimConfig::new(m.clone(), 2, MappingPolicy::Cyclic); // different nodes
    let payload = vec![0u8; 8 << 20]; // ~75 ms on GigE
    let wire = m.network.transfer_time(payload.len() as u64);
    let compute_secs = 2.0 * wire;
    let flops = compute_secs * m.compute.flops_per_sec;
    let r = run_app(&cfg, |ctx| {
        if ctx.rank() == 0 {
            ctx.send(1, 1, &payload);
        } else {
            let req = ctx.irecv(Some(0), Some(1));
            ctx.compute(Work::flops(flops));
            ctx.wait(req);
            // The wait completes within the compute shadow: total ≈
            // compute, not compute + wire.
            assert!(
                ctx.now() < compute_secs * 1.15,
                "overlap failed: {} vs {}",
                ctx.now(),
                compute_secs
            );
        }
    });
    assert!(!r.aborted);
}

#[test]
fn waitall_preserves_request_order() {
    run4(|ctx| {
        if ctx.rank() == 0 {
            ctx.send(1, 10, b"a");
            ctx.send(1, 11, b"b");
        } else if ctx.rank() == 1 {
            let r1 = ctx.irecv(Some(0), Some(10));
            let r2 = ctx.irecv(Some(0), Some(11));
            let ms = ctx.waitall(vec![r1, r2]);
            assert_eq!(&ms[0].data[..], b"a");
            assert_eq!(&ms[1].data[..], b"b");
        }
    });
}

#[test]
fn self_send_matches() {
    run4(|ctx| {
        if ctx.rank() == 0 {
            ctx.send(0, 9, b"me");
            let m = ctx.recv(Some(0), Some(9));
            assert_eq!(&m.data[..], b"me");
        }
    });
}

#[test]
fn send_f64_helpers_roundtrip() {
    run4(|ctx| {
        if ctx.rank() == 0 {
            ctx.send_f64(1, 3, &[1.5, -2.5]);
        } else if ctx.rank() == 1 {
            let (m, xs) = ctx.recv_f64(Some(0), Some(3));
            assert_eq!(xs, vec![1.5, -2.5]);
            assert_eq!(m.tag, 3);
        }
    });
}

#[test]
fn report_totals_count_traffic() {
    let r = run4(|ctx| {
        if ctx.rank() == 0 {
            ctx.send(1, 0, &[0u8; 100]);
        } else if ctx.rank() == 1 {
            ctx.recv(Some(0), None);
        }
        ctx.barrier();
    });
    assert_eq!(r.total_msgs, 1);
    assert_eq!(r.total_bytes, 100);
    assert_eq!(r.total_colls, 4);
    assert!(!r.aborted);
    assert!(r.wall_seconds > 0.0);
}

#[test]
fn message_relation_ids_are_unique() {
    let cfg = SimConfig::new(quiet_machine(), 4, MappingPolicy::Block);
    let seen = parking_lot_mutex_vec();
    let seen_ref = &seen;
    run_app(&cfg, move |ctx| {
        if ctx.rank() == 0 {
            for d in 1..4 {
                for _ in 0..5 {
                    ctx.send(d, 0, b"x");
                }
            }
        } else {
            for _ in 0..5 {
                let m = ctx.recv(Some(0), Some(0));
                seen_ref.lock().push(m.msg_id);
            }
        }
    });
    let ids = seen.into_inner();
    let uniq: std::collections::HashSet<u64> = ids.iter().cloned().collect();
    assert_eq!(uniq.len(), ids.len());
}

fn parking_lot_mutex_vec() -> parking_lot::Mutex<Vec<u64>> {
    parking_lot::Mutex::new(Vec::new())
}

#[test]
fn message_ids_are_deterministic_across_runs() {
    // Msg ids must depend only on the program (sender rank + send order),
    // never on how the OS interleaved rank threads: traces feed
    // content-addressed storage, where a drifting id changes the digest
    // of an identical logical run.
    let observe = || {
        let cfg = SimConfig::new(quiet_machine(), 4, MappingPolicy::Block);
        let per_rank: Vec<parking_lot::Mutex<Vec<u64>>> =
            (0..4).map(|_| parking_lot_mutex_vec()).collect();
        let per_rank_ref = &per_rank;
        run_app(&cfg, move |ctx| {
            let n = ctx.size();
            let rank = ctx.rank();
            for round in 0..3u32 {
                ctx.send((rank + 1) % n, round, &[2u8; 64]);
                let m = ctx.recv(Some((rank + n - 1) % n), Some(round));
                per_rank_ref[rank as usize].lock().push(m.msg_id);
            }
        });
        per_rank
            .into_iter()
            .map(|m| m.into_inner())
            .collect::<Vec<Vec<u64>>>()
    };
    let first = observe();
    assert_eq!(first, observe());
    // Sender rank lives in the high bits, send sequence in the low ones.
    assert_eq!(first[1], vec![1 << 40, (1 << 40) | 1, (1 << 40) | 2]);
}

#[test]
fn stress_64_ranks_mixed_traffic() {
    // 64 threads exchanging p2p + collectives for 30 rounds: exercises
    // the mailbox, rendezvous reuse, and group caching under real
    // contention.
    let cfg = SimConfig::new(quiet_machine(), 64, MappingPolicy::Block);
    let r = run_app(&cfg, |ctx| {
        let n = ctx.size();
        let rank = ctx.rank();
        for round in 0..30u32 {
            ctx.compute(Work::flops(1e6));
            let shift = 1 + (round % 5);
            let dest = (rank + shift) % n;
            let src = (rank + n - shift) % n;
            ctx.send(dest, round, &[1u8; 128]);
            ctx.recv(Some(src), Some(round));
            if round % 3 == 0 {
                ctx.allreduce_f64(&[rank as f64], ReduceOp::Max);
            }
            if round % 7 == 0 {
                let row = Group::grid_row(rank, 8, 8);
                ctx.barrier_in(&row);
            }
        }
    });
    assert!(!r.aborted);
    assert_eq!(r.total_msgs, 64 * 30);
    assert!(r.imbalance() < 0.05, "imbalance {}", r.imbalance());
}

#[test]
fn empty_payload_messages_work() {
    run4(|ctx| {
        if ctx.rank() == 0 {
            ctx.send(1, 0, &[]);
        } else if ctx.rank() == 1 {
            let m = ctx.recv(Some(0), Some(0));
            assert!(m.data.is_empty());
            assert!(m.arrive >= m.depart);
        }
    });
}

#[test]
fn single_rank_world_runs_collectives() {
    let cfg = SimConfig::new(quiet_machine(), 1, MappingPolicy::Block);
    let r = run_app(&cfg, |ctx| {
        ctx.barrier();
        let s = ctx.allreduce_f64(&[5.0], ReduceOp::Sum);
        assert_eq!(s, vec![5.0]);
        let b = ctx.bcast(0, Some(bytes::Bytes::from_static(b"solo")));
        assert_eq!(&b[..], b"solo");
    });
    assert_eq!(r.nprocs, 1);
}

#[test]
fn tags_isolate_message_streams() {
    run4(|ctx| {
        if ctx.rank() == 0 {
            // Send interleaved tags; receiver drains them out of order.
            for i in 0..6u32 {
                ctx.send(1, i % 2, &[i as u8]);
            }
        } else if ctx.rank() == 1 {
            // Receive all tag-1 first, then tag-0: matching must respect
            // per-(src,tag) FIFO regardless of arrival interleaving.
            let odd: Vec<u8> = (0..3).map(|_| ctx.recv(Some(0), Some(1)).data[0]).collect();
            let even: Vec<u8> = (0..3).map(|_| ctx.recv(Some(0), Some(0)).data[0]).collect();
            assert_eq!(odd, vec![1, 3, 5]);
            assert_eq!(even, vec![0, 2, 4]);
        }
    });
}

#[test]
fn rank_clocks_reflect_load_imbalance() {
    let r = run4(|ctx| {
        ctx.compute(Work::flops(1e8 * (ctx.rank() + 1) as f64));
    });
    for w in r.rank_clocks.windows(2) {
        assert!(w[1] > w[0]);
    }
    assert!(r.imbalance() > 0.5);
}
