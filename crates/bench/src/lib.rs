//! Shared plumbing for the table/figure regeneration benches.
//!
//! Every bench prints (a) the configuration it ran (scaled down from the
//! paper's workloads; see `DESIGN.md` "Scaling note"), (b) the regenerated
//! table rows, and (c) the paper's reference values for shape comparison.
//! Set `PAS2P_BENCH_SHRINK=1` to run at the paper's process counts.

#![forbid(unsafe_code)]

use pas2p_machine::MachineModel;

/// Process-count shrink factor: paper sizes are divided by this. Default
/// 4 keeps the whole suite in CI time; 1 reproduces the paper's scales.
pub fn shrink() -> u32 {
    std::env::var("PAS2P_BENCH_SHRINK")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(4)
}

/// Standard bench banner.
pub fn banner(title: &str, base: &MachineModel, target: Option<&MachineModel>) {
    println!("================================================================");
    println!("{}", title);
    match target {
        Some(t) => println!(
            "base machine: {} | target machine: {} | shrink {}x",
            base.name,
            t.name,
            shrink()
        ),
        None => println!("machine: {} | shrink {}x", base.name, shrink()),
    }
    println!("================================================================");
}

/// Print the paper's reference table for side-by-side comparison.
pub fn paper_reference(lines: &[&str]) {
    println!("\n--- paper reference (absolute numbers differ; compare shape) ---");
    for l in lines {
        println!("  {}", l);
    }
    println!();
}

#[cfg(test)]
mod tests {
    #[test]
    fn shrink_defaults_sane() {
        assert!(super::shrink() >= 1);
    }
}
