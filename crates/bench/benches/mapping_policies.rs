//! Mapping policies (paper Fig 12: "we execute the signature in target
//! machine changing the mapping policies"): the same signature predicts
//! the application under different process→core placements, and the
//! prediction tracks what placement actually does to the runtime.

use pas2p::experiment::first_cores_mapping;
use pas2p::prelude::*;
use pas2p::Pas2p;
use pas2p_apps::{Class, CgApp, Smg2000App};
use pas2p_bench::{banner, paper_reference};

fn main() {
    let base = cluster_a();
    let target = cluster_b();
    banner(
        "Mapping policies: one signature, several placements (Fig 12)",
        &base,
        Some(&target),
    );

    let pas2p = Pas2p::default();
    let apps: Vec<Box<dyn MpiApp>> = vec![
        // SMG2000's halo pattern is placement-sensitive: neighbours on the
        // same node talk over shared memory under Block.
        Box::new(Smg2000App { nprocs: 16, n: 80, levels: 3, iters: 20 }),
        Box::new(CgApp { class: Class::B, nprocs: 16, iters: 40 }),
    ];

    for app in &apps {
        let analysis = pas2p.analyze(app.as_ref(), &base, MappingPolicy::Block);
        let (sig, _) = pas2p.build_signature(app.as_ref(), &analysis, &base, MappingPolicy::Block);

        println!(
            "\n{} ({} procs) on {}:",
            app.name(),
            app.nprocs(),
            target.name
        );
        println!(
            "{:<26} {:>10} {:>10} {:>9}",
            "placement", "PET(s)", "AET(s)", "PETE(%)"
        );
        let mut results = Vec::new();
        let placements: Vec<(&str, MappingPolicy)> = vec![
            ("block (fill nodes)", MappingPolicy::Block),
            ("cyclic (spread nodes)", MappingPolicy::Cyclic),
            (
                "packed on half the cores",
                first_cores_mapping(&target, app.nprocs(), app.nprocs() / 2),
            ),
        ];
        for (label, policy) in placements {
            let report = pas2p
                .validate(app.as_ref(), &sig, &target, policy)
                .unwrap();
            println!(
                "{:<26} {:>10.2} {:>10.2} {:>9.2}",
                label, report.prediction.pet, report.aet, report.pete_or_inf()
            );
            results.push((label, report));
        }

        // The prediction must rank placements the way reality does,
        // wherever reality actually separates them (>5% AET difference;
        // block vs cyclic can be a tie on small node counts).
        for i in 0..results.len() {
            for j in (i + 1)..results.len() {
                let (la, a) = &results[i];
                let (lb, b) = &results[j];
                if (a.aet - b.aet).abs() / a.aet.min(b.aet) > 0.05 {
                    assert_eq!(
                        a.prediction.pet < b.prediction.pet,
                        a.aet < b.aet,
                        "{}: prediction misranks '{}' vs '{}'",
                        app.name(),
                        la,
                        lb
                    );
                }
            }
        }
        for (label, r) in &results {
            assert!(
                r.pete_or_inf() < 12.0,
                "{} under '{}': PETE {:.2}%",
                app.name(),
                label,
                r.pete_or_inf()
            );
        }
        // Oversubscription genuinely hurts, and the signature knows it.
        let packed = &results[2].1;
        let block = &results[0].1;
        assert!(packed.aet > block.aet * 1.5);
        assert!(packed.prediction.pet > block.prediction.pet * 1.5);
    }

    paper_reference(&[
        "Fig 12: \"we execute the signature in target machine changing the",
        "mapping policies to obtain the predicted execution time\"; §7: \"the",
        "signature is able to execute using different mappings, increasing",
        "or decreasing the number of CPUs\".",
    ]);
}
