//! Regenerates Table 3: "Extraction and Execution of Phases on Cluster C"
//! — the MD Moldy analysis (trace size, analysis time, total/relevant
//! phases, per-phase ET×weight, AET vs SET).

use pas2p::experiment::human_bytes;
use pas2p::prelude::*;
use pas2p::Pas2p;
use pas2p_apps::MoldyApp;
use pas2p_bench::{banner, paper_reference, shrink};

fn main() {
    let machine = cluster_c();
    banner("Table 3: MD Moldy analysis + signature execution on cluster C", &machine, None);

    let nprocs = 256 / shrink();
    let app = MoldyApp::tip4p(nprocs);
    let pas2p = Pas2p::default();

    let analysis = pas2p.analyze(&app, &machine, MappingPolicy::Block);
    println!("\nMD Moldy analysis");
    println!("Number of processes: {}, Input data: tip4p (scaled)", nprocs);
    println!("Size of log trace: {}", human_bytes(analysis.trace_bytes));
    println!("Time to analyze the log trace: {:.3} s", analysis.tfat_seconds);
    println!(
        "Total of phases: {}, Relevant phases: {}",
        analysis.total_phases(),
        analysis.relevant_phases()
    );

    let (signature, _) = pas2p.build_signature(&app, &analysis, &machine, MappingPolicy::Block);
    let report = pas2p
        .validate(&app, &signature, &machine, MappingPolicy::Block)
        .unwrap();

    println!(
        "\n{:<10} {:>14} {:>10} {:>22}",
        "Phase ID", "PhaseET (s)", "Weight", "(PhaseET)*(Weight) (s)"
    );
    for m in &report.prediction.measurements {
        println!(
            "{:<10} {:>14.6} {:>10} {:>22.2}",
            m.phase_id,
            m.phase_et,
            m.weight,
            m.contribution()
        );
    }
    println!(
        "\nApplication Execution Time (s): {:.2}",
        report.aet
    );
    println!("Signature Execution Time (s):   {:.2}", report.prediction.set);
    println!(
        "SET/AET: {:.2}% | PETE: {:.2}%",
        report.set_vs_aet_percent, report.pete_or_inf()
    );

    // Shape assertions mirroring the paper's profile.
    assert!(analysis.total_phases() > analysis.relevant_phases());
    assert!(report.set_vs_aet_percent < 25.0);
    assert!(report.pete_or_inf() < 15.0);

    paper_reference(&[
        "256 processes, tip4p | trace 5.2 GB | analysis 336.78 s",
        "13 total phases, 4 relevant",
        "phase 1: 0.003018 s x 100000 = 301.80 s",
        "phase 2: 0.006131 s x  89976 = 551.64 s",
        "phase 3: 0.000949 s x 199998 = 189.79 s",
        "phase 4: 0.009387 s x   9998 =  93.85 s",
        "AET 1169.31 s | SET 1.69 s",
    ]);
}
