//! Head-to-head comparison against the related-work baselines (paper §2):
//! the PAS2P signature vs a Dimemas-like trace replay [14] vs partial
//! execution [17], predicting cluster-B runtimes from cluster-A analyses.
//!
//! The paper's qualitative claims, checked quantitatively here:
//! * the signature runs *real code* on the target, so it stays accurate
//!   when machine balance shifts (replay's single compute-scale factor
//!   drifts);
//! * the signature analyzes the *entire* execution, so periodic
//!   off-prefix behaviour (Moldy's neighbour-list rebuilds) is captured
//!   (partial execution misses it).

use pas2p::baselines::{predict_by_partial_execution, predict_by_replay};
use pas2p::prelude::*;
use pas2p::Pas2p;
use pas2p_apps::{CgApp, Class, MoldyApp};
use pas2p_bench::{banner, paper_reference};

struct Row {
    app: String,
    method: &'static str,
    pet: f64,
    err: f64,
    cost: f64,
}

fn main() {
    let base = cluster_a();
    let target = cluster_b();
    banner(
        "Baseline comparison: signature vs trace replay vs partial execution",
        &base,
        Some(&target),
    );

    let pas2p = Pas2p::default();
    let apps: Vec<Box<dyn MpiApp>> = vec![
        Box::new(CgApp { class: Class::B, nprocs: 16, iters: 60 }),
        Box::new(MoldyApp { nprocs: 16, steps: 200, rebuild_every: 10, atoms_per_proc: 1024 }),
    ];

    let mut rows: Vec<Row> = Vec::new();
    for app in &apps {
        let aet = run_plain(app.as_ref(), &target, MappingPolicy::Block).makespan;

        // PAS2P signature.
        let analysis = pas2p.analyze(app.as_ref(), &base, MappingPolicy::Block);
        let (sig, _) = pas2p.build_signature(app.as_ref(), &analysis, &base, MappingPolicy::Block);
        let pred = pas2p
            .predict(app.as_ref(), &sig, &target, MappingPolicy::Block)
            .unwrap();
        rows.push(Row {
            app: app.name(),
            method: "PAS2P signature",
            pet: pred.pet,
            err: 100.0 * (pred.pet - aet).abs() / aet,
            cost: pred.set,
        });

        // Dimemas-like replay of the base trace.
        let (trace, _) = run_traced(
            app.as_ref(),
            &base,
            MappingPolicy::Block,
            InstrumentationModel::free(),
        );
        let replay = predict_by_replay(&trace, &base, &target, MappingPolicy::Block);
        rows.push(Row {
            app: app.name(),
            method: "trace replay [14]",
            pet: replay.pet,
            err: 100.0 * (replay.pet - aet).abs() / aet,
            cost: 0.0, // no target-machine time, but needs the full trace
        });

        // Partial execution on the target.
        let partial =
            predict_by_partial_execution(app.as_ref(), &target, MappingPolicy::Block, 2, 5);
        rows.push(Row {
            app: app.name(),
            method: "partial exec [17]",
            pet: partial.pet,
            err: 100.0 * (partial.pet - aet).abs() / aet,
            cost: partial.observation_time,
        });

        println!(
            "\n{} ({} procs, {}): AET on {} = {:.2}s",
            app.name(),
            app.nprocs(),
            app.workload(),
            target.name,
            aet
        );
        println!(
            "{:<20} {:>10} {:>9} {:>18}",
            "method", "PET(s)", "err(%)", "target-time cost(s)"
        );
        for r in rows.iter().rev().take(3).collect::<Vec<_>>().into_iter().rev() {
            println!(
                "{:<20} {:>10.2} {:>9.2} {:>18.2}",
                r.method, r.pet, r.err, r.cost
            );
        }
    }

    // Quantitative shape checks.
    let err_of = |app: &str, method: &str| {
        rows.iter()
            .find(|r| r.app == app && r.method.starts_with(method))
            .map(|r| r.err)
            .unwrap()
    };
    // Moldy: partial execution observing 5 steps misses the every-10-step
    // rebuild family; the signature captures it.
    let sig_moldy = err_of("Moldy", "PAS2P");
    let partial_moldy = err_of("Moldy", "partial");
    println!(
        "\nMoldy: signature err {:.2}% vs partial-execution err {:.2}%",
        sig_moldy, partial_moldy
    );
    assert!(
        sig_moldy < partial_moldy,
        "the signature must beat short partial execution on phase-rich apps"
    );
    // The signature stays within the paper's band everywhere.
    for app in ["CG", "Moldy"] {
        assert!(err_of(app, "PAS2P") < 10.0, "{} signature err out of band", app);
    }

    paper_reference(&[
        "§2 on [14]: \"we create a signature that represents the application;",
        "this signature can be executed on different systems quickly without",
        "needing a simulator\"",
        "§2 on [17]: \"Our signature intends to analyze the entire execution",
        "to provide better prediction quality.\"",
    ]);
}
