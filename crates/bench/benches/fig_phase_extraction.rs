//! Regenerates Fig 6 (phase extraction on a master/worker application)
//! and Fig 7 (the phase table), plus the §6 single-phase observation.

use pas2p::prelude::*;
use pas2p::Pas2p;
use pas2p_apps::MasterWorkerApp;
use pas2p_bench::paper_reference;
use pas2p_model::pas2p_order;
use pas2p_phases::{extract_phases, PhaseTable, SimilarityConfig};

fn analyze(app: &dyn MpiApp) -> pas2p_phases::PhaseAnalysis {
    let base = cluster_a();
    let (trace, _) = run_traced(
        app,
        &base,
        MappingPolicy::Block,
        InstrumentationModel::free(),
    );
    let logical = pas2p_order(&trace);
    extract_phases(&logical, &SimilarityConfig::default())
}

fn main() {
    println!("================================================================");
    println!("Fig 6-7: phase extraction on master/worker + the phase table");
    println!("================================================================");

    // The paper's one-shot master/worker (§6): one phase, weight 1.
    let one_shot = MasterWorkerApp::one_shot(4);
    let analysis = analyze(&one_shot);
    println!("\none-shot master/worker (4 procs):");
    println!(
        "  phases: {} | dominant weight: {}",
        analysis.total_phases(),
        analysis.phases.iter().map(|p| p.weight).max().unwrap_or(0)
    );
    for p in &analysis.phases {
        println!(
            "  phase {}: {} ticks, weight {}, {:.1}% of AET",
            p.id,
            p.len_ticks(),
            p.weight,
            100.0 * p.contribution() / analysis.aet
        );
    }
    assert!(
        analysis.total_phases() <= 2,
        "one-shot master/worker must not fragment"
    );
    assert_eq!(
        analysis.phases.iter().map(|p| p.weight).max().unwrap(),
        1,
        "single occurrence => weight 1 (paper §6)"
    );

    // A repeated master/worker: the same code becomes a weighted phase.
    let repeated = MasterWorkerApp { nprocs: 4, rounds: 12, task_flops: 5e8 };
    let analysis = analyze(&repeated);
    println!("\nrepeated master/worker (12 rounds):");
    println!("  phases: {}", analysis.total_phases());
    let dominant = analysis.phases.iter().max_by_key(|p| p.weight).unwrap();
    println!(
        "  dominant phase weight {} (~rounds), covers {:.1}% of AET",
        dominant.weight,
        100.0 * dominant.contribution() / analysis.aet
    );
    assert!(dominant.weight >= 10);

    // Fig 7: the phase table, startpoints/endpoints as event counts.
    let table = PhaseTable::from_analysis(&analysis, 0.01, 1, 24);
    println!("\nFig 7 analog:\n{}", table);

    // And the end of the §6 story: the signature of a weight-1 app costs
    // as much as the app itself.
    let pas2p = Pas2p::default();
    let base = cluster_a();
    let a1 = pas2p.analyze(&one_shot, &base, MappingPolicy::Block);
    let (sig, _) = pas2p.build_signature(&one_shot, &a1, &base, MappingPolicy::Block);
    let report = pas2p
        .validate(&one_shot, &sig, &base, MappingPolicy::Block)
        .unwrap();
    println!(
        "one-shot: SET {:.2}s vs AET {:.2}s ({:.0}% — no shortcut without repetitiveness)",
        report.prediction.set, report.aet, report.set_vs_aet_percent
    );

    paper_reference(&[
        "§6: \"PAS2P detects one phase with a weight of 1 and executing this",
        "phase will be the same as to execute the whole application\"",
        "Fig 7: rows of per-process send counts (startpoint | endpoint | id | weight)",
    ]);
}
