//! Overhead of the observability layer on the simulation hot path.
//!
//! The contract (ISSUE: < 5 % on the disabled path) is that every hook in
//! `mpisim`/`model`/`phases` compiles down to one relaxed atomic load when
//! collection is off. This bench runs the same ring workload as
//! `algo_micro`'s `mpisim` group with collection disabled and enabled, plus
//! raw per-hook costs, so a regression in either path shows up in the perf
//! trajectory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pas2p_machine::{cluster_a, JitterModel, MappingPolicy};
use pas2p_mpisim::{run_app, Mpi, SimConfig};

fn ring(cfg: &SimConfig) {
    run_app(cfg, |ctx| {
        let size = ctx.size();
        let next = (ctx.rank() + 1) % size;
        let prev = (ctx.rank() + size - 1) % size;
        for _ in 0..1000 / size {
            ctx.send(next, 1, &[0u8; 64]);
            ctx.recv(Some(prev), Some(1));
        }
    });
}

fn bench_ring_overhead(c: &mut Criterion) {
    let mut machine = cluster_a();
    machine.jitter = JitterModel::none();
    let mut g = c.benchmark_group("obs_overhead/ring_1k_msgs");
    g.sample_size(10);
    for (label, enabled) in [("disabled", false), ("enabled", true)] {
        let cfg = SimConfig::new(machine.clone(), 4, MappingPolicy::Block);
        g.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, cfg| {
            pas2p_obs::set_enabled(enabled);
            b.iter(|| ring(cfg));
            pas2p_obs::set_enabled(false);
        });
    }
    g.finish();
}

fn bench_hook_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_overhead/primitives");
    g.bench_function("enabled_check_off", |b| {
        pas2p_obs::set_enabled(false);
        b.iter(pas2p_obs::enabled)
    });
    g.bench_function("counter_add_on", |b| {
        pas2p_obs::set_enabled(true);
        let counter = pas2p_obs::counter("bench.counter");
        b.iter(|| counter.add(1));
        pas2p_obs::set_enabled(false);
    });
    g.bench_function("histogram_record_on", |b| {
        pas2p_obs::set_enabled(true);
        let hist = pas2p_obs::histogram("bench.hist");
        b.iter(|| hist.record(4096));
        pas2p_obs::set_enabled(false);
    });
    g.finish();
}

criterion_group!(benches, bench_ring_overhead, bench_hook_primitives);
criterion_main!(benches);
