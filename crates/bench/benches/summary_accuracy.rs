//! Regenerates the §5 summary claims: across all applications and
//! clusters, average prediction accuracy > 97 %, overall error ~3 %, and
//! the signature executing in ~1.74 % of the application execution time.

use pas2p::prelude::*;
use pas2p::Pas2p;
use pas2p_apps::table4_apps;
use pas2p_bench::{banner, paper_reference, shrink};

fn main() {
    let base = cluster_a();
    banner("§5 summary: accuracy and SET/AET across applications x clusters", &base, None);

    let pas2p = Pas2p::default();
    let targets = [cluster_a(), cluster_b(), cluster_c()];
    let apps = table4_apps(shrink());

    let mut petes = Vec::new();
    let mut set_ratios = Vec::new();
    println!(
        "\n{:<10} {:<12} {:>9} {:>12}",
        "app", "target", "PETE(%)", "SET/AET(%)"
    );
    for app in &apps {
        let analysis = pas2p.analyze(app.as_ref(), &base, MappingPolicy::Block);
        let (signature, _) =
            pas2p.build_signature(app.as_ref(), &analysis, &base, MappingPolicy::Block);
        for target in &targets {
            let report = pas2p
                .validate(app.as_ref(), &signature, target, MappingPolicy::Block)
                .unwrap();
            println!(
                "{:<10} {:<12} {:>9.2} {:>12.2}",
                app.name(),
                target.name,
                report.pete_or_inf(),
                report.set_vs_aet_percent
            );
            petes.push(report.pete_or_inf());
            set_ratios.push(report.set_vs_aet_percent);
        }
    }

    let avg_pete = petes.iter().sum::<f64>() / petes.len() as f64;
    let avg_set = set_ratios.iter().sum::<f64>() / set_ratios.len() as f64;
    let max_pete = petes.iter().cloned().fold(0.0f64, f64::max);
    println!("\n=> average accuracy {:.2}% (paper: > 97%)", 100.0 - avg_pete);
    println!("=> average error {:.2}% (paper: ~3%)", avg_pete);
    println!("=> max error {:.2}% (paper: 6.4%)", max_pete);
    println!("=> average SET/AET {:.2}% (paper: 1.74%)", avg_set);

    assert!(
        100.0 - avg_pete > 95.0,
        "average accuracy {:.2}% below band",
        100.0 - avg_pete
    );

    // SET/AET scaling demonstration: the ratio falls toward the paper's
    // 1.74% as the weights grow, because the signature measures a fixed
    // number of occurrences regardless of the iteration count.
    println!("\nSET/AET scaling with workload length (Moldy, cluster A):");
    println!("{:>8} {:>12} {:>11} {:>9}", "steps", "weight", "SET/AET(%)", "PETE(%)");
    let mut ratios = Vec::new();
    for steps in [100u64, 400, 1600] {
        let app = pas2p_apps::MoldyApp {
            nprocs: 16,
            steps,
            rebuild_every: 10,
            atoms_per_proc: 1024,
        };
        let analysis = pas2p.analyze(&app, &base, MappingPolicy::Block);
        let (sig, _) = pas2p.build_signature(&app, &analysis, &base, MappingPolicy::Block);
        let report = pas2p
            .validate(&app, &sig, &base, MappingPolicy::Block)
            .unwrap();
        let max_weight = analysis
            .table
            .rows
            .iter()
            .map(|r| r.weight)
            .max()
            .unwrap_or(0);
        println!(
            "{:>8} {:>12} {:>11.2} {:>9.2}",
            steps, max_weight, report.set_vs_aet_percent, report.pete_or_inf()
        );
        ratios.push(report.set_vs_aet_percent);
        assert!(report.pete_or_inf() < 10.0);
    }
    assert!(
        ratios.windows(2).all(|w| w[1] < w[0]),
        "SET/AET must fall as weights grow: {:?}",
        ratios
    );
    assert!(
        ratios.last().unwrap() < &6.0,
        "at 1600 steps the ratio should approach the paper's regime: {:?}",
        ratios
    );

    paper_reference(&[
        "\"We were able to predict the execution time with an average",
        "accuracy of more than 97 percent\"; \"the signature execution time",
        "represents 1.74 percent of the total application execution time\";",
        "\"we obtained an overall prediction error of 3 percent\"",
        "(our scaled runs carry proportionally heavier restart overheads,",
        " so SET/AET is larger; it shrinks toward the paper's ratio at",
        " PAS2P_BENCH_SHRINK=1 with full iteration counts)",
    ]);
}
