//! Regenerates Tables 6 + 7: 256-process signatures constructed on
//! cluster C (InfiniBand) predicting the AET on cluster A (Gigabit
//! Ethernet, half the cores — two processes share each core).

use pas2p::experiment::{prediction_row, PredictionRow};
use pas2p::prelude::*;
use pas2p::Pas2p;
use pas2p_apps::table6_apps;
use pas2p_bench::{banner, paper_reference, shrink};

fn main() {
    let base = cluster_c();
    let target = cluster_a();
    banner(
        "Table 7: predictions for cluster A (signatures built on cluster C, oversubscribed)",
        &base,
        Some(&target),
    );

    let pas2p = Pas2p::default();
    let apps = table6_apps(shrink());
    let cores = 128 / shrink(); // half the processes: 2 procs/core on A

    println!("\nTable 6 workloads:");
    for app in &apps {
        println!("  {:<10} {:>4} procs  {}", app.name(), app.nprocs(), app.workload());
    }

    println!("\n{}", PredictionRow::header());
    let mut rows = Vec::new();
    for app in &apps {
        let analysis = pas2p.analyze(app.as_ref(), &base, MappingPolicy::Block);
        let (signature, _) =
            pas2p.build_signature(app.as_ref(), &analysis, &base, MappingPolicy::Block);
        let row = prediction_row(app.as_ref(), &signature, &target, cores);
        println!("{}", row);
        rows.push(row);
    }

    let max_pete = rows.iter().map(|r| r.pete).fold(0.0f64, f64::max);
    let max_set = rows.iter().map(|r| r.set_vs_aet).fold(0.0f64, f64::max);
    println!(
        "\nmax PETE: {:.2}% (paper: 6.4%) | max SET/AET: {:.2}% (paper: < 8%)",
        max_pete, max_set
    );
    println!(
        "note: SET/AET is inflated at scaled iteration counts (13-60 vs the\n\
         paper's 10^4-10^5); see the summary_accuracy scaling demonstration."
    );
    assert!(max_pete < 10.0, "max PETE {:.2}%", max_pete);
    assert!(max_set < 120.0, "max SET/AET {:.2}%", max_set);

    paper_reference(&[
        "CG-256     128: SET  59.52  2.03%  PET 2971.10  PETE 1.6  AET 2922.24",
        "BT-256     128: SET  17.78  1.48%  PET 1182.67  PETE 1.5  AET 1200.85",
        "SP-256     128: SET  17.53  0.77%  PET 2411.35  PETE 6.4  AET 2265.40",
        "SMG2k-256  128: SET 120.17  1.75%  PET 6783.47  PETE 1.0  AET 6858.17",
        "Sweep3d-256 128: SET 82.28  7.62%  PET 1043.01  PETE 3.5  AET 1079.13",
        "=> oversubscribed target (2 procs/core), error stays low, SET/AET < 8%",
    ]);
}
