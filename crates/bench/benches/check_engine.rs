//! Check-engine throughput: the full rule set (trace, happens-before,
//! model, signature families) over one application's complete artifact
//! set, sequentially and fanned over a worker pool. The engine promises
//! a byte-identical report at any worker count, so the only thing the
//! pool may change is the wall clock measured here — the same quantity
//! `pas2p-cli bench-report` records into the bench trajectory as
//! diagnostics/sec.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pas2p_check::{Artifacts, CheckEngine};
use pas2p_machine::{cluster_a, MappingPolicy};
use pas2p_model::pas2p_order;
use pas2p_phases::{extract_phases, PhaseTable, SimilarityConfig};
use pas2p_signature::run_traced;
use pas2p_trace::InstrumentationModel;

fn bench_check_engine(c: &mut Criterion) {
    let app = pas2p_apps::by_name("masterworker", 8).expect("catalog app");
    let base = cluster_a();
    let (trace, _) = run_traced(
        app.as_ref(),
        &base,
        MappingPolicy::Block,
        InstrumentationModel::default(),
    );
    let logical = pas2p_order(&trace);
    let cfg = SimilarityConfig::default();
    let analysis = extract_phases(&logical, &cfg);
    let table = PhaseTable::from_analysis(&analysis, 0.01, 0, 1);
    let artifacts = Artifacts {
        trace: Some(&trace),
        logical: Some(&logical),
        analysis: Some(&analysis),
        table: Some(&table),
        similarity: cfg,
        ingest: None,
    };

    // Sanity: the pool must not change the report before we time it.
    let baseline = CheckEngine::with_default_rules().run(&artifacts);
    for workers in [2usize, 8] {
        let par = CheckEngine::with_default_rules()
            .with_workers(workers)
            .run(&artifacts);
        assert_eq!(
            baseline.diagnostics, par.diagnostics,
            "engine not worker-count invariant at {workers}"
        );
    }

    let events = trace.total_events() as u64;
    let mut g = c.benchmark_group("check_engine");
    g.throughput(Throughput::Elements(events));
    for workers in [1usize, 2, 4, 8] {
        let engine = CheckEngine::with_default_rules().with_workers(workers);
        g.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, _| {
            b.iter(|| engine.run(&artifacts))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_check_engine);
criterion_main!(benches);
