//! Ablation: the PAS2P receive ordering vs plain Lamport ordering
//! (DESIGN.md ablation 1 — the paper's §3.2 motivation).
//!
//! "There is a non-deterministic ordering of receives": within one run, a
//! process that receives two messages sent from *different logical
//! depths* sees them in an order that varies with network timing. Under
//! happened-before (Lamport) the receive's logical time is
//! `max(local, send LT + 1)`, so the delivery order changes the tick
//! layout of otherwise-identical iterations — they stop merging and the
//! phase count explodes, degrading prediction ("the prediction quality
//! was falling"). The PAS2P rule fixes receptions at `send LT + 1` and
//! permutes receive LTs into ascending order, making the layout
//! delivery-invariant.
//!
//! We build the paper's exact scenario as a trace: an iterative exchange
//! where the producer's two messages per round depart from staggered
//! logical depths and the consumer's delivery order flips from round to
//! round (the network's nondeterminism), then extract phases under both
//! orderings.

use pas2p_bench::paper_reference;
use pas2p_model::{lamport_order, pas2p_order};
use pas2p_phases::{extract_phases, SimilarityConfig};
use pas2p_trace::{EventKind, ProcessTrace, Trace, TraceEvent};

fn ev(
    number: u64,
    process: u32,
    kind: EventKind,
    peer: u32,
    msg_id: u64,
    t: f64,
) -> TraceEvent {
    TraceEvent {
        number,
        process,
        t_post: t,
        t_complete: t + 0.002,
        kind,
        peer: Some(peer),
        tag: 0,
        size: 256,
        involved: 1,
        msg_id,
        comm_id: 0,
        wildcard: false,
    }
}

/// 2-process iterative exchange, `rounds` rounds. Each round P0 sends two
/// messages (from staggered logical depths: a filler send to itself sits
/// between them) and P1 receives both. On odd rounds the network delivers
/// them swapped.
fn noisy_trace(rounds: u64) -> Trace {
    let mut p0 = Vec::new();
    let mut p1 = Vec::new();
    let mut t = 0.0;
    for r in 0..rounds {
        let (a, b) = (10 * r + 1, 10 * r + 2);
        t += 0.01;
        p0.push(ev(p0.len() as u64, 0, EventKind::Send, 1, a, t));
        t += 0.01;
        // Filler: P0's second message departs one logical step deeper.
        p0.push(ev(p0.len() as u64, 0, EventKind::Send, 1, b, t));
        // P1 receives the pair; odd rounds deliver them swapped.
        let (first, second) = if r % 2 == 0 { (a, b) } else { (b, a) };
        t += 0.01;
        p1.push(ev(p1.len() as u64, 1, EventKind::Recv, 0, first, t));
        t += 0.01;
        p1.push(ev(p1.len() as u64, 1, EventKind::Recv, 0, second, t));
        // P1 acknowledges, closing the round.
        t += 0.01;
        p1.push(ev(p1.len() as u64, 1, EventKind::Send, 0, 10 * r + 3, t));
        t += 0.005;
        p0.push(ev(p0.len() as u64, 0, EventKind::Recv, 1, 10 * r + 3, t));
    }
    Trace {
        nprocs: 2,
        machine: "ablation".into(),
        procs: vec![
            ProcessTrace { process: 0, end_time: t, events: p0 },
            ProcessTrace { process: 1, end_time: t, events: p1 },
        ],
    }
}

fn main() {
    println!("================================================================");
    println!("Ablation: PAS2P ordering vs Lamport ordering");
    println!("================================================================");

    let trace = noisy_trace(40);
    let cfg = SimilarityConfig::default();

    let pas2p_analysis = extract_phases(&pas2p_order(&trace), &cfg);
    let lamport_analysis = extract_phases(&lamport_order(&trace), &cfg);

    let report = |name: &str, a: &pas2p_phases::PhaseAnalysis| {
        let max_w = a.phases.iter().map(|p| p.weight).max().unwrap_or(0);
        println!(
            "  {:<8}: {:>3} unique phases, dominant weight {:>3}, relevant {}",
            name,
            a.total_phases(),
            max_w,
            a.relevant(0.01).len()
        );
        max_w
    };
    println!("\n40 rounds, delivery order flipping every round:");
    let w_pas2p = report("PAS2P", &pas2p_analysis);
    let w_lamport = report("Lamport", &lamport_analysis);

    println!("\nPAS2P phase weights  : {:?}",
        pas2p_analysis.phases.iter().map(|p| p.weight).collect::<Vec<_>>());
    println!("Lamport phase weights: {:?}",
        lamport_analysis.phases.iter().map(|p| p.weight).collect::<Vec<_>>());
    println!(
        "\n=> Under PAS2P the dominant phase repeats exactly once per round\n\
         (weight {} = 40 rounds): the flipped deliveries collapse onto one\n\
         layout. Under Lamport the delivery order leaks into the logical\n\
         layout, so the cuts no longer align with the iteration structure\n\
         (dominant weight {} ≠ rounds) — the weights Equation 1 relies on\n\
         stop describing the application's real repetition.",
        w_pas2p, w_lamport
    );
    assert_eq!(
        w_pas2p, 40,
        "PAS2P's dominant phase must repeat once per round"
    );
    assert!(
        pas2p_analysis.phases.iter().any(|p| p.weight == 40),
        "PAS2P must find the per-round phase"
    );
    assert_ne!(
        w_lamport, 40,
        "Lamport's cuts should not align with the iteration structure here"
    );

    paper_reference(&[
        "§3.2: \"When we increased the number of processes, we found that the",
        "prediction quality was falling… this problem occurred because there",
        "is a non-deterministic ordering of receives\" — fixed by modeling a",
        "reception at LT+1 (\"and never afterwards\") plus the LTRecv",
        "permutation of Figs 4-5.",
    ]);
}
