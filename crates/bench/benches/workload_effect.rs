//! The workload effect (paper reference [2] and §7's limitation): a
//! signature predicts only the analyzed data set; the companion method
//! fits per-phase weight functions from a few analyses and extrapolates
//! to unseen workload sizes.

use pas2p::prelude::*;
use pas2p::workload::WorkloadModel;
use pas2p::Pas2p;
use pas2p_apps::MoldyApp;
use pas2p_bench::{banner, paper_reference};

fn moldy(steps: u64) -> MoldyApp {
    MoldyApp {
        nprocs: 16,
        steps,
        rebuild_every: 10,
        atoms_per_proc: 1024,
    }
}

fn main() {
    let base = cluster_a();
    let target = cluster_b();
    banner(
        "Workload effect [2]: extrapolating weights to unseen workload sizes",
        &base,
        Some(&target),
    );

    let pas2p = Pas2p::default();

    // Analyze at two workload sizes; fit weight(w).
    let fit_points = [60u64, 120];
    let mut tables = Vec::new();
    for &steps in &fit_points {
        let analysis = pas2p.analyze(&moldy(steps), &base, MappingPolicy::Block);
        tables.push((steps as f64, analysis));
    }
    let obs: Vec<(f64, &pas2p_phases::PhaseTable)> =
        tables.iter().map(|(w, a)| (*w, &a.table)).collect();
    let model = WorkloadModel::fit(&obs).expect("same phase structure");
    println!("\nfitted on {:?} steps:", fit_points);
    for f in &model.fits {
        println!("  phase {}: weight(w) = {:.3}·w + {:.2}", f.phase_id, f.a, f.b);
    }

    // One signature (at the larger fitted workload) measured on the target.
    let ref_app = moldy(fit_points[1]);
    let (signature, _) =
        pas2p.build_signature(&ref_app, &tables[1].1, &base, MappingPolicy::Block);
    let measured = pas2p
        .predict(&ref_app, &signature, &target, MappingPolicy::Block)
        .unwrap();

    // Extrapolate to unseen workloads and compare with reality; also show
    // the naive alternative (reusing the fitted-workload prediction).
    println!(
        "\n{:>7} {:>12} {:>12} {:>9} {:>17}",
        "steps", "model PET(s)", "real AET(s)", "err(%)", "naive-reuse err(%)"
    );
    for steps in [240u64, 480] {
        let app = moldy(steps);
        let aet = run_plain(&app, &target, MappingPolicy::Block).makespan;
        let pet = model.predict_at(&measured, steps as f64);
        let err = 100.0 * (pet - aet).abs() / aet;
        let naive_err = 100.0 * (measured.pet - aet).abs() / aet;
        println!(
            "{:>7} {:>12.2} {:>12.2} {:>9.2} {:>17.2}",
            steps, pet, aet, err, naive_err
        );
        assert!(
            err < 10.0,
            "workload extrapolation to {} steps off by {:.1}%",
            steps,
            err
        );
        assert!(err < naive_err, "the model must beat naive signature reuse");
    }

    paper_reference(&[
        "§7: \"The prediction that the signature gives would only be useful",
        "for the data set employed in the construction of the application",
        "signature\"; reference [2] lifts this for iteration-count workload",
        "changes by modeling the weights as functions of the workload.",
    ]);
}
