//! Regenerates Table 9: the cost of obtaining a signature — AET vs
//! AET_PAS2P (instrumented) vs SET, and the total overhead factor
//! `(AET_PAS2P + TFAT + SCT + SET) / AET`.

use pas2p::experiment::{tool_experiment, OverheadRow};
use pas2p::prelude::*;
use pas2p::Pas2p;
use pas2p_apps::{BtApp, CgApp, FtApp, LuApp, Smg2000App, SpApp, Sweep3dApp};
use pas2p_bench::{banner, paper_reference, shrink};

fn main() {
    let machine = cluster_c();
    banner("Table 9: time required to obtain the signature and predict", &machine, None);

    let pas2p = Pas2p::default();
    let k = shrink();
    let apps: Vec<Box<dyn MpiApp>> = vec![
        Box::new(CgApp::class_d(256 / k)),
        Box::new(BtApp::class_d(256 / k)),
        Box::new(SpApp::class_d(256 / k)),
        Box::new(LuApp::class_d(256 / k)),
        Box::new(FtApp::class_d(256 / k)),
        Box::new(Sweep3dApp::sweep150(128 / k)),
        Box::new(Smg2000App::n200(128 / k)),
    ];

    println!("\n{}", OverheadRow::header());
    let mut rows = Vec::new();
    for app in &apps {
        let (_, _, row) = tool_experiment(&pas2p, app.as_ref(), &machine);
        println!("{}", row);
        rows.push(row);
    }

    // Shape checks: instrumentation inflates runtime; SET below AET for
    // most applications (Sweep3D's 13-iteration workload leaves little
    // room at this scale); the overhead factor is a small constant.
    for r in &rows {
        assert!(
            r.aet_pas2p >= r.aet * 0.999,
            "{}: instrumented run cannot be faster",
            r.app
        );
        assert!(
            r.set < r.aet * 1.8,
            "{}: SET {} way beyond AET {}",
            r.app,
            r.set,
            r.aet
        );
        let o = r.overhead();
        assert!((1.0..5.0).contains(&o), "{}: overhead {:.2}X out of band", r.app, o);
    }
    let below = rows.iter().filter(|r| r.set < r.aet).count();
    assert!(
        below * 2 > rows.len(),
        "most applications must have SET < AET ({} of {})",
        below,
        rows.len()
    );
    // LU (most events) must show more instrumentation slowdown than FT
    // (fewest events), relative to its AET.
    let rel = |r: &OverheadRow| (r.aet_pas2p - r.aet) / r.aet;
    let lu = rows.iter().find(|r| r.app == "LU").unwrap();
    let ft = rows.iter().find(|r| r.app == "FT").unwrap();
    println!(
        "\ninstrumentation slowdown: LU {:.3}% vs FT {:.3}% (paper: LU highest)",
        100.0 * rel(lu),
        100.0 * rel(ft)
    );
    assert!(rel(lu) > rel(ft));

    paper_reference(&[
        "CG     : AET  512.10  AETPAS2P  522.29  SET 11.40  overhead 1.37X",
        "BT     : AET  846.42  AETPAS2P  848.09  SET 35.41  overhead 1.31X",
        "SP     : AET 1816.58  AETPAS2P 1831.08  SET 37.38  overhead 1.13X",
        "LU     : AET  623.41  AETPAS2P  668.44  SET 24.64  overhead 1.96X",
        "FT     : AET  371.03  AETPAS2P  387.38  SET 68.66  overhead 2.62X",
        "Sweep3d: AET  439.28  AETPAS2P  455.81  SET 43.48  overhead 1.49X",
        "SMG2K  : AET  788.24  AETPAS2P  794.59  SET 22.47  overhead 1.10X",
        "=> overhead = (AETPAS2P+TFAT+SCT+SET)/AET; LU worst tracing cost,",
        "   FT worst total (low repetitiveness => expensive construction)",
    ]);
}
