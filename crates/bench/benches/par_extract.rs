//! Sequential-vs-parallel phase extraction (the Table 8 TFAT column,
//! re-measured with the extraction worker pool): the same logical trace
//! analyzed with `parallelism` 1, 2, 4 and the core-count default. The
//! workload cycles through enough distinct communication blocks that the
//! known-phase list grows past the parallel-merge threshold, which is
//! where the fan-out starts paying.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pas2p_machine::{cluster_a, JitterModel, MappingPolicy, Work};
use pas2p_model::pas2p_order;
use pas2p_mpisim::{run_app, Mpi, ReduceOp, SimConfig};
use pas2p_phases::{extract_phases, SimilarityConfig, SimilarityKernel};
use pas2p_trace::{InstrumentationModel, Trace, TraceCollector, Traced};
use std::sync::Arc;

/// A ring application whose per-iteration behavior cycles through
/// `variants` distinct (message size, compute) blocks, yielding at least
/// `variants` unique phases so the candidate-vs-known comparisons
/// dominate extraction time.
fn varied_trace(n: u32, reps: usize, variants: usize) -> Trace {
    let mut machine = cluster_a();
    machine.jitter = JitterModel::none();
    let collector = Arc::new(TraceCollector::new(
        n,
        "bench",
        InstrumentationModel::free(),
    ));
    let cfg = SimConfig::new(machine, n, MappingPolicy::Block);
    let col = collector.clone();
    run_app(&cfg, move |ctx| {
        let size = ctx.size();
        let rank = ctx.rank();
        let mut t = Traced::new(ctx, &col);
        let next = (rank + 1) % size;
        let prev = (rank + size - 1) % size;
        let payload = vec![0u8; 16 << (variants.min(12))];
        for rep in 0..reps {
            let v = rep % variants;
            let bytes = 16usize << (v % 12);
            t.compute(Work::flops(1e5 * (v + 1) as f64));
            for _ in 0..=(v % 3) {
                t.send(next, v as u32, &payload[..bytes]);
                t.recv(Some(prev), Some(v as u32));
            }
            t.allreduce_f64(&[1.0], ReduceOp::Sum);
        }
        t.finish();
    });
    Arc::into_inner(collector).unwrap().into_trace()
}

/// A ring application whose variants all share one communication
/// *structure* (same tick count per iteration — the scalar walk's O(1)
/// length check never helps) but differ in message sizes and per-send
/// compute, so distinct variants stay distinct phases and the
/// candidate-vs-known comparisons walk full same-length grids. This is
/// the regime the SoA kernel's band prefilter targets; `pas2p-cli
/// bench-report` times the same shape into `BENCH_kernel.json`.
fn uniform_variants_trace(n: u32, reps: usize, variants: usize) -> Trace {
    let mut machine = cluster_a();
    machine.jitter = JitterModel::none();
    let collector = Arc::new(TraceCollector::new(
        n,
        "bench",
        InstrumentationModel::free(),
    ));
    let cfg = SimConfig::new(machine, n, MappingPolicy::Block);
    let col = collector.clone();
    run_app(&cfg, move |ctx| {
        let size = ctx.size();
        let rank = ctx.rank();
        let mut t = Traced::new(ctx, &col);
        let next = (rank + 1) % size;
        let prev = (rank + size - 1) % size;
        let payload = vec![0u8; (16 << 12) + 16 * 16];
        for rep in 0..reps {
            let v = rep % variants;
            let bytes = 16usize << (v % 12);
            for s in 0..16u32 {
                t.compute(Work::flops(1e4 * 1.2f64.powi(v as i32)));
                t.send(next, s, &payload[..bytes + 16 * s as usize]);
                t.recv(Some(prev), Some(s));
            }
            t.allreduce_f64(&[1.0], ReduceOp::Sum);
        }
        t.finish();
    });
    Arc::into_inner(collector).unwrap().into_trace()
}

fn bench_par_extract(c: &mut Criterion) {
    let trace = varied_trace(8, 240, 24);
    let logical = pas2p_order(&trace);
    let ticks = logical.len() as u64;

    // Sanity: the parallel and sequential analyses must agree before we
    // time them (the determinism suite pins this repo-wide; the bench
    // refuses to measure a broken configuration).
    let seq_cfg = SimilarityConfig {
        parallelism: Some(1),
        ..SimilarityConfig::default()
    };
    let baseline = extract_phases(&logical, &seq_cfg);
    assert!(
        baseline.total_phases() >= 8,
        "workload too uniform to engage the parallel merge"
    );

    let mut g = c.benchmark_group("par_extract");
    g.throughput(Throughput::Elements(ticks));
    for parallelism in [Some(1), Some(2), Some(4), None] {
        let cfg = SimilarityConfig {
            parallelism,
            ..SimilarityConfig::default()
        };
        let check = extract_phases(&logical, &cfg);
        assert_eq!(
            baseline.total_phases(),
            check.total_phases(),
            "parallelism {parallelism:?} changed the analysis"
        );
        let label = match parallelism {
            Some(k) => k.to_string(),
            None => "cores".into(),
        };
        g.bench_with_input(BenchmarkId::new("workers", label), &cfg, |b, cfg| {
            b.iter(|| extract_phases(&logical, cfg))
        });
    }
    g.finish();

    // Kernel ablation: the scalar reference walk vs the SoA kernel
    // (banded prefilters + LSH bucketing), sequentially and with the
    // core-count worker pool. Same byte-identical output, different
    // TFAT — this group is the speedup evidence BENCH_kernel.json
    // records from `pas2p-cli bench-report`.
    let kernel_trace = uniform_variants_trace(4, 720, 144);
    let kernel_logical = pas2p_order(&kernel_trace);
    let kernel_ticks = kernel_logical.len() as u64;
    let kernel_baseline = extract_phases(&kernel_logical, &seq_cfg);
    assert!(
        kernel_baseline.total_phases() >= 96,
        "kernel workload collapsed below the many-known-phases regime"
    );

    let mut g = c.benchmark_group("similarity_kernel");
    g.throughput(Throughput::Elements(kernel_ticks));
    for (label, kernel, parallelism) in [
        ("scalar/seq", SimilarityKernel::Scalar, Some(1)),
        ("soa/seq", SimilarityKernel::Soa, Some(1)),
        ("soa/cores", SimilarityKernel::Soa, None),
    ] {
        let cfg = SimilarityConfig {
            kernel,
            parallelism,
            ..SimilarityConfig::default()
        };
        assert_eq!(
            kernel_baseline.total_phases(),
            extract_phases(&kernel_logical, &cfg).total_phases(),
            "{label} changed the analysis"
        );
        g.bench_with_input(BenchmarkId::new("kernel", label), &cfg, |b, cfg| {
            b.iter(|| extract_phases(&kernel_logical, cfg))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_par_extract);
criterion_main!(benches);
