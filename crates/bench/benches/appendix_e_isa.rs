//! Regenerates the Appendix E analog: predicting for cluster D, whose
//! Itanium ISA differs from the x86-64 base machines. The checkpointed
//! signature cannot be ported; PAS2P reconstructs it on the target from
//! the phase table (phases + weights), then predicts as usual.

use pas2p::prelude::*;
use pas2p::Pas2p;
use pas2p_apps::{CgApp, Sweep3dApp};
use pas2p_bench::{banner, paper_reference, shrink};
use pas2p_signature::rebuild_signature;

fn main() {
    let base = cluster_c();
    let itanium = cluster_d();
    banner(
        "Appendix E analog: different-ISA target (cluster D, IA-64)",
        &base,
        Some(&itanium),
    );

    let pas2p = Pas2p::default();
    let k = shrink();
    let apps: Vec<Box<dyn MpiApp>> = vec![
        Box::new(CgApp::class_d(64 / (k.min(4)))),
        Box::new(Sweep3dApp::sweep200(64 / (k.min(4)))),
    ];

    println!(
        "\n{:<10} {:>10} {:>10} {:>9}   note",
        "app", "PET(s)", "AET(s)", "PETE(%)"
    );
    for app in &apps {
        let analysis = pas2p.analyze(app.as_ref(), &base, MappingPolicy::Block);
        let (signature, _) =
            pas2p.build_signature(app.as_ref(), &analysis, &base, MappingPolicy::Block);

        // Direct execution must be refused.
        let err = pas2p
            .predict(app.as_ref(), &signature, &itanium, MappingPolicy::Block)
            .unwrap_err();
        println!("{:<10} {:>10} {:>10} {:>9}   refused: {}", app.name(), "-", "-", "-", err);

        // Reconstruct on the target from the ported phase table.
        let (rebuilt, stats) =
            rebuild_signature(app.as_ref(), &signature, &itanium, MappingPolicy::Block);
        let report = pas2p
            .validate(app.as_ref(), &rebuilt, &itanium, MappingPolicy::Block)
            .unwrap();
        println!(
            "{:<10} {:>10.2} {:>10.2} {:>9.2}   rebuilt on {} (SCT {:.2}s)",
            app.name(),
            report.prediction.pet,
            report.aet,
            report.pete_or_inf(),
            itanium.name,
            stats.sct
        );
        assert!(report.pete_or_inf() < 15.0);
    }

    paper_reference(&[
        "§7: \"we cannot port the signature to the target machine since the",
        "target machine has a different ISA than the base machine. In this",
        "case, we can just construct the signature again, using the",
        "information from the phases and weight extracted in the base machine.\"",
    ]);
}
