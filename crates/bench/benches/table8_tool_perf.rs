//! Regenerates Table 8: performance of the PAS2P tool — tracefile size,
//! tracefile analysis time, total/relevant phases and signature
//! construction time, on cluster C (§6's experiment set: NPB class D,
//! Sweep3D sweep.150, SMG2000 with 128 processes).

use pas2p::experiment::{tool_experiment, ToolPerfRow};
use pas2p::prelude::*;
use pas2p::Pas2p;
use pas2p_apps::{BtApp, CgApp, FtApp, LuApp, Smg2000App, SpApp, Sweep3dApp};
use pas2p_bench::{banner, paper_reference, shrink};

fn main() {
    let machine = cluster_c();
    banner("Table 8: PAS2P tool performance (cluster C)", &machine, None);

    let pas2p = Pas2p::default();
    let k = shrink();
    let apps: Vec<Box<dyn MpiApp>> = vec![
        Box::new(CgApp::class_d(256 / k)),
        Box::new(BtApp::class_d(256 / k)),
        Box::new(SpApp::class_d(256 / k)),
        Box::new(LuApp::class_d(256 / k)),
        Box::new(FtApp::class_d(256 / k)),
        Box::new(Sweep3dApp::sweep150(128 / k)),
        Box::new(Smg2000App::n200(128 / k)),
    ];

    println!("\n{}", ToolPerfRow::header());
    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    for app in &apps {
        let (analysis, stats, _) = tool_experiment(&pas2p, app.as_ref(), &machine);
        let row = pas2p::experiment::tool_perf_row(&analysis, &stats);
        println!("{}", row);
        // ScalaTrace-style compression (§2 related work) on the same
        // trace: repetitive applications compress strongly.
        let (trace, _) = run_traced(
            app.as_ref(),
            &machine,
            MappingPolicy::Block,
            pas2p.instrumentation,
        );
        let packed = pas2p_trace::compress(&trace).len() as u64;
        ratios.push((row.app.clone(), row.tf_bytes as f64 / packed as f64));
        rows.push(row);
    }
    println!("\ncompressed tracefile ratios (dictionary+delta, ScalaTrace-style):");
    for (app, ratio) in &ratios {
        println!("  {:<10} {:>6.1}x", app, ratio);
    }
    assert!(
        ratios.iter().all(|(_, r)| *r > 3.0),
        "iterative traces must compress well: {:?}",
        ratios
    );

    // Shape checks against the paper's profile: LU produces by far the
    // largest trace, FT by far the smallest.
    let by_name = |n: &str| rows.iter().find(|r| r.app == n).unwrap();
    let lu = by_name("LU");
    let ft = by_name("FT");
    assert!(
        lu.tf_bytes > 3 * ft.tf_bytes,
        "LU trace {} must dwarf FT trace {}",
        lu.tf_bytes,
        ft.tf_bytes
    );
    for r in &rows {
        assert!(r.relevant_phases <= r.total_phases);
        assert!(r.relevant_phases >= 1, "{} found no relevant phase", r.app);
    }
    println!("\nshape checks: LU trace >> FT trace OK; every app has relevant phases OK");

    paper_reference(&[
        "CG     : 593 MB  45.73s   7 phases / 5 relevant  SCT 130.42s",
        "BT     : 292 MB  22.82s  14 phases / 8 relevant  SCT 216.21s",
        "SP     : 617 MB  52.59s  16 phases / 10 relevant SCT 149.59s",
        "LU     : 5.2 GB 393.01s  25 phases / 2 relevant  SCT 142.24s",
        "FT     : 512 KB   0.76s   5 phases / 4 relevant  SCT 518.23s",
        "Sweep3d: 1.8 GB 105.64s  12 phases / 5 relevant  SCT  52.00s",
        "SMG2K  :  32 MB  10.27s   7 phases / 3 relevant  SCT  43.20s",
    ]);
}
