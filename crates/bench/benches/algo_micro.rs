//! Criterion microbenches of the analysis algorithms: these back the
//! paper's Table 8 TFAT column with measured scaling of the ordering and
//! extraction stages, plus the runtime and trace codec hot paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pas2p_machine::{cluster_a, JitterModel, MappingPolicy, Work};
use pas2p_model::{lamport_order, pas2p_order};
use pas2p_mpisim::{run_app, Mpi, ReduceOp, SimConfig};
use pas2p_phases::{extract_phases, SimilarityConfig};
use pas2p_trace::{format, InstrumentationModel, Trace, TraceCollector, Traced};
use std::sync::Arc;

/// Produce a ring trace with `iters` iterations on `n` ranks.
fn ring_trace(n: u32, iters: usize) -> Trace {
    let mut machine = cluster_a();
    machine.jitter = JitterModel::none();
    let collector = Arc::new(TraceCollector::new(n, "bench", InstrumentationModel::free()));
    let cfg = SimConfig::new(machine, n, MappingPolicy::Block);
    let col = collector.clone();
    run_app(&cfg, move |ctx| {
        let size = ctx.size();
        let rank = ctx.rank();
        let mut t = Traced::new(ctx, &col);
        let next = (rank + 1) % size;
        let prev = (rank + size - 1) % size;
        for _ in 0..iters {
            t.compute(Work::flops(1e6));
            t.send(next, 1, &[0u8; 256]);
            t.recv(Some(prev), Some(1));
            t.allreduce_f64(&[1.0], ReduceOp::Sum);
        }
        t.finish();
    });
    Arc::into_inner(collector).unwrap().into_trace()
}

fn bench_ordering(c: &mut Criterion) {
    let mut g = c.benchmark_group("ordering");
    for &iters in &[50usize, 200] {
        let trace = ring_trace(8, iters);
        let events = trace.total_events() as u64;
        g.throughput(Throughput::Elements(events));
        g.bench_with_input(BenchmarkId::new("pas2p", events), &trace, |b, t| {
            b.iter(|| pas2p_order(t))
        });
        g.bench_with_input(BenchmarkId::new("lamport", events), &trace, |b, t| {
            b.iter(|| lamport_order(t))
        });
    }
    g.finish();
}

fn bench_extraction(c: &mut Criterion) {
    let mut g = c.benchmark_group("phase_extraction");
    for &iters in &[50usize, 200] {
        let trace = ring_trace(8, iters);
        let logical = pas2p_order(&trace);
        let ticks = logical.len() as u64;
        g.throughput(Throughput::Elements(ticks));
        g.bench_with_input(BenchmarkId::from_parameter(ticks), &logical, |b, l| {
            b.iter(|| extract_phases(l, &SimilarityConfig::default()))
        });
    }
    g.finish();
}

fn bench_trace_codec(c: &mut Criterion) {
    let trace = ring_trace(8, 100);
    let encoded = format::encode(&trace);
    let mut g = c.benchmark_group("trace_codec");
    g.throughput(Throughput::Bytes(encoded.len() as u64));
    g.bench_function("encode", |b| b.iter(|| format::encode(&trace)));
    g.bench_function("decode", |b| b.iter(|| format::decode(&encoded).unwrap()));
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let mut machine = cluster_a();
    machine.jitter = JitterModel::none();
    let mut g = c.benchmark_group("mpisim");
    g.sample_size(10);
    for &n in &[4u32, 16] {
        let cfg = SimConfig::new(machine.clone(), n, MappingPolicy::Block);
        g.bench_with_input(BenchmarkId::new("ring_1k_msgs", n), &cfg, |b, cfg| {
            b.iter(|| {
                run_app(cfg, |ctx| {
                    let size = ctx.size();
                    let next = (ctx.rank() + 1) % size;
                    let prev = (ctx.rank() + size - 1) % size;
                    for _ in 0..1000 / size {
                        ctx.send(next, 1, &[0u8; 64]);
                        ctx.recv(Some(prev), Some(1));
                    }
                })
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_ordering,
    bench_extraction,
    bench_trace_codec,
    bench_simulator
);
criterion_main!(benches);
