//! Ablation: the 1 % relevance cut-off (DESIGN.md ablation 3).
//!
//! Dropping non-relevant phases is where most of the paper's residual
//! error comes from (§5: "If we take all the application phases … this
//! prediction error is reduced"). Sweeping the cut-off trades SET
//! against PETE.

use pas2p::prelude::*;
use pas2p_apps::MoldyApp;
use pas2p_bench::{banner, paper_reference};
use pas2p_model::pas2p_order;
use pas2p_phases::{extract_phases, PhaseTable, SimilarityConfig};
use pas2p_signature::construct_signature;

fn main() {
    let base = cluster_a();
    banner("Ablation: relevance cut-off (the 1% rule)", &base, None);

    let app = MoldyApp { nprocs: 16, steps: 60, rebuild_every: 10, atoms_per_proc: 512 };
    let (trace, _) = run_traced(
        &app,
        &base,
        MappingPolicy::Block,
        InstrumentationModel::free(),
    );
    let logical = pas2p_order(&trace);
    let analysis = extract_phases(&logical, &SimilarityConfig::default());
    let aet = run_plain(&app, &base, MappingPolicy::Block).makespan;

    println!(
        "\n{:>10} {:>9} {:>11} {:>9} {:>8} {:>11}",
        "cut-off", "relevant", "coverage(%)", "PETE(%)", "SET(s)", "SET/AET(%)"
    );
    let mut results = Vec::new();
    for threshold in [0.20, 0.05, 0.01, 0.001, 0.0] {
        let table = PhaseTable::from_analysis(&analysis, threshold, 1, 24);
        if table.rows.is_empty() {
            println!("{:>10.3} {:>9} (no phases pass)", threshold, 0);
            continue;
        }
        let (signature, _) = construct_signature(
            &app,
            &table,
            &base,
            MappingPolicy::Block,
            SignatureConfig::default(),
        );
        let prediction =
            execute_signature(&app, &signature, &base, MappingPolicy::Block).unwrap();
        let pete = 100.0 * (prediction.pet - aet).abs() / aet;
        println!(
            "{:>10.3} {:>9} {:>11.1} {:>9.2} {:>8.2} {:>11.2}{}",
            threshold,
            table.relevant_phases(),
            100.0 * analysis.relevant_coverage(threshold),
            pete,
            prediction.set,
            100.0 * prediction.set / aet,
            if threshold == 0.01 { "   <- paper setting" } else { "" }
        );
        results.push((threshold, table.relevant_phases(), pete, prediction.set));
    }

    // Lower cut-offs keep more phases and must not shrink the signature.
    let counts: Vec<usize> = results.iter().map(|&(_, c, _, _)| c).collect();
    assert!(
        counts.windows(2).all(|w| w[0] <= w[1]),
        "relevant-phase count must grow as the cut-off drops: {:?}",
        counts
    );

    paper_reference(&[
        "§3.3: \"A phase representativeness is given if the phase represents",
        "1 percent or more of the entire application execution time.\"",
        "§5: taking all phases (cut-off 0) reduces the prediction error at",
        "the cost of a longer signature.",
    ]);
}
