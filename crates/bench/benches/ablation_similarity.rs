//! Ablation: the similarity thresholds (DESIGN.md ablation 2).
//!
//! The paper fixes compute-time similarity at 85 % and the similar-event
//! fraction at 80 % ("configurable value"). Sweeping them shows the
//! trade-off: stricter thresholds fragment phases (bigger signature,
//! longer SET); looser ones merge genuinely different behaviour (higher
//! prediction error).

use pas2p::prelude::*;
use pas2p_apps::GromacsApp;
use pas2p_bench::{banner, paper_reference};
use pas2p_model::pas2p_order;
use pas2p_phases::{extract_phases, PhaseTable, SimilarityConfig};
use pas2p_signature::construct_signature;

fn main() {
    let base = cluster_a();
    banner("Ablation: similarity thresholds (85% compute / 80% events)", &base, None);

    // GROMACS mixes phase families (PME vs non-PME steps): sensitive to
    // similarity settings.
    let app = GromacsApp { nprocs: 16, steps: 40, pme_every: 4, dlb_every: 20 };
    let (trace, _) = run_traced(
        &app,
        &base,
        MappingPolicy::Block,
        InstrumentationModel::free(),
    );
    let logical = pas2p_order(&trace);
    let aet = run_plain(&app, &base, MappingPolicy::Block).makespan;

    println!(
        "\n{:>13} {:>13} {:>8} {:>9} {:>9} {:>8}",
        "compute_ratio", "event_frac", "phases", "relevant", "PETE(%)", "SET(s)"
    );
    let mut petes = Vec::new();
    for (compute_ratio, event_fraction) in [
        (0.50, 0.50),
        (0.70, 0.70),
        (0.85, 0.80), // the paper's setting
        (0.95, 0.95),
        (0.999, 0.999),
    ] {
        let cfg = SimilarityConfig {
            compute_ratio,
            event_fraction,
            ..SimilarityConfig::default()
        };
        let analysis = extract_phases(&logical, &cfg);
        let table = PhaseTable::from_analysis(&analysis, 0.01, 1, 24);
        let (signature, _) = construct_signature(
            &app,
            &table,
            &base,
            MappingPolicy::Block,
            SignatureConfig::default(),
        );
        let prediction =
            execute_signature(&app, &signature, &base, MappingPolicy::Block).unwrap();
        let pete = 100.0 * (prediction.pet - aet).abs() / aet;
        println!(
            "{:>13.3} {:>13.3} {:>8} {:>9} {:>9.2} {:>8.2}{}",
            compute_ratio,
            event_fraction,
            analysis.total_phases(),
            table.relevant_phases(),
            pete,
            prediction.set,
            if (compute_ratio, event_fraction) == (0.85, 0.80) {
                "   <- paper setting"
            } else {
                ""
            }
        );
        petes.push((compute_ratio, pete, analysis.total_phases()));
    }

    // Stricter thresholds must not *reduce* the phase count.
    let counts: Vec<usize> = petes.iter().map(|&(_, _, c)| c).collect();
    assert!(
        counts.windows(2).all(|w| w[0] <= w[1]),
        "phase count must be monotone in strictness: {:?}",
        counts
    );

    paper_reference(&[
        "§3.3 step 5: compute-time similarity >= 85%, phase similar when",
        ">= 80% of events similar (\"configurable value\"). The paper chose",
        "these to maximize merging without mixing distinct behaviour.",
    ]);
}
