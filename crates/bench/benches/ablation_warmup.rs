//! Ablation: checkpoint warm-up × measurement-window averaging
//! (DESIGN.md ablation 4).
//!
//! The paper places each checkpoint *before* the measured phase "to
//! guarantee the correct warm-up time for the machine's components", and
//! notes the checkpoint "is made after the phases have occurred a series
//! of times". In this reproduction the same hazard appears through the
//! pipeline: on a wavefront code (Sweep3D), occurrences near the start of
//! the run execute while the pipeline is still filling and overstate the
//! PhaseET. Two mitigations exist — skipping occurrences (warm-up) and
//! averaging a window of consecutive occurrences — and this ablation
//! sweeps both to show either suffices, while a cold single-occurrence
//! measurement does not.

use pas2p::prelude::*;
use pas2p_apps::Sweep3dApp;
use pas2p_bench::{banner, paper_reference};
use pas2p_model::pas2p_order;
use pas2p_phases::{extract_phases, PhaseTable, SimilarityConfig};
use pas2p_signature::construct_signature;

fn main() {
    let base = cluster_a();
    banner(
        "Ablation: warm-up skipping x window averaging (Sweep3D wavefront)",
        &base,
        None,
    );

    let app = Sweep3dApp { nprocs: 8, grid_n: 250, iters: 13, k_blocks: 4 };
    let aet = run_plain(&app, &base, MappingPolicy::Block).makespan;
    let (trace, _) = run_traced(
        &app,
        &base,
        MappingPolicy::Block,
        InstrumentationModel::free(),
    );
    let analysis = extract_phases(&pas2p_order(&trace), &SimilarityConfig::default());

    println!(
        "\n{:<26} {:>7} {:>8} {:>9} {:>9}",
        "configuration", "warmup", "windows", "PETE(%)", "SET(s)"
    );
    let mut results = Vec::new();
    for (label, warmup, windows, auto) in [
        ("cold, single occurrence", 0usize, 1usize, false),
        ("warmed, single occurrence", 12, 1, false),
        ("cold, averaged window", 0, 24, false),
        ("default (auto warm-up)", 1, 24, true),
    ] {
        let table = PhaseTable::from_analysis_with(&analysis, 0.01, warmup, windows, auto);
        let (signature, _) = construct_signature(
            &app,
            &table,
            &base,
            MappingPolicy::Block,
            SignatureConfig::default(),
        );
        let prediction =
            execute_signature(&app, &signature, &base, MappingPolicy::Block).unwrap();
        let pete = 100.0 * (prediction.pet - aet).abs() / aet;
        println!(
            "{:<26} {:>7} {:>8} {:>9.2} {:>9.2}",
            label, warmup, windows, pete, prediction.set
        );
        results.push((label, pete));
    }

    let err = |label: &str| results.iter().find(|(l, _)| *l == label).unwrap().1;
    let cold_single = err("cold, single occurrence");
    let warmed_single = err("warmed, single occurrence");
    let cold_avg = err("cold, averaged window");
    let default = err("default (auto warm-up)");
    println!(
        "\n=> cold+single {:.1}% | warm-up alone {:.1}% | averaging alone {:.1}% | default {:.1}%",
        cold_single, warmed_single, cold_avg, default
    );
    println!(
        "With gap-aware checkpoint placement and restored per-rank clock skew\n\
         (DESIGN.md, measurement-window deviation), every setting stays within\n\
         the accuracy band — the warm-up machinery's job today is mostly to\n\
         keep the SET down: window averaging measures the same occurrences in\n\
         one restart instead of paying a restart-to-occurrence run per sample."
    );
    // Robustness: every setting within the paper's error band.
    for (label, pete) in &results {
        assert!(*pete < 10.0, "{}: PETE {:.2}% out of band", label, pete);
    }
    // Averaged windows must not cost more target time than repeated
    // single-occurrence measurement spans.
    assert!(default < 10.0 && cold_single < 10.0 && warmed_single < 10.0 && cold_avg < 10.0);

    paper_reference(&[
        "§3.4/Fig 8: \"The checkpoint operation is implemented before the",
        "starting point of the specific phase to guarantee the correct",
        "warm-up time for the machine's components (e.g., cache and TLBs)\";",
        "§6: \"the checkpoint is made after the phases have occurred a",
        "series of times, which is why the SCT is greater\".",
    ]);
}
