//! Regenerates the paper's Table 1 / Figs 3–5: the queue-based logical
//! ordering walkthrough and the physical→logical trace transformation.

use pas2p_bench::paper_reference;
use pas2p_model::{pas2p_order, pas2p_order_logged};
use pas2p_trace::{EventKind, ProcessTrace, Trace, TraceEvent};

fn ev(
    number: u64,
    process: u32,
    kind: EventKind,
    peer: Option<u32>,
    msg_id: u64,
    t: f64,
) -> TraceEvent {
    TraceEvent {
        number,
        process,
        t_post: t,
        t_complete: t + 0.05,
        kind,
        peer,
        tag: 0,
        size: 64,
        involved: 1,
        msg_id,
        comm_id: 0,
        wildcard: false,
    }
}

/// The 4-process, 6-events-per-process example of Fig 4 (paper event ids
/// are `process*6 + number + 1`).
fn example_trace() -> Trace {
    let procs: Vec<Vec<TraceEvent>> = (0..4u32)
        .map(|p| {
            (0..6u64)
                .map(|i| {
                    // Alternate sends/recvs pairing neighbours in a ring:
                    // even events send to the next process, odd events
                    // receive from the previous one.
                    let next = (p + 1) % 4;
                    let prev = (p + 3) % 4;
                    if i % 2 == 0 {
                        let msg = (p as u64) * 10 + i / 2 + 1;
                        ev(i, p, EventKind::Send, Some(next), msg, i as f64 + p as f64 * 0.1)
                    } else {
                        let msg = (prev as u64) * 10 + i / 2 + 1;
                        ev(i, p, EventKind::Recv, Some(prev), msg, i as f64 + p as f64 * 0.1)
                    }
                })
                .collect()
        })
        .collect();
    Trace {
        nprocs: 4,
        machine: "example".into(),
        procs: procs
            .into_iter()
            .enumerate()
            .map(|(r, events)| ProcessTrace {
                process: r as u32,
                end_time: events.last().map(|e| e.t_complete).unwrap_or(0.0),
                events,
            })
            .collect(),
    }
}

fn main() {
    println!("================================================================");
    println!("Fig 3-5 / Table 1: physical -> logical trace (PAS2P ordering)");
    println!("================================================================");

    let trace = example_trace();
    let (logical, log) = pas2p_order_logged(&trace);

    println!("\nTable 1 analog - dequeue order (paper ids = 6*process+number+1):");
    println!("{:<6} {:<10} {:<10}", "step", "drop-off", "paper id");
    for (step, &(p, n)) in log.iter().enumerate().take(12) {
        println!("{:<6} P{}#{:<7} {:<10}", step + 1, p, n, p as u64 * 6 + n + 1);
    }

    println!("\nFig 5 analog - final logical trace (one row per tick):");
    println!("{:<6} P0        P1        P2        P3", "tick");
    for (t, tick) in logical.ticks.iter().enumerate() {
        let mut cells = vec!["-".to_string(); 4];
        for e in &tick.events {
            cells[e.process as usize] = match e.kind {
                EventKind::Send => format!("S->{}", e.peer.unwrap()),
                EventKind::Recv => format!("R<-{}", e.peer.unwrap()),
                EventKind::Coll(_) => "COLL".to_string(),
            };
        }
        println!(
            "{:<6} {:<9} {:<9} {:<9} {:<9}",
            t, cells[0], cells[1], cells[2], cells[3]
        );
    }

    // Invariants the figures demonstrate.
    logical.validate_against(&trace).expect("valid logical trace");
    let recv_after_send = logical.ticks.iter().enumerate().all(|(t, tick)| {
        tick.events
            .iter()
            .filter(|e| e.kind == EventKind::Recv)
            .all(|r| {
                logical.ticks[..t]
                    .iter()
                    .flat_map(|tk| tk.events.iter())
                    .any(|s| s.kind == EventKind::Send && s.msg_id == r.msg_id)
            })
    });
    println!(
        "\ninvariants: one-event-per-process-per-tick OK, receives follow sends: {}",
        recv_after_send
    );
    assert!(recv_after_send);

    // Determinism (the Fig 3 property).
    let again = pas2p_order(&trace);
    assert_eq!(again, logical);
    println!("re-ordering is bit-identical: true");

    paper_reference(&[
        "Table 1 first column (drop-off): 1, 7, 13, 19, 2, 8, 14, 20, 3, ...",
        "Fig 3: a message sent at LT arrives at LT+1, never afterwards",
        "Fig 5: after permutation+splitting each (process, tick) holds <= 1 event",
    ]);
}
