//! Regenerates the Appendix D analog: the LU and GROMACS analyses —
//! phase inventory, weights, and the resulting prediction.

use pas2p::experiment::human_bytes;
use pas2p::prelude::*;
use pas2p::Pas2p;
use pas2p_apps::{GromacsApp, LuApp};
use pas2p_bench::{banner, paper_reference, shrink};

fn show(pas2p: &Pas2p, app: &dyn MpiApp, base: &pas2p_machine::MachineModel) {
    let analysis = pas2p.analyze(app, base, MappingPolicy::Block);
    println!("\n== {} ({} procs, {}) ==", app.name(), app.nprocs(), app.workload());
    println!(
        "trace {} | TFAT {:.3}s | {} phases / {} relevant",
        human_bytes(analysis.trace_bytes),
        analysis.tfat_seconds,
        analysis.total_phases(),
        analysis.relevant_phases()
    );
    println!(
        "{:<8} {:>8} {:>14} {:>12} {:>9}",
        "phase", "weight", "PhaseET(s)", "W*ET(s)", "share(%)"
    );
    for row in &analysis.table.rows {
        println!(
            "{:<8} {:>8} {:>14.6} {:>12.2} {:>9.2}",
            row.phase_id,
            row.weight,
            row.phase_et_base,
            row.weight as f64 * row.phase_et_base,
            100.0 * row.weight as f64 * row.phase_et_base / analysis.table.aet_base
        );
    }

    let (signature, _) = pas2p.build_signature(app, &analysis, base, MappingPolicy::Block);
    let report = pas2p
        .validate(app, &signature, base, MappingPolicy::Block)
        .unwrap();
    println!(
        "prediction on {}: PET {:.2}s vs AET {:.2}s -> PETE {:.2}%",
        base.name, report.prediction.pet, report.aet, report.pete_or_inf()
    );
    assert!(report.pete_or_inf() < 15.0);
}

fn main() {
    let base = cluster_c();
    banner("Appendix D analog: LU and GROMACS analyses", &base, None);

    let pas2p = Pas2p::default();
    let k = shrink();
    show(&pas2p, &LuApp::class_d(256 / k), &base);
    show(&pas2p, &GromacsApp::benchmark(128 / k), &base);

    paper_reference(&[
        "Appendix D tabulates, per application, the relevant phases with",
        "their weights and PhaseETs used to construct the signature, and",
        "the resulting predicted execution time. LU: 25 phases, only 2",
        "relevant (deep prologue); GROMACS: multiple phase families from",
        "the PME/non-PME step mix.",
    ]);
}
