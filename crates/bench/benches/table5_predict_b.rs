//! Regenerates Tables 4 + 5: signatures constructed on cluster A (base
//! machine) predicting the AET on cluster B at two core counts per
//! application — SET, SET/AET, PET, PETE, AET.

use pas2p::experiment::{prediction_row, PredictionRow};
use pas2p::prelude::*;
use pas2p::Pas2p;
use pas2p_apps::table4_apps;
use pas2p_bench::{banner, paper_reference, shrink};

fn main() {
    let base = cluster_a();
    let target = cluster_b();
    banner(
        "Table 5: predictions for cluster B (signatures built on cluster A)",
        &base,
        Some(&target),
    );

    let pas2p = Pas2p::default();
    let apps = table4_apps(shrink());

    println!("\nTable 4 workloads:");
    for app in &apps {
        println!("  {:<10} {:>4} procs  {}", app.name(), app.nprocs(), app.workload());
    }

    println!("\n{}", PredictionRow::header());
    let mut rows = Vec::new();
    for app in &apps {
        let analysis = pas2p.analyze(app.as_ref(), &base, MappingPolicy::Block);
        let (signature, _) =
            pas2p.build_signature(app.as_ref(), &analysis, &base, MappingPolicy::Block);
        for cores in [app.nprocs() / 2, app.nprocs()] {
            if cores == 0 || cores > target.total_cores() {
                continue;
            }
            let row = prediction_row(app.as_ref(), &signature, &target, cores);
            println!("{}", row);
            rows.push(row);
        }
    }

    let avg_pete = rows.iter().map(|r| r.pete).sum::<f64>() / rows.len() as f64;
    let avg_set = rows.iter().map(|r| r.set_vs_aet).sum::<f64>() / rows.len() as f64;
    println!(
        "\naverage prediction accuracy: {:.2}% | average SET/AET: {:.2}%",
        100.0 - avg_pete,
        avg_set
    );
    println!(
        "note: SET/AET scales with 1/weight — these scaled workloads run 13-60\n\
         iterations vs the paper's 10^4-10^5, so each restart+measurement is a\n\
         far larger fraction of the run (see summary_accuracy for the scaling\n\
         demonstration; PAS2P_BENCH_SHRINK=1 with full iteration counts\n\
         approaches the paper's 1.74%)."
    );
    assert!(100.0 - avg_pete > 90.0, "avg accuracy {:.2}%", 100.0 - avg_pete);
    assert!(avg_set < 60.0, "avg SET/AET {:.2}%", avg_set);

    paper_reference(&[
        "CG-64   32: SET  8.42  0.29%  PET 2793.42  PETE 1.90  AET 2847.42",
        "CG-64   64: SET  4.87  0.32%  PET 1504.66  PETE 0.48  AET 1511.91",
        "BT-64   32: SET 13.47  0.80%  PET 1652.65  PETE 0.90  AET 1667.64",
        "BT-64   64: SET 10.19  0.77%  PET 1302.76  PETE 0.55  AET 1309.91",
        "SP-64   32: SET  2.04  0.24%  PET  808.76  PETE 1.28  AET  819.17",
        "SP-64   64: SET  2.08  0.51%  PET  388.37  PETE 3.05  AET  400.55",
        "SMG2k   32: SET 16.75  2.63%  PET  633.23  PETE 0.38  AET  635.61",
        "SMG2k   64: SET  8.37 10.15%  PET  162.87  PETE 2.32  AET  166.74",
        "Sweep3d 16: SET  4.32  0.17%  PET 2494.36  PETE 0.06  AET 2492.74",
        "Sweep3d 32: SET  3.01  0.22%  PET 1328.04  PETE 0.40  AET 1322.62",
        "POP-64  32: SET 22.79  1.41%  PET 1608.85  PETE 0.17  AET 1611.59",
        "POP-64  64: SET 18.36  1.79%  PET 1016.01  PETE 0.61  AET 1022.28",
        "=> signature ~1.74% of AET; accuracy > 97.55%",
    ]);
}
