//! Compressed trace encoding (related work: Noeth et al., ScalaTrace —
//! "a method to compress tracefiles while maintaining low overhead",
//! paper §2).
//!
//! PAS2P's own answer to tracefile pressure is phase extraction, but the
//! raw tracefiles still reach gigabytes (Table 3: 5.2 GB). This module
//! exploits the same repetitiveness the phases do, at the byte level:
//!
//! * event *shapes* (kind, peer, tag, size, involved, communicator) are
//!   dictionary-encoded — an iterative application has a handful of
//!   distinct shapes repeated thousands of times;
//! * timestamps are quantized to nanoseconds and delta-encoded as LEB128
//!   varints — consecutive events are microseconds apart, so deltas fit
//!   in 2–4 bytes instead of 16;
//! * message ids are delta-encoded against a per-process counter.
//!
//! Typical iterative traces compress 6–10×. Decompression is exact up to
//! the nanosecond quantization.

use crate::event::{ProcessTrace, Trace, TraceEvent};
use crate::format::TraceDecodeError;
use std::collections::HashMap;

/// Magic bytes of the compressed format.
pub const CMAGIC: &[u8; 8] = b"PAS2PTRZ";

const NS: f64 = 1e9;

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let mut byte = (v & 0x7f) as u8;
        v >>= 7;
        if v != 0 {
            byte |= 0x80;
        }
        out.push(byte);
        if v == 0 {
            break;
        }
    }
}

fn put_signed(out: &mut Vec<u8>, v: i64) {
    // ZigZag encoding.
    put_varint(out, ((v << 1) ^ (v >> 63)) as u64);
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn varint(&mut self) -> Result<u64, TraceDecodeError> {
        let mut v = 0u64;
        let mut shift = 0;
        loop {
            let byte = *self.buf.get(self.pos).ok_or(TraceDecodeError::Truncated)?;
            self.pos += 1;
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift >= 64 {
                return Err(TraceDecodeError::BadTag(byte));
            }
        }
    }

    fn signed(&mut self) -> Result<i64, TraceDecodeError> {
        let z = self.varint()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], TraceDecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(TraceDecodeError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    // Fixed-width reads share `take`'s bound check; the conversions keep
    // a typed error path so no decoder input can reach an unwrap.
    fn u8(&mut self) -> Result<u8, TraceDecodeError> {
        self.take(1)?.first().copied().ok_or(TraceDecodeError::Truncated)
    }

    fn u32(&mut self) -> Result<u32, TraceDecodeError> {
        self.take(4)?
            .try_into()
            .map(u32::from_le_bytes)
            .map_err(|_| TraceDecodeError::Truncated)
    }

    fn u64(&mut self) -> Result<u64, TraceDecodeError> {
        self.take(8)?
            .try_into()
            .map(u64::from_le_bytes)
            .map_err(|_| TraceDecodeError::Truncated)
    }

    fn f64(&mut self) -> Result<f64, TraceDecodeError> {
        self.take(8)?
            .try_into()
            .map(f64::from_le_bytes)
            .map_err(|_| TraceDecodeError::Truncated)
    }
}

/// The dictionary key: everything about an event except its times, number
/// and relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Shape {
    kind: u8,
    coll: u8,
    peer: i64, // relative to the process, or i64::MIN for none
    tag: u32,
    size: u64,
    involved: u32,
    comm_id: u64,
    wildcard: bool,
}

fn shape_of(e: &TraceEvent) -> Shape {
    let (kind, coll) = crate::format::kind_tags_pub(e.kind);
    Shape {
        kind,
        coll,
        peer: e
            .peer
            .map(|p| p as i64 - e.process as i64)
            .unwrap_or(i64::MIN),
        tag: e.tag,
        size: e.size,
        involved: e.involved,
        comm_id: e.comm_id,
        wildcard: e.wildcard,
    }
}

/// Compress a trace.
pub fn compress(trace: &Trace) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(CMAGIC);
    out.extend_from_slice(&trace.nprocs.to_le_bytes());
    out.extend_from_slice(&(trace.machine.len() as u32).to_le_bytes());
    out.extend_from_slice(trace.machine.as_bytes());

    // Global shape dictionary.
    let mut dict: Vec<Shape> = Vec::new();
    let mut index: HashMap<Shape, u64> = HashMap::new();
    for p in &trace.procs {
        for e in &p.events {
            let s = shape_of(e);
            index.entry(s).or_insert_with(|| {
                dict.push(s);
                dict.len() as u64 - 1
            });
        }
    }
    put_varint(&mut out, dict.len() as u64);
    for s in &dict {
        out.push(s.kind);
        out.push(s.coll);
        put_signed(&mut out, if s.peer == i64::MIN { i64::MIN + 1 } else { s.peer });
        out.push(u8::from(s.peer == i64::MIN) | (u8::from(s.wildcard) << 1));
        put_varint(&mut out, s.tag as u64);
        put_varint(&mut out, s.size);
        put_varint(&mut out, s.involved as u64);
        out.extend_from_slice(&s.comm_id.to_le_bytes());
    }

    for p in &trace.procs {
        put_varint(&mut out, p.process as u64);
        put_varint(&mut out, p.events.len() as u64);
        out.extend_from_slice(&p.end_time.to_le_bytes());
        let mut last_ns: i64 = 0;
        let mut last_msg: i64 = 0;
        for e in &p.events {
            let s = shape_of(e);
            put_varint(&mut out, index[&s]);
            let post_ns = (e.t_post * NS).round() as i64;
            let complete_ns = (e.t_complete * NS).round() as i64;
            put_signed(&mut out, post_ns - last_ns);
            put_signed(&mut out, complete_ns - post_ns);
            last_ns = complete_ns;
            put_signed(&mut out, e.msg_id as i64 - last_msg);
            last_msg = e.msg_id as i64;
        }
    }
    out
}

/// Decompress a buffer produced by [`compress`]. Timestamps come back
/// quantized to nanoseconds.
pub fn decompress(buf: &[u8]) -> Result<Trace, TraceDecodeError> {
    let mut r = Reader { buf, pos: 0 };
    if r.take(8)? != CMAGIC {
        return Err(TraceDecodeError::BadMagic);
    }
    let nprocs = r.u32()?;
    let mlen = r.u32()? as usize;
    let machine = String::from_utf8_lossy(r.take(mlen)?).into_owned();

    let dict_len = r.varint()? as usize;
    if dict_len > buf.len() {
        return Err(TraceDecodeError::Truncated);
    }
    let mut dict = Vec::with_capacity(dict_len);
    for _ in 0..dict_len {
        let kind = r.u8()?;
        let coll = r.u8()?;
        let peer_raw = r.signed()?;
        let peer_flags = r.u8()?;
        let peer_none = peer_flags & 1 == 1;
        let wildcard = peer_flags & 2 == 2;
        let tag = r.varint()? as u32;
        let size = r.varint()?;
        let involved = r.varint()? as u32;
        let comm_id = r.u64()?;
        dict.push(Shape {
            kind,
            coll,
            peer: if peer_none { i64::MIN } else { peer_raw },
            tag,
            size,
            involved,
            comm_id,
            wildcard,
        });
    }

    let mut procs = Vec::with_capacity(nprocs as usize);
    for _ in 0..nprocs {
        let process = r.varint()? as u32;
        let count = r.varint()? as usize;
        if count > buf.len() {
            return Err(TraceDecodeError::Truncated);
        }
        let end_time = r.f64()?;
        let mut events = Vec::with_capacity(count);
        let mut last_ns: i64 = 0;
        let mut last_msg: i64 = 0;
        for number in 0..count {
            let sid = r.varint()? as usize;
            let s = dict.get(sid).ok_or(TraceDecodeError::BadTag(sid as u8))?;
            // Corrupted varints can decode to extreme deltas; overflow is
            // a decode error, not an arithmetic fault.
            let post_ns = last_ns
                .checked_add(r.signed()?)
                .ok_or(TraceDecodeError::Truncated)?;
            let complete_ns = post_ns
                .checked_add(r.signed()?)
                .ok_or(TraceDecodeError::Truncated)?;
            last_ns = complete_ns;
            let msg_id = last_msg
                .checked_add(r.signed()?)
                .ok_or(TraceDecodeError::Truncated)? as u64;
            last_msg = msg_id as i64;
            events.push(TraceEvent {
                number: number as u64,
                process,
                t_post: post_ns as f64 / NS,
                t_complete: complete_ns as f64 / NS,
                kind: crate::format::kind_from_tags_pub(s.kind, s.coll)?,
                peer: if s.peer == i64::MIN {
                    None
                } else {
                    Some((process as i64 + s.peer) as u32)
                },
                tag: s.tag,
                size: s.size,
                involved: s.involved,
                msg_id,
                comm_id: s.comm_id,
                wildcard: s.wildcard,
            });
        }
        procs.push(ProcessTrace {
            process,
            events,
            end_time,
        });
    }
    Ok(Trace {
        nprocs,
        machine,
        procs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::format;

    fn iterative_trace(iters: usize, procs: u32) -> Trace {
        let mk = |proc_id: u32| {
            let mut events = Vec::new();
            let mut t = 0.0;
            for i in 0..iters {
                t += 0.001;
                events.push(TraceEvent {
                    number: (2 * i) as u64,
                    process: proc_id,
                    t_post: t,
                    t_complete: t + 1e-5,
                    kind: EventKind::Send,
                    peer: Some((proc_id + 1) % procs),
                    tag: 1,
                    size: 4096,
                    involved: 1,
                    msg_id: (proc_id as u64) << 32 | i as u64,
                    comm_id: 0,
                    wildcard: false,
                });
                t += 0.0005;
                events.push(TraceEvent {
                    number: (2 * i + 1) as u64,
                    process: proc_id,
                    t_post: t,
                    t_complete: t + 2e-5,
                    kind: EventKind::Recv,
                    peer: Some((proc_id + procs - 1) % procs),
                    tag: 1,
                    size: 4096,
                    involved: 1,
                    msg_id: (((proc_id + procs - 1) % procs) as u64) << 32 | i as u64,
                    comm_id: 0,
                    wildcard: i % 3 == 0,
                });
            }
            ProcessTrace {
                process: proc_id,
                end_time: t,
                events,
            }
        };
        Trace {
            nprocs: procs,
            machine: "cluster-A".into(),
            procs: (0..procs).map(mk).collect(),
        }
    }

    #[test]
    fn roundtrip_up_to_time_quantization() {
        let t = iterative_trace(100, 4);
        let back = decompress(&compress(&t)).unwrap();
        assert_eq!(back.nprocs, t.nprocs);
        assert_eq!(back.machine, t.machine);
        for (a, b) in t.procs.iter().zip(&back.procs) {
            assert_eq!(a.events.len(), b.events.len());
            for (x, y) in a.events.iter().zip(&b.events) {
                assert_eq!(x.kind, y.kind);
                assert_eq!(x.peer, y.peer);
                assert_eq!(x.size, y.size);
                assert_eq!(x.msg_id, y.msg_id);
                assert_eq!(x.comm_id, y.comm_id);
                assert_eq!(x.wildcard, y.wildcard);
                assert!((x.t_post - y.t_post).abs() < 1e-8);
                assert!((x.t_complete - y.t_complete).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn iterative_traces_compress_well() {
        let t = iterative_trace(2000, 8);
        let raw = format::encode(&t).len();
        let packed = compress(&t).len();
        let ratio = raw as f64 / packed as f64;
        assert!(ratio > 4.0, "compression ratio only {:.1}x", ratio);
    }

    #[test]
    fn garbage_is_rejected_not_panicked() {
        assert!(decompress(b"not a trace").is_err());
        let mut buf = compress(&iterative_trace(5, 2));
        buf.truncate(buf.len() / 2);
        assert!(decompress(&buf).is_err());
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace {
            nprocs: 2,
            machine: String::new(),
            procs: vec![
                ProcessTrace { process: 0, events: vec![], end_time: 0.0 },
                ProcessTrace { process: 1, events: vec![], end_time: 0.0 },
            ],
        };
        let back = decompress(&compress(&t)).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn varint_roundtrips_extremes() {
        for v in [0u64, 1, 127, 128, u32::MAX as u64, u64::MAX] {
            let mut out = Vec::new();
            put_varint(&mut out, v);
            let mut r = Reader { buf: &out, pos: 0 };
            assert_eq!(r.varint().unwrap(), v);
        }
        for v in [0i64, -1, 1, i64::MIN + 1, i64::MAX] {
            let mut out = Vec::new();
            put_signed(&mut out, v);
            let mut r = Reader { buf: &out, pos: 0 };
            assert_eq!(r.signed().unwrap(), v);
        }
    }
}
