//! The PAS2P event structure and trace containers.

use pas2p_machine::CollectiveKind;
use serde::{Deserialize, Serialize};

/// Sub-class of a collective event, mirroring which MPI collective was
/// intercepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CollClass {
    /// `MPI_Barrier`
    Barrier,
    /// `MPI_Bcast`
    Bcast,
    /// `MPI_Reduce`
    Reduce,
    /// `MPI_Allreduce`
    Allreduce,
    /// `MPI_Allgather`
    Allgather,
    /// `MPI_Alltoall`
    Alltoall,
    /// `MPI_Gather`
    Gather,
    /// `MPI_Scatter`
    Scatter,
}

impl From<CollectiveKind> for CollClass {
    fn from(k: CollectiveKind) -> CollClass {
        match k {
            CollectiveKind::Barrier => CollClass::Barrier,
            CollectiveKind::Bcast => CollClass::Bcast,
            CollectiveKind::Reduce => CollClass::Reduce,
            CollectiveKind::Allreduce => CollClass::Allreduce,
            CollectiveKind::Allgather => CollClass::Allgather,
            CollectiveKind::Alltoall => CollClass::Alltoall,
            CollectiveKind::Gather => CollClass::Gather,
            CollectiveKind::Scatter => CollClass::Scatter,
        }
    }
}

/// The paper's *type of event*: `+K` for a Send, `-K` for a Receive, where
/// `K` is the number of involved processes; collectives involve the whole
/// group and are ordered specially by the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// A point-to-point send (`+1`).
    Send,
    /// A point-to-point receive (`-1`).
    Recv,
    /// A collective participation (`±K`, K = group size).
    Coll(CollClass),
}

impl EventKind {
    /// The signed-K encoding used in the paper's event structure.
    pub fn signed_k(&self, involved: u32) -> i64 {
        match self {
            EventKind::Send => involved as i64,
            EventKind::Recv => -(involved as i64),
            EventKind::Coll(_) => involved as i64,
        }
    }

    /// True for collective participations.
    pub fn is_collective(&self) -> bool {
        matches!(self, EventKind::Coll(_))
    }
}

/// One intercepted communication event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Per-process event number (the paper's *number of event*). Global
    /// ids are assigned when the model merges processes.
    pub number: u64,
    /// Rank on which the event occurred (the paper's *process*).
    pub process: u32,
    /// Physical (virtual-machine) time at which the call was posted.
    pub t_post: f64,
    /// Physical time at which the call completed; for receives this is the
    /// message arrival, for collectives the synchronized exit.
    pub t_complete: f64,
    /// Event class.
    pub kind: EventKind,
    /// Point-to-point peer rank (`None` for collectives).
    pub peer: Option<u32>,
    /// Message tag (0 for collectives).
    pub tag: u32,
    /// Communication volume in bytes (the paper's *size*).
    pub size: u64,
    /// Number of involved processes (the paper's *K*).
    pub involved: u32,
    /// The paper's *relation* field: the message id linking a Send event
    /// to its Receive event; 0 for collectives.
    pub msg_id: u64,
    /// Communicator identity for collectives (stable across members; see
    /// [`pas2p_mpisim::Group::comm_id`]); 0 for point-to-point events.
    pub comm_id: u64,
    /// True when a receive was posted with a wildcard source
    /// (`MPI_ANY_SOURCE`): `peer` then records the source that happened to
    /// match this run, one of several possible outcomes. Always false for
    /// sends and collectives.
    #[serde(default)]
    pub wildcard: bool,
}

/// The event log of one process.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProcessTrace {
    /// Rank this log belongs to.
    pub process: u32,
    /// Events in program order.
    pub events: Vec<TraceEvent>,
    /// The rank's virtual clock when tracing finished (per-rank AET under
    /// instrumentation).
    pub end_time: f64,
}

impl ProcessTrace {
    /// Compute time preceding event `i`: the gap between the completion of
    /// the previous event (or 0.0) and the posting of event `i`. This is
    /// the quantity PBBs are made of.
    pub fn compute_before(&self, i: usize) -> f64 {
        let prev_end = if i == 0 {
            0.0
        } else {
            self.events[i - 1].t_complete
        };
        (self.events[i].t_post - prev_end).max(0.0)
    }
}

/// A complete application trace: one [`ProcessTrace`] per rank.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Number of processes in the traced run.
    pub nprocs: u32,
    /// Name of the machine model the trace was collected on (the paper's
    /// *base machine*).
    pub machine: String,
    /// Per-process logs, indexed by rank.
    pub procs: Vec<ProcessTrace>,
}

impl Trace {
    /// Total number of events across all processes.
    pub fn total_events(&self) -> usize {
        self.procs.iter().map(|p| p.events.len()).sum()
    }

    /// The traced application execution time: maximum per-rank end time.
    /// Because tracing charges instrumentation overhead, this is the
    /// paper's AET_PAS2P, not the bare AET.
    pub fn elapsed(&self) -> f64 {
        self.procs.iter().map(|p| p.end_time).fold(0.0, f64::max)
    }

    /// Serialized size of this trace in the binary on-disk format — the
    /// paper's *TFSize* (Table 8).
    pub fn size_bytes(&self) -> u64 {
        crate::format::encoded_size(self)
    }

    /// Sanity-check internal consistency; returns a description of the
    /// first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.procs.len() != self.nprocs as usize {
            return Err(format!(
                "{} process logs for {} processes",
                self.procs.len(),
                self.nprocs
            ));
        }
        for (rank, p) in self.procs.iter().enumerate() {
            if p.process != rank as u32 {
                return Err(format!("log {} labeled process {}", rank, p.process));
            }
            let mut last = 0.0f64;
            for (i, e) in p.events.iter().enumerate() {
                if e.process != p.process {
                    return Err(format!("event {} of rank {} mislabeled", i, rank));
                }
                if e.number != i as u64 {
                    return Err(format!(
                        "event {} of rank {} numbered {}",
                        i, rank, e.number
                    ));
                }
                if e.t_complete + 1e-12 < e.t_post {
                    return Err(format!(
                        "event {} of rank {} completes before posting",
                        i, rank
                    ));
                }
                if e.wildcard && e.kind != EventKind::Recv {
                    return Err(format!(
                        "event {} of rank {} carries a wildcard flag but is not a receive",
                        i, rank
                    ));
                }
                // Completions are monotone per process; posts may precede
                // the previous completion (nonblocking receives overlap).
                if e.t_complete + 1e-9 < last {
                    return Err(format!(
                        "event {} of rank {} completes before its predecessor",
                        i, rank
                    ));
                }
                last = e.t_complete;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(number: u64, process: u32, t0: f64, t1: f64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            number,
            process,
            t_post: t0,
            t_complete: t1,
            kind,
            peer: Some(0),
            tag: 0,
            size: 8,
            involved: 1,
            msg_id: number + 1,
            comm_id: 0,
            wildcard: false,
        }
    }

    #[test]
    fn signed_k_encoding() {
        assert_eq!(EventKind::Send.signed_k(1), 1);
        assert_eq!(EventKind::Recv.signed_k(1), -1);
        assert_eq!(EventKind::Coll(CollClass::Bcast).signed_k(16), 16);
        assert!(EventKind::Coll(CollClass::Barrier).is_collective());
        assert!(!EventKind::Send.is_collective());
    }

    #[test]
    fn compute_before_measures_gaps() {
        let p = ProcessTrace {
            process: 0,
            events: vec![
                ev(0, 0, 1.0, 1.5, EventKind::Send),
                ev(1, 0, 3.5, 4.0, EventKind::Recv),
            ],
            end_time: 4.0,
        };
        assert!((p.compute_before(0) - 1.0).abs() < 1e-12);
        assert!((p.compute_before(1) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn validate_accepts_wellformed_trace() {
        let t = Trace {
            nprocs: 1,
            machine: "m".into(),
            procs: vec![ProcessTrace {
                process: 0,
                events: vec![ev(0, 0, 0.0, 1.0, EventKind::Send)],
                end_time: 1.0,
            }],
        };
        assert!(t.validate().is_ok());
        assert_eq!(t.total_events(), 1);
        assert!((t.elapsed() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn validate_rejects_time_travel() {
        let t = Trace {
            nprocs: 1,
            machine: "m".into(),
            procs: vec![ProcessTrace {
                process: 0,
                events: vec![ev(0, 0, 2.0, 1.0, EventKind::Send)],
                end_time: 2.0,
            }],
        };
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_numbering() {
        let t = Trace {
            nprocs: 1,
            machine: "m".into(),
            procs: vec![ProcessTrace {
                process: 0,
                events: vec![ev(7, 0, 0.0, 1.0, EventKind::Send)],
                end_time: 1.0,
            }],
        };
        assert!(t.validate().is_err());
    }
}
