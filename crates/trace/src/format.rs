//! Binary on-disk trace format.
//!
//! Real PAS2P trace files reach gigabytes (Table 3 reports 5.2 GB for a
//! 256-process Moldy run; Table 8 lists per-application TFSize). To report
//! the same metric we serialize traces into a compact fixed-record binary
//! format: a header followed by per-process sections of 56-byte event
//! records. `Trace::size_bytes` reports the encoded size without
//! materializing the buffer.

use crate::event::{CollClass, EventKind, ProcessTrace, Trace, TraceEvent};

/// Magic bytes opening every trace file.
pub const MAGIC: &[u8; 8] = b"PAS2PTRC";
/// Format version.
pub const VERSION: u32 = 1;
/// Size of one encoded event record in bytes.
pub const EVENT_RECORD_BYTES: u64 = 64;

/// Errors produced when decoding a trace buffer.
#[derive(Debug, PartialEq, Eq)]
pub enum TraceDecodeError {
    /// Buffer does not start with the PAS2P magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Buffer ended prematurely.
    Truncated,
    /// An enum discriminant was out of range.
    BadTag(u8),
}

impl std::fmt::Display for TraceDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceDecodeError::BadMagic => write!(f, "not a PAS2P trace (bad magic)"),
            TraceDecodeError::BadVersion(v) => write!(f, "unsupported trace version {}", v),
            TraceDecodeError::Truncated => write!(f, "trace buffer truncated"),
            TraceDecodeError::BadTag(t) => write!(f, "invalid discriminant {}", t),
        }
    }
}

impl std::error::Error for TraceDecodeError {}

/// Size the encoded form of `trace` would occupy, in bytes.
pub fn encoded_size(trace: &Trace) -> u64 {
    let header = 8 + 4 + 4 + 4 + trace.machine.len() as u64;
    let per_proc: u64 = trace
        .procs
        .iter()
        .map(|p| 4 + 8 + 8 + p.events.len() as u64 * EVENT_RECORD_BYTES)
        .sum();
    header + per_proc
}

/// Public alias of the kind→tag mapping for sibling modules.
pub(crate) fn kind_tags_pub(kind: EventKind) -> (u8, u8) {
    kind_tags(kind)
}

/// Public alias of the tag→kind mapping for sibling modules.
pub(crate) fn kind_from_tags_pub(k: u8, c: u8) -> Result<EventKind, TraceDecodeError> {
    kind_from_tags(k, c)
}

fn kind_tags(kind: EventKind) -> (u8, u8) {
    match kind {
        EventKind::Send => (0, 0),
        EventKind::Recv => (1, 0),
        EventKind::Coll(c) => (
            2,
            match c {
                CollClass::Barrier => 0,
                CollClass::Bcast => 1,
                CollClass::Reduce => 2,
                CollClass::Allreduce => 3,
                CollClass::Allgather => 4,
                CollClass::Alltoall => 5,
                CollClass::Gather => 6,
                CollClass::Scatter => 7,
            },
        ),
    }
}

fn kind_from_tags(k: u8, c: u8) -> Result<EventKind, TraceDecodeError> {
    Ok(match k {
        0 => EventKind::Send,
        1 => EventKind::Recv,
        2 => EventKind::Coll(match c {
            0 => CollClass::Barrier,
            1 => CollClass::Bcast,
            2 => CollClass::Reduce,
            3 => CollClass::Allreduce,
            4 => CollClass::Allgather,
            5 => CollClass::Alltoall,
            6 => CollClass::Gather,
            7 => CollClass::Scatter,
            other => return Err(TraceDecodeError::BadTag(other)),
        }),
        other => return Err(TraceDecodeError::BadTag(other)),
    })
}

fn encode_event(e: &TraceEvent, out: &mut Vec<u8>) {
    let (k, c) = kind_tags(e.kind);
    out.extend_from_slice(&e.number.to_le_bytes()); // 8
    out.extend_from_slice(&e.t_post.to_le_bytes()); // 8
    out.extend_from_slice(&e.t_complete.to_le_bytes()); // 8
    out.push(k); // 1
    out.push(c); // 1
    out.push(u8::from(e.wildcard)); // 1 flags (bit 0: wildcard source)
    out.push(0); // 1 pad
    let peer: i32 = e.peer.map(|p| p as i32).unwrap_or(-1);
    out.extend_from_slice(&peer.to_le_bytes()); // 4
    out.extend_from_slice(&e.tag.to_le_bytes()); // 4
    out.extend_from_slice(&e.size.to_le_bytes()); // 8
    out.extend_from_slice(&e.involved.to_le_bytes()); // 4
    out.extend_from_slice(&e.msg_id.to_le_bytes()); // 8
    out.extend_from_slice(&e.comm_id.to_le_bytes()); // 8
}

pub(crate) struct Cursor<'a> {
    pub(crate) buf: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], TraceDecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(TraceDecodeError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    pub(crate) fn u8(&mut self) -> Result<u8, TraceDecodeError> {
        Ok(self.take(1)?[0])
    }
    pub(crate) fn u32(&mut self) -> Result<u32, TraceDecodeError> {
        // `take` guarantees the width, but the conversion stays a typed
        // error path: no decoder input may reach an unwrap.
        let b = self.take(4)?;
        b.try_into()
            .map(u32::from_le_bytes)
            .map_err(|_| TraceDecodeError::Truncated)
    }
    pub(crate) fn i32(&mut self) -> Result<i32, TraceDecodeError> {
        let b = self.take(4)?;
        b.try_into()
            .map(i32::from_le_bytes)
            .map_err(|_| TraceDecodeError::Truncated)
    }
    pub(crate) fn u64(&mut self) -> Result<u64, TraceDecodeError> {
        let b = self.take(8)?;
        b.try_into()
            .map(u64::from_le_bytes)
            .map_err(|_| TraceDecodeError::Truncated)
    }
    pub(crate) fn f64(&mut self) -> Result<f64, TraceDecodeError> {
        let b = self.take(8)?;
        b.try_into()
            .map(f64::from_le_bytes)
            .map_err(|_| TraceDecodeError::Truncated)
    }
}

pub(crate) fn decode_event(
    cur: &mut Cursor<'_>,
    process: u32,
) -> Result<TraceEvent, TraceDecodeError> {
    let number = cur.u64()?;
    let t_post = cur.f64()?;
    let t_complete = cur.f64()?;
    let k = cur.u8()?;
    let c = cur.u8()?;
    // Flags byte was a pad in older traces, which wrote it as zero, so
    // decoding them yields `wildcard: false` — exactly what they meant.
    let flags = cur.u8()?;
    cur.take(1)?; // pad
    let peer = cur.i32()?;
    let tag = cur.u32()?;
    let size = cur.u64()?;
    let involved = cur.u32()?;
    let msg_id = cur.u64()?;
    let comm_id = cur.u64()?;
    Ok(TraceEvent {
        number,
        process,
        t_post,
        t_complete,
        kind: kind_from_tags(k, c)?,
        peer: if peer < 0 { None } else { Some(peer as u32) },
        tag,
        size,
        involved,
        msg_id,
        comm_id,
        wildcard: flags & 1 != 0,
    })
}

/// Encode a trace into the binary format.
pub fn encode(trace: &Trace) -> Vec<u8> {
    let mut out = Vec::with_capacity(encoded_size(trace) as usize);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&trace.nprocs.to_le_bytes());
    out.extend_from_slice(&(trace.machine.len() as u32).to_le_bytes());
    out.extend_from_slice(trace.machine.as_bytes());
    for p in &trace.procs {
        out.extend_from_slice(&p.process.to_le_bytes());
        out.extend_from_slice(&(p.events.len() as u64).to_le_bytes());
        out.extend_from_slice(&p.end_time.to_le_bytes());
        for e in &p.events {
            encode_event(e, &mut out);
        }
    }
    out
}

/// The decoded file header, shared between the strict decoder and the
/// recovering decoder in [`crate::ingest`].
pub(crate) struct Header {
    pub(crate) nprocs: u32,
    pub(crate) machine: String,
}

/// Parse the magic/version/nprocs/machine preamble, advancing `cur` to
/// the first per-process section.
pub(crate) fn decode_header(cur: &mut Cursor<'_>) -> Result<Header, TraceDecodeError> {
    if cur.take(8)? != MAGIC {
        return Err(TraceDecodeError::BadMagic);
    }
    let version = cur.u32()?;
    if version != VERSION {
        return Err(TraceDecodeError::BadVersion(version));
    }
    let nprocs = cur.u32()?;
    let mlen = cur.u32()? as usize;
    let machine = String::from_utf8_lossy(cur.take(mlen)?).into_owned();
    Ok(Header { nprocs, machine })
}

/// Decode a binary trace buffer.
pub fn decode(buf: &[u8]) -> Result<Trace, TraceDecodeError> {
    let mut cur = Cursor { buf, pos: 0 };
    let Header { nprocs, machine } = decode_header(&mut cur)?;
    let mut procs = Vec::with_capacity((nprocs as usize).min(1 << 20));
    for _ in 0..nprocs {
        let process = cur.u32()?;
        let count = cur.u64()?;
        let end_time = cur.f64()?;
        // A corrupted count must not drive allocation: it cannot exceed
        // what the remaining buffer can hold.
        let remaining = (cur.buf.len() - cur.pos) as u64;
        if count
            .checked_mul(EVENT_RECORD_BYTES)
            .map(|need| need > remaining)
            .unwrap_or(true)
        {
            return Err(TraceDecodeError::Truncated);
        }
        let mut events = Vec::with_capacity(count as usize);
        for _ in 0..count {
            events.push(decode_event(&mut cur, process)?);
        }
        procs.push(ProcessTrace {
            process,
            events,
            end_time,
        });
    }
    Ok(Trace {
        nprocs,
        machine,
        procs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mk = |number, kind, peer| TraceEvent {
            number,
            process: 0,
            t_post: number as f64,
            t_complete: number as f64 + 0.5,
            kind,
            peer,
            tag: 3,
            size: 1024,
            involved: if matches!(kind, EventKind::Coll(_)) { 4 } else { 1 },
            msg_id: number * 7,
            comm_id: if matches!(kind, EventKind::Coll(_)) { 99 } else { 0 },
            wildcard: kind == EventKind::Recv && number % 2 == 1,
        };
        Trace {
            nprocs: 2,
            machine: "cluster-A".into(),
            procs: vec![
                ProcessTrace {
                    process: 0,
                    events: vec![
                        mk(0, EventKind::Send, Some(1)),
                        mk(1, EventKind::Recv, Some(1)),
                        mk(2, EventKind::Coll(CollClass::Allreduce), None),
                    ],
                    end_time: 3.0,
                },
                ProcessTrace {
                    process: 1,
                    events: vec![],
                    end_time: 0.0,
                },
            ],
        }
    }

    #[test]
    fn roundtrip_preserves_trace() {
        let t = sample_trace();
        let buf = encode(&t);
        let back = decode(&buf).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn encoded_size_matches_buffer() {
        let t = sample_trace();
        assert_eq!(encode(&t).len() as u64, encoded_size(&t));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut buf = encode(&sample_trace());
        buf[0] = b'X';
        assert_eq!(decode(&buf), Err(TraceDecodeError::BadMagic));
    }

    #[test]
    fn truncation_is_detected() {
        let buf = encode(&sample_trace());
        for cut in [4usize, 20, buf.len() - 1] {
            assert_eq!(decode(&buf[..cut]), Err(TraceDecodeError::Truncated));
        }
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut buf = encode(&sample_trace());
        buf[8] = 99;
        assert!(matches!(decode(&buf), Err(TraceDecodeError::BadVersion(_))));
    }

    #[test]
    fn all_coll_classes_roundtrip() {
        for (i, c) in [
            CollClass::Barrier,
            CollClass::Bcast,
            CollClass::Reduce,
            CollClass::Allreduce,
            CollClass::Allgather,
            CollClass::Alltoall,
            CollClass::Gather,
            CollClass::Scatter,
        ]
        .into_iter()
        .enumerate()
        {
            let t = Trace {
                nprocs: 1,
                machine: String::new(),
                procs: vec![ProcessTrace {
                    process: 0,
                    events: vec![TraceEvent {
                        number: 0,
                        process: 0,
                        t_post: 0.0,
                        t_complete: 0.1,
                        kind: EventKind::Coll(c),
                        peer: None,
                        tag: 0,
                        size: i as u64,
                        involved: 8,
                        msg_id: 0,
                        comm_id: 7,
                        wildcard: false,
                    }],
                    end_time: 0.1,
                }],
            };
            assert_eq!(decode(&encode(&t)).unwrap(), t);
        }
    }
}
