//! Match-set extraction: which sends *could* have matched each receive.
//!
//! The recorded trace commits every wildcard receive to one concrete
//! sender, but an `MPI_ANY_SOURCE` receive admits any compatible send —
//! the commit is one of several legal outcomes. This module recovers the
//! full candidate structure from a [`Trace`]: for every wildcard receive,
//! the set of sends that target its rank with its tag; for every channel
//! `(src, dst, tag)`, how many sends it carries and how many *named*
//! (deterministic) receives demand them. The happens-before analyzer in
//! `pas2p-check` prunes these raw candidate sets down to the matches that
//! are actually reachable under the partial order.

use crate::event::{EventKind, Trace};
use std::collections::BTreeMap;

/// A send event viewed as a wildcard-match candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CandidateSend {
    /// Rank the send was posted on.
    pub src: u32,
    /// Index of the send in its rank's event list.
    pub index: usize,
    /// Per-process event number of the send.
    pub number: u64,
    /// The message id (relation field) of the send.
    pub msg_id: u64,
    /// Payload size in bytes — differing candidate sizes make a race
    /// structure-changing for the signature.
    pub size: u64,
}

/// One wildcard receive together with every send compatible with it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WildcardMatch {
    /// Rank the receive was posted on.
    pub rank: u32,
    /// Index of the receive in its rank's event list.
    pub index: usize,
    /// Per-process event number of the receive.
    pub number: u64,
    /// Tag the receive was posted with.
    pub tag: u32,
    /// The source the run happened to commit (`peer` of the event).
    pub committed_src: Option<u32>,
    /// The message id the run happened to commit.
    pub committed_msg: u64,
    /// Every send targeting this rank with this tag, committed one
    /// included, in (src, index) order.
    pub candidates: Vec<CandidateSend>,
}

/// Where a sent message was committed: the receive that consumed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommittedRecv {
    /// Rank of the consuming receive.
    pub rank: u32,
    /// Index of the receive in its rank's event list.
    pub index: usize,
    /// True when the consuming receive was posted with a wildcard
    /// source — i.e. the commit was a choice, not a constraint.
    pub wildcard: bool,
}

/// Per-channel send/demand accounting. A channel is one ordered message
/// stream `(src, dst, tag)`; MPI's non-overtaking rule serializes
/// matching inside it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStat {
    /// Sends the trace records on this channel.
    pub sends: u64,
    /// Receives naming this channel's source explicitly (no wildcard).
    pub det_recvs: u64,
}

/// The complete match-set view of a trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MatchSets {
    /// Every wildcard receive with its raw candidate set, in
    /// (rank, index) order.
    pub wildcards: Vec<WildcardMatch>,
    /// Channel accounting keyed by `(src, dst, tag)`.
    pub channels: BTreeMap<(u32, u32, u32), ChannelStat>,
    /// msg_id → the receive that consumed it in the committed run.
    /// Messages whose receive is missing from the trace are absent.
    pub committed: BTreeMap<u64, CommittedRecv>,
}

impl MatchSets {
    /// True when the trace posts no wildcard receives at all — the
    /// committed order is the only order and race analysis is moot.
    pub fn is_deterministic(&self) -> bool {
        self.wildcards.is_empty()
    }

    /// Total number of raw candidates across all wildcard receives.
    pub fn total_candidates(&self) -> usize {
        self.wildcards.iter().map(|w| w.candidates.len()).sum()
    }
}

/// Extract the match sets of a trace. Deterministic: all collections are
/// ordered by rank and event index. Tolerant of damaged traces — events
/// with `msg_id == 0` (no relation recorded) produce no candidate or
/// committed entry, and duplicate msg_ids keep the first receive seen in
/// rank order.
pub fn match_sets(trace: &Trace) -> MatchSets {
    let mut sets = MatchSets::default();
    // Candidate sends bucketed by (dst, tag); channel + commit tables.
    let mut by_dst_tag: BTreeMap<(u32, u32), Vec<CandidateSend>> = BTreeMap::new();
    for p in &trace.procs {
        for (i, e) in p.events.iter().enumerate() {
            match e.kind {
                EventKind::Send => {
                    let Some(dst) = e.peer else { continue };
                    let stat = sets.channels.entry((e.process, dst, e.tag)).or_default();
                    stat.sends += 1;
                    if e.msg_id != 0 {
                        by_dst_tag
                            .entry((dst, e.tag))
                            .or_default()
                            .push(CandidateSend {
                                src: e.process,
                                index: i,
                                number: e.number,
                                msg_id: e.msg_id,
                                size: e.size,
                            });
                    }
                }
                EventKind::Recv => {
                    if !e.wildcard {
                        if let Some(src) = e.peer {
                            sets.channels
                                .entry((src, e.process, e.tag))
                                .or_default()
                                .det_recvs += 1;
                        }
                    }
                    if e.msg_id != 0 {
                        sets.committed.entry(e.msg_id).or_insert(CommittedRecv {
                            rank: e.process,
                            index: i,
                            wildcard: e.wildcard,
                        });
                    }
                }
                EventKind::Coll(_) => {}
            }
        }
    }
    for p in &trace.procs {
        for (i, e) in p.events.iter().enumerate() {
            if e.kind == EventKind::Recv && e.wildcard {
                let candidates = by_dst_tag
                    .get(&(e.process, e.tag))
                    .cloned()
                    .unwrap_or_default();
                sets.wildcards.push(WildcardMatch {
                    rank: e.process,
                    index: i,
                    number: e.number,
                    tag: e.tag,
                    committed_src: e.peer,
                    committed_msg: e.msg_id,
                    candidates,
                });
            }
        }
    }
    sets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ProcessTrace, TraceEvent};

    fn ev(
        number: u64,
        process: u32,
        kind: EventKind,
        peer: Option<u32>,
        tag: u32,
        msg_id: u64,
        size: u64,
        wildcard: bool,
    ) -> TraceEvent {
        TraceEvent {
            number,
            process,
            t_post: number as f64,
            t_complete: number as f64 + 0.1,
            kind,
            peer,
            tag,
            size,
            involved: 1,
            msg_id,
            comm_id: 0,
            wildcard,
        }
    }

    fn trace_of(procs: Vec<Vec<TraceEvent>>) -> Trace {
        Trace {
            nprocs: procs.len() as u32,
            machine: "test".into(),
            procs: procs
                .into_iter()
                .enumerate()
                .map(|(r, events)| ProcessTrace {
                    process: r as u32,
                    end_time: events.last().map(|e| e.t_complete).unwrap_or(0.0),
                    events,
                })
                .collect(),
        }
    }

    #[test]
    fn deterministic_trace_has_no_wildcards() {
        let t = trace_of(vec![
            vec![ev(0, 0, EventKind::Send, Some(1), 0, 1, 8, false)],
            vec![ev(0, 1, EventKind::Recv, Some(0), 0, 1, 8, false)],
        ]);
        let ms = match_sets(&t);
        assert!(ms.is_deterministic());
        assert_eq!(ms.channels[&(0, 1, 0)].sends, 1);
        assert_eq!(ms.channels[&(0, 1, 0)].det_recvs, 1);
        assert_eq!(ms.committed[&1].rank, 1);
        assert!(!ms.committed[&1].wildcard);
    }

    #[test]
    fn wildcard_collects_all_compatible_sends() {
        // Two senders to rank 0 on tag 9; rank 0 posts two wildcard
        // receives. Each wildcard's raw candidate set holds both sends.
        let t = trace_of(vec![
            vec![
                ev(0, 0, EventKind::Recv, Some(1), 9, 1, 8, true),
                ev(1, 0, EventKind::Recv, Some(2), 9, 2, 8, true),
            ],
            vec![ev(0, 1, EventKind::Send, Some(0), 9, 1, 8, false)],
            vec![ev(0, 2, EventKind::Send, Some(0), 9, 2, 8, false)],
        ]);
        let ms = match_sets(&t);
        assert_eq!(ms.wildcards.len(), 2);
        assert_eq!(ms.total_candidates(), 4);
        assert_eq!(ms.wildcards[0].committed_msg, 1);
        assert_eq!(ms.wildcards[0].candidates.len(), 2);
        assert!(ms.committed[&2].wildcard);
    }

    #[test]
    fn tag_mismatch_excludes_candidates() {
        let t = trace_of(vec![
            vec![ev(0, 0, EventKind::Recv, Some(1), 9, 1, 8, true)],
            vec![ev(0, 1, EventKind::Send, Some(0), 9, 1, 8, false)],
            vec![ev(0, 2, EventKind::Send, Some(0), 4, 2, 8, false)],
        ]);
        let ms = match_sets(&t);
        assert_eq!(ms.wildcards[0].candidates.len(), 1);
        assert_eq!(ms.wildcards[0].candidates[0].src, 1);
    }
}
