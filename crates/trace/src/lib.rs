//! Data collection (paper §3.1).
//!
//! The paper instruments applications with `libpas2p`, a dynamic library
//! injected via `LD_PRELOAD` that intercepts every MPI call before the MPI
//! library executes it, producing a per-process trace of communication
//! events. This crate is that layer for the simulated runtime: a
//! [`Traced`] wrapper implements the same [`Mpi`](pas2p_mpisim::Mpi) trait
//! as the raw rank context and records a [`TraceEvent`] for every
//! communication call — applications, being generic over `Mpi`, cannot
//! tell the difference, which is exactly the transparency property
//! interposition gives.
//!
//! Each recorded event carries the fields of the paper's event structure:
//! id (per-process event number; global ids are assigned when the model
//! merges processes), physical time, process, type (±K with K involved
//! processes), communication volume, and the *relation* (message id)
//! linking a Send to its Receive. Logical times are assigned later by
//! `pas2p-model`.
//!
//! Instrumentation is not free: the paper's Table 9 reports AET_PAS2P >
//! AET. The [`InstrumentationModel`] charges a configurable per-event
//! overhead to the rank's virtual clock so the reproduction exhibits the
//! same effect.

#![forbid(unsafe_code)]

pub mod compress;
pub mod event;
pub mod format;
pub mod ingest;
pub mod matchset;
pub mod recorder;

pub use event::{CollClass, EventKind, ProcessTrace, Trace, TraceEvent};
pub use format::{TraceDecodeError, EVENT_RECORD_BYTES};
pub use compress::{compress, decompress};
pub use ingest::{
    decode_recovering, repair_collectives, Confidence, IngestReport, RankHealth, RankIngest,
};
pub use matchset::{match_sets, CandidateSend, ChannelStat, CommittedRecv, MatchSets, WildcardMatch};
pub use recorder::{InstrumentationModel, TraceBuildError, TraceCollector, Traced};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_api_reexports_exist() {
        let _ = InstrumentationModel::default();
        let _ = EVENT_RECORD_BYTES;
    }
}
